"""Benchmark: Figure 2 — branch-resolution-time sweep."""

def test_fig2(benchmark, run_experiment_once):
    result = run_experiment_once(benchmark, "fig2")
    # Linear growth in N: one DRAM access (~122 cycles) per extra level.
    assert result.metrics["mean_N2"] - result.metrics["mean_N1"] > 60
