"""Benchmark: Table I regeneration (configuration validation)."""

def test_table1(benchmark, run_experiment_once):
    result = run_experiment_once(benchmark, "table1")
    assert result.metrics["frequency_ghz"] == 2.0
