"""Benchmark: Figure 11 — secret leakage with eviction sets."""

def test_fig11(benchmark, run_experiment_once):
    result = run_experiment_once(benchmark, "fig11")
    assert result.metrics["accuracy"] >= 0.85  # paper: 91.6%
