"""Benchmark: Figure 7 — latency PDF (no eviction sets)."""

def test_fig7(benchmark, run_experiment_once):
    result = run_experiment_once(benchmark, "fig7")
    assert 15 <= result.metrics["mean_difference"] <= 29
