"""Benchmark: extension C — Invisible vs Undo three-way comparison."""

def test_ext_invisible(benchmark, run_experiment_once):
    result = run_experiment_once(benchmark, "ext_invisible")
    assert result.metrics["overhead_cleanupspec_pct"] < result.metrics["overhead_delay_on_miss_pct"]
