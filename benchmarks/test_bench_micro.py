"""Micro-benchmarks of the simulator substrates.

These time the hot paths the figure harnesses are built on — cache
accesses, attack rounds, synthetic-workload execution — so performance
regressions in the simulator itself are visible independently of the
figure-level benchmarks.
"""

from repro.attack import GadgetParams, UnxpecAttack
from repro.cache import CacheHierarchy
from repro.cpu import Core
from repro.defense import CleanupSpec, UnsafeBaseline
from repro.workloads import get_profile, synthesize


def test_cache_access_throughput(benchmark):
    h = CacheHierarchy(seed=0)
    addrs = [0x100000 + (i % 256) * 64 for i in range(2048)]

    def touch_all():
        for i, addr in enumerate(addrs):
            h.access(addr, i)

    benchmark(touch_all)
    assert h.l1.stats.hits > 0


def test_attack_round_latency(benchmark):
    attack = UnxpecAttack(params=GadgetParams(), seed=0)
    attack.prepare()

    samples = benchmark.pedantic(
        lambda: (attack.sample(0), attack.sample(1)), rounds=5, iterations=2
    )
    assert samples[1].latency - samples[0].latency == 22


def test_attack_round_latency_with_eviction_sets(benchmark):
    attack = UnxpecAttack(params=GadgetParams(), use_eviction_sets=True, seed=0)
    attack.prepare()

    samples = benchmark.pedantic(
        lambda: (attack.sample(0), attack.sample(1)), rounds=5, iterations=2
    )
    assert samples[1].latency - samples[0].latency == 32


def test_synthetic_workload_simulation(benchmark):
    workload = synthesize(get_profile("gcc_r"), instructions=3000, seed=0)

    def run():
        h = CacheHierarchy(seed=0)
        return Core(h, CleanupSpec(h)).run(
            workload.program, max_instructions=10_000_000
        )

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    # Taken branches skip their shadows, so fewer instructions commit than
    # the program holds.
    assert 0 < result.instructions <= len(workload.program)


def test_core_instruction_throughput(benchmark):
    from repro.isa import ProgramBuilder

    b = ProgramBuilder("alu-stream")
    b.li("r1", 1)
    for i in range(2000):
        b.addi(f"r{2 + i % 20}", "r1", i)
    b.halt()
    program = b.build()

    def run():
        h = CacheHierarchy(seed=0)
        return Core(h, UnsafeBaseline(h)).run(program)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.instructions == len(program)
