"""Benchmarks: campaign engine — cold vs warm-cache wall-clock.

The load-bearing assertion lives here: a warm-cache rerun of the same
campaign must take less than 25% of the cold wall-clock, because every
experiment is served from the content-addressed result cache instead of
being recomputed.  A representative three-experiment slice keeps the
benchmark suite's runtime bounded while exercising both shard execution
and cache hydration.
"""

from __future__ import annotations

import json
import time


#: A parameter sweep, a slice-merge, and a real leakage campaign.
CAMPAIGN_IDS = ["fig3", "fig9", "fig10"]


def _run_campaign(cache):
    from repro.campaign import CampaignRunner

    runner = CampaignRunner(jobs=1, cache=cache)
    return runner.run(ids=CAMPAIGN_IDS, quick=True, seed=0)


def test_campaign_cold(benchmark, tmp_path):
    from repro.campaign import ResultCache

    cache = ResultCache(str(tmp_path / "cache"))
    outcomes = benchmark.pedantic(
        lambda: _run_campaign(cache), rounds=1, iterations=1
    )
    assert all(not o.cached for o in outcomes)
    for o in outcomes:
        assert o.result.all_passed, o.experiment_id


def test_campaign_warm_cache_under_quarter_of_cold(tmp_path, benchmark):
    """Warm rerun < 25% of cold: the acceptance-criteria speedup bound."""
    from repro.campaign import ResultCache

    cache = ResultCache(str(tmp_path / "cache"))

    cold_start = time.perf_counter()
    cold = _run_campaign(cache)
    cold_elapsed = time.perf_counter() - cold_start
    assert all(not o.cached for o in cold)

    warm = benchmark.pedantic(
        lambda: _run_campaign(cache), rounds=1, iterations=1
    )
    warm_elapsed = sum(o.wall_seconds for o in warm)
    assert all(o.cached for o in warm)
    assert cache.hits == len(CAMPAIGN_IDS)

    # The cache must serve back byte-identical results.
    def dump(outcomes):
        return json.dumps(
            {o.experiment_id: o.result.to_json() for o in outcomes},
            sort_keys=True,
            default=str,
        )

    assert dump(cold) == dump(warm)
    assert warm_elapsed < 0.25 * cold_elapsed, (
        f"warm rerun {warm_elapsed:.2f}s is not <25% of cold {cold_elapsed:.2f}s"
    )
