"""Benchmark: §VI-B — leakage rate (samples/second at 2 GHz)."""

def test_leakage_rate(benchmark, run_experiment_once):
    result = run_experiment_once(benchmark, "leakage_rate")
    assert result.metrics["matched_kbps"] >= 90  # paper: ~140 Kbps
