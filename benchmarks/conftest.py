"""Benchmark-suite fixtures.

Every benchmark regenerates one paper table/figure (at quick scale) inside
the timed region and asserts the experiment's paper-vs-measured checks
pass — so ``pytest benchmarks/ --benchmark-only`` both times the harness
and re-validates the reproduction.
"""

from __future__ import annotations

import time

import pytest


def calibration_loop(repeats: int = 5, iterations: int = 200_000) -> float:
    """Best-of-N seconds for a fixed pure-Python loop.

    Measures the host interpreter's current throughput; dividing simulator
    timings by this cancels host-speed differences, so gates compare
    implementations rather than machines.
    """
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        acc = 0
        for i in range(iterations):
            acc += i * i
        best = min(best, time.perf_counter() - t0)
    return best


class BenchCalibration:
    """Session-shared calibration state.

    One instance serves every benchmark in a session, so rows measured for
    different configurations (e.g. the scalar and batched backend rows in
    BENCH_core.json) are normalized by the *same* denominator and stay
    directly comparable. ``refresh()`` interleaves re-measurement with the
    workloads and keeps the minimum: on busy hosts the interpreter's
    effective speed drifts between phases, and a single-point calibration
    would make normalized metrics noisier than the raw ones.
    """

    def __init__(self) -> None:
        self.seconds = float("inf")

    def refresh(self) -> float:
        self.seconds = min(self.seconds, calibration_loop())
        return self.seconds


@pytest.fixture(scope="session")
def bench_calibration() -> BenchCalibration:
    cal = BenchCalibration()
    cal.refresh()
    return cal


@pytest.fixture
def run_experiment_once():
    """Run one experiment exactly once under the benchmark timer."""

    def _run(benchmark, experiment_id: str, quick: bool = True, seed: int = 0):
        from repro.experiments import get

        def runner():
            return get(experiment_id).run(quick=quick, seed=seed)

        result = benchmark.pedantic(runner, rounds=1, iterations=1)
        failures = [str(c) for c in result.checks if not c.passed]
        assert not failures, "\n".join(failures)
        return result

    return _run
