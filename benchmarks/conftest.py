"""Benchmark-suite fixtures.

Every benchmark regenerates one paper table/figure (at quick scale) inside
the timed region and asserts the experiment's paper-vs-measured checks
pass — so ``pytest benchmarks/ --benchmark-only`` both times the harness
and re-validates the reproduction.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def run_experiment_once():
    """Run one experiment exactly once under the benchmark timer."""

    def _run(benchmark, experiment_id: str, quick: bool = True, seed: int = 0):
        from repro.experiments import get

        def runner():
            return get(experiment_id).run(quick=quick, seed=seed)

        result = benchmark.pedantic(runner, rounds=1, iterations=1)
        failures = [str(c) for c in result.checks if not c.passed]
        assert not failures, "\n".join(failures)
        return result

    return _run
