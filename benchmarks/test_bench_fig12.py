"""Benchmark: Figure 12 — constant-time rollback overhead sweep."""

def test_fig12(benchmark, run_experiment_once):
    result = run_experiment_once(benchmark, "fig12")
    assert result.metrics["avg_const65_pct"] > result.metrics["avg_const25_pct"]
