"""Benchmark: Figure 3 — timing difference without eviction sets."""

def test_fig3(benchmark, run_experiment_once):
    result = run_experiment_once(benchmark, "fig3")
    assert result.metrics["diff_1_load"] == 22  # the paper's number
