"""Benchmark: Figure 10 — secret leakage without eviction sets."""

def test_fig10(benchmark, run_experiment_once):
    result = run_experiment_once(benchmark, "fig10")
    assert result.metrics["accuracy"] >= 0.78  # paper: 86.7%
