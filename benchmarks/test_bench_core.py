"""Core hot-path microbenchmark with a committed baseline gate.

Run via ``make bench-core`` (plain pytest, no pytest-benchmark): it times

* one fig3-style attack round (prepare once, then steady-state samples), and
* synthetic SPEC-profile workload execution (gcc_r, 20k instructions),

normalizes both against a pure-Python calibration loop so the numbers are
comparable across machines, rewrites ``BENCH_core.json`` at the repo root,
and **fails** if the normalized round metric regressed more than 25 %
against the committed baseline.

The ``seed_reference`` block in the JSON preserves what the pre-optimization
implementation measured (same procedure, same machine as the committed
``measured`` block) so the speedup of the decoded-dispatch overhaul stays
visible: regenerating the file never touches it.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_core.json"

#: Allowed regression of normalized metrics vs the committed baseline.
REGRESSION_FACTOR = 1.25

#: Measured on the pre-optimization implementation (isinstance-dispatch
#: interpreter), same procedure and machine as the first committed baseline.
SEED_REFERENCE = {
    "calibration_s": 0.009060205999048776,
    "fig3_round_ms": 2.577384649976011,
    "fig3_round_normalized": 0.2844730738182563,
    "synthetic_ips": 156234.89887952662,
    "synthetic_ips_normalized": 1415.5203680890659,
}


def calibrate(repeats: int = 5, iterations: int = 200_000) -> float:
    """Best-of-N seconds for a fixed pure-Python loop.

    Measures the machine's current interpreter throughput; dividing the
    simulator timings by this cancels host-speed differences, so the gate
    compares implementations rather than machines.
    """
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        acc = 0
        for i in range(iterations):
            acc += i * i
        best = min(best, time.perf_counter() - t0)
    return best


def fig3_round_seconds(rounds: int = 50, repeats: int = 6) -> float:
    """Best-of-N seconds per steady-state fig3 attack round."""
    from repro.attack import GadgetParams, UnxpecAttack

    attack = UnxpecAttack(params=GadgetParams(n_loads=1), seed=0)
    attack.prepare()
    for bit in (0, 1, 0, 1):  # warmup: decode + fault in the working set
        attack.sample(bit)
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        for i in range(rounds):
            attack.sample(i & 1)
        best = min(best, (time.perf_counter() - t0) / rounds)
    return best


def synthetic_ips(instructions: int = 20_000, repeats: int = 5):
    """Best-of-N committed instructions per second on a gcc_r workload."""
    from repro.cache import CacheHierarchy
    from repro.cpu import Core
    from repro.defense import CleanupSpec
    from repro.workloads import get_profile, synthesize

    workload = synthesize(get_profile("gcc_r"), instructions=instructions, seed=0)
    best = float("inf")
    committed = 0
    for _ in range(repeats):
        hierarchy = CacheHierarchy(seed=0)
        core = Core(hierarchy, CleanupSpec(hierarchy))
        t0 = time.perf_counter()
        result = core.run(workload.program)
        best = min(best, time.perf_counter() - t0)
        committed = result.instructions
    return committed / best, committed


def measure() -> dict:
    # Calibration is interleaved with the workloads and minimized: on busy
    # hosts the interpreter's effective speed drifts between phases, and a
    # calibration taken at a single point in time would make the normalized
    # metrics noisier than the raw ones.
    cal = calibrate()
    round_s = fig3_round_seconds()
    cal = min(cal, calibrate())
    ips, committed = synthetic_ips()
    cal = min(cal, calibrate())
    return {
        "calibration_s": cal,
        "fig3_round_ms": round_s * 1e3,
        "fig3_round_normalized": round_s / cal,
        "synthetic_ips": ips,
        "synthetic_instructions": committed,
        "synthetic_ips_normalized": ips * cal,
    }


def test_bench_core_and_gate():
    measured = measure()

    baseline = None
    if BENCH_PATH.exists():
        baseline = json.loads(BENCH_PATH.read_text()).get("measured")

    document = {
        "schema": 1,
        "seed_reference": SEED_REFERENCE,
        "measured": measured,
        "speedup_vs_seed": {
            "fig3_round_normalized": SEED_REFERENCE["fig3_round_normalized"]
            / measured["fig3_round_normalized"],
            "synthetic_ips_normalized": measured["synthetic_ips_normalized"]
            / SEED_REFERENCE["synthetic_ips_normalized"],
        },
    }
    BENCH_PATH.write_text(json.dumps(document, indent=2) + "\n")
    print(json.dumps(document, indent=2))

    if baseline is not None:
        limit = baseline["fig3_round_normalized"] * REGRESSION_FACTOR
        assert measured["fig3_round_normalized"] <= limit, (
            "fig3 round hot path regressed >25% vs committed BENCH_core.json: "
            f"{measured['fig3_round_normalized']:.4f} > {limit:.4f} "
            f"(baseline {baseline['fig3_round_normalized']:.4f})"
        )
        floor = baseline["synthetic_ips_normalized"] / REGRESSION_FACTOR
        assert measured["synthetic_ips_normalized"] >= floor, (
            "synthetic-workload throughput regressed >25% vs committed "
            f"BENCH_core.json: {measured['synthetic_ips_normalized']:.1f} < "
            f"{floor:.1f} (baseline {baseline['synthetic_ips_normalized']:.1f})"
        )


if __name__ == "__main__":
    test_bench_core_and_gate()
