"""Core hot-path microbenchmark with a committed baseline gate.

Run via ``make bench-core`` (plain pytest, no pytest-benchmark): it times

* one fig3-style attack round (prepare once, then steady-state samples)
  under **both** execution backends — the scalar reference and the batched
  memoized-replay backend (``repro.cpu.batched``), and
* synthetic SPEC-profile workload execution (gcc_r, 20k instructions),

normalizes everything against a pure-Python calibration loop shared
session-wide (see ``benchmarks/conftest.py`` — one denominator, so the
scalar and batched rows are directly comparable), rewrites
``BENCH_core.json`` at the repo root, and **fails** if

* a normalized metric regressed more than 25 % against the committed
  baseline, or
* the batched backend's steady-state round loop is less than 5x faster
  than the scalar one (the memoization gate).

The ``seed_reference`` block in the JSON preserves what the
pre-optimization implementation measured (same procedure, same machine as
the committed ``measured`` block) so the speedup of the decoded-dispatch
overhaul stays visible: regenerating the file never touches it.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from conftest import BenchCalibration

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_core.json"

#: Allowed regression of normalized metrics vs the committed baseline.
REGRESSION_FACTOR = 1.25

#: Required steady-state speedup of the batched backend over scalar on the
#: fig3 round loop (conservative: replay typically lands far above this).
BATCHED_SPEEDUP_FLOOR = 5.0

#: Measured on the pre-optimization implementation (isinstance-dispatch
#: interpreter), same procedure and machine as the first committed baseline.
SEED_REFERENCE = {
    "calibration_s": 0.009060205999048776,
    "fig3_round_ms": 2.577384649976011,
    "fig3_round_normalized": 0.2844730738182563,
    "synthetic_ips": 156234.89887952662,
    "synthetic_ips_normalized": 1415.5203680890659,
}


def fig3_round_seconds(
    rounds: int = 50, repeats: int = 6, backend: str = "scalar"
) -> float:
    """Best-of-N seconds per steady-state fig3 attack round.

    The warmup rounds also populate the batched backend's transition memo,
    so both backends are timed in their steady state.
    """
    from repro.attack import GadgetParams, UnxpecAttack
    from repro.cpu.backend import use_backend

    with use_backend(backend):
        attack = UnxpecAttack(params=GadgetParams(n_loads=1), seed=0)
        attack.prepare()
        for bit in (0, 1, 0, 1):  # warmup: decode + fault in the working set
            attack.sample(bit)
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            for i in range(rounds):
                attack.sample(i & 1)
            best = min(best, (time.perf_counter() - t0) / rounds)
    return best


def interference_round_seconds(rounds: int = 20, repeats: int = 5) -> float:
    """Best-of-N seconds per two-context interference round (ext_interference).

    One round = victim mistraining + recorded victim run + attacker probe
    replay — the scalar-only hot path of the shared-port channel (the
    harness pins scalar cores; there is no batched variant to time).
    """
    from repro.attack import InterferenceHarness

    harness = InterferenceHarness(defense_key="safespec", seed=0)
    harness.prepare()
    for bit in (0, 1):  # warmup: decode + fault in the working set
        harness.sample(bit)
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        for i in range(rounds):
            harness.sample(i & 1)
        best = min(best, (time.perf_counter() - t0) / rounds)
    return best


def synthetic_ips(instructions: int = 20_000, repeats: int = 5):
    """Best-of-N committed instructions per second on a gcc_r workload."""
    from repro.cache import CacheHierarchy
    from repro.cpu import Core
    from repro.defense import CleanupSpec
    from repro.workloads import get_profile, synthesize

    workload = synthesize(get_profile("gcc_r"), instructions=instructions, seed=0)
    best = float("inf")
    committed = 0
    for _ in range(repeats):
        hierarchy = CacheHierarchy(seed=0)
        core = Core(hierarchy, CleanupSpec(hierarchy))
        t0 = time.perf_counter()
        result = core.run(workload.program)
        best = min(best, time.perf_counter() - t0)
        committed = result.instructions
    return committed / best, committed


def measure(cal: BenchCalibration) -> dict:
    round_s = fig3_round_seconds(backend="scalar")
    cal.refresh()
    batched_s = fig3_round_seconds(backend="batched")
    cal.refresh()
    interference_s = interference_round_seconds()
    cal.refresh()
    ips, committed = synthetic_ips()
    seconds = cal.refresh()
    return {
        "calibration_s": seconds,
        "fig3_round_ms": round_s * 1e3,
        "fig3_round_normalized": round_s / seconds,
        "fig3_round_batched_ms": batched_s * 1e3,
        "fig3_round_batched_normalized": batched_s / seconds,
        "batched_speedup_vs_scalar": round_s / batched_s,
        "interference_round_ms": interference_s * 1e3,
        "interference_round_normalized": interference_s / seconds,
        "synthetic_ips": ips,
        "synthetic_instructions": committed,
        "synthetic_ips_normalized": ips * seconds,
    }


def test_bench_core_and_gate(bench_calibration):
    measured = measure(bench_calibration)

    baseline = None
    if BENCH_PATH.exists():
        baseline = json.loads(BENCH_PATH.read_text()).get("measured")

    document = {
        "schema": 2,
        "seed_reference": SEED_REFERENCE,
        "measured": measured,
        "speedup_vs_seed": {
            "fig3_round_normalized": SEED_REFERENCE["fig3_round_normalized"]
            / measured["fig3_round_normalized"],
            "synthetic_ips_normalized": measured["synthetic_ips_normalized"]
            / SEED_REFERENCE["synthetic_ips_normalized"],
        },
    }
    BENCH_PATH.write_text(json.dumps(document, indent=2) + "\n")
    print(json.dumps(document, indent=2))

    assert measured["batched_speedup_vs_scalar"] >= BATCHED_SPEEDUP_FLOOR, (
        "batched backend lost its memoization win on the fig3 round loop: "
        f"{measured['batched_speedup_vs_scalar']:.2f}x < "
        f"{BATCHED_SPEEDUP_FLOOR:.1f}x required"
    )

    if baseline is not None:
        limit = baseline["fig3_round_normalized"] * REGRESSION_FACTOR
        assert measured["fig3_round_normalized"] <= limit, (
            "fig3 round hot path regressed >25% vs committed BENCH_core.json: "
            f"{measured['fig3_round_normalized']:.4f} > {limit:.4f} "
            f"(baseline {baseline['fig3_round_normalized']:.4f})"
        )
        floor = baseline["synthetic_ips_normalized"] / REGRESSION_FACTOR
        assert measured["synthetic_ips_normalized"] >= floor, (
            "synthetic-workload throughput regressed >25% vs committed "
            f"BENCH_core.json: {measured['synthetic_ips_normalized']:.1f} < "
            f"{floor:.1f} (baseline {baseline['synthetic_ips_normalized']:.1f})"
        )
        if "interference_round_normalized" in baseline:
            limit = baseline["interference_round_normalized"] * REGRESSION_FACTOR
            assert measured["interference_round_normalized"] <= limit, (
                "two-context interference round regressed >25% vs committed "
                f"BENCH_core.json: {measured['interference_round_normalized']:.4f}"
                f" > {limit:.4f} "
                f"(baseline {baseline['interference_round_normalized']:.4f})"
            )
        if "fig3_round_batched_normalized" in baseline:
            limit = baseline["fig3_round_batched_normalized"] * REGRESSION_FACTOR
            assert measured["fig3_round_batched_normalized"] <= limit, (
                "batched round loop regressed >25% vs committed "
                f"BENCH_core.json: {measured['fig3_round_batched_normalized']:.4f}"
                f" > {limit:.4f} "
                f"(baseline {baseline['fig3_round_batched_normalized']:.4f})"
            )


if __name__ == "__main__":
    cal = BenchCalibration()
    cal.refresh()
    test_bench_core_and_gate(cal)
