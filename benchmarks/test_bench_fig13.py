"""Benchmark: Figure 13 — real-CPU branch resolution model."""

def test_fig13(benchmark, run_experiment_once):
    result = run_experiment_once(benchmark, "fig13")
    assert result.metrics["level_N2"] > result.metrics["level_N1"]
