"""Benchmark: extension A — Spectre vs CleanupSpec vs unXpec contrast."""

def test_ext_spectre(benchmark, run_experiment_once):
    result = run_experiment_once(benchmark, "ext_spectre")
    assert result.metrics["spectre_cleanupspec_footprints"] == 0
    assert result.metrics["unxpec_diff_on_cleanupspec"] >= 15
