"""Benchmark: Figure 6 — timing difference with eviction sets."""

def test_fig6(benchmark, run_experiment_once):
    result = run_experiment_once(benchmark, "fig6")
    assert result.metrics["diff_1_load"] == 32  # the paper's number
