"""Benchmark: Figure 8 — latency PDF (with eviction sets)."""

def test_fig8(benchmark, run_experiment_once):
    result = run_experiment_once(benchmark, "fig8")
    assert result.metrics["mean_difference"] > result.metrics["mean_difference_no_evsets"]
