"""Benchmark: Figure 1 — measured CleanupSpec timeline."""

def test_fig1(benchmark, run_experiment_once):
    result = run_experiment_once(benchmark, "fig1")
    assert result.metrics["t5_secret1"] >= 20
