"""Observability overhead benchmarks.

The acceptance bar for `repro.obs`: stats + tracing at the default trace
level must add < 15% wall-clock to a default `Core.run` on the synthetic
workload the micro-benchmarks use. These benchmarks time the instrumented
run at every trace level next to the bare run, and one plain (non-timed)
test asserts the bound directly on min-of-N measurements.
"""

import time

from repro.cache import CacheHierarchy
from repro.cpu import Core
from repro.defense import CleanupSpec
from repro.obs import Observability
from repro.workloads import get_profile, synthesize


def _workload():
    return synthesize(get_profile("gcc_r"), instructions=3000, seed=0)


def _run_bare(program):
    h = CacheHierarchy(seed=0)
    return Core(h, CleanupSpec(h)).run(program, max_instructions=10_000_000)


def _run_observed(program, level):
    obs = Observability(trace_level=level)
    h = CacheHierarchy(seed=0, obs=obs)
    core = Core(h, CleanupSpec(h), obs=obs)
    return core.run(program, max_instructions=10_000_000)


def test_workload_bare(benchmark):
    program = _workload().program
    result = benchmark.pedantic(lambda: _run_bare(program), rounds=3, iterations=1)
    assert result.stats is None


def test_workload_obs_squash(benchmark):
    program = _workload().program
    result = benchmark.pedantic(
        lambda: _run_observed(program, "squash"), rounds=3, iterations=1
    )
    assert result.stats is not None


def test_workload_obs_commit(benchmark):
    program = _workload().program
    result = benchmark.pedantic(
        lambda: _run_observed(program, "commit"), rounds=3, iterations=1
    )
    assert result.stats["core"]["instructions"] == result.instructions


def test_workload_obs_full(benchmark):
    program = _workload().program
    result = benchmark.pedantic(
        lambda: _run_observed(program, "full"), rounds=3, iterations=1
    )
    assert result.stats is not None


def test_default_level_overhead_under_budget():
    """Default-level instrumentation stays under the 15% wall-clock bar.

    Min-of-N is robust to scheduler noise: the fastest observed run is the
    closest estimate of the true cost on a busy machine.
    """
    program = _workload().program

    def timed(fn):
        started = time.perf_counter()
        fn()
        return time.perf_counter() - started

    # warm up once each so neither side pays first-call cache cost, then
    # alternate measurements so both sides see the same machine conditions
    _run_bare(program)
    _run_observed(program, "commit")
    bare = observed = float("inf")
    for _ in range(20):
        bare = min(bare, timed(lambda: _run_bare(program)))
        observed = min(observed, timed(lambda: _run_observed(program, "commit")))

    overhead = observed / bare - 1.0
    assert overhead < 0.15, f"default-level obs overhead {overhead:.1%} >= 15%"


def _run_campaign(spans):
    from repro.campaign import CampaignRunner

    runner = CampaignRunner(jobs=1, cache=None, spans=spans)
    outcomes = runner.run(ids=["fig3"], quick=True, seed=0)
    assert not any(o.failed for o in outcomes)
    return runner


def test_campaign_spans_overhead_under_budget():
    """Span recording keeps a campaign run inside the 15% overhead bar.

    Spans are task-granularity (a handful of nodes per shard, stamped
    with one perf_counter pair each), so their cost should be noise next
    to the simulated work; this pins that.  Same min-of-N alternating
    protocol as the trace-level guard above.
    """
    _run_campaign(spans=False)
    _run_campaign(spans=True)
    bare = observed = float("inf")
    for _ in range(3):
        started = time.perf_counter()
        _run_campaign(spans=False)
        bare = min(bare, time.perf_counter() - started)
        started = time.perf_counter()
        _run_campaign(spans=True)
        observed = min(observed, time.perf_counter() - started)

    overhead = observed / bare - 1.0
    assert overhead < 0.15, f"campaign span overhead {overhead:.1%} >= 15%"


def test_spans_disabled_is_noop_path():
    """Spans off means the shared null span — no allocation per task."""
    from repro.obs.spans import NULL_SPAN, SpanRecorder

    recorder = SpanRecorder(enabled=False)
    span = recorder.start("campaign", "campaign")
    assert span is NULL_SPAN
    assert span.child("x", "shard") is NULL_SPAN
    assert recorder.to_dicts() == []

    runner = _run_campaign(spans=False)
    assert runner.span_tree() == {}
    assert all(o.spans == {} for o in runner.last_outcomes)
