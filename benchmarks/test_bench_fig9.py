"""Benchmark: Figure 9 — secret bitstring generation."""

def test_fig9(benchmark, run_experiment_once):
    result = run_experiment_once(benchmark, "fig9")
    assert 0.44 <= result.metrics["ones_fraction"] <= 0.56
