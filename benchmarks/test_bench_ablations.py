"""Benchmarks: ablation experiments (design-choice studies)."""


def test_abl_cleanup_mode(benchmark, run_experiment_once):
    result = run_experiment_once(benchmark, "abl_cleanup_mode")
    assert result.metrics["l1l2_diff_1_load"] > result.metrics["l1_only_diff_1_load"]


def test_abl_window(benchmark, run_experiment_once):
    result = run_experiment_once(benchmark, "abl_window")
    assert result.metrics["diff_min"] >= 18


def test_abl_samples(benchmark, run_experiment_once):
    result = run_experiment_once(benchmark, "abl_samples")
    assert result.metrics["accuracy_7_samples"] >= result.metrics["accuracy_1_sample"]


def test_abl_capacity(benchmark, run_experiment_once):
    result = run_experiment_once(benchmark, "abl_capacity")
    assert result.metrics["mi_evsets"] > result.metrics["mi_plain"]


def test_abl_replacement(benchmark, run_experiment_once):
    result = run_experiment_once(benchmark, "abl_replacement")
    assert result.metrics["lru_accuracy"] > result.metrics["random_accuracy"]


def test_abl_train(benchmark, run_experiment_once):
    result = run_experiment_once(benchmark, "abl_train")
    assert result.metrics["kbps_min_train"] > result.metrics["kbps_max_train"]


def test_abl_geometry(benchmark, run_experiment_once):
    result = run_experiment_once(benchmark, "abl_geometry")
    assert result.metrics["diff_min"] >= 18


def test_abl_significance(benchmark, run_experiment_once):
    result = run_experiment_once(benchmark, "abl_significance")
    assert result.metrics["cohens_d_plain"] > 0.8
