"""Benchmark: extension B — fuzzy-cleanup defense trade-off."""

def test_ext_fuzzy(benchmark, run_experiment_once):
    result = run_experiment_once(benchmark, "ext_fuzzy")
    assert result.metrics["accuracy_max_dummy"] < result.metrics["accuracy_no_dummy"]
