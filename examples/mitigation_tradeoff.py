#!/usr/bin/env python
"""Mitigation trade-off study: what does closing the channel cost?

Compares, on the same SPEC-like workloads and against the same attack:

* plain CleanupSpec               (fast, fully leaky),
* relaxed constant-time rollback  (paper §VI-E; closes the common case at
                                   22-73% slowdown),
* fuzzy dummy-delay cleanup       (paper §VII future work; degrades the
                                   attack at lower average cost).

Run:  python examples/mitigation_tradeoff.py   (takes a minute or two)
"""

from repro import (
    CleanupSpec,
    ConstantTimeRollback,
    FuzzyCleanup,
    UnxpecAttack,
    campaign_noise,
    synthesize,
)
from repro.attack import ThresholdDecoder, calibrate, random_bits
from repro.cache import CacheHierarchy
from repro.common import render_table
from repro.cpu import Core
from repro.defense import UnsafeBaseline
from repro.workloads import get_profile

WORKLOADS = ("gcc_r", "mcf_r", "leela_r")
BITS = 120


def attack_accuracy(defense_factory) -> float:
    attack = UnxpecAttack(
        defense_factory=defense_factory, noise=campaign_noise(), seed=17
    )
    cal = calibrate(attack, rounds_per_class=80)
    decoder = ThresholdDecoder(cal.threshold)
    secret = random_bits(BITS, seed=17, tag="mitigation-demo")
    correct = sum(
        1 for bit in secret if decoder.decode(attack.sample(bit).latency) == bit
    )
    return correct / BITS


def workload_overhead(defense_factory) -> float:
    total = 0.0
    for name in WORKLOADS:
        workload = synthesize(get_profile(name), instructions=6000, seed=1)

        def run(factory):
            h = CacheHierarchy(seed=1)
            return Core(h, factory(h)).run(
                workload.program, max_instructions=20_000_000
            )

        base = run(lambda h: UnsafeBaseline(h))
        protected = run(defense_factory)
        total += protected.cycles / base.cycles - 1.0
    return total / len(WORKLOADS)


def main() -> None:
    schemes = [
        ("CleanupSpec (no mitigation)", lambda h: CleanupSpec(h)),
        ("ConstantTime 25 cyc", lambda h: ConstantTimeRollback(h, 25)),
        ("ConstantTime 65 cyc", lambda h: ConstantTimeRollback(h, 65)),
        ("FuzzyCleanup <=32 cyc", lambda h: FuzzyCleanup(h, 32, seed=17)),
        ("FuzzyCleanup <=96 cyc", lambda h: FuzzyCleanup(h, 96, seed=17)),
    ]
    rows = []
    for name, factory in schemes:
        acc = attack_accuracy(factory)
        overhead = workload_overhead(factory)
        rows.append((name, f"{acc:.1%}", f"{100 * overhead:.1f}%"))
        print(f"  measured {name}...")

    print()
    print(
        render_table(
            ["defense", "unXpec accuracy (1 sample/bit)", "avg workload overhead"],
            rows,
            title=f"Mitigation trade-off over {', '.join(WORKLOADS)}",
        )
    )
    print()
    print(
        "Reading: 50% accuracy = coin flip = channel closed. Constant-time\n"
        "rollback buys security with a large unconditional slowdown; fuzzy\n"
        "dummy delays approach the same attack degradation far cheaper —\n"
        "the trade-off the paper's future-work section anticipates."
    )


if __name__ == "__main__":
    main()
