#!/usr/bin/env python
"""Write the victim in assembly text, then attack it.

The other examples build programs through the Python DSL; this one uses
the textual assembler (`repro.isa.assemble`) to define a Spectre-style
victim the way a real PoC would be written, runs it under CleanupSpec, and
shows the rollback stall leaking the secret — useful as a template for
experimenting with your own gadget variants.

Run:  python examples/asm_victim.py
"""

from repro import CacheHierarchy, CleanupSpec, Core, assemble

VICTIM_ASM = """
# registers: r1=A, r2=P, r3=&bound, r6=index, r30/r31=timestamps
start:
  li    r1, 0x10000        # A array
  li    r2, 0x20000        # P probe array
  li    r3, 0x50400        # &bound (the flushed condition load)

  # --- mistrain: two in-bounds invocations of the bounds check ---
  li    r6, 0
  ld    r9, 0(r3)
  bge   r6, r9, skip1      # in bounds: not taken -> trains not-taken
  shli  r7, r6, 3
  add   r7, r1, r7
  ld    r10, 0(r7)         # secret = A[0] = 0
  shli  r11, r10, 6
  add   r12, r2, r11
  ld    r13, 0(r12)        # touch P[0]
skip1:
  li    r6, 0
  ld    r9, 0(r3)
  bge   r6, r9, skip2
  nop
skip2:

  # --- preparation: flush the bound and the secret=1 target ---
  clflush 0(r3)
  clflush 64(r2)
  mfence
  rdtscp r30

  # --- the attack invocation: out-of-bounds index 4176 -> the secret ---
  li    r6, 4176
  ld    r9, 0(r3)          # slow bound load opens the window
  bge   r6, r9, done       # actually taken; predicted not-taken
  shli  r7, r6, 3
  add   r7, r1, r7
  ld    r10, 0(r7)         # transient: secret = A[4176]
  shli  r11, r10, 6
  add   r12, r2, r11
  ld    r13, 0(r12)        # transient: P[secret*64]
done:
  rdtscp r31
  halt
"""


def run_round(secret_bit: int) -> int:
    hierarchy = CacheHierarchy(seed=1)
    core = Core(hierarchy, CleanupSpec(hierarchy))
    program = assemble(VICTIM_ASM, name="asm-victim")
    # Victim memory: bound = 16, A[0] = 0, the secret at A + 4176*8.
    hierarchy.dram.poke(0x50400, 16)
    hierarchy.dram.poke(0x10000, 0)
    hierarchy.dram.poke(0x10000 + 4176 * 8, secret_bit)
    hierarchy.warm([0x10000 + 4176 * 8, 0x20000, 0x10000])
    result = core.run(program)
    return result.timer_delta("r30", "r31")


def main() -> None:
    print("victim written in assembly, attacked under CleanupSpec:")
    lat0 = run_round(0)
    lat1 = run_round(1)
    print(f"  secret=0 : {lat0} cycles")
    print(f"  secret=1 : {lat1} cycles")
    print(f"  leak     : {lat1 - lat0} cycles of rollback — "
          "edit VICTIM_ASM above and re-run to explore your own gadgets")


if __name__ == "__main__":
    main()
