#!/usr/bin/env python
"""Covert channel: exfiltrate an ASCII message through rollback timing.

The scenario the paper's attacker model describes (§III-B): sender and
receiver share a core and its CleanupSpec-protected cache; the sender
encodes one bit per round through the rollback duration; the receiver
calibrates a threshold and decodes. Under the calibrated noise model the
per-bit error rate matches the paper (≈8-13%), so the demo also applies
3-sample majority voting to deliver the message intact.

Run:  python examples/covert_channel_demo.py
"""

from repro import LeakageCampaign, UnxpecAttack, campaign_noise
from repro.attack.secrets import bits_to_bytes, bytes_to_bits

MESSAGE = b"UNDO IS NOT ENOUGH"


def leak(message: bytes, samples_per_bit: int, use_eviction_sets: bool):
    bits = bytes_to_bits(message, len(message) * 8)
    attack = UnxpecAttack(
        use_eviction_sets=use_eviction_sets, noise=campaign_noise(), seed=11
    )
    campaign = LeakageCampaign(
        attack, samples_per_bit=samples_per_bit, calibration_rounds=120
    )
    result = campaign.run(bits)
    recovered = bits_to_bytes([r.guess for r in result.records])
    return result, recovered


def printable(data: bytes) -> str:
    return "".join(chr(b) if 32 <= b < 127 else "?" for b in data)


def main() -> None:
    print(f"message to exfiltrate: {MESSAGE.decode()} ({len(MESSAGE) * 8} bits)")
    print("=" * 70)

    for evset in (False, True):
        label = "with eviction sets" if evset else "without eviction sets"
        result, recovered = leak(MESSAGE, samples_per_bit=1, use_eviction_sets=evset)
        print(f"[{label}] 1 sample/bit")
        print(f"  threshold     : {result.threshold:.0f} cycles")
        print(f"  bit accuracy  : {result.accuracy:.1%} (paper: 86.7% / 91.6%)")
        print(f"  leakage rate  : {result.leakage.kbps:.0f} Kbps at 2 GHz")
        print(f"  received text : {printable(recovered)}")
        print()

    # Noise suppression through repetition (paper §VI-D third point).
    result, recovered = leak(MESSAGE, samples_per_bit=9, use_eviction_sets=True)
    print("[with eviction sets] 9-sample majority voting")
    print(f"  bit accuracy  : {result.accuracy:.1%}")
    print(f"  effective rate: {result.leakage.kbps:.0f} Kbps (9 samples/bit)")
    print(f"  received text : {printable(recovered)}")
    if recovered == MESSAGE:
        print("  message delivered intact through the rollback-timing channel.")


if __name__ == "__main__":
    main()
