#!/usr/bin/env python
"""The paper's thesis as a three-act demo.

Act 1 — classic Spectre v1 (Algorithm 1) steals a value from an
        unprotected machine via the transient cache *footprint*.
Act 2 — the same attack against CleanupSpec finds nothing: Undo rollback
        really erases the footprint (this is the defense working).
Act 3 — unXpec leaks from the very same CleanupSpec machine anyway, because
        the rollback's *duration* is itself secret-dependent.

Run:  python examples/spectre_vs_cleanupspec.py
"""

from repro import CleanupSpec, SpectreV1Attack, UnxpecAttack

SECRET_NIBBLES = [0xB, 0xA, 0xD, 0x5]  # the "document" Spectre reads


def act1_spectre_on_unsafe() -> None:
    print("Act 1: Spectre v1 on the unsafe baseline")
    attack = SpectreV1Attack(alphabet=16, seed=5)
    stolen = []
    for value in SECRET_NIBBLES:
        result = attack.run(value)
        stolen.append(result.guess)
        probe = ", ".join(
            f"P[{r.value}]={'HIT' if r.cached else 'miss'}"
            for r in result.readings
            if r.cached
        )
        print(f"  planted {value:#x} -> probe sees [{probe}] -> guess {result.guess:#x}")
    assert stolen == SECRET_NIBBLES
    print(f"  stolen: {''.join(f'{v:x}' for v in stolen)} — footprint channel works\n")


def act2_spectre_on_cleanupspec() -> None:
    print("Act 2: the same Spectre against CleanupSpec")
    attack = SpectreV1Attack(
        defense_factory=lambda h: CleanupSpec(h), alphabet=16, seed=5
    )
    for value in SECRET_NIBBLES:
        result = attack.run(value)
        assert result.guess is None and not result.hot_values
        print(f"  planted {value:#x} -> probe sees nothing (rollback erased it)")
    print("  Undo rollback defeats the footprint channel\n")


def act3_unxpec_on_cleanupspec() -> None:
    print("Act 3: unXpec against the same CleanupSpec machine")
    attack = UnxpecAttack(seed=5)
    attack.prepare()
    lat0 = attack.sample(0).latency
    lat1 = attack.sample(1).latency
    threshold = (lat0 + lat1) / 2
    print(f"  secret=0 round: {lat0} cycles   secret=1 round: {lat1} cycles")
    print(f"  the rollback *duration* leaks: {lat1 - lat0}-cycle difference")

    stolen_bits = []
    for value in SECRET_NIBBLES:
        nibble = 0
        for shift in (3, 2, 1, 0):
            bit = (value >> shift) & 1
            lat = attack.sample(bit).latency
            nibble = (nibble << 1) | (1 if lat > threshold else 0)
        stolen_bits.append(nibble)
        print(f"  planted {value:#x} -> leaked {nibble:#x}")
    assert stolen_bits == SECRET_NIBBLES
    print("  unXpec breaks Undo-based safe speculation.")


def main() -> None:
    act1_spectre_on_unsafe()
    act2_spectre_on_cleanupspec()
    act3_unxpec_on_cleanupspec()


if __name__ == "__main__":
    main()
