#!/usr/bin/env python
"""Eviction-set construction against a NoMo/random-replacement L1.

The §V-B optimisation needs eviction sets, but CleanupSpec's protected L1
was designed to make them annoying: NoMo way-partitioning limits the
attacker to 4 of 8 ways and random replacement makes single conflict
trials unreliable. This demo walks the construction the library uses —
candidate generation by page-offset congruence, majority-voted conflict
testing, group reduction — and then proves the set works by forcing a
restoration during rollback.

Run:  python examples/eviction_set_construction.py
"""

from repro import CacheHierarchy
from repro.attack import (
    DEFAULT_LAYOUT,
    congruent_candidates,
    evicts,
    find_eviction_set,
    partition_ways,
    reduce_eviction_set,
)
from repro.defense import CleanupSpec


def main() -> None:
    hierarchy = CacheHierarchy(seed=7)
    target = DEFAULT_LAYOUT.p_entry(1)  # P[64]: the transient-load target
    ways = partition_ways(hierarchy)
    print(f"target line       : {target:#x} (L1 set {hierarchy.l1.set_index_of(target)})")
    print(f"attacker's ways   : {ways} of {hierarchy.l1.geometry.ways} (NoMo partition)")
    print()

    # Step 1: candidates congruent with the target (4 KB stride == the
    # L1's sets x line_size, so equal page offsets share a set).
    pool = congruent_candidates(target, 10)
    print(f"candidate pool    : {len(pool)} lines at 4 KB stride")
    print(f"pool conflicts?   : {evicts(hierarchy, pool, target)}")

    # Step 2: group-testing reduction to the partition size.
    core = reduce_eviction_set(hierarchy, pool, target, size=ways)
    print(f"reduced set       : {len(core)} lines -> {[hex(a) for a in core]}")

    # Step 3: package + verify (find_eviction_set does 1-3 in one call).
    es = find_eviction_set(hierarchy, target)
    print(f"verified set      : {len(es)} lines, evicts target: "
          f"{evicts(hierarchy, es.lines, target)}")
    print()

    # Step 4: use it — prime the set, run a speculative install, and watch
    # CleanupSpec pay a restoration.
    defense = CleanupSpec(hierarchy)
    hierarchy.flush_line(target)
    for line in es.lines:
        hierarchy.access(line, 0)
    epoch = hierarchy.open_epoch()
    hierarchy.access(target, 1, speculative=True, epoch=epoch)
    delta = hierarchy.squash_epoch_delta(epoch)
    from repro.defense import SquashContext

    outcome = defense.on_squash(
        SquashContext(
            resolve_cycle=1000, delta=delta, inflight_transient=0, older_mem_complete=0
        )
    )
    print("speculative install into the primed set, then squash:")
    print(f"  invalidations   : {outcome.invalidated_l1} L1 + {outcome.invalidated_l2} L2")
    print(f"  restorations    : {outcome.restored_l1}")
    print(f"  rollback stall  : {outcome.stall_cycles} cycles "
          "(vs 22 without the restoration — the Fig. 6 enlargement)")


if __name__ == "__main__":
    main()
