#!/usr/bin/env python
"""Visualise one attack round: the instruction waterfall and the squash.

Runs the measured part of an unXpec round with timeline recording on and
prints (a) the ASCII waterfall around the transient window and (b) the
squash table with CleanupSpec's stage breakdown — the paper's Figure 1
drawn from live data.

Run:  python examples/timeline_visualizer.py
"""

from repro import CacheHierarchy, CleanupSpec, Core
from repro.attack import GadgetParams, UnxpecGadget
from repro.tools import render_squashes, render_timeline, summarize_run


def main() -> None:
    hierarchy = CacheHierarchy(seed=0)
    defense = CleanupSpec(hierarchy)
    core = Core(hierarchy, defense, record_timeline=True)

    gadget = UnxpecGadget(GadgetParams(n_loads=2, train_iters=2))
    gadget.init_memory(hierarchy.dram, secret_bit=1)
    core.run(gadget.build_setup())
    result = core.run(gadget.build_round())

    print(summarize_run(result))
    print()

    # Zoom on the measured invocation: from the last fence to the end.
    attack_squash = [
        e for e in result.squashes if e.branch_pc == gadget.bounds_branch_pc
    ][-1]
    window_start = max(0, attack_squash.resolve_cycle - 160)
    window_end = attack_squash.fetch_resume + 40
    print(f"waterfall around the transient window "
          f"(cycles {window_start}..{window_end}):")
    print(
        render_timeline(
            result, width=72, start_cycle=window_start, end_cycle=window_end
        )
    )
    print()

    print("mis-speculations and defense response:")
    print(render_squashes(result))
    print()
    outcome = attack_squash.outcome
    print(
        f"the attack squash stalled the core {outcome.stall_cycles} cycles "
        f"(T5 rollback: {outcome.stage('t5_rollback')}) for "
        f"{outcome.invalidated_l1}+{outcome.invalidated_l2} invalidations — "
        "that stall is what the receiver's rdtscp pair measures."
    )


if __name__ == "__main__":
    main()
