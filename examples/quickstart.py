#!/usr/bin/env python
"""Quickstart: observe the unXpec timing channel in five minutes.

Builds a CleanupSpec-protected machine, mounts the unXpec attack on it, and
shows the secret-dependent timing difference the whole paper is about —
22 cycles from a single transient load, 32 with the eviction-set
optimisation — then leaks a byte through it.

Run:  python examples/quickstart.py
"""

from repro import GadgetParams, ThresholdDecoder, UnxpecAttack


def main() -> None:
    print("unXpec quickstart")
    print("=" * 60)

    # --- 1. the basic channel -------------------------------------------------
    attack = UnxpecAttack(params=GadgetParams(n_loads=1), seed=0)
    attack.prepare()  # mistraining targets, memory image, warmup

    lat0 = attack.sample(0).latency  # victim's secret bit = 0
    lat1 = attack.sample(1).latency  # victim's secret bit = 1
    print(f"latency with secret=0 : {lat0} cycles")
    print(f"latency with secret=1 : {lat1} cycles")
    print(f"timing difference     : {lat1 - lat0} cycles (paper: 22)")
    print()

    # What happened under the hood: with secret=1 the transient load missed,
    # installed a line, and CleanupSpec's rollback had to invalidate it.
    s1 = attack.sample(1)
    print(
        f"rollback ground truth : {s1.invalidated_l1} L1 + {s1.invalidated_l2} L2 "
        f"invalidations, {s1.restored_l1} restorations, "
        f"{s1.rollback_cycles}-cycle rollback stall"
    )
    print()

    # --- 2. the eviction-set optimisation (paper SV-B) -------------------------
    optimised = UnxpecAttack(use_eviction_sets=True, seed=0)
    optimised.prepare()  # also constructs and primes eviction sets
    diff = optimised.sample(1).latency - optimised.sample(0).latency
    print(f"with eviction sets    : {diff} cycles (paper: 32)")
    print(
        f"eviction sets built   : {len(optimised.prime_addresses)} primed lines"
    )
    print()

    # --- 3. leak a byte -------------------------------------------------------
    secret_byte = 0b10110010
    threshold = (lat0 + lat1) / 2
    decoder = ThresholdDecoder(threshold)
    leaked = 0
    for bit_index in range(7, -1, -1):
        bit = (secret_byte >> bit_index) & 1
        guess = decoder.decode(attack.sample(bit).latency)
        leaked = (leaked << 1) | guess
    print(f"planted byte          : {secret_byte:#010b}")
    print(f"leaked byte           : {leaked:#010b}")
    print("byte recovered!" if leaked == secret_byte else "byte mismatch")


if __name__ == "__main__":
    main()
