# Convenience targets for the unXpec reproduction.

PYTHON ?= python

.PHONY: install test bench bench-core coverage experiments report quick-report campaign-smoke campaign-fault-smoke campaign-top matrix-smoke rewind-smoke interference-smoke synth-smoke stats examples lint specct-smoke clean

# Execution backend for campaign-smoke (scalar | batched); results are
# bit-identical either way — CI runs the smoke once per backend.
BACKEND ?= scalar

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Core hot-path microbenchmark (docs/performance.md): times one fig3
# attack round and synthetic-workload execution, rewrites BENCH_core.json,
# and fails if the calibration-normalized metrics regressed >25% against
# the committed baseline.
bench-core:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/test_bench_core.py -q
	@$(PYTHON) -c "import json; d = json.load(open('BENCH_core.json')); \
	    m, s = d['measured'], d['speedup_vs_seed']; \
	    print('bench-core: %.3f ms/round (%.2fx vs seed), %.0f inst/s (%.2fx), \
	batched %.4f ms/round (%.1fx vs scalar)' % \
	    (m['fig3_round_ms'], s['fig3_round_normalized'], \
	     m['synthetic_ips'], s['synthetic_ips_normalized'], \
	     m['fig3_round_batched_ms'], m['batched_speedup_vs_scalar']))"

experiments:
	$(PYTHON) -m repro.experiments all

report:
	$(PYTHON) -m repro.experiments report --out REPORT.md

quick-report:
	$(PYTHON) -m repro.experiments report --quick --out REPORT.md

# Campaign engine smoke: the full quick report on 1 and 2 workers, no
# cache, then assert the merged stats + trace + span-tree sections are
# bit-identical (the docs/campaign.md determinism contract), and that the
# events stream renders in campaign_top. CI uploads the artifacts
# (reports, stats, OpenMetrics, events).
campaign-smoke:
	$(PYTHON) -m repro.experiments report --quick --jobs 1 --no-cache \
	    --backend $(BACKEND) \
	    --out REPORT-campaign-jobs1.md --stats-out campaign-stats-jobs1.json \
	    --metrics-out campaign-metrics-jobs1.prom --events-out campaign-events-jobs1.jsonl
	$(PYTHON) -m repro.experiments report --quick --jobs 2 --no-cache \
	    --backend $(BACKEND) \
	    --out REPORT-campaign-jobs2.md --stats-out campaign-stats-jobs2.json \
	    --metrics-out campaign-metrics-jobs2.prom --events-out campaign-events-jobs2.jsonl
	$(PYTHON) -c "import json; a, b = (json.load(open(p)) for p in \
	    ('campaign-stats-jobs1.json', 'campaign-stats-jobs2.json')); \
	    assert a['stats'] == b['stats'] and a['trace'] == b['trace'], \
	    'jobs=1 vs jobs=2 stats diverged'; \
	    assert a['spans'] == b['spans'], 'jobs=1 vs jobs=2 span trees diverged'; \
	    print('campaign-smoke: jobs-invariant')"
	PYTHONPATH=src $(PYTHON) -c "from repro.campaign.events import read_events, canonical_events; \
	    import json; a, b = (canonical_events(read_events(p)) for p in \
	    ('campaign-events-jobs1.jsonl', 'campaign-events-jobs2.jsonl')); \
	    assert a == b, 'jobs=1 vs jobs=2 canonical event streams diverged'; \
	    print('campaign-smoke: canonical events jobs-invariant')"
	$(PYTHON) -m repro.tools.campaign_top campaign-events-jobs2.jsonl

# Matrix smoke (docs/matrix.md): the (attack x defense x channel) grid at
# quick scale — jobs=1 vs jobs=4 and scalar vs batched must produce
# byte-identical result JSON (the campaign determinism contract applied
# to the matrix experiment), and every leakage/overhead check must pass.
# CI uploads the rendered grid report.
matrix-smoke:
	$(PYTHON) -m repro.experiments matrix --quick --jobs 1 --no-cache \
	    --backend scalar --json matrix-jobs1-scalar.json > REPORT-matrix.md
	@cat REPORT-matrix.md
	$(PYTHON) -m repro.experiments matrix --quick --jobs 4 --no-cache \
	    --backend scalar --json matrix-jobs4-scalar.json
	$(PYTHON) -m repro.experiments matrix --quick --jobs 4 --no-cache \
	    --backend batched --json matrix-jobs4-batched.json
	$(PYTHON) -c "import json; ref, *rest = [json.load(open(p)) for p in \
	    ('matrix-jobs1-scalar.json', 'matrix-jobs4-scalar.json', \
	     'matrix-jobs4-batched.json')]; \
	    assert all(r == ref for r in rest), \
	    'matrix grid diverged across jobs counts / backends'; \
	    print('matrix-smoke: jobs- and backend-invariant')"

# SpectreRewind smoke (docs/channels.md): the divider-contention channel
# per defense at quick scale — jobs=1 vs jobs=4 and scalar vs batched
# must produce byte-identical result JSON, and every divider-delta check
# must pass (leak under CleanupSpec/SafeSpec, covered by CacheSquash).
rewind-smoke:
	$(PYTHON) -m repro.experiments ext_rewind --quick --jobs 1 --no-cache \
	    --backend scalar --json rewind-jobs1-scalar.json > REPORT-rewind.md
	@cat REPORT-rewind.md
	$(PYTHON) -m repro.experiments ext_rewind --quick --jobs 4 --no-cache \
	    --backend scalar --json rewind-jobs4-scalar.json
	$(PYTHON) -m repro.experiments ext_rewind --quick --jobs 4 --no-cache \
	    --backend batched --json rewind-jobs4-batched.json
	$(PYTHON) -c "import json; ref, *rest = [json.load(open(p)) for p in \
	    ('rewind-jobs1-scalar.json', 'rewind-jobs4-scalar.json', \
	     'rewind-jobs4-batched.json')]; \
	    assert all(r == ref for r in rest), \
	    'rewind results diverged across jobs counts / backends'; \
	    print('rewind-smoke: jobs- and backend-invariant')"

# Two-context interference smoke (docs/channels.md): the shared-port
# channel per defense — the harness pins scalar cores internally, so the
# backend flag exercises the demotion contract rather than two code
# paths; byte-identity across jobs and backends is still asserted.
interference-smoke:
	$(PYTHON) -m repro.experiments ext_interference --quick --jobs 1 --no-cache \
	    --backend scalar --json interference-jobs1-scalar.json > REPORT-interference.md
	@cat REPORT-interference.md
	$(PYTHON) -m repro.experiments ext_interference --quick --jobs 4 --no-cache \
	    --backend scalar --json interference-jobs4-scalar.json
	$(PYTHON) -m repro.experiments ext_interference --quick --jobs 4 --no-cache \
	    --backend batched --json interference-jobs4-batched.json
	$(PYTHON) -c "import json; ref, *rest = [json.load(open(p)) for p in \
	    ('interference-jobs1-scalar.json', 'interference-jobs4-scalar.json', \
	     'interference-jobs4-batched.json')]; \
	    assert all(r == ref for r in rest), \
	    'interference results diverged across jobs counts / backends'; \
	    print('interference-smoke: jobs- and backend-invariant')"

# Synthesis smoke (docs/static-analysis.md "Gadget synthesis"): the
# generate -> explorer-filter -> simulator-confirm pipeline at quick
# scale — jobs=1 vs jobs=4 and scalar vs batched must produce
# byte-identical result JSON, and every discovery/agreement check must
# pass (>= 3 distinct confirmed gadgets beyond the hand-written pair).
# CI uploads the rendered report.
synth-smoke:
	PYTHONPATH=src $(PYTHON) -m repro.experiments synth --quick --jobs 1 --no-cache \
	    --backend scalar --json synth-jobs1-scalar.json > REPORT-synth.md
	@cat REPORT-synth.md
	PYTHONPATH=src $(PYTHON) -m repro.experiments synth --quick --jobs 4 --no-cache \
	    --backend scalar --json synth-jobs4-scalar.json
	PYTHONPATH=src $(PYTHON) -m repro.experiments synth --quick --jobs 4 --no-cache \
	    --backend batched --json synth-jobs4-batched.json
	$(PYTHON) -c "import json; ref, *rest = [json.load(open(p)) for p in \
	    ('synth-jobs1-scalar.json', 'synth-jobs4-scalar.json', \
	     'synth-jobs4-batched.json')]; \
	    assert all(r == ref for r in rest), \
	    'synth results diverged across jobs counts / backends'; \
	    print('synth-smoke: jobs- and backend-invariant')"

# Live dashboard over an --events-out stream (EVENTS=path to override).
EVENTS ?= campaign-events.jsonl
campaign-top:
	$(PYTHON) -m repro.tools.campaign_top $(EVENTS) --follow

# Fault-injection smoke (docs/campaign.md "Failure model"): force every
# fig9 shard down, then assert the campaign still finishes, exits
# non-zero, marks exactly fig9 FAILED with a traceback section, and no
# other experiment's row regressed.
campaign-fault-smoke:
	@REPRO_FAULT_INJECT='fig9:*:*:AssertionError' \
	    $(PYTHON) -m repro.experiments report --quick --jobs 4 --no-cache \
	    --retries 0 --out REPORT-faults.md; \
	    status=$$?; \
	    if [ $$status -eq 0 ]; then echo 'FAIL: expected non-zero exit'; exit 1; fi; \
	    echo "campaign-fault-smoke: exit code $$status (non-zero, as required)"
	@$(PYTHON) -c "import sys; \
	    text = open('REPORT-faults.md').read(); \
	    rows = [l for l in text.splitlines() if l.startswith('| \`')]; \
	    failed = [l for l in rows if 'FAILED' in l]; \
	    assert len(failed) == 1 and 'fig9' in failed[0], failed; \
	    assert '<details>' in text and 'AssertionError' in text, 'no traceback section'; \
	    bad = [l for l in rows if 'FAIL' in l and 'fig9' not in l]; \
	    assert not bad, 'other experiments regressed: %r' % bad; \
	    print('campaign-fault-smoke: FAILED row isolated to fig9, others pass')"

stats:
	$(PYTHON) -m repro.experiments fig3 --quick --stats-out stats.json
	$(PYTHON) -m repro.obs stats.json --profile

# Repo lint: the AST determinism checker (always), then ruff if it is
# installed (CI installs it; locally it is optional).
lint:
	PYTHONPATH=src $(PYTHON) -m repro.tools.lint_determinism src/repro
	PYTHONPATH=src $(PYTHON) -m repro.tools.lint_determinism --only DET007 tests
	@if command -v ruff >/dev/null 2>&1; then \
	    ruff check .; \
	else \
	    echo "ruff not installed; skipping style lint (CI runs it)"; \
	fi

# Static-analyzer smoke: the gadget/workload/fig3 cross-validation suite
# (every gadget flagged, every safe workload clean, static cache-delta
# sign agrees with the dynamic timing delta), plus one example lint of
# the paper's gadget via the main CLI alias.
specct-smoke:
	PYTHONPATH=src $(PYTHON) -m repro.analysis.specct --crossval --quick
	PYTHONPATH=src $(PYTHON) -m repro.experiments lint-program gadget:round --n-loads 2; \
	    status=$$?; \
	    if [ $$status -ne 1 ]; then \
	        echo "FAIL: expected exit 1 (findings) for the gadget, got $$status"; exit 1; \
	    fi; \
	    echo "specct-smoke: gadget flagged (exit 1), cross-validation passed"

# Line-coverage floor over the execution backends (src/repro/cpu) and the
# decoded-program tables (src/repro/isa/decoded.py); uses coverage.py when
# installed, else a stdlib tracer. Writes COVERAGE.json (CI artifact).
coverage:
	PYTHONPATH=src $(PYTHON) -m repro.tools.coverage_gate --out COVERAGE.json

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/asm_victim.py
	$(PYTHON) examples/spectre_vs_cleanupspec.py
	$(PYTHON) examples/eviction_set_construction.py
	$(PYTHON) examples/timeline_visualizer.py
	$(PYTHON) examples/covert_channel_demo.py
	$(PYTHON) examples/mitigation_tradeoff.py

clean:
	rm -rf .pytest_cache .hypothesis build dist *.egg-info REPORT.md REPORT-faults.md
	rm -f REPORT-campaign-jobs*.md campaign-stats-jobs*.json \
	    campaign-metrics-jobs*.prom campaign-metrics-jobs*.prom.folded \
	    campaign-events-jobs*.jsonl REPORT-matrix.md matrix-jobs*.json \
	    REPORT-synth.md synth-jobs*.json REPORT-rewind.md rewind-jobs*.json \
	    REPORT-interference.md interference-jobs*.json
	find . -name __pycache__ -type d -exec rm -rf {} +
