# Convenience targets for the unXpec reproduction.

PYTHON ?= python

.PHONY: install test bench experiments report quick-report campaign-smoke stats examples clean

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

experiments:
	$(PYTHON) -m repro.experiments all

report:
	$(PYTHON) -m repro.experiments report --out REPORT.md

quick-report:
	$(PYTHON) -m repro.experiments report --quick --out REPORT.md

# Campaign engine smoke: the full quick report on 1 and 2 workers, no
# cache, then assert the merged stats + trace sections are bit-identical
# (the docs/campaign.md determinism contract). CI uploads the artifacts.
campaign-smoke:
	$(PYTHON) -m repro.experiments report --quick --jobs 1 --no-cache \
	    --out REPORT-campaign-jobs1.md --stats-out campaign-stats-jobs1.json
	$(PYTHON) -m repro.experiments report --quick --jobs 2 --no-cache \
	    --out REPORT-campaign-jobs2.md --stats-out campaign-stats-jobs2.json
	$(PYTHON) -c "import json; a, b = (json.load(open(p)) for p in \
	    ('campaign-stats-jobs1.json', 'campaign-stats-jobs2.json')); \
	    assert a['stats'] == b['stats'] and a['trace'] == b['trace'], \
	    'jobs=1 vs jobs=2 stats diverged'; print('campaign-smoke: jobs-invariant')"

stats:
	$(PYTHON) -m repro.experiments fig3 --quick --stats-out stats.json
	$(PYTHON) -m repro.obs stats.json --profile

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/asm_victim.py
	$(PYTHON) examples/spectre_vs_cleanupspec.py
	$(PYTHON) examples/eviction_set_construction.py
	$(PYTHON) examples/timeline_visualizer.py
	$(PYTHON) examples/covert_channel_demo.py
	$(PYTHON) examples/mitigation_tradeoff.py

clean:
	rm -rf .pytest_cache .hypothesis build dist *.egg-info REPORT.md
	find . -name __pycache__ -type d -exec rm -rf {} +
