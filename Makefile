# Convenience targets for the unXpec reproduction.

PYTHON ?= python

.PHONY: install test bench experiments report quick-report stats examples clean

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

experiments:
	$(PYTHON) -m repro.experiments all

report:
	$(PYTHON) -m repro.experiments report --out REPORT.md

quick-report:
	$(PYTHON) -m repro.experiments report --quick --out REPORT.md

stats:
	$(PYTHON) -m repro.experiments fig3 --quick --stats-out stats.json
	$(PYTHON) -m repro.obs stats.json --profile

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/asm_victim.py
	$(PYTHON) examples/spectre_vs_cleanupspec.py
	$(PYTHON) examples/eviction_set_construction.py
	$(PYTHON) examples/timeline_visualizer.py
	$(PYTHON) examples/covert_channel_demo.py
	$(PYTHON) examples/mitigation_tradeoff.py

clean:
	rm -rf .pytest_cache .hypothesis build dist *.egg-info REPORT.md
	find . -name __pycache__ -type d -exec rm -rf {} +
