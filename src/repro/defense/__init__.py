"""Speculation-squash defenses: unsafe baseline, CleanupSpec, mitigations.

Importing this package populates the defense registry
(:func:`~repro.defense.base.defense_keys` /
:func:`~repro.defense.base.make_defense`): every defense module registers
a factory plus a :class:`~repro.defense.base.DefenseCapabilities`
descriptor at import time. The (attack x defense x channel) matrix
iterates the registry instead of hard-coding schemes.
"""

from .base import (
    Defense,
    DefenseCapabilities,
    SquashContext,
    SquashOutcome,
    defense_capabilities,
    defense_keys,
    make_defense,
    register_defense,
)
from .cleanup_timing import CleanupMode, CleanupTimingModel
from .cleanupspec import CleanupSpec
from .delay_on_miss import DelayOnMiss
from .constant_time import ConstantTimeRollback
from .fuzzy import FuzzyCleanup
from .unsafe import UnsafeBaseline
from .safespec import SafeSpec
from .cachesquash import CacheSquash

__all__ = [
    "Defense",
    "DefenseCapabilities",
    "SquashContext",
    "SquashOutcome",
    "CleanupMode",
    "CleanupTimingModel",
    "CleanupSpec",
    "DelayOnMiss",
    "ConstantTimeRollback",
    "FuzzyCleanup",
    "UnsafeBaseline",
    "SafeSpec",
    "CacheSquash",
    "defense_capabilities",
    "defense_keys",
    "make_defense",
    "register_defense",
]
