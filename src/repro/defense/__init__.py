"""Speculation-squash defenses: unsafe baseline, CleanupSpec, mitigations."""

from .base import Defense, SquashContext, SquashOutcome
from .cleanup_timing import CleanupMode, CleanupTimingModel
from .cleanupspec import CleanupSpec
from .delay_on_miss import DelayOnMiss
from .constant_time import ConstantTimeRollback
from .fuzzy import FuzzyCleanup
from .unsafe import UnsafeBaseline

__all__ = [
    "Defense",
    "SquashContext",
    "SquashOutcome",
    "CleanupMode",
    "CleanupTimingModel",
    "CleanupSpec",
    "DelayOnMiss",
    "ConstantTimeRollback",
    "FuzzyCleanup",
    "UnsafeBaseline",
]
