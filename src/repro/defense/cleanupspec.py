"""CleanupSpec: Undo-based safe speculation (Saileshwar & Qureshi, MICRO'19).

On squash, roll the cache back to its pre-window state:

* **T3** — clean in-flight mis-speculated loads out of the MSHR;
* **T4** — wait until older, correct-path in-flight loads retire (avoiding
  recursive squash during cleanup);
* **T5** — *invalidate* every line the transient loads installed (in L1,
  and also in L2 under ``CLEANUP_FOR_L1L2``), then *restore* the original
  L1 lines those installs evicted, servicing restores from L2.

The rollback is functional — the hierarchy really ends up in the
pre-speculation state for L1 (up to the L2/replacement side effects the
paper also concedes) — and its duration comes from
:class:`~repro.defense.cleanup_timing.CleanupTimingModel`. The core stalls
for the whole duration; that stall is the unXpec timing channel.
"""

from __future__ import annotations

from typing import Optional

from ..cache.hierarchy import CacheHierarchy
from .base import (
    Defense,
    DefenseCapabilities,
    SquashContext,
    SquashOutcome,
    register_defense,
)
from .cleanup_timing import CleanupMode, CleanupTimingModel


class CleanupSpec(Defense):
    """Undo defense with invalidation + restoration rollback."""

    batch_replay_safe = True
    replay_counter_attrs = Defense.replay_counter_attrs + (
        "total_invalidations_l1",
        "total_invalidations_l2",
        "total_restorations",
    )

    def __init__(
        self,
        hierarchy: CacheHierarchy,
        mode: CleanupMode = CleanupMode.CLEANUP_FOR_L1L2,
        timing: Optional[CleanupTimingModel] = None,
    ) -> None:
        super().__init__(hierarchy)
        self.mode = mode
        self.timing = timing or CleanupTimingModel()
        self.name = f"CleanupSpec[{mode.value}]"
        # Cumulative rollback statistics for reports.
        self.total_invalidations_l1 = 0
        self.total_invalidations_l2 = 0
        self.total_restorations = 0
        if self.obs is not None:
            self._register_extra_stats(self.obs.registry)

    def _register_extra_stats(self, registry) -> None:
        registry.gauge(
            "defense.cleanup.invalidations_l1",
            "transient L1 lines invalidated by rollback (T5)",
        ).add_source(lambda: self.total_invalidations_l1)
        registry.gauge(
            "defense.cleanup.invalidations_l2",
            "transient L2 lines invalidated by rollback (T5)",
        ).add_source(lambda: self.total_invalidations_l2)
        registry.gauge(
            "defense.cleanup.restores",
            "evicted L1 victims restored by rollback (T5)",
        ).add_source(lambda: self.total_restorations)

    def handle_squash(self, ctx: SquashContext) -> SquashOutcome:
        delta = ctx.delta

        # ---- T3: clean in-flight mis-speculated loads from the MSHR ----
        cleaned = self.hierarchy.mshr.clean_speculative(ctx.resolve_cycle)
        n_inflight = max(ctx.inflight_transient, len(cleaned))
        t3 = self.timing.mshr_clean_cycles(n_inflight)

        # ---- T4: wait for in-flight correct-path loads to retire ----
        # The retirement wait only matters when there is rollback work to
        # order against (no cleanup -> nothing can recursively squash), so a
        # squash with an empty speculative delta pays no T4. This is why the
        # attack must both create a delta (secret=1) and fence away older
        # loads (zeroing T4) to get a clean T5-only measurement.
        t4 = 0
        if not delta.is_empty:
            t4 = max(0, ctx.older_mem_complete - (ctx.resolve_cycle + t3))

        # ---- T5: invalidation ----
        inval_l1 = 0
        inval_l2 = 0
        seen_l1 = set()
        seen_l2 = set()
        for install in delta.installs:
            if install.level == "L1" and install.line_addr not in seen_l1:
                seen_l1.add(install.line_addr)
                if self.hierarchy.rollback_invalidate("L1", install.line_addr):
                    inval_l1 += 1
            elif install.level == "L2" and install.line_addr not in seen_l2:
                seen_l2.add(install.line_addr)
                if self.mode is CleanupMode.CLEANUP_FOR_L1L2:
                    if self.hierarchy.rollback_invalidate("L2", install.line_addr):
                        inval_l2 += 1
                else:
                    # L1-only mode leaves the L2 copy; clear its mark so it
                    # behaves as an ordinary line afterwards.
                    line = self.hierarchy.l2.get_line(install.line_addr)
                    if line is not None and line.speculative:
                        line.commit()

        # ---- T5: restoration (L1 only; see paper §II-B) ----
        restored = 0
        for eviction in delta.evictions_at("L1"):
            if self.hierarchy.rollback_restore(eviction):
                restored += 1

        t5 = self.timing.rollback_cycles(
            inval_l1,
            inval_l2 if self.mode is CleanupMode.CLEANUP_FOR_L1L2 else 0,
            restored,
        )

        self.total_invalidations_l1 += inval_l1
        self.total_invalidations_l2 += inval_l2
        self.total_restorations += restored

        return SquashOutcome(
            defense=self.name,
            stall_cycles=t3 + t4 + t5,
            breakdown={
                "t3_mshr_clean": t3,
                "t4_inflight_wait": t4,
                "t5_rollback": t5,
            },
            invalidated_l1=inval_l1,
            invalidated_l2=inval_l2,
            restored_l1=restored,
        )


register_defense(
    "cleanupspec",
    lambda hierarchy: CleanupSpec(hierarchy),
    # The undo family closes the footprint (flush) channel; the rollback
    # duration itself stays secret-dependent — exactly the unXpec channel.
    DefenseCapabilities(family="undo", replay_safe=True, closes_channels=("flush",)),
)
