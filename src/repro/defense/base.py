"""Defense interface: what happens when a speculation window squashes.

The core hands every mis-speculation to the attached defense as a
:class:`SquashContext` describing the transient window's cache-state delta
and MSHR situation. The defense (a) mutates the hierarchy to enact its
policy (roll back, commit, …) and (b) returns a :class:`SquashOutcome`
whose ``stall_cycles`` the core adds before fetch resumes — this stall is
precisely the secret-dependent quantity unXpec measures.

The stages mirror the CleanupSpec timeline of paper Fig. 1:

* **T3** ``mshr_clean`` — cancel in-flight mis-speculated loads,
* **T4** ``inflight_wait`` — wait for in-flight correct-path loads,
* **T5** ``rollback`` — invalidation + restoration.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, Optional, Tuple

from ..common.errors import ConfigError
from ..obs import Observability

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from ..cache.hierarchy import CacheHierarchy
    from ..cache.spec_tracker import EpochDelta


@dataclass(frozen=True)
class SquashContext:
    """Everything a defense may inspect at squash time."""

    #: Cycle at which the mis-speculation was detected and younger
    #: instructions identified for squash (paper's T2, plus the pipeline's
    #: squash-identification delay).
    resolve_cycle: int
    #: Speculative cache-state changes of the squashed window.
    delta: "EpochDelta"
    #: Transient loads still in flight at resolve (MSHR-clean targets, T3).
    inflight_transient: int
    #: Latest completion cycle among older (correct-path) memory ops; the
    #: basis of the T4 wait. A fence before the window pins this <= resolve.
    older_mem_complete: int
    #: Wrong-path misses serviced into shadow structures (only non-zero
    #: when the defense sets ``shadow_speculative_fills``); the squashed
    #: window's shadow state to discard.
    shadow_fills: int = 0
    #: Of those, fills still in flight at the squash point — the requests a
    #: cancellation-based defense (CacheSquash) must squash.
    shadow_inflight: int = 0


@dataclass
class SquashOutcome:
    """What the defense did and how long the core must stall."""

    defense: str
    #: Extra stall, beyond the baseline mispredict penalty, before fetch
    #: resumes (the unXpec-observable quantity).
    stall_cycles: int
    #: Per-stage breakdown, e.g. {"t3_mshr_clean": 2, "t4_inflight_wait": 0,
    #: "t5_rollback": 22, "dummy": 0, "padding": 0}.
    breakdown: Dict[str, int] = field(default_factory=dict)
    #: Lines actually invalidated, per level.
    invalidated_l1: int = 0
    invalidated_l2: int = 0
    #: L1 victims actually restored.
    restored_l1: int = 0

    def stage(self, name: str) -> int:
        return self.breakdown.get(name, 0)


class Defense(abc.ABC):
    """A speculation-squash policy attached to a hierarchy."""

    #: Human-readable scheme name used in reports.
    name: str = "defense"

    #: Undo-family defenses let transient loads install cache lines (and
    #: roll them back on squash). Invisible-family defenses set this False:
    #: the core then never installs wrong-path fills.
    allows_speculative_install: bool = True

    #: Invisible-family "delay-on-miss": a load that misses the L1 while an
    #: older branch is unresolved is deferred until the branch resolves.
    delay_speculative_misses: bool = False

    #: Shadow-structure defenses (SafeSpec, CacheSquash): a wrong-path miss
    #: completes from a shadow L1/MSHR fill (value forwarded at the real
    #: latency) without installing into the real hierarchy; the squash
    #: context reports the window's shadow-fill counts. Only meaningful
    #: together with ``allows_speculative_install = False``.
    shadow_speculative_fills: bool = False

    #: The batched backend may memoize and replay rounds only when the
    #: defense's squash handling is a pure deterministic function of the
    #: hierarchy state (no internal RNG, no wall clock). Defaults to False:
    #: an unknown defense forces the always-correct scalar path; the
    #: deterministic in-tree defenses opt in explicitly.
    batch_replay_safe: bool = False

    #: Integer attributes the batched backend snapshots before/after a
    #: recorded round and re-applies (as deltas) on replay. Subclasses with
    #: their own counters extend this tuple; wrapped inner defenses are
    #: walked via their ``inner`` attribute.
    replay_counter_attrs: "tuple" = ("squash_count", "total_stall")

    def __init__(self, hierarchy: "CacheHierarchy") -> None:
        self.hierarchy = hierarchy
        self.squash_count = 0
        self.total_stall = 0
        self.obs: Optional[Observability] = None
        attached = getattr(hierarchy, "obs", None)
        if attached is not None:
            self.obs = attached
            self._register_base_stats(attached.registry)

    # -- observability ------------------------------------------------------

    def attach_obs(self, obs: Optional[Observability]) -> None:
        """Report through ``obs`` (idempotent once attached)."""
        if obs is None or self.obs is not None:
            return
        self.obs = obs
        self._register_base_stats(obs.registry)
        self._register_extra_stats(obs.registry)

    def _register_base_stats(self, registry) -> None:
        registry.gauge("defense.squashes", "squashes handled by the defense").add_source(
            lambda: self.squash_count
        )
        registry.gauge(
            "defense.stall_cycles", "cumulative post-squash stall"
        ).add_source(lambda: self.total_stall)

    def _register_extra_stats(self, registry) -> None:
        """Hook for subclass-specific stats; called once obs is known.

        Subclasses whose counters exist only after their own ``__init__``
        ran must register here (and call it themselves when the hierarchy
        already carries an obs at construction time).
        """

    @abc.abstractmethod
    def handle_squash(self, ctx: SquashContext) -> SquashOutcome:
        """Enact the policy on ``self.hierarchy``; return timing/outcome."""

    def on_squash(self, ctx: SquashContext) -> SquashOutcome:
        """Template wrapper: delegates to :meth:`handle_squash` and counts."""
        outcome = self.handle_squash(ctx)
        self.squash_count += 1
        self.total_stall += outcome.stall_cycles
        obs = self.obs
        if obs is not None:
            reg = obs.registry
            reg.distribution(
                "defense.stall", "per-squash defense stall (the unXpec observable)"
            ).add(outcome.stall_cycles)
            for stage, cycles in outcome.breakdown.items():
                reg.distribution(
                    f"defense.stage.{stage}", "per-squash stage duration"
                ).add(cycles)
        return outcome


# ----------------------------------------------------------------------
# defense registry + capability descriptors
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class DefenseCapabilities:
    """What a defense claims about itself, machine-checkable.

    The (attack x defense x channel) matrix validates the
    ``closes_channels`` claims empirically: a channel a defense claims to
    close must show no leak in any matrix cell that pairs them.
    """

    #: Scheme family: "none", "undo" (rollback), "invisible" (delay),
    #: "shadow" (shadow structures), "cancel" (cancellable requests).
    family: str
    #: True when the batched backend may memoize/replay rounds under this
    #: defense (mirrors :attr:`Defense.batch_replay_safe`).
    replay_safe: bool
    #: Channel keys (see :mod:`repro.attack.channel`) the scheme claims to
    #: close, e.g. ("flush",) for undo schemes, ("flush", "rollback") for
    #: shadow-structure schemes.
    closes_channels: Tuple[str, ...] = ()
    #: Microarchitectural structures the scheme shadows/duplicates.
    shadowed_structures: Tuple[str, ...] = ()


#: key -> (factory, capabilities). Populated by each defense module at
#: import time; ``repro.defense`` imports them all, so importing the
#: package fills the registry.
_DEFENSE_REGISTRY: Dict[str, Tuple[Callable[..., "Defense"], DefenseCapabilities]] = {}


def register_defense(
    key: str,
    factory: Callable[..., "Defense"],
    capabilities: DefenseCapabilities,
) -> None:
    """Register ``factory`` (hierarchy -> Defense) under ``key``."""
    if key in _DEFENSE_REGISTRY:
        raise ConfigError(f"defense {key!r} already registered")
    _DEFENSE_REGISTRY[key] = (factory, capabilities)


def defense_keys() -> Tuple[str, ...]:
    """Registered defense keys, sorted for deterministic iteration."""
    return tuple(sorted(_DEFENSE_REGISTRY))


def make_defense(key: str, hierarchy: "CacheHierarchy") -> "Defense":
    """Instantiate the registered defense ``key`` on ``hierarchy``."""
    try:
        factory, _ = _DEFENSE_REGISTRY[key]
    except KeyError:
        raise ConfigError(
            f"unknown defense {key!r}; registered: {', '.join(defense_keys())}"
        ) from None
    return factory(hierarchy)


def defense_capabilities(key: str) -> DefenseCapabilities:
    """Capability descriptor of the registered defense ``key``."""
    try:
        _, caps = _DEFENSE_REGISTRY[key]
    except KeyError:
        raise ConfigError(
            f"unknown defense {key!r}; registered: {', '.join(defense_keys())}"
        ) from None
    return caps
