"""Cycle-cost model of CleanupSpec's rollback pipeline.

CleanupSpec stalls the core while it (a) cleans mis-speculated loads out of
the MSHR (T3), (b) waits for in-flight correct-path loads (T4), and
(c) invalidates transiently installed lines and restores evicted L1 lines
(T5). This module prices those stages.

The T5 model is a two-port pipeline:

* L1 invalidations occupy the L1 tag port — ``l1_invalidate_latency`` for
  the first line, then one per cycle;
* L2 invalidations (only in ``CLEANUP_FOR_L1L2`` mode) are address-only
  messages issued ``l2_invalidate_issue_width`` per cycle behind the first
  L1 invalidation, each landing after ``l2_invalidate_latency``;
* restorations move whole lines up from L2, so they occupy the L2 data port
  for ``restore_interval`` cycles each and are serialised behind the
  invalidation stream, the first completing ``restore_first_latency`` after
  invalidations finish.

Calibration targets (defaults reproduce the paper):

=========================  =======  ======================
scenario                    cycles   paper reference
=========================  =======  ======================
1 inval, 0 restore             22    Fig. 3 (left end)
8 inval, 0 restore             26    Fig. 3 (right end, ~25)
1 inval, 1 restore             32    Fig. 6 (left end)
8 inval, 8 restore             64    Fig. 6 (right end, ~64)
=========================  =======  ======================
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass


class CleanupMode(enum.Enum):
    """Which levels the rollback touches (artifact's scheme_cleanupcache)."""

    CLEANUP_FOR_L1 = "Cleanup_FOR_L1"
    CLEANUP_FOR_L1L2 = "Cleanup_FOR_L1L2"


@dataclass(frozen=True)
class CleanupTimingModel:
    """Parametrised rollback costs; defaults calibrated to the paper."""

    l1_invalidate_latency: int = 4
    l1_invalidate_interval: int = 1
    l2_invalidate_latency: int = 18
    l2_invalidate_issue_width: int = 2
    restore_first_latency: int = 10
    restore_interval: int = 4
    mshr_clean_per_entry: int = 2

    def __post_init__(self) -> None:
        for name in (
            "l1_invalidate_latency",
            "l1_invalidate_interval",
            "l2_invalidate_latency",
            "restore_first_latency",
            "restore_interval",
            "mshr_clean_per_entry",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if self.l2_invalidate_issue_width < 1:
            raise ValueError("l2_invalidate_issue_width must be >= 1")

    # -- stage costs ------------------------------------------------------------

    def mshr_clean_cycles(self, inflight_transient: int) -> int:
        """T3: cancelling in-flight mis-speculated loads in the MSHR."""
        return self.mshr_clean_per_entry * max(0, inflight_transient)

    def invalidation_cycles(self, n_l1: int, n_l2: int) -> int:
        """Completion time of the invalidation streams (overlapped)."""
        if n_l1 <= 0 and n_l2 <= 0:
            return 0
        l1_done = 0
        if n_l1 > 0:
            l1_done = self.l1_invalidate_latency + (n_l1 - 1) * self.l1_invalidate_interval
        l2_done = 0
        if n_l2 > 0:
            issue_tail = math.ceil((n_l2 - 1) / self.l2_invalidate_issue_width)
            l2_done = self.l1_invalidate_latency + self.l2_invalidate_latency + issue_tail
        return max(l1_done, l2_done)

    def restoration_cycles(self, n_restore: int) -> int:
        """Extra time for the restoration stream (serialised after invals)."""
        if n_restore <= 0:
            return 0
        return self.restore_first_latency + (n_restore - 1) * self.restore_interval

    def rollback_cycles(self, n_l1_inval: int, n_l2_inval: int, n_restore: int) -> int:
        """T5 total: invalidations then restorations."""
        return self.invalidation_cycles(n_l1_inval, n_l2_inval) + self.restoration_cycles(
            n_restore
        )
