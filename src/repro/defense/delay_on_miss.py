"""Delay-on-miss: an Invisible-family defense (Sakalis et al., ISCA'19).

The paper's background (§II-B) contrasts Undo defenses with *Invisible*
ones, which forbid speculative cache-state changes altogether. Delay-on-
miss is the efficient representative: speculative loads that **hit** the L1
proceed (a hit changes no state the attacker can see under the companion
policies), while speculative loads that **miss** are *deferred* until the
controlling branch resolves — so a transient miss never touches the cache.

Consequences reproduced here:

* classic Spectre dies (no transient install at all);
* unXpec dies too — there is no rollback and thus no rollback timing;
* the cost moves to the **common case**: every correctly-speculated miss
  waits for branch resolution first, the slowdown the paper quotes at ~11%
  (with value prediction) to 17% (InvisiSpec) for Invisible schemes —
  exactly why CleanupSpec's Undo approach looked attractive before unXpec;
* it remains vulnerable to the speculative interference attack [2], which
  is out of scope here (it needs an MSHR/execution-port contention model
  between SMT threads).

Mechanically, the core consults :attr:`Defense.delay_speculative_misses`
(defer misses issued under an unresolved branch) and
:attr:`Defense.allows_speculative_install` (wrong-path fills never install).
On squash there is nothing to roll back.
"""

from __future__ import annotations

from .base import (
    Defense,
    DefenseCapabilities,
    SquashContext,
    SquashOutcome,
    register_defense,
)


class DelayOnMiss(Defense):
    """Invisible-family baseline: defer speculative L1 misses."""

    name = "DelayOnMiss"
    allows_speculative_install = False
    delay_speculative_misses = True
    batch_replay_safe = True

    def handle_squash(self, ctx: SquashContext) -> SquashOutcome:
        # Nothing was installed speculatively, so there is nothing to undo;
        # deferred misses simply die with the squash.
        assert ctx.delta.is_empty or all(
            i.level == "NONE" for i in ctx.delta.installs
        ), "invisible scheme must not see speculative installs"
        return SquashOutcome(
            defense=self.name,
            stall_cycles=0,
            breakdown={"t3_mshr_clean": 0, "t4_inflight_wait": 0, "t5_rollback": 0},
        )


register_defense(
    "delay_on_miss",
    lambda hierarchy: DelayOnMiss(hierarchy),
    DefenseCapabilities(
        family="invisible", replay_safe=True, closes_channels=("flush", "rollback")
    ),
)
