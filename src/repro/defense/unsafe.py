"""Unsafe baseline: conventional speculation, no cache rollback.

On a squash the transiently installed lines simply *stay* in the cache
(their speculative marks are cleared — architecturally they are now ordinary
lines). This is the machine Spectre attacks: the probe stage finds the
secret-dependent line hot. It is also Figure 12's normalisation baseline.
"""

from __future__ import annotations

from .base import (
    Defense,
    DefenseCapabilities,
    SquashContext,
    SquashOutcome,
    register_defense,
)


class UnsafeBaseline(Defense):
    """No protection: squashes cost nothing beyond the pipeline penalty."""

    name = "UnsafeBaseline"
    batch_replay_safe = True

    def handle_squash(self, ctx: SquashContext) -> SquashOutcome:
        # The transient lines become permanent; clear their speculative
        # marking so later accesses (and coherence) treat them normally.
        epoch = ctx.delta.epoch
        self.hierarchy.l1.commit_epoch(epoch)
        self.hierarchy.l2.commit_epoch(epoch)
        return SquashOutcome(
            defense=self.name,
            stall_cycles=0,
            breakdown={"t3_mshr_clean": 0, "t4_inflight_wait": 0, "t5_rollback": 0},
        )


register_defense(
    "unsafe",
    lambda hierarchy: UnsafeBaseline(hierarchy),
    DefenseCapabilities(family="none", replay_safe=True),
)
