"""CacheSquash-style cancellable memory requests (ElAtali & Asokan).

CacheSquash attacks the root cause CleanupSpec leaves standing: the squash
itself does secret-dependent work. Speculative misses issue *cancellable*
memory requests; when the wrong path is squashed, requests still in flight
are squashed with it — cancellation messages chase the fills down the
hierarchy — and completed speculative fills are dropped before they become
visible. Crucially, the squash-visible cost is *coalesced*: cancellations
are batched, so the post-squash delay is quantized into buckets of
``coalesce_width`` requests rather than scaling per-request, hiding the
footprint size the unXpec receiver would otherwise read off the stall.

Security consequences reproduced here:

* classic Spectre's flush-based probe dies — no speculative fill ever
  lands in the real cache;
* unXpec's rollback-timing probe is closed down to bucket granularity —
  any two secrets whose in-flight counts land in the same coalescing
  bucket (in particular the common 0-vs-0 and 1-vs-1 cases, and every
  count up to ``coalesce_width``) produce identical squash timing.

Modelling notes: like :class:`~repro.defense.safespec.SafeSpec`, the core
serves wrong-path misses without touching the real hierarchy
(:attr:`Defense.shadow_speculative_fills` — the fill buffer is the
cancellable request), and the squash context reports how many of the
window's requests were still in flight at the squash point; only those
need cancellation messages.
"""

from __future__ import annotations

from ..cache.hierarchy import CacheHierarchy
from ..common.errors import ConfigError
from .base import (
    Defense,
    DefenseCapabilities,
    SquashContext,
    SquashOutcome,
    register_defense,
)

#: Cycles one batch of coalesced cancellations adds to the squash.
DEFAULT_CANCEL_QUANTUM = 16
#: In-flight requests cancelled per batch.
DEFAULT_COALESCE_WIDTH = 8


class CacheSquash(Defense):
    """Cancellable-request defense with coalesced cancellation timing."""

    allows_speculative_install = False
    shadow_speculative_fills = True
    batch_replay_safe = True
    replay_counter_attrs = Defense.replay_counter_attrs + (
        "total_cancelled",
        "total_cancel_stall",
    )

    def __init__(
        self,
        hierarchy: CacheHierarchy,
        cancel_quantum: int = DEFAULT_CANCEL_QUANTUM,
        coalesce_width: int = DEFAULT_COALESCE_WIDTH,
    ) -> None:
        super().__init__(hierarchy)
        if cancel_quantum < 0:
            raise ConfigError("cancel_quantum must be non-negative")
        if coalesce_width < 1:
            raise ConfigError("coalesce_width must be at least 1")
        self.cancel_quantum = cancel_quantum
        self.coalesce_width = coalesce_width
        self.name = f"CacheSquash[q={cancel_quantum},w={coalesce_width}]"
        #: In-flight speculative requests cancelled by squashes, cumulative.
        self.total_cancelled = 0
        #: Cumulative coalesced cancellation stall.
        self.total_cancel_stall = 0
        if self.obs is not None:
            self._register_extra_stats(self.obs.registry)

    def _register_extra_stats(self, registry) -> None:
        registry.gauge(
            "defense.cachesquash.cancelled",
            "in-flight speculative requests cancelled on squash",
        ).add_source(lambda: self.total_cancelled)
        registry.gauge(
            "defense.cachesquash.cancel_stall",
            "cumulative coalesced cancellation stall",
        ).add_source(lambda: self.total_cancel_stall)

    def handle_squash(self, ctx: SquashContext) -> SquashOutcome:
        # No real-hierarchy installs: completed speculative fills are
        # dropped from the request buffer for free; only requests still in
        # flight need cancellation messages, charged per coalesced batch.
        # Every squash walks the cancellable-request buffer, so even an
        # empty walk pays one quantum — otherwise 0-vs-1 in-flight (an L1
        # hit vs a miss, exactly the unXpec secret) would separate by a
        # full quantum and re-open the channel the coalescing closes.
        assert ctx.delta.is_empty, (
            "cancellable-request scheme must not see real speculative installs"
        )
        n = ctx.shadow_inflight
        batches = max(1, -(-n // self.coalesce_width))
        cancel = batches * self.cancel_quantum
        self.total_cancelled += n
        self.total_cancel_stall += cancel
        return SquashOutcome(
            defense=self.name,
            stall_cycles=cancel,
            breakdown={
                "t3_mshr_clean": 0,
                "t4_inflight_wait": 0,
                "t5_rollback": 0,
                "cancel": cancel,
            },
        )


register_defense(
    "cachesquash",
    lambda hierarchy: CacheSquash(hierarchy),
    DefenseCapabilities(
        family="cancel",
        replay_safe=True,
        closes_channels=("flush", "rollback"),
        shadowed_structures=("MSHR",),
    ),
)
