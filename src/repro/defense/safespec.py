"""SafeSpec-style shadow structures (Khasawneh et al., DAC'19).

Instead of letting transient loads install into the real cache (Undo) or
deferring them past branch resolution (Invisible delay-on-miss), SafeSpec
gives speculative fills their own *shadow* structures — shadow L1 entries
and shadow MSHRs sized for the speculation window. A wrong-path miss is
serviced into the shadow structure at its real latency, so the transient
program makes full progress; the fill only moves into the real hierarchy
when the branch resolves *correctly*. On a squash the shadow entries are
simply dropped.

Security consequences reproduced here:

* classic Spectre's flush-based probe dies — the transient footprint never
  reaches the real cache, so there is nothing to reload;
* unXpec's rollback-timing probe dies too — discarding shadow entries is a
  bulk-invalidate off the critical path, so the post-squash stall is zero
  and, unlike CleanupSpec, *independent of the transient footprint*.

Modelling notes: the core consults :attr:`Defense.shadow_speculative_fills`
— wrong-path misses complete (value forwarded at the probed latency)
without touching the real hierarchy, MSHR, or speculation tracker, and the
squash context carries the window's shadow-fill counts. Correct-path
speculation is charged nothing for the shadow-to-real movement at commit
(the paper's leakage-free transfer happens in parallel with retirement),
so the scheme's overhead in this model comes only from losing wrong-path
prefetch effects.
"""

from __future__ import annotations

from ..cache.hierarchy import CacheHierarchy
from .base import (
    Defense,
    DefenseCapabilities,
    SquashContext,
    SquashOutcome,
    register_defense,
)


class SafeSpec(Defense):
    """Shadow-structure defense: transient fills never become visible."""

    name = "SafeSpec"
    allows_speculative_install = False
    shadow_speculative_fills = True
    batch_replay_safe = True
    replay_counter_attrs = Defense.replay_counter_attrs + (
        "total_shadow_fills",
        "total_shadow_discards",
    )

    def __init__(self, hierarchy: CacheHierarchy) -> None:
        super().__init__(hierarchy)
        #: Wrong-path misses serviced by shadow structures, cumulative.
        self.total_shadow_fills = 0
        #: Shadow entries discarded by squashes (= fills of squashed
        #: windows; correct-path windows commit instead).
        self.total_shadow_discards = 0
        if self.obs is not None:
            self._register_extra_stats(self.obs.registry)

    def _register_extra_stats(self, registry) -> None:
        registry.gauge(
            "defense.safespec.shadow_fills",
            "wrong-path misses serviced by shadow structures",
        ).add_source(lambda: self.total_shadow_fills)
        registry.gauge(
            "defense.safespec.shadow_discards",
            "shadow entries dropped on squash",
        ).add_source(lambda: self.total_shadow_discards)

    def handle_squash(self, ctx: SquashContext) -> SquashOutcome:
        # Nothing ever installed into the real hierarchy; dropping the
        # shadow entries is a bulk clear off the critical path.
        assert ctx.delta.is_empty, (
            "shadow-structure scheme must not see real speculative installs"
        )
        self.total_shadow_fills += ctx.shadow_fills
        self.total_shadow_discards += ctx.shadow_fills
        return SquashOutcome(
            defense=self.name,
            stall_cycles=0,
            breakdown={
                "t3_mshr_clean": 0,
                "t4_inflight_wait": 0,
                "t5_rollback": 0,
                "shadow_discard": 0,
            },
        )


register_defense(
    "safespec",
    lambda hierarchy: SafeSpec(hierarchy),
    DefenseCapabilities(
        family="shadow",
        replay_safe=True,
        closes_channels=("flush", "rollback"),
        shadowed_structures=("L1", "MSHR"),
    ),
)
