"""Fuzzy (dummy-operation) cleanup — the paper's future-work defense.

Paper §VII sketches a lighter countermeasure: instead of enforcing the
*longest* rollback time on every squash (constant-time), inject **random
dummy cleanup operations / delays** so the observed rollback time no longer
cleanly encodes the secret, at a much lower average cost.

We implement it as CleanupSpec plus a uniformly random dummy stall in
``[0, max_dummy_cycles]`` drawn per squash from a seeded generator. The
extension experiment (`ext_fuzzy`) measures both sides of the trade-off:
attack accuracy degradation vs average added stall.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..cache.hierarchy import CacheHierarchy
from ..common.rng import derive_rng
from .base import (
    Defense,
    DefenseCapabilities,
    SquashContext,
    SquashOutcome,
    register_defense,
)
from .cleanup_timing import CleanupMode, CleanupTimingModel
from .cleanupspec import CleanupSpec


class FuzzyCleanup(Defense):
    """CleanupSpec with random dummy cleanup delay."""

    def __init__(
        self,
        hierarchy: CacheHierarchy,
        max_dummy_cycles: int,
        mode: CleanupMode = CleanupMode.CLEANUP_FOR_L1L2,
        timing: Optional[CleanupTimingModel] = None,
        seed: int = 0,
    ) -> None:
        super().__init__(hierarchy)
        if max_dummy_cycles < 0:
            raise ValueError("max_dummy_cycles must be non-negative")
        self.max_dummy_cycles = max_dummy_cycles
        self.inner = CleanupSpec(hierarchy, mode=mode, timing=timing)
        self._rng: np.random.Generator = derive_rng(seed, "fuzzy-cleanup")
        self.name = f"FuzzyCleanup[<= {max_dummy_cycles}cyc]"
        self.total_dummy = 0
        if self.obs is not None:
            self._register_extra_stats(self.obs.registry)

    def _register_extra_stats(self, registry) -> None:
        registry.gauge(
            "defense.fuzzy.dummy_cycles", "cumulative random dummy-cleanup stall"
        ).add_source(lambda: self.total_dummy)

    def handle_squash(self, ctx: SquashContext) -> SquashOutcome:
        inner = self.inner.handle_squash(ctx)
        dummy = (
            int(self._rng.integers(self.max_dummy_cycles + 1))
            if self.max_dummy_cycles
            else 0
        )
        self.total_dummy += dummy
        breakdown = dict(inner.breakdown)
        breakdown["dummy"] = dummy
        return SquashOutcome(
            defense=self.name,
            stall_cycles=inner.stall_cycles + dummy,
            breakdown=breakdown,
            invalidated_l1=inner.invalidated_l1,
            invalidated_l2=inner.invalidated_l2,
            restored_l1=inner.restored_l1,
        )


register_defense(
    "fuzzy",
    lambda hierarchy: FuzzyCleanup(hierarchy, max_dummy_cycles=32),
    # The per-squash RNG draw makes rounds non-replayable (the batched
    # backend falls back to scalar) and only *blurs* the rollback channel.
    DefenseCapabilities(family="undo", replay_safe=False, closes_channels=("flush",)),
)
