"""Constant-time rollback: the paper's intuitive unXpec countermeasure.

Wraps :class:`CleanupSpec` and pads *every* squash so the rollback stage
lasts at least ``constant_cycles``. The paper evaluates the **relaxed**
strategy (§VI-E): rollbacks that genuinely need more time than the constant
are allowed to run long (keeping CleanupSpec's security effect complete),
so the scheme still leaks for very large transient footprints but hides the
common-case difference — at the Figure 12 overhead cost, since >95% of
squashes need no cleanup at all yet now stall ``constant_cycles``.

A **strict** variant (cap the rollback at the constant, leaving residual
transient state when the budget is too small) is also provided because the
paper discusses — and rejects — it; tests show it leaves exploitable state.
"""

from __future__ import annotations

from typing import Optional

from ..cache.hierarchy import CacheHierarchy
from .base import (
    Defense,
    DefenseCapabilities,
    SquashContext,
    SquashOutcome,
    register_defense,
)
from .cleanup_timing import CleanupMode, CleanupTimingModel
from .cleanupspec import CleanupSpec


class ConstantTimeRollback(Defense):
    """Relaxed constant-time rollback around CleanupSpec."""

    batch_replay_safe = True

    def __init__(
        self,
        hierarchy: CacheHierarchy,
        constant_cycles: int,
        mode: CleanupMode = CleanupMode.CLEANUP_FOR_L1L2,
        timing: Optional[CleanupTimingModel] = None,
        strict: bool = False,
    ) -> None:
        super().__init__(hierarchy)
        if constant_cycles < 0:
            raise ValueError("constant_cycles must be non-negative")
        self.constant_cycles = constant_cycles
        self.strict = strict
        self.inner = CleanupSpec(hierarchy, mode=mode, timing=timing)
        flavor = "strict" if strict else "relaxed"
        self.name = f"ConstantTime[{constant_cycles}cyc,{flavor}]"

    def handle_squash(self, ctx: SquashContext) -> SquashOutcome:
        inner = self.inner.handle_squash(ctx)
        t3 = inner.stage("t3_mshr_clean")
        t4 = inner.stage("t4_inflight_wait")
        t5 = inner.stage("t5_rollback")
        if self.strict:
            # Strict: never exceed the constant. (The rollback *work* has
            # already been done functionally by the inner defense; a strict
            # hardware scheme would abort it — modelled separately by the
            # residual-state analysis in tests/experiments.)
            padded_t5 = self.constant_cycles
        else:
            padded_t5 = max(self.constant_cycles, t5)
        padding = padded_t5 - t5 if padded_t5 > t5 else 0
        return SquashOutcome(
            defense=self.name,
            stall_cycles=t3 + t4 + padded_t5,
            breakdown={
                "t3_mshr_clean": t3,
                "t4_inflight_wait": t4,
                "t5_rollback": t5,
                "padding": padding,
            },
            invalidated_l1=inner.invalidated_l1,
            invalidated_l2=inner.invalidated_l2,
            restored_l1=inner.restored_l1,
        )


register_defense(
    "constant_time",
    lambda hierarchy: ConstantTimeRollback(hierarchy, constant_cycles=40),
    # Relaxed padding hides the common-case rollback difference but runs
    # long for large footprints, so only the flush channel is *claimed*.
    DefenseCapabilities(family="undo", replay_safe=True, closes_channels=("flush",)),
)
