"""Synthesise an ISA program from a :class:`WorkloadProfile`.

The generator emits a straight-line instruction stream (plus short forward
branches) whose rates match the profile:

* each slot is a branch, load, store or ALU op per the profile mix;
* a *taken* branch skips a short shadow of 2..6 instructions. Against
  fresh weakly-not-taken counters, taken branches are the mispredicting
  ones, so ``taken_fraction`` sets the misprediction density directly;
* branch conditions optionally depend on a recent load's destination
  (``load_dep_fraction``), widening the speculation window so wrong-path
  loads really complete and install — the <5% of squashes that give
  CleanupSpec genuine rollback work;
* load addresses come from hot/warm/cold regions matching the profile's
  L1/L2/DRAM service mix.

Branch *outcomes* are fixed at generation time through an immediate
compared against a zero register, so a given (profile, seed) pair always
produces the same program and the same squash set — the property Fig. 12
needs to compare defenses on identical executions.
"""

from __future__ import annotations

from dataclasses import dataclass
from ..common.errors import ConfigError
from ..common.rng import derive_rng
from ..isa.builder import ProgramBuilder
from ..isa.program import Program
from .patterns import ColdRegion, HotRegion, WarmRegion
from .profiles import WorkloadProfile

#: Register conventions of generated programs.
_ZERO = "r1"  # holds 0 throughout
_COND = "r2"  # branch-outcome immediate
_ADDR = "r3"  # load/store address staging
_LDEP = "r4"  # destination of loads feeding load-dependent branches
_VALUE_REGS = [f"r{i}" for i in range(8, 24)]  # rotating data registers


@dataclass(frozen=True)
class SynthesisReport:
    """What the generator actually emitted (for tests and calibration)."""

    instructions: int
    branches: int
    taken_branches: int
    load_dep_branches: int
    loads: int
    stores: int


def synthesize(
    profile: WorkloadProfile,
    instructions: int = 20_000,
    seed: int = 0,
) -> "SynthesizedWorkload":
    """Generate a program of roughly ``instructions`` slots from ``profile``."""
    if instructions < 100:
        raise ConfigError("synthetic workloads need at least 100 instructions")
    rng = derive_rng(seed, f"synth-{profile.name}")
    hot = HotRegion()
    warm = WarmRegion()
    cold = ColdRegion()

    b = ProgramBuilder(f"synth-{profile.name}")
    b.li(_ZERO, 0)
    branches = taken = load_dep = loads = stores = 0
    value_idx = 0
    skip_id = 0

    def pick_addr() -> int:
        roll = rng.random()
        if roll < profile.l1_frac:
            return hot.pick(rng)
        if roll < profile.l1_frac + profile.l2_frac:
            return warm.pick(rng)
        return cold.pick(rng)

    def next_value_reg() -> str:
        nonlocal value_idx
        reg = _VALUE_REGS[value_idx % len(_VALUE_REGS)]
        value_idx += 1
        return reg

    while b.here < instructions:
        roll = rng.random()
        if roll < profile.branch_fraction:
            branches += 1
            is_taken = rng.random() < profile.taken_fraction
            shadow = int(rng.integers(2, 7))
            label = f"skip_{skip_id}"
            skip_id += 1
            use_load_dep = rng.random() < profile.load_dep_fraction
            if use_load_dep:
                load_dep += 1
                loads += 1
                # A fresh load feeds the condition, so the branch cannot
                # resolve before the load returns (wide speculation window).
                # Loaded values are 0 (the backing store is zero-filled), so
                # 'eq' against zero is taken and 'ne' is not taken — the
                # outcome stays generation-time controlled.
                b.li(_ADDR, pick_addr())
                b.load(_LDEP, _ADDR, 0)
                cond = "eq" if is_taken else "ne"
                b.branch(cond, _LDEP, _ZERO, label)
            else:
                b.li(_COND, 0 if is_taken else 1)
                b.branch("eq", _COND, _ZERO, label)
            if is_taken:
                taken += 1
            # Branch shadow: mostly loads/ALU — what transient windows see.
            for _ in range(shadow):
                if rng.random() < 0.5:
                    loads += 1
                    b.li(_ADDR, pick_addr())
                    b.load(next_value_reg(), _ADDR, 0)
                else:
                    reg = next_value_reg()
                    b.addi(reg, _VALUE_REGS[(value_idx + 3) % len(_VALUE_REGS)], 1)
            b.label(label)
        elif roll < profile.branch_fraction + profile.load_fraction:
            loads += 1
            b.li(_ADDR, pick_addr())
            b.load(next_value_reg(), _ADDR, 0)
        elif roll < profile.branch_fraction + profile.load_fraction + profile.store_fraction:
            stores += 1
            b.li(_ADDR, pick_addr())
            # Stores write zero so the memory image stays zero-filled and
            # load-dependent branch outcomes remain generation-controlled.
            b.store(_ZERO, _ADDR, 0)
        else:
            reg = next_value_reg()
            b.addi(reg, _VALUE_REGS[(value_idx + 5) % len(_VALUE_REGS)], 1)

    b.halt()
    program = b.build()
    report = SynthesisReport(
        instructions=len(program),
        branches=branches,
        taken_branches=taken,
        load_dep_branches=load_dep,
        loads=loads,
        stores=stores,
    )
    return SynthesizedWorkload(profile=profile, program=program, report=report)


@dataclass(frozen=True)
class SynthesizedWorkload:
    """A generated program together with its emission statistics."""

    profile: WorkloadProfile
    program: Program
    report: SynthesisReport


def safe_programs(instructions: int = 400, seed: int = 0):
    """One synthesized program per SPEC-like profile.

    These are the *secret-free* corpus of the specct cross-validation
    harness: their loads and stores only touch the hot/warm/cold workload
    regions, so the analyzer must report zero findings on every one.
    """
    from .profiles import SPEC2017_PROFILES

    return [
        (profile.name, synthesize(profile, instructions=instructions, seed=seed).program)
        for profile in SPEC2017_PROFILES
    ]
