"""Address-stream generators for synthetic workloads.

The synthetic SPEC-like programs pick per-load addresses from three regions —
hot (L1-resident), warm (fits L2 but thrashes L1) and cold (never reused) —
which directly controls the L1/L2/DRAM service mix. The generators here
produce the streams; :mod:`repro.workloads.synth` turns them into programs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..common.config import LINE_SIZE
from ..common.errors import ConfigError


@dataclass
class HotRegion:
    """A small set of lines that stays L1-resident after first touch."""

    base: int = 0x100000
    lines: int = 48

    def __post_init__(self) -> None:
        if self.lines < 1:
            raise ConfigError("hot region needs at least one line")

    def pick(self, rng: np.random.Generator) -> int:
        return self.base + int(rng.integers(self.lines)) * LINE_SIZE


@dataclass
class WarmRegion:
    """A region larger than L1 but within L2: L1 misses, L2 hits.

    With the paper's 32 KB / 512-line L1D, a 4096-line (256 KB) region
    touched uniformly at random misses L1 most of the time while staying
    entirely inside the 2 MB L2.
    """

    base: int = 0x800000
    lines: int = 4096

    def __post_init__(self) -> None:
        if self.lines < 1:
            raise ConfigError("warm region needs at least one line")

    def pick(self, rng: np.random.Generator) -> int:
        return self.base + int(rng.integers(self.lines)) * LINE_SIZE


@dataclass
class ColdRegion:
    """A cursor over never-revisited lines: every access misses to DRAM."""

    base: int = 0x10000000
    _cursor: int = 0

    def pick(self, rng: np.random.Generator) -> int:  # rng kept for symmetry
        addr = self.base + self._cursor * LINE_SIZE
        self._cursor += 1
        return addr


def strided_stream(base: int, stride: int, count: int) -> List[int]:
    """Classic streaming pattern (lbm-like): ``base + i*stride``."""
    if stride <= 0 or count < 0:
        raise ConfigError("stride must be positive, count non-negative")
    return [base + i * stride for i in range(count)]


def pointer_chase_stream(
    base: int, lines: int, count: int, rng: np.random.Generator
) -> List[int]:
    """A random permutation walk over ``lines`` lines (mcf-like chasing)."""
    if lines < 1:
        raise ConfigError("need at least one line to chase")
    perm = rng.permutation(lines)
    out = []
    idx = 0
    for _ in range(count):
        out.append(base + int(perm[idx]) * LINE_SIZE)
        idx = (idx + 1) % lines
    return out
