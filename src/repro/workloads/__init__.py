"""Synthetic SPEC-CPU-2017-like workloads (the Fig. 12 substrate)."""

from .patterns import ColdRegion, HotRegion, WarmRegion, pointer_chase_stream, strided_stream
from .profiles import PROFILES_BY_NAME, SPEC2017_PROFILES, WorkloadProfile, get_profile
from .synth import SynthesisReport, SynthesizedWorkload, safe_programs, synthesize

__all__ = [
    "HotRegion",
    "WarmRegion",
    "ColdRegion",
    "strided_stream",
    "pointer_chase_stream",
    "WorkloadProfile",
    "SPEC2017_PROFILES",
    "PROFILES_BY_NAME",
    "get_profile",
    "synthesize",
    "safe_programs",
    "SynthesizedWorkload",
    "SynthesisReport",
]
