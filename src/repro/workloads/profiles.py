"""SPEC CPU 2017-like workload profiles.

Figure 12 evaluates constant-time rollback on the SPEC CPU 2017 suite,
which is license-protected (the paper's own artifact ships without it).
We substitute synthetic instruction streams whose *rate parameters* —
branch density, misprediction density, memory-service mix — approximate
the published characteristics of twelve SPECrate 2017 benchmarks. The
overhead Figure 12 reports is governed by exactly these rates (every
squash pays ``max(const, rollback)``), so matching them preserves the
figure's shape; absolute IPC does not enter the normalised ratio.

Rates are loosely based on published characterisations of SPEC CPU 2017
(branch MPKI and cache behaviour vary by an order of magnitude across the
suite): ``mcf``/``omnetpp``/``xalancbmk`` are memory- and
mispredict-heavy, ``deepsjeng``/``leela``/``exchange2`` are branchy with
hard-to-predict branches, ``lbm``/``imagick``/``nab`` are regular FP codes
with few mispredictions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..common.errors import ConfigError


@dataclass(frozen=True)
class WorkloadProfile:
    """Rate parameters of one synthetic benchmark."""

    name: str
    #: Fraction of instructions that are conditional branches.
    branch_fraction: float
    #: Fraction of branches that are *taken* — in a straight-line synthetic
    #: stream with fresh (weakly-not-taken) counters these are the branches
    #: that mispredict, so this directly sets the misprediction density.
    taken_fraction: float
    #: Fraction of branches whose condition depends on a recent load
    #: (slow to resolve -> wide speculation windows -> real cleanup work).
    load_dep_fraction: float
    #: Fraction of instructions that are loads / stores.
    load_fraction: float
    store_fraction: float
    #: Memory-service mix of the loads (must sum to 1).
    l1_frac: float
    l2_frac: float
    mem_frac: float

    def __post_init__(self) -> None:
        for attr in (
            "branch_fraction",
            "taken_fraction",
            "load_dep_fraction",
            "load_fraction",
            "store_fraction",
            "l1_frac",
            "l2_frac",
            "mem_frac",
        ):
            value = getattr(self, attr)
            if not 0.0 <= value <= 1.0:
                raise ConfigError(f"{self.name}: {attr} must be in [0, 1], got {value}")
        if self.branch_fraction + self.load_fraction + self.store_fraction > 0.9:
            raise ConfigError(f"{self.name}: instruction mix leaves no room for ALU ops")
        mix = self.l1_frac + self.l2_frac + self.mem_frac
        if abs(mix - 1.0) > 1e-9:
            raise ConfigError(f"{self.name}: memory mix sums to {mix}, expected 1")


#: Twelve SPECrate-2017-like profiles (order follows the paper's Fig. 12).
SPEC2017_PROFILES: List[WorkloadProfile] = [
    WorkloadProfile("perlbench_r", 0.16, 0.096, 0.30, 0.28, 0.10, 0.94, 0.05, 0.01),
    WorkloadProfile("gcc_r", 0.18, 0.114, 0.30, 0.26, 0.10, 0.91, 0.07, 0.02),
    WorkloadProfile("mcf_r", 0.14, 0.189, 0.55, 0.30, 0.06, 0.70, 0.16, 0.14),
    WorkloadProfile("omnetpp_r", 0.15, 0.156, 0.45, 0.30, 0.10, 0.80, 0.13, 0.07),
    WorkloadProfile("xalancbmk_r", 0.17, 0.147, 0.40, 0.28, 0.08, 0.85, 0.11, 0.04),
    WorkloadProfile("x264_r", 0.08, 0.054, 0.20, 0.32, 0.12, 0.95, 0.04, 0.01),
    WorkloadProfile("deepsjeng_r", 0.16, 0.198, 0.35, 0.26, 0.08, 0.93, 0.05, 0.02),
    WorkloadProfile("leela_r", 0.15, 0.210, 0.35, 0.26, 0.06, 0.94, 0.05, 0.01),
    WorkloadProfile("exchange2_r", 0.20, 0.168, 0.20, 0.22, 0.10, 0.97, 0.025, 0.005),
    WorkloadProfile("xz_r", 0.12, 0.126, 0.40, 0.28, 0.10, 0.86, 0.09, 0.05),
    WorkloadProfile("lbm_r", 0.04, 0.021, 0.10, 0.34, 0.16, 0.72, 0.13, 0.15),
    WorkloadProfile("imagick_r", 0.06, 0.030, 0.10, 0.30, 0.12, 0.96, 0.03, 0.01),
]

PROFILES_BY_NAME: Dict[str, WorkloadProfile] = {p.name: p for p in SPEC2017_PROFILES}


def get_profile(name: str) -> WorkloadProfile:
    try:
        return PROFILES_BY_NAME[name]
    except KeyError as exc:
        raise ConfigError(
            f"unknown profile {name!r}; available: {sorted(PROFILES_BY_NAME)}"
        ) from exc
