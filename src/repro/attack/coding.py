"""Error-correcting coding for the covert channel.

The paper suppresses noise by taking more samples per bit (§VI-D). Coding
theory does the same job cheaper: a Hamming(7,4) code corrects any single
bit error per 7-bit block, so at the paper's ~8-13% single-sample error
rates it delivers messages with far less redundancy than N-sample majority
voting (1.75x vs 5-9x). The extension experiments and the covert-channel
example use it to compare the two strategies.

Implementation: the classic (7,4) code with parity bits at positions
1, 2, 4 (1-indexed). Encoding places data bits d1..d4 at positions
3, 5, 6, 7; decoding computes the syndrome, flips the indicated position,
and extracts the data bits. Two errors in a block decode incorrectly —
the usual Hamming trade-off, visible in the tests.
"""

from __future__ import annotations

from typing import List, Sequence

from ..common.errors import AttackError

BLOCK_DATA_BITS = 4
BLOCK_CODE_BITS = 7

#: 1-indexed positions of data bits inside a codeword.
_DATA_POSITIONS = (3, 5, 6, 7)
_PARITY_POSITIONS = (1, 2, 4)


def _parity(codeword: Sequence[int], parity_pos: int) -> int:
    """Even parity over the positions whose index has bit `parity_pos` set."""
    total = 0
    for pos in range(1, BLOCK_CODE_BITS + 1):
        if pos & parity_pos and pos != parity_pos:
            total ^= codeword[pos - 1]
    return total


def encode_block(data: Sequence[int]) -> List[int]:
    """Encode 4 data bits into a 7-bit Hamming codeword."""
    if len(data) != BLOCK_DATA_BITS:
        raise AttackError(f"block needs {BLOCK_DATA_BITS} bits, got {len(data)}")
    code = [0] * BLOCK_CODE_BITS
    for bit, pos in zip(data, _DATA_POSITIONS):
        code[pos - 1] = bit & 1
    for pos in _PARITY_POSITIONS:
        code[pos - 1] = _parity(code, pos)
    return code


def decode_block(code: Sequence[int]) -> "tuple[List[int], int]":
    """Decode one codeword; returns ``(data_bits, corrected_position)``.

    ``corrected_position`` is 0 when the block was clean, else the
    1-indexed position that was flipped.
    """
    if len(code) != BLOCK_CODE_BITS:
        raise AttackError(f"codeword needs {BLOCK_CODE_BITS} bits, got {len(code)}")
    word = [b & 1 for b in code]
    syndrome = 0
    for pos in _PARITY_POSITIONS:
        if _parity(word, pos) != word[pos - 1]:
            syndrome |= pos
    if syndrome:
        word[syndrome - 1] ^= 1
    return [word[pos - 1] for pos in _DATA_POSITIONS], syndrome


def encode_bits(bits: Sequence[int]) -> List[int]:
    """Encode a bitstring (zero-padded to a multiple of 4)."""
    padded = list(bits) + [0] * (-len(bits) % BLOCK_DATA_BITS)
    out: List[int] = []
    for i in range(0, len(padded), BLOCK_DATA_BITS):
        out.extend(encode_block(padded[i : i + BLOCK_DATA_BITS]))
    return out


def decode_bits(code_bits: Sequence[int], data_length: int) -> "tuple[List[int], int]":
    """Decode a stream of codewords; returns ``(data_bits, corrections)``."""
    if len(code_bits) % BLOCK_CODE_BITS:
        raise AttackError(
            f"{len(code_bits)} coded bits do not divide into {BLOCK_CODE_BITS}-bit blocks"
        )
    data: List[int] = []
    corrections = 0
    for i in range(0, len(code_bits), BLOCK_CODE_BITS):
        block, fixed = decode_block(code_bits[i : i + BLOCK_CODE_BITS])
        data.extend(block)
        corrections += int(fixed != 0)
    if data_length > len(data):
        raise AttackError(f"stream holds {len(data)} bits, wanted {data_length}")
    return data[:data_length], corrections


def code_rate() -> float:
    """Data bits per coded bit (4/7 for Hamming(7,4))."""
    return BLOCK_DATA_BITS / BLOCK_CODE_BITS


def expansion_factor() -> float:
    """Coded bits per data bit (1.75 for Hamming(7,4))."""
    return BLOCK_CODE_BITS / BLOCK_DATA_BITS
