"""Covert-channel decoding.

The receiver turns latency samples into secret bits with a threshold
(paper §VI-A picks 178 / 183 cycles by inspecting the calibration
distributions): a sample above the threshold decodes as 1 — the rollback
was long, so the transient loads must have modified cache state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..common.errors import CalibrationError


@dataclass(frozen=True)
class ThresholdDecoder:
    """Single-threshold bit decoder."""

    threshold: float

    def decode(self, latency: float) -> int:
        """One sample -> one bit (above threshold = 1)."""
        return 1 if latency > self.threshold else 0

    def decode_majority(self, samples: Sequence[float]) -> int:
        """Multiple samples of the same bit -> majority vote.

        The paper's noise-robustness argument (§VI-D): more samples per
        secret suppress noise. Ties decode by the mean.
        """
        if not samples:
            raise CalibrationError("cannot decode an empty sample set")
        ones = sum(self.decode(s) for s in samples)
        zeros = len(samples) - ones
        if ones != zeros:
            return 1 if ones > zeros else 0
        mean = sum(samples) / len(samples)
        return self.decode(mean)

    def decode_stream(self, samples: Sequence[float], samples_per_bit: int = 1) -> List[int]:
        """Decode a flat sample stream into bits."""
        if samples_per_bit < 1:
            raise CalibrationError("samples_per_bit must be >= 1")
        if len(samples) % samples_per_bit:
            raise CalibrationError(
                f"{len(samples)} samples do not divide into groups of {samples_per_bit}"
            )
        return [
            self.decode_majority(samples[i : i + samples_per_bit])
            for i in range(0, len(samples), samples_per_bit)
        ]
