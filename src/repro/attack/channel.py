"""Covert-channel decoding and channel objects for the scenario matrix.

Two layers:

* :class:`ThresholdDecoder` — the paper's receiver: latency samples to
  secret bits with a single threshold (§VI-A picks 178 / 183 cycles by
  inspecting the calibration distributions); a sample above the
  threshold decodes as 1 — the rollback was long, so the transient loads
  must have modified cache state.
* :class:`Channel` — a *selectable observation channel* for the
  (attack x defense x channel) matrix: given per-trial observations
  (:class:`TrialObservation`), each channel renders a leak/no-leak
  :class:`ChannelVerdict` its own way.  :class:`RollbackTimingChannel`
  is unXpec's undo-duration side channel (secret-dependent squash
  timing); :class:`FlushReloadChannel` is the classic Spectre cache
  footprint probe (which line of the probe array became resident);
  :class:`ContentionTimingChannel` is the non-cache execution-resource
  channel (SpectreRewind divider contention / two-context interference —
  see ``docs/channels.md``).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..common.errors import CalibrationError, ConfigError


@dataclass(frozen=True)
class ThresholdDecoder:
    """Single-threshold bit decoder."""

    threshold: float

    def decode(self, latency: float) -> int:
        """One sample -> one bit (above threshold = 1)."""
        return 1 if latency > self.threshold else 0

    def decode_majority(self, samples: Sequence[float]) -> int:
        """Multiple samples of the same bit -> majority vote.

        The paper's noise-robustness argument (§VI-D): more samples per
        secret suppress noise. Ties decode by the mean.
        """
        if not samples:
            raise CalibrationError("cannot decode an empty sample set")
        ones = sum(self.decode(s) for s in samples)
        zeros = len(samples) - ones
        if ones != zeros:
            return 1 if ones > zeros else 0
        mean = sum(samples) / len(samples)
        return self.decode(mean)

    def decode_stream(self, samples: Sequence[float], samples_per_bit: int = 1) -> List[int]:
        """Decode a flat sample stream into bits."""
        if samples_per_bit < 1:
            raise CalibrationError("samples_per_bit must be >= 1")
        if len(samples) % samples_per_bit:
            raise CalibrationError(
                f"{len(samples)} samples do not divide into groups of {samples_per_bit}"
            )
        return [
            self.decode_majority(samples[i : i + samples_per_bit])
            for i in range(0, len(samples), samples_per_bit)
        ]


# ----------------------------------------------------------------------
# Matrix channels


@dataclass(frozen=True)
class TrialObservation:
    """What one attack trial exposes to every channel at once.

    ``secret`` is the ground-truth value transmitted this trial;
    ``timing`` is the squash-visible duration the victim's rollback (or
    cancellation) took; ``footprint_guess`` is the secret value the
    attacker recovers by probing cache residency after the trial (None
    when the probe saw nothing usable); ``contention_timing`` is the
    latency of a *committed* non-cache measurement — a pre-transient
    division queueing on the shared divider (SpectreRewind) or a second
    context's probe loads queueing on the shared L2/memory port
    (interference) — None for attacks that take no such measurement.
    """

    secret: int
    timing: float
    footprint_guess: Optional[int] = None
    contention_timing: Optional[float] = None


@dataclass(frozen=True)
class ChannelVerdict:
    """One channel's read of a trial set under one (attack, defense)."""

    channel: str
    leaks: bool
    #: Channel-specific leak strength (cycles of timing gap, or probe
    #: accuracy above chance) — 0.0 when the channel is closed.
    signal: float
    #: Fraction of trials whose secret the channel decoded correctly.
    accuracy: float


class Channel(ABC):
    """A way of observing the victim; selectable per matrix cell."""

    #: Registry/matrix key (also what DefenseCapabilities.closes_channels
    #: names).
    key: str = ""
    name: str = ""

    @abstractmethod
    def verdict(self, observations: Sequence[TrialObservation]) -> ChannelVerdict:
        """Decode the trials; decide whether the secret is recoverable."""


def _split_by_secret(
    observations: Sequence[TrialObservation],
) -> Tuple[Tuple[int, ...], dict]:
    groups: dict = {}
    for obs in observations:
        groups.setdefault(obs.secret, []).append(obs)
    return tuple(sorted(groups)), groups


class RollbackTimingChannel(Channel):
    """unXpec's channel: the *duration* of undo-based cleanup.

    The secret leaks when trials carrying different secrets form
    separable timing populations: a midpoint threshold between the two
    group means must decode at least ``min_accuracy`` of the trials, and
    the means must differ by at least ``min_gap_cycles`` (so quantized /
    constant-time defenses whose residual jitter is sub-threshold count
    as closed).
    """

    key = "rollback"
    name = "rollback-timing"

    def __init__(self, min_gap_cycles: float = 4.0, min_accuracy: float = 0.75) -> None:
        if min_gap_cycles < 0:
            raise ConfigError("min_gap_cycles must be non-negative")
        if not 0.5 < min_accuracy <= 1.0:
            raise ConfigError("min_accuracy must be in (0.5, 1.0]")
        self.min_gap_cycles = min_gap_cycles
        self.min_accuracy = min_accuracy

    def verdict(self, observations: Sequence[TrialObservation]) -> ChannelVerdict:
        if not observations:
            raise CalibrationError("cannot judge an empty trial set")
        secrets, groups = _split_by_secret(observations)
        if len(secrets) < 2:
            raise CalibrationError(
                "rollback channel needs trials for at least two secrets"
            )
        means = {s: sum(o.timing for o in groups[s]) / len(groups[s]) for s in secrets}
        low, high = min(means.values()), max(means.values())
        gap = high - low
        decoder = ThresholdDecoder(threshold=(low + high) / 2.0)
        # Decode each trial as "nearest group mean" via the midpoint
        # threshold; accuracy is against the ground-truth secret.
        slow_secret = max(secrets, key=lambda s: means[s])
        correct = sum(
            1
            for obs in observations
            if (obs.secret == slow_secret) == bool(decoder.decode(obs.timing))
        )
        accuracy = correct / len(observations)
        leaks = gap >= self.min_gap_cycles and accuracy >= self.min_accuracy
        return ChannelVerdict(
            channel=self.key,
            leaks=leaks,
            signal=gap if leaks else 0.0,
            accuracy=accuracy,
        )


class FlushReloadChannel(Channel):
    """Spectre's channel: which probe-array line became cache-resident.

    The secret leaks when the attacker's post-trial footprint probe
    recovers the transmitted value in at least ``min_accuracy`` of the
    trials.  Defenses that never install (or discard) speculative fills
    leave no footprint, so the guess is absent or uncorrelated.
    """

    key = "flush"
    name = "flush-reload"

    def __init__(self, min_accuracy: float = 0.75) -> None:
        if not 0.5 < min_accuracy <= 1.0:
            raise ConfigError("min_accuracy must be in (0.5, 1.0]")
        self.min_accuracy = min_accuracy

    def verdict(self, observations: Sequence[TrialObservation]) -> ChannelVerdict:
        if not observations:
            raise CalibrationError("cannot judge an empty trial set")
        correct = sum(
            1 for obs in observations if obs.footprint_guess == obs.secret
        )
        accuracy = correct / len(observations)
        leaks = accuracy >= self.min_accuracy
        return ChannelVerdict(
            channel=self.key,
            leaks=leaks,
            signal=max(0.0, accuracy - 0.5) if leaks else 0.0,
            accuracy=accuracy,
        )


class ContentionTimingChannel(Channel):
    """Execution-resource contention: timing of *committed* work.

    SpectreRewind / interference-attack channel — the observation is the
    latency of committed (or second-context) instructions queueing behind
    transient occupancy of a shared resource (the non-pipelined divider,
    the L2/memory port). No cache state is inspected, so undo-based
    defenses that roll the cache back perfectly cannot close it; only
    not *issuing* the transient work (delay-on-miss for loads, fencing
    for divisions) does.

    Decodes like the rollback channel (midpoint threshold between the
    per-secret means of ``contention_timing``). Trials without a
    contention measurement mean the attack never measured this resource:
    the channel reports closed rather than raising, so matrix cells stay
    total over attacks that predate the contention model.
    """

    key = "contention"
    name = "contention-timing"

    def __init__(self, min_gap_cycles: float = 4.0, min_accuracy: float = 0.75) -> None:
        if min_gap_cycles < 0:
            raise ConfigError("min_gap_cycles must be non-negative")
        if not 0.5 < min_accuracy <= 1.0:
            raise ConfigError("min_accuracy must be in (0.5, 1.0]")
        self.min_gap_cycles = min_gap_cycles
        self.min_accuracy = min_accuracy

    def verdict(self, observations: Sequence[TrialObservation]) -> ChannelVerdict:
        if not observations:
            raise CalibrationError("cannot judge an empty trial set")
        measured = [o for o in observations if o.contention_timing is not None]
        if not measured:
            return ChannelVerdict(
                channel=self.key, leaks=False, signal=0.0, accuracy=0.0
            )
        secrets, groups = _split_by_secret(measured)
        if len(secrets) < 2:
            raise CalibrationError(
                "contention channel needs trials for at least two secrets"
            )
        means = {
            s: sum(o.contention_timing for o in groups[s]) / len(groups[s])
            for s in secrets
        }
        low, high = min(means.values()), max(means.values())
        gap = high - low
        decoder = ThresholdDecoder(threshold=(low + high) / 2.0)
        slow_secret = max(secrets, key=lambda s: means[s])
        correct = sum(
            1
            for obs in measured
            if (obs.secret == slow_secret) == bool(decoder.decode(obs.contention_timing))
        )
        accuracy = correct / len(measured)
        leaks = gap >= self.min_gap_cycles and accuracy >= self.min_accuracy
        return ChannelVerdict(
            channel=self.key,
            leaks=leaks,
            signal=gap if leaks else 0.0,
            accuracy=accuracy,
        )


#: Channel key -> constructor with default thresholds; what the matrix
#: experiment iterates.
CHANNELS = {
    RollbackTimingChannel.key: RollbackTimingChannel,
    FlushReloadChannel.key: FlushReloadChannel,
    ContentionTimingChannel.key: ContentionTimingChannel,
}


def make_channel(key: str) -> Channel:
    """Instantiate a channel by key (matrix cells select channels by name)."""
    if key not in CHANNELS:
        raise ConfigError(
            f"unknown channel {key!r}; registered: {', '.join(sorted(CHANNELS))}"
        )
    return CHANNELS[key]()
