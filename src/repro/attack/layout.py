"""Memory layout and register conventions shared by the attack gadgets.

The gadgets place each data structure so that its L1 set is known and the
structures cannot accidentally evict each other (which would contaminate
the rollback counts the channel is built on):

==============  ==========  =================================================
structure        address     L1D set (64 sets x 64 B lines)
==============  ==========  =================================================
A array          0x10000     set 0 (only A[0] is touched in-bounds)
secret word      0x18280     set 10
P probe array    0x20000     sets 0..n (P + 64k lands in set k, n <= 8)
index table      0x40800     sets 32.. (one word per round iteration)
f(N) chain       0x50400     sets 16.. (one line per chain step)
eviction pool    0x400000    all sets (candidates for eviction sets)
==============  ==========  =================================================

The sets the attack primes (1..8, those of ``P[64k]``) hold *nothing but*
flushed P lines and eviction-set lines; the secret, chain and table lines
live in disjoint sets so priming and transient installs can never evict
them — which would contaminate the rollback counts the channel encodes.

The out-of-bounds index is chosen so that ``A + index*8`` is exactly the
secret word, as in Algorithm 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..common.config import LINE_SIZE
from ..common.errors import AttackError
from ..memory.dram import WORD_SIZE


@dataclass(frozen=True)
class AttackLayout:
    """Addresses of every structure the gadgets reference."""

    a_base: int = 0x10000  # L1 set 0
    secret_addr: int = 0x18280  # L1 set 10 — clear of the P sets (1..8)
    p_base: int = 0x20000  # L1 set 0; P + 64k lands in set k
    table_base: int = 0x40800  # L1 sets 32.. — clear of P and chain sets
    chain_base: int = 0x50400  # L1 sets 16.. (one line per f(N) step)
    eviction_pool_base: int = 0x400000
    eviction_pool_size: int = 0x200000
    bound_value: int = 16

    def __post_init__(self) -> None:
        for name in ("a_base", "secret_addr", "p_base", "table_base", "chain_base"):
            if getattr(self, name) % WORD_SIZE:
                raise AttackError(f"{name} must be word aligned")
        if (self.secret_addr - self.a_base) % WORD_SIZE:
            raise AttackError("secret must be word-indexable from A")
        if self.out_of_bounds_index < self.bound_value:
            raise AttackError("secret index must be out of bounds")

    @property
    def out_of_bounds_index(self) -> int:
        """Index i with ``A + 8*i == secret_addr`` (Algorithm 2's ``i``)."""
        return (self.secret_addr - self.a_base) // WORD_SIZE

    @property
    def secret_range(self) -> tuple:
        """Byte range ``[lo, hi)`` of the secret word — the taint source
        declaration consumed by :mod:`repro.analysis.specct`."""
        return (self.secret_addr, self.secret_addr + WORD_SIZE)

    def p_entry(self, k: int) -> int:
        """Address of ``P[64*k]`` — the k-th transient-load target."""
        return self.p_base + LINE_SIZE * k

    def chain_entry(self, i: int) -> int:
        """Address of the i-th pointer-chase step of f(N) (one line apart)."""
        return self.chain_base + LINE_SIZE * i

    def table_entry(self, i: int) -> int:
        return self.table_base + WORD_SIZE * i


@dataclass(frozen=True)
class Regs:
    """Register allocation used by every gadget (names, not values)."""

    a_base: str = "r1"
    p_base: str = "r2"
    chain: str = "r3"
    iters: str = "r4"
    i: str = "r5"
    index: str = "r6"
    scratch_addr: str = "r7"
    scratch2: str = "r8"
    bound: str = "r9"
    secret: str = "r10"
    secret_off: str = "r11"
    table: str = "r21"
    tmp: str = "r24"
    tmp2: str = "r25"
    ts1: str = "r30"
    ts2: str = "r31"

    def transient_dst(self, k: int) -> str:
        """Destination register of the k-th in-branch load (k = 1..8)."""
        if not 1 <= k <= 8:
            raise AttackError("supports at most 8 in-branch loads")
        return f"r{12 + k}"  # r13..r20

    def addr_dst(self, k: int) -> str:
        """Scratch register holding the k-th in-branch load address.

        Round-robin over r26..r28: the address register is consumed by the
        load immediately following its computation, so three scratch
        registers cover any number of in-branch loads.
        """
        if not 1 <= k <= 8:
            raise AttackError("supports at most 8 in-branch loads")
        return f"r{26 + (k % 3)}"


DEFAULT_LAYOUT = AttackLayout()
DEFAULT_REGS = Regs()


def chain_pointers(layout: AttackLayout, n_accesses: int) -> List[int]:
    """Memory words implementing the f(N) pointer chase.

    ``chain[i]`` holds the address of step ``i+1``; the last step holds the
    bounds value itself, so resolving the branch condition requires exactly
    ``n_accesses`` dependent memory loads.
    """
    if n_accesses < 1:
        raise AttackError("f(N) needs at least one memory access")
    return [layout.chain_entry(i + 1) for i in range(n_accesses - 1)] + [layout.bound_value]
