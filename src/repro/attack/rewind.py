"""SpectreRewind-style divider-contention attack orchestrator.

:class:`RewindAttack` drives :class:`~repro.attack.gadgets.RewindGadget`
against a configurable defense, mirroring :class:`UnxpecAttack`'s two
stages (prepare / sample). The receiver here is *not* cache state and not
the rollback duration: it is the latency of one committed division issued
right after the squash (``ts1; div ts1/c; ts2``). When the secret bit is 0
the transient body's divisions issue inside the speculation window and the
non-pipelined divider is still grinding when the committed division
arrives; when the bit is 1 the dependent transient loads cannot complete
before the squash, no transient division ever issues, and the committed
division starts immediately.

Because the channel is execution-resource occupancy, rolling the cache
back perfectly (CleanupSpec), shadowing speculative fills (SafeSpec) or
cancelling in-flight requests (CacheSquash) does not close it — see
``docs/channels.md`` and the ``ext_rewind`` experiment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from ..cache.hierarchy import CacheHierarchy
from ..common.config import SystemConfig
from ..common.errors import AttackError
from ..cpu.backend import make_core
from ..cpu.noise import NoiseModel
from ..cpu.timing import RunResult, SquashEvent
from ..defense.base import Defense
from ..defense.cleanupspec import CleanupSpec
from .gadgets import RewindGadget, RewindParams
from .layout import DEFAULT_LAYOUT, AttackLayout

DefenseFactory = Callable[[CacheHierarchy], Defense]


@dataclass(frozen=True)
class RewindSample:
    """One contention-channel sample with simulator-side ground truth."""

    secret: int
    #: ts2 - ts1 around the committed division: the contention observable —
    #: the only thing the receiver sees.
    latency: int
    #: Defense stall of the attack squash (the *rollback* observable; the
    #: rewind gadget is built so this stays secret-independent).
    stall: int
    #: Divisions that found the divider busy this round (ground truth).
    div_contended: int
    #: Divisions issued this round, committed + transient (ground truth).
    div_issues: int
    inflight_transient: int
    total_cycles: int


class RewindAttack:
    """End-to-end divider-contention leak against a configurable defense."""

    def __init__(
        self,
        params: RewindParams = RewindParams(),
        defense_factory: Optional[DefenseFactory] = None,
        layout: AttackLayout = DEFAULT_LAYOUT,
        config: Optional[SystemConfig] = None,
        noise: Optional[NoiseModel] = None,
        seed: int = 0,
    ) -> None:
        self.params = params
        self.layout = layout
        self.hierarchy = CacheHierarchy(config=config, seed=seed)
        factory = defense_factory or (lambda h: CleanupSpec(h))
        self.defense = factory(self.hierarchy)
        self.core = make_core(
            self.hierarchy,
            self.defense,
            config=self.hierarchy.config.core,
            noise=noise,
            noise_seed=seed,
        )
        self.gadget = RewindGadget(params=params, layout=layout)
        self._round_program = None
        self._prepared = False

    def prepare(self) -> None:
        """Memory image + setup program. Idempotent."""
        if self._prepared:
            return
        self.gadget.init_memory(self.hierarchy.dram, secret_bit=0)
        setup = self.gadget.build_setup()
        self.core.run(setup)
        self._round_program = self.gadget.build_round()
        self._prepared = True

    def sample(self, secret_bit: int) -> RewindSample:
        """Plant ``secret_bit`` and measure one round."""
        if not self._prepared:
            self.prepare()
        self.gadget.set_secret(self.hierarchy.dram, secret_bit)
        result = self.core.run(self._round_program)
        return self._extract(secret_bit, result)

    def sample_many(self, secret_bit: int, rounds: int) -> List[RewindSample]:
        return [self.sample(secret_bit) for _ in range(rounds)]

    # ------------------------------------------------------------------

    def _attack_squash(self, result: RunResult) -> SquashEvent:
        pc = self.gadget.bounds_branch_pc
        if pc is None:
            raise AttackError("round program was never built")
        events = [e for e in result.squashes if e.branch_pc == pc]
        if not events:
            raise AttackError(
                "the bounds-check branch never mis-predicted — mistraining failed"
            )
        return events[-1]

    def _extract(self, secret_bit: int, result: RunResult) -> RewindSample:
        ts1, ts2 = self.gadget.ts_regs
        squash = self._attack_squash(result)
        # Diagnostics only: under the batched backend a memoized replay does
        # not re-run the scalar engine, so the pool may be absent or stale.
        # The channel observables (latency, stall) come from RunResult and
        # are replay-exact.
        fu = getattr(self.core, "fu_pool", None)
        return RewindSample(
            secret=secret_bit & 1,
            latency=result.timer_delta(ts1, ts2),
            stall=squash.outcome.stall_cycles,
            div_contended=fu.div_contended if fu is not None else 0,
            div_issues=fu.div_issues if fu is not None else 0,
            inflight_transient=squash.inflight_transient,
            total_cycles=result.cycles,
        )
