"""Attack gadget builders (paper Algorithms 1 & 2, Figure 4).

:class:`UnxpecGadget` produces two programs:

* a **setup** program, run once, that warms the lines whose residency the
  round code depends on (the secret word, ``P[0]``, the index table) and
  optionally primes the eviction sets;
* a **round** program, run once per leaked bit, structured as the paper's
  Figure 4: ``train_iters`` invocations of the sender with in-bounds
  indices (mistraining the bounds-check branch toward *not taken*), then
  one invocation with the out-of-bounds index whose end-to-end latency —
  bracketed by two serialising timer reads around the sender — is the
  covert-channel sample.

The sender's bounds check loads its bound through an ``condition_accesses``
-deep pointer chase (the paper's ``f(N)``); every chase line is flushed in
the preparation part of each invocation, so resolving the branch takes a
(constant) main-memory round trip — the speculation window the transient
loads execute in. The in-branch body performs ``n_loads`` loads of
``P[secret*64*k]``: every load hits ``P[0]`` when the secret bit is 0 and
misses (installing ``P[64k]``) when it is 1.

All invocations share one code path, so the bounds-check branch trains and
mis-predicts at a single PC, exactly like a real sender function invoked
repeatedly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..common.errors import AttackError
from ..isa.builder import ProgramBuilder
from ..isa.program import Program
from ..memory.dram import WORD_SIZE, Dram
from .layout import DEFAULT_LAYOUT, DEFAULT_REGS, AttackLayout, Regs, chain_pointers


@dataclass(frozen=True)
class GadgetParams:
    """Tunable knobs of the unXpec round (paper §V-C parameterisation)."""

    #: In-branch transient loads (1..8; paper Figs. 3/6 sweep this).
    n_loads: int = 1
    #: Dependent memory accesses in the branch condition f(N) (paper Fig. 2).
    condition_accesses: int = 1
    #: Chained ALU ops appended to the condition — the paper's f(N) tuning
    #: that guarantees the window covers the transient loads.
    condition_pad: int = 4
    #: Sender invocations with in-bounds indices before the attack one.
    train_iters: int = 16

    def __post_init__(self) -> None:
        if not 1 <= self.n_loads <= 8:
            raise AttackError("n_loads must be in 1..8")
        if self.condition_accesses < 1:
            raise AttackError("condition_accesses must be >= 1")
        if self.condition_pad < 0:
            raise AttackError("condition_pad must be non-negative")
        if self.train_iters < 1:
            raise AttackError("need at least one training invocation")


class UnxpecGadget:
    """Builds setup/round programs for one parameterisation."""

    def __init__(
        self,
        params: GadgetParams = GadgetParams(),
        layout: AttackLayout = DEFAULT_LAYOUT,
        regs: Regs = DEFAULT_REGS,
        prime_addresses: Sequence[int] = (),
    ) -> None:
        self.params = params
        self.layout = layout
        self.regs = regs
        #: Eviction-set lines loaded during setup (the §V-B optimisation).
        self.prime_addresses: List[int] = list(prime_addresses)
        #: PC of the sender's bounds-check branch, set by :meth:`build_round`
        #: (used to pick the attack squash out of a round's squash events).
        self.bounds_branch_pc: Optional[int] = None

    # ------------------------------------------------------------------
    # victim memory image
    # ------------------------------------------------------------------

    def init_memory(self, dram: Dram, secret_bit: int = 0) -> None:
        """Write the victim/attacker data structures into memory."""
        lay = self.layout
        # A[0] = 0: in-bounds training accesses resolve to P[0].
        dram.poke(lay.a_base, 0)
        dram.poke(lay.secret_addr, secret_bit & 1)
        # Index table: train_iters in-bounds entries, then the OOB index,
        # then a tail of in-bounds entries covering wrong-path overruns.
        total = self.params.train_iters
        for i in range(total):
            dram.poke(lay.table_entry(i), 0)
        dram.poke(lay.table_entry(total), lay.out_of_bounds_index)
        for i in range(total + 1, total + 64):
            dram.poke(lay.table_entry(i), 0)
        # f(N) pointer chase.
        for i, word in enumerate(chain_pointers(lay, self.params.condition_accesses)):
            dram.poke(lay.chain_entry(i), word)

    def set_secret(self, dram: Dram, secret_bit: int) -> None:
        """The victim's secret changes between rounds; only it is rewritten."""
        dram.poke(self.layout.secret_addr, secret_bit & 1)

    def memory_image(self, secret_bit: int = 0) -> dict:
        """The :meth:`init_memory` contents as a plain word→value map.

        Lets the static analysis replay witnesses against the same victim
        data structures the simulator runs with (the OOB table entry is
        what makes the concrete transient leak fire).
        """
        dram = Dram()
        self.init_memory(dram, secret_bit)
        return dram.image()

    # ------------------------------------------------------------------
    # setup program (run once)
    # ------------------------------------------------------------------

    def build_setup(self) -> Program:
        """Warm every line the round code expects resident, prime eviction sets."""
        lay, r = self.layout, self.regs
        b = ProgramBuilder("unxpec-setup")
        b.li(r.a_base, lay.a_base)
        b.li(r.p_base, lay.p_base)
        b.li(r.table, lay.table_base)
        # Warm A[0], the secret word (the victim uses it, so it is cached),
        # and P[0].
        b.load(r.scratch2, r.a_base, 0)
        b.li(r.tmp, lay.secret_addr)
        b.load(r.scratch2, r.tmp, 0)
        b.load(r.scratch2, r.p_base, 0)
        # Warm the whole index table (one load per line) so wrong-path
        # overruns never install table lines.
        table_words = self.params.train_iters + 64
        table_lines = (table_words * WORD_SIZE + 63) // 64
        for line in range(table_lines):
            b.load(r.scratch2, r.table, line * 64)
        # Prime eviction sets (paper Fig. 5 step 1). The targets are flushed
        # first so the primed partition is *full* with no invalid way left —
        # otherwise the transient install would fill the hole instead of
        # evicting (and nothing would need restoring). Restoration puts the
        # primed lines back after every squash, so priming once suffices
        # (paper §VI-B).
        if self.prime_addresses:
            for k in range(1, self.params.n_loads + 1):
                b.flush(r.p_base, 64 * k)
        for addr in self.prime_addresses:
            b.li(r.tmp, addr)
            b.load(r.tmp2, r.tmp, 0)
        b.fence()
        b.halt()
        return b.build()

    # ------------------------------------------------------------------
    # round program (run once per bit)
    # ------------------------------------------------------------------

    def build_round(self) -> Program:
        """One attack round: train_iters sender calls, then the measured one.

        Every iteration executes the *same* sender code (same branch PC):
        read the iteration's index from the table, flush the f(N) chain and
        the P[64k] targets, fence, timestamp, run the bounds check and
        (transiently or not) the in-branch loads, timestamp. The final
        iteration's index is out of bounds; its ts2-ts1 is the sample.
        """
        p, lay, r = self.params, self.layout, self.regs
        b = ProgramBuilder(
            f"unxpec-round[n={p.n_loads},N={p.condition_accesses},train={p.train_iters}]"
        )
        b.li(r.a_base, lay.a_base)
        b.li(r.p_base, lay.p_base)
        b.li(r.chain, lay.chain_base)
        b.li(r.table, lay.table_base)
        b.li(r.iters, p.train_iters + 1)
        b.li(r.i, 0)

        b.label("invoke")
        # index = table[i]
        b.shli(r.scratch_addr, r.i, 3)
        b.add(r.scratch_addr, r.table, r.scratch_addr)
        b.load(r.index, r.scratch_addr, 0)
        # Preparation: flush the chain lines and the P[64k] targets
        # (Algorithm 2 lines 20-21 / Fig. 4 preparation stage).
        for i in range(p.condition_accesses):
            b.li(r.tmp, lay.chain_entry(i))
            b.flush(r.tmp, 0)
        for k in range(1, p.n_loads + 1):
            b.flush(r.p_base, 64 * k)
        b.fence()
        b.rdtscp(r.ts1)
        # Branch condition: bound = f(N) pointer chase.
        b.load(r.bound, r.chain, 0)
        for _ in range(p.condition_accesses - 1):
            b.load(r.bound, r.bound, 0)
        for _ in range(p.condition_pad):
            b.addi(r.bound, r.bound, 0)
        # if index >= bound: skip the body (taken on the attack iteration).
        self.bounds_branch_pc = b.here
        b.branch("ge", r.index, r.bound, "after_body")
        # -- sender body (transient on the attack iteration) --
        b.shli(r.scratch_addr, r.index, 3)
        b.add(r.scratch_addr, r.a_base, r.scratch_addr)
        b.load(r.secret, r.scratch_addr, 0)  # secret = A[index]
        b.shli(r.secret_off, r.secret, 6)  # secret * 64
        for k in range(1, p.n_loads + 1):
            addr_reg = r.addr_dst(k)
            if k == 1:
                b.add(addr_reg, r.p_base, r.secret_off)
            else:
                b.opi("mul", addr_reg, r.secret_off, k)
                b.add(addr_reg, r.p_base, addr_reg)
            b.load(r.transient_dst(k), addr_reg, 0)  # load P[secret*64*k]
        b.label("after_body")
        b.rdtscp(r.ts2)
        b.addi(r.i, r.i, 1)
        b.branch("lt", r.i, r.iters, "invoke")
        b.halt()
        return b.build()

    # ------------------------------------------------------------------
    # convenience
    # ------------------------------------------------------------------

    @property
    def ts_regs(self) -> tuple:
        return (self.regs.ts1, self.regs.ts2)

    def secret_ranges(self) -> tuple:
        """Taint-source declaration for the static analyzer: the byte
        range(s) this gadget's programs leak from."""
        return (self.layout.secret_range,)

    def target_sets_needed(self) -> List[int]:
        """Addresses whose L1 sets the eviction-set optimisation must prime."""
        return [self.layout.p_entry(k) for k in range(1, self.params.n_loads + 1)]


# ---------------------------------------------------------------------------
# SpectreRewind gadget (functional-unit contention channel)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RewindParams:
    """Knobs of the SpectreRewind round (see ``docs/channels.md``)."""

    #: Transient divisions racing the squash (1..8). Only those whose issue
    #: slot lands before the squash occupy the divider, so the chain just
    #: needs to outlast the speculation window — the observable tail is the
    #: last division to win an issue slot, grinding past the squash point.
    div_chain: int = 6
    #: Dependent memory accesses in the branch condition f(N).
    condition_accesses: int = 1
    #: Chained ALU ops appended to the condition (window tuning).
    condition_pad: int = 4
    #: Sender invocations with in-bounds indices before the attack one.
    train_iters: int = 8

    def __post_init__(self) -> None:
        if not 1 <= self.div_chain <= 8:
            raise AttackError("div_chain must be in 1..8")
        if self.condition_accesses < 1:
            raise AttackError("condition_accesses must be >= 1")
        if self.condition_pad < 0:
            raise AttackError("condition_pad must be non-negative")
        if self.train_iters < 1:
            raise AttackError("need at least one training invocation")


class RewindGadget:
    """Builds setup/round programs for the divider-contention channel.

    Same invocation-loop skeleton as :class:`UnxpecGadget` (one branch PC,
    mistrained in-bounds, one out-of-bounds attack invocation), but the
    transient body transmits through the **non-pipelined divider** instead
    of cache state, and the receiver is a *committed* division after the
    squash:

    * the transient body loads ``x = P[secret*64]`` and then the dependent
      ``y = P[secret*128 + x]``.  With secret 0 both are warm L1 hits, so a
      chain of divisions issues well inside the speculation window and the
      last one to issue keeps the divider busy past the squash.  With
      secret 1 both lines are flushed each invocation: whatever the defense
      does with the miss (install it, shadow-fill it, delay it), the
      *dependent* load cannot complete before the squash, the divisor never
      readies, and no transient division issues;
    * after the squash, ``ts1; q = ts1/c; ts2`` times one committed
      division.  Secret 0 leaves the divider busy (the squash cannot recall
      an in-flight division), so the committed division queues — a
      secret-dependent ``ts2-ts1`` with **zero** cache-state involvement.

    The round leaves no secret-dependent cache footprint even with no
    defense at all: the secret-1 fills are still in flight at the squash
    and never install.
    """

    def __init__(
        self,
        params: RewindParams = RewindParams(),
        layout: AttackLayout = DEFAULT_LAYOUT,
        regs: Regs = DEFAULT_REGS,
    ) -> None:
        self.params = params
        self.layout = layout
        self.regs = regs
        self.bounds_branch_pc: Optional[int] = None

    #: Scratch registers of the rewind body (clear of the Regs allocation:
    #: r13..r20 hold the div chain via ``transient_dst``).
    R_X = "r12"  # x = P[secret*64]
    R_DIVIDEND = "r22"
    R_CDIV = "r23"  # committed divisor
    R_XADDR = "r26"
    R_YADDR = "r27"
    R_DIVISOR = "r29"  # y | 1

    def init_memory(self, dram: Dram, secret_bit: int = 0) -> None:
        """Write the victim/attacker data structures into memory."""
        lay = self.layout
        dram.poke(lay.a_base, 0)
        dram.poke(lay.secret_addr, secret_bit & 1)
        # P[0] = 0 so the dependent y address is P[secret*128] either way.
        dram.poke(lay.p_base, 0)
        dram.poke(lay.p_entry(1), 0)
        total = self.params.train_iters
        for i in range(total):
            dram.poke(lay.table_entry(i), 0)
        dram.poke(lay.table_entry(total), lay.out_of_bounds_index)
        # The tail entries past the attack index stay out-of-bounds too:
        # the wrong path overruns the loop-back branch and re-enters the
        # invocation with i+1, so an in-bounds tail index would make every
        # overrun pass transmit a constant 0 — hitting P[0] and issuing a
        # secret-independent division right before the squash. Keeping the
        # tail out-of-bounds makes each overrun pass re-send the secret.
        for i in range(total + 1, total + 64):
            dram.poke(lay.table_entry(i), lay.out_of_bounds_index)
        for i, word in enumerate(chain_pointers(lay, self.params.condition_accesses)):
            dram.poke(lay.chain_entry(i), word)

    def set_secret(self, dram: Dram, secret_bit: int) -> None:
        dram.poke(self.layout.secret_addr, secret_bit & 1)

    def memory_image(self, secret_bit: int = 0) -> dict:
        dram = Dram()
        self.init_memory(dram, secret_bit)
        return dram.image()

    def build_setup(self) -> Program:
        """Warm A[0], the secret word, P[0] and the index table."""
        lay, r = self.layout, self.regs
        b = ProgramBuilder("rewind-setup")
        b.li(r.a_base, lay.a_base)
        b.li(r.p_base, lay.p_base)
        b.li(r.table, lay.table_base)
        b.load(r.scratch2, r.a_base, 0)
        b.li(r.tmp, lay.secret_addr)
        b.load(r.scratch2, r.tmp, 0)
        b.load(r.scratch2, r.p_base, 0)
        table_words = self.params.train_iters + 64
        table_lines = (table_words * WORD_SIZE + 63) // 64
        for line in range(table_lines):
            b.load(r.scratch2, r.table, line * 64)
        b.fence()
        b.halt()
        return b.build()

    def build_round(self) -> Program:
        p, lay, r = self.params, self.layout, self.regs
        b = ProgramBuilder(
            f"rewind-round[divs={p.div_chain},N={p.condition_accesses},"
            f"train={p.train_iters}]"
        )
        b.li(r.a_base, lay.a_base)
        b.li(r.p_base, lay.p_base)
        b.li(r.chain, lay.chain_base)
        b.li(r.table, lay.table_base)
        b.li(r.iters, p.train_iters + 1)
        b.li(r.i, 0)
        b.li(self.R_DIVIDEND, 1 << 20)
        b.li(self.R_CDIV, 3)

        b.label("invoke")
        # index = table[i]
        b.shli(r.scratch_addr, r.i, 3)
        b.add(r.scratch_addr, r.table, r.scratch_addr)
        b.load(r.index, r.scratch_addr, 0)
        # Preparation: flush the f(N) chain and the secret-1 targets P[64]
        # (x) and P[128] (y) so the dependent transient pair misses.
        for i in range(p.condition_accesses):
            b.li(r.tmp, lay.chain_entry(i))
            b.flush(r.tmp, 0)
        b.flush(r.p_base, lay.p_entry(1) - lay.p_base)
        b.flush(r.p_base, lay.p_entry(2) - lay.p_base)
        b.fence()
        # Branch condition: bound = f(N) pointer chase.
        b.load(r.bound, r.chain, 0)
        for _ in range(p.condition_accesses - 1):
            b.load(r.bound, r.bound, 0)
        for _ in range(p.condition_pad):
            b.addi(r.bound, r.bound, 0)
        self.bounds_branch_pc = b.here
        b.branch("ge", r.index, r.bound, "after_body")
        # -- transient sender body --
        b.shli(r.scratch_addr, r.index, 3)
        b.add(r.scratch_addr, r.a_base, r.scratch_addr)
        b.load(r.secret, r.scratch_addr, 0)  # secret = A[index]
        b.shli(r.secret_off, r.secret, 6)  # secret * 64
        b.add(self.R_XADDR, r.p_base, r.secret_off)
        b.load(self.R_X, self.R_XADDR, 0)  # x = P[secret*64]
        b.shli(self.R_YADDR, r.secret, 7)  # secret * 128
        b.add(self.R_YADDR, r.p_base, self.R_YADDR)
        b.add(self.R_YADDR, self.R_YADDR, self.R_X)
        b.load(self.R_DIVISOR, self.R_YADDR, 0)  # y = P[secret*128 + x]
        b.opi("or", self.R_DIVISOR, self.R_DIVISOR, 1)  # divisor != 0
        for k in range(1, p.div_chain + 1):
            # Independent divisions (shared sources, distinct dests):
            # serialised by divider occupancy, not dataflow, so they race
            # the squash point one issue slot at a time.
            b.div(r.transient_dst(k), self.R_DIVIDEND, self.R_DIVISOR)
        b.label("after_body")
        # -- committed receiver: time one post-squash division. Dividing
        # ts1 (not a constant) keeps the wrong-path overrun from issuing
        # this division transiently: ts1 never readies on the wrong path.
        b.rdtscp(r.ts1)
        b.div(r.scratch2, r.ts1, self.R_CDIV)
        b.rdtscp(r.ts2)
        # Drain epilogue: a load data-dependent on the measured division.
        # The next invocation's fence only orders *memory* operations, so
        # without this the committed training-body divisions back-log the
        # divider across iterations and bury the attack-round signal.
        b.opi("and", r.tmp, r.scratch2, 0)
        b.add(r.tmp, r.tmp, r.table)
        b.load(r.tmp2, r.tmp, 0)
        b.addi(r.i, r.i, 1)
        b.branch("lt", r.i, r.iters, "invoke")
        b.halt()
        return b.build()

    @property
    def ts_regs(self) -> tuple:
        return (self.regs.ts1, self.regs.ts2)

    def secret_ranges(self) -> tuple:
        """Taint-source declaration for the static analyzer."""
        return (self.layout.secret_range,)
