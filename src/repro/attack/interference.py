"""Two-context speculative interference attack (shared-port contention).

Models the Speculative Interference Attacks observation: even defenses
that make transient loads *invisible* in cache state (SafeSpec shadow
fills, CacheSquash cancellable requests) still let those loads occupy
shared downstream bandwidth while in flight — and a second context timing
its own memory accesses sees them.

Two machines run under a deterministic one-way interleave:

* the **victim** context runs a Spectre-style sender under the defense
  being evaluated, with an :class:`~repro.cpu.fu.OccupancyTimeline`
  attached as ``port_timeline``: every beyond-L1 access it makes —
  committed loads, wrong-path installs, in-flight fills *and* shadow
  fills — records the interval it occupies the shared L2/memory port.
  The transient body reads the secret, delays it through a dependent ALU
  chain (so the burst lands mid-window), then issues ``n_loads``
  independent loads of ``P[secret*64*k]``: L1 hits for secret 0 (no port
  traffic), a burst of in-flight fills for secret 1;
* the **attacker** context (its own hierarchy, no defense) replays a
  timed pointer-chase probe against the recording via
  ``contended_timeline``: each of its misses waits out the victim's
  recorded intervals before being serviced. The probe latency delta
  between secrets is the covert-channel observation.

The interleave is strictly one-way (victim recorded first, attacker
replays), which keeps both runs' timings well-defined in the one-pass
timestamp model. Both cores are **scalar** :class:`~repro.cpu.core.Core`
instances constructed directly: the timelines couple two separate runs,
which the batched backend's memoized replay cannot see (it demotes such
cores to scalar anyway — constructing scalar cores makes the harness
trivially backend-invariant).

Mistraining happens *across* runs: the victim's branch predictor persists
between :meth:`InterferenceHarness.sample` calls, so each sample re-trains
with in-bounds indices before the out-of-bounds measured run — the same
one-branch-PC discipline as the in-loop gadgets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..cache.hierarchy import CacheHierarchy
from ..common.config import SystemConfig
from ..common.errors import AttackError
from ..cpu.core import Core
from ..cpu.fu import OccupancyTimeline
from ..defense.base import make_defense
from ..isa.builder import ProgramBuilder
from ..isa.program import Program
from .layout import DEFAULT_LAYOUT, DEFAULT_REGS, AttackLayout, Regs, chain_pointers

#: Stride between the attacker's probe-chase lines (distinct sets/pages).
_PROBE_STRIDE = 4096


@dataclass(frozen=True)
class InterferenceParams:
    """Knobs of the two-context interference experiment."""

    #: Independent transient loads in the victim burst (1..8).
    n_loads: int = 4
    #: Dependent ALU ops delaying the burst so it lands mid-window and
    #: overlaps the attacker's probe interval.
    delay_chain: int = 60
    #: Dependent memory accesses in the victim's branch condition f(N).
    condition_accesses: int = 1
    #: Chained ALU ops appended to the condition (window tuning).
    condition_pad: int = 4
    #: In-bounds victim runs before each measured run (re-mistraining).
    train_runs: int = 4
    #: Dependent loads in the attacker's timed probe chase.
    probe_loads: int = 3

    def __post_init__(self) -> None:
        if not 1 <= self.n_loads <= 8:
            raise AttackError("n_loads must be in 1..8")
        if self.delay_chain < 0:
            raise AttackError("delay_chain must be non-negative")
        if self.condition_accesses < 1:
            raise AttackError("condition_accesses must be >= 1")
        if self.condition_pad < 0:
            raise AttackError("condition_pad must be non-negative")
        if self.train_runs < 1:
            raise AttackError("need at least one training run")
        if not 1 <= self.probe_loads <= 8:
            raise AttackError("probe_loads must be in 1..8")


@dataclass(frozen=True)
class InterferenceSample:
    """One two-context trial with simulator-side ground truth."""

    secret: int
    #: Attacker probe ts2 - ts1: the contention observable — all the
    #: second context ever sees.
    probe_latency: int
    #: Victim-side defense stall of the measured squash (the rollback
    #: observable, for the matrix's rollback channel).
    victim_stall: int
    #: Ground truth: cycles of port occupancy the victim recorded.
    port_busy_cycles: int
    #: Ground truth: number of recorded busy intervals.
    port_intervals: int


class InterferenceHarness:
    """Victim + attacker contexts sharing one port timeline."""

    def __init__(
        self,
        defense_key: str = "safespec",
        params: InterferenceParams = InterferenceParams(),
        layout: AttackLayout = DEFAULT_LAYOUT,
        regs: Regs = DEFAULT_REGS,
        config: Optional[SystemConfig] = None,
        seed: int = 0,
    ) -> None:
        self.params = params
        self.layout = layout
        self.regs = regs
        self.defense_key = defense_key
        self.victim_hierarchy = CacheHierarchy(config=config, seed=seed)
        self.victim_defense = make_defense(defense_key, self.victim_hierarchy)
        self.victim = Core(
            self.victim_hierarchy,
            self.victim_defense,
            config=self.victim_hierarchy.config.core,
            noise_seed=seed,
        )
        # The attacker is a separate, unprotected machine: it only shares
        # the downstream port (the timeline), never cache state.
        self.attacker_hierarchy = CacheHierarchy(config=config, seed=seed + 1)
        self.attacker = Core(
            self.attacker_hierarchy,
            make_defense("unsafe", self.attacker_hierarchy),
            config=self.attacker_hierarchy.config.core,
            noise_seed=seed + 1,
        )
        self.bounds_branch_pc: Optional[int] = None
        self._victim_round: Optional[Program] = None
        self._probe: Optional[Program] = None
        self._prepared = False

    # -- program builders ------------------------------------------------

    def _build_victim_setup(self) -> Program:
        lay, r = self.layout, self.regs
        b = ProgramBuilder("interference-victim-setup")
        b.li(r.a_base, lay.a_base)
        b.li(r.p_base, lay.p_base)
        b.li(r.table, lay.table_base)
        b.load(r.scratch2, r.a_base, 0)
        b.li(r.tmp, lay.secret_addr)
        b.load(r.scratch2, r.tmp, 0)
        b.load(r.scratch2, r.p_base, 0)
        b.load(r.scratch2, r.table, 0)
        b.fence()
        b.halt()
        return b.build()

    def _build_victim_round(self) -> Program:
        p, lay, r = self.params, self.layout, self.regs
        b = ProgramBuilder(
            f"interference-victim[loads={p.n_loads},delay={p.delay_chain}]"
        )
        b.li(r.a_base, lay.a_base)
        b.li(r.p_base, lay.p_base)
        b.li(r.chain, lay.chain_base)
        b.li(r.table, lay.table_base)
        b.load(r.index, r.table, 0)
        for i in range(p.condition_accesses):
            b.li(r.tmp, lay.chain_entry(i))
            b.flush(r.tmp, 0)
        for k in range(1, p.n_loads + 1):
            b.flush(r.p_base, lay.p_entry(k) - lay.p_base)
        b.fence()
        b.load(r.bound, r.chain, 0)
        for _ in range(p.condition_accesses - 1):
            b.load(r.bound, r.bound, 0)
        for _ in range(p.condition_pad):
            b.addi(r.bound, r.bound, 0)
        self.bounds_branch_pc = b.here
        b.branch("ge", r.index, r.bound, "skip")
        # -- transient sender body --
        b.shli(r.scratch_addr, r.index, 3)
        b.add(r.scratch_addr, r.a_base, r.scratch_addr)
        b.load(r.secret, r.scratch_addr, 0)  # secret = A[index]
        # Dependent delay chain: positions the burst mid-window, past the
        # start of the attacker's probe interval.
        b.addi(r.tmp, r.secret, 0)
        for _ in range(p.delay_chain - 1):
            b.addi(r.tmp, r.tmp, 0)
        b.shli(r.secret_off, r.tmp, 6)  # secret * 64
        for k in range(1, p.n_loads + 1):
            # Independent loads of P[secret*64*k]: a burst of concurrent
            # fills for secret 1, silent L1 hits for secret 0.
            b.opi("mul", r.scratch_addr, r.secret_off, k)
            b.add(r.scratch_addr, r.p_base, r.scratch_addr)
            b.load(r.transient_dst(k), r.scratch_addr, 0)
        b.label("skip")
        b.halt()
        return b.build()

    def _probe_entry(self, k: int) -> int:
        return self.layout.eviction_pool_base + k * _PROBE_STRIDE

    def _build_probe(self) -> Program:
        p, r = self.params, self.regs
        b = ProgramBuilder(f"interference-probe[loads={p.probe_loads}]")
        for k in range(p.probe_loads):
            b.li(r.tmp, self._probe_entry(k))
            b.flush(r.tmp, 0)
        b.fence()
        b.li(r.scratch_addr, self._probe_entry(0))
        b.rdtscp(r.ts1)
        for _ in range(p.probe_loads):
            # Dependent chase: each miss arrives at the shared port only
            # after the previous one was serviced, sweeping the recording.
            b.load(r.scratch_addr, r.scratch_addr, 0)
        b.rdtscp(r.ts2)
        b.halt()
        return b.build()

    # -- stages ----------------------------------------------------------

    def prepare(self) -> None:
        """Memory images + victim warm-up run. Idempotent."""
        if self._prepared:
            return
        p, lay = self.params, self.layout
        vdram = self.victim_hierarchy.dram
        vdram.poke(lay.a_base, 0)
        vdram.poke(lay.secret_addr, 0)
        for k in range(p.n_loads + 1):
            vdram.poke(lay.p_entry(k), 0)
        vdram.poke(lay.table_entry(0), 0)
        for i, word in enumerate(chain_pointers(lay, p.condition_accesses)):
            vdram.poke(lay.chain_entry(i), word)
        adram = self.attacker_hierarchy.dram
        for k in range(p.probe_loads):
            nxt = self._probe_entry(k + 1) if k + 1 < p.probe_loads else 0
            adram.poke(self._probe_entry(k), nxt)
        self.victim.run(self._build_victim_setup())
        self._victim_round = self._build_victim_round()
        self._probe = self._build_probe()
        self._prepared = True

    def sample(self, secret_bit: int) -> InterferenceSample:
        """Train, plant ``secret_bit``, run victim + attacker once each."""
        if not self._prepared:
            self.prepare()
        p, lay = self.params, self.layout
        vdram = self.victim_hierarchy.dram
        # Re-mistrain: in-bounds runs, no recording.
        vdram.poke(lay.table_entry(0), 0)
        for _ in range(p.train_runs):
            self.victim.run(self._victim_round)
        # Measured victim run: out-of-bounds index, port recorded.
        vdram.poke(lay.secret_addr, secret_bit & 1)
        vdram.poke(lay.table_entry(0), lay.out_of_bounds_index)
        timeline = OccupancyTimeline()
        self.victim.port_timeline = timeline
        try:
            vresult = self.victim.run(self._victim_round)
        finally:
            self.victim.port_timeline = None
        stall = self._victim_stall(vresult)
        # Attacker probe replays against the recording.
        self.attacker.contended_timeline = timeline
        try:
            aresult = self.attacker.run(self._probe)
        finally:
            self.attacker.contended_timeline = None
        return InterferenceSample(
            secret=secret_bit & 1,
            probe_latency=aresult.timer_delta(self.regs.ts1, self.regs.ts2),
            victim_stall=stall,
            port_busy_cycles=timeline.busy_cycles,
            port_intervals=len(timeline),
        )

    def sample_many(self, secret_bit: int, rounds: int) -> List[InterferenceSample]:
        return [self.sample(secret_bit) for _ in range(rounds)]

    def _victim_stall(self, result) -> int:
        pc = self.bounds_branch_pc
        events = [e for e in result.squashes if e.branch_pc == pc]
        if not events:
            raise AttackError(
                "the victim bounds-check branch never mis-predicted — "
                "cross-run mistraining failed"
            )
        return events[-1].outcome.stall_cycles
