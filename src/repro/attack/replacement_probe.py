"""Replacement-state side-channel probe (why CleanupSpec uses random L1).

CleanupSpec adopts **random replacement** in the protected L1 specifically
to close side channels over replacement metadata (paper §II-B, citing
LRU-state attacks [5, 43]). This module makes that design decision
testable: an *age probe* that infers whether a victim touched a target
line purely from which line a subsequent fill evicts.

Probe protocol (attacker's view, one trial):

1. prime the target's L1 set with the attacker's own lines, oldest-first,
   with the **target line primed first** (so it is the LRU line);
2. let the victim run — it either touches the target (refreshing its
   recency) or not;
3. insert one more conflicting line and check which primed line vanished.

Under LRU the evicted line is the set's oldest: the target itself if the
victim did *not* touch it, an attacker line if it did — one trial leaks
one bit. Under random replacement the evicted way is independent of the
victim's access, and the probe's advantage collapses to chance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..cache.hierarchy import CacheHierarchy
from .eviction_sets import congruent_candidates, partition_ways
from .layout import DEFAULT_LAYOUT, AttackLayout


@dataclass(frozen=True)
class AgeProbeResult:
    """Outcome of repeated age-probe trials against one hierarchy."""

    trials: int
    correct: int

    @property
    def accuracy(self) -> float:
        return self.correct / self.trials if self.trials else 0.0


class ReplacementAgeProbe:
    """Infers victim accesses from replacement behaviour."""

    def __init__(
        self,
        hierarchy: CacheHierarchy,
        target: int,
        layout: AttackLayout = DEFAULT_LAYOUT,
    ) -> None:
        self.hierarchy = hierarchy
        self.target = target
        ways = partition_ways(hierarchy)
        # Enough conflicting lines to fill the partition minus the target,
        # plus one inserter per trial (rotated to stay distinct from the
        # resident fillers).
        self._fillers: List[int] = congruent_candidates(target, ways - 1, layout)
        self._inserters: List[int] = congruent_candidates(
            target, 64, layout
        )[ways - 1 :]
        self._next_inserter = 0
        self._last_inserter: int | None = None

    def _prime(self, cycle: int) -> None:
        """Target first (oldest under LRU), then the fillers."""
        self.hierarchy.flush_line(self.target)
        for filler in self._fillers:
            self.hierarchy.flush_line(filler)
        if self._last_inserter is not None:
            # Leftover from the previous trial would steal a way and force
            # an unintended eviction during priming.
            self.hierarchy.flush_line(self._last_inserter)
        self.hierarchy.access(self.target, cycle)
        for i, filler in enumerate(self._fillers):
            self.hierarchy.access(filler, cycle + 1 + i)

    def trial(self, victim_touches_target: bool, cycle: int) -> bool:
        """One probe round; returns the probe's guess for the victim bit."""
        self._prime(cycle)
        if victim_touches_target:
            self.hierarchy.access(self.target, cycle + 100)  # victim access
        inserter = self._inserters[self._next_inserter % len(self._inserters)]
        self._next_inserter += 1
        self._last_inserter = inserter
        self.hierarchy.access(inserter, cycle + 200)
        # Guess "victim touched it" iff the target survived the insertion.
        return self.hierarchy.in_l1(self.target)

    def run(self, trials: int, seed_pattern: int = 0xB5) -> AgeProbeResult:
        """Alternating victim behaviour; count correct inferences."""
        correct = 0
        for t in range(trials):
            truth = bool((seed_pattern >> (t % 8)) & 1)
            guess = self.trial(truth, cycle=t * 1000)
            correct += int(guess == truth)
        return AgeProbeResult(trials=trials, correct=correct)


def probe_accuracy_under_policy(use_lru: bool, trials: int = 64, seed: int = 0) -> float:
    """Age-probe accuracy against an L1 with LRU or random replacement."""
    from ..cache.replacement import LruReplacement

    if use_lru:
        hierarchy = CacheHierarchy(seed=seed, l1_policy=LruReplacement(), nomo_threads=1)
    else:
        hierarchy = CacheHierarchy(seed=seed, nomo_threads=1)
    target = DEFAULT_LAYOUT.p_entry(1)
    probe = ReplacementAgeProbe(hierarchy, target)
    return probe.run(trials).accuracy
