"""The unXpec attack: gadgets, eviction sets, calibration, campaigns."""

from .calibration import CalibrationResult, calibrate
from .campaign import BitRecord, CampaignResult, LeakageCampaign
from .channel import (
    CHANNELS,
    Channel,
    ChannelVerdict,
    ContentionTimingChannel,
    FlushReloadChannel,
    RollbackTimingChannel,
    ThresholdDecoder,
    TrialObservation,
    make_channel,
)
from .coding import (
    code_rate,
    decode_bits,
    decode_block,
    encode_bits,
    encode_block,
    expansion_factor,
)
from .eviction_sets import (
    EvictionSet,
    build_prime_addresses,
    congruent_candidates,
    evicts,
    find_eviction_set,
    partition_ways,
    reduce_eviction_set,
)
from .gadgets import GadgetParams, RewindGadget, RewindParams, UnxpecGadget
from .interference import (
    InterferenceHarness,
    InterferenceParams,
    InterferenceSample,
)
from .layout import DEFAULT_LAYOUT, DEFAULT_REGS, AttackLayout, Regs, chain_pointers
from .replacement_probe import (
    AgeProbeResult,
    ReplacementAgeProbe,
    probe_accuracy_under_policy,
)
from .secrets import bits_to_bytes, bits_to_text, bytes_to_bits, hamming_distance, random_bits
from .rewind import RewindAttack, RewindSample
from .spectre import ProbeReading, SpectreResult, SpectreV1Attack
from .unxpec import RoundSample, UnxpecAttack

__all__ = [
    "AttackLayout",
    "Regs",
    "DEFAULT_LAYOUT",
    "DEFAULT_REGS",
    "chain_pointers",
    "GadgetParams",
    "UnxpecGadget",
    "RewindParams",
    "RewindGadget",
    "RewindAttack",
    "RewindSample",
    "InterferenceParams",
    "InterferenceHarness",
    "InterferenceSample",
    "EvictionSet",
    "find_eviction_set",
    "build_prime_addresses",
    "congruent_candidates",
    "evicts",
    "reduce_eviction_set",
    "partition_ways",
    "ThresholdDecoder",
    "Channel",
    "ChannelVerdict",
    "TrialObservation",
    "RollbackTimingChannel",
    "FlushReloadChannel",
    "ContentionTimingChannel",
    "CHANNELS",
    "make_channel",
    "encode_bits",
    "decode_bits",
    "encode_block",
    "decode_block",
    "code_rate",
    "expansion_factor",
    "CalibrationResult",
    "calibrate",
    "UnxpecAttack",
    "RoundSample",
    "LeakageCampaign",
    "CampaignResult",
    "BitRecord",
    "random_bits",
    "bits_to_text",
    "bits_to_bytes",
    "bytes_to_bits",
    "hamming_distance",
    "SpectreV1Attack",
    "ReplacementAgeProbe",
    "AgeProbeResult",
    "probe_accuracy_under_policy",
    "SpectreResult",
    "ProbeReading",
]
