"""Threshold calibration (paper §VI-A).

Before leaking unknown secrets, the attacker runs rounds with *known*
planted bits, collects the two latency distributions, and derives the
decode threshold. The paper inspects KDE plots (Figs. 7/8) and picks 178 /
183 cycles; :func:`calibrate` automates the same decision with the
error-minimising threshold over the calibration samples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..common.errors import CalibrationError
from ..common.stats import DensityCurve, density_curve, optimal_threshold, summarize
from .channel import ThresholdDecoder
from .unxpec import UnxpecAttack


@dataclass(frozen=True)
class CalibrationResult:
    """Latency distributions and the derived decoder."""

    zeros: tuple
    ones: tuple
    threshold: float

    @property
    def decoder(self) -> ThresholdDecoder:
        return ThresholdDecoder(self.threshold)

    @property
    def mean_difference(self) -> float:
        """The secret-dependent timing difference (paper: 22 / 32 cycles)."""
        return sum(self.ones) / len(self.ones) - sum(self.zeros) / len(self.zeros)

    def curve(self, secret: int, points: int = 200) -> DensityCurve:
        """KDE density of one class over a common grid (Figs. 7/8 series)."""
        samples = self.ones if secret else self.zeros
        lo = min(min(self.zeros), min(self.ones)) - 15
        hi = max(max(self.zeros), max(self.ones)) + 15
        return density_curve(samples, lo=lo, hi=hi, points=points)

    def summary(self) -> str:
        return (
            f"secret0: {summarize(self.zeros)}\n"
            f"secret1: {summarize(self.ones)}\n"
            f"threshold={self.threshold:.1f} mean_diff={self.mean_difference:.1f}"
        )


def calibrate(attack: UnxpecAttack, rounds_per_class: int = 200) -> CalibrationResult:
    """Collect ``rounds_per_class`` samples per secret value and fit a threshold.

    Interleaves the classes (0,1,0,1,…) so slow drifts affect both equally.
    """
    if rounds_per_class < 2:
        raise CalibrationError("need at least 2 rounds per class")
    attack.prepare()
    zeros: List[int] = []
    ones: List[int] = []
    for _ in range(rounds_per_class):
        zeros.append(attack.sample(0).latency)
        ones.append(attack.sample(1).latency)
    threshold = optimal_threshold(zeros, ones)
    return CalibrationResult(zeros=tuple(zeros), ones=tuple(ones), threshold=threshold)
