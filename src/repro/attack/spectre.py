"""Classic Spectre v1 (paper Algorithm 1) with a Flush+Reload probe.

This attack is the *motivation* for CleanupSpec: the transient load's cache
footprint survives the squash on an unprotected machine, so probing the
array ``P`` recovers ``A[i]``. Against CleanupSpec the rollback erases the
footprint and the probe finds nothing — while unXpec (same machine, same
gadget family) still leaks through the rollback *duration*. The extension
experiment pairs the two to make that contrast explicit.

Structure mirrors :class:`~repro.attack.gadgets.UnxpecGadget`: a training
loop over one shared sender, a final out-of-bounds invocation, then a probe
phase timing each ``P[64*j]``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..cache.hierarchy import CacheHierarchy
from ..common.config import SystemConfig
from ..common.errors import AttackError
from ..cpu.backend import make_core
from ..defense.base import Defense
from ..defense.unsafe import UnsafeBaseline
from ..isa.builder import ProgramBuilder
from ..isa.program import Program
from .layout import DEFAULT_LAYOUT, DEFAULT_REGS, AttackLayout, Regs, chain_pointers
from .unxpec import DefenseFactory

#: Sentinel A-value used by wrong-path overrun iterations: it maps outside
#: the probed alphabet so speculative overruns cannot pollute the probe.
_SENTINEL_INDEX = 1


@dataclass(frozen=True)
class ProbeReading:
    value: int
    latency: int
    cached: bool


@dataclass(frozen=True)
class SpectreResult:
    """Outcome of one Spectre round + probe."""

    secret: int
    readings: tuple
    guess: Optional[int]

    @property
    def success(self) -> bool:
        return self.guess == self.secret

    @property
    def hot_values(self) -> List[int]:
        return [r.value for r in self.readings if r.cached]


class SpectreV1Attack:
    """Algorithm 1 against a configurable defense (default: unsafe)."""

    def __init__(
        self,
        defense_factory: Optional[DefenseFactory] = None,
        alphabet: int = 16,
        train_iters: int = 8,
        layout: AttackLayout = DEFAULT_LAYOUT,
        regs: Regs = DEFAULT_REGS,
        config: Optional[SystemConfig] = None,
        seed: int = 0,
    ) -> None:
        if not 2 <= alphabet <= 63:
            raise AttackError("alphabet must be in 2..63 (one L1 set per entry)")
        self.alphabet = alphabet
        self.train_iters = train_iters
        self.layout = layout
        self.regs = regs
        self.hierarchy = CacheHierarchy(config=config, seed=seed)
        factory = defense_factory or (lambda h: UnsafeBaseline(h))
        self.defense: Defense = factory(self.hierarchy)
        self.core = make_core(
            self.hierarchy, self.defense, config=self.hierarchy.config.core
        )
        self._round: Optional[Program] = None

    # ------------------------------------------------------------------

    def memory_image(self, secret_value: int) -> dict:
        """The victim data structures as a plain word→value map.

        Same contents :meth:`_init_memory` pokes into the simulator's
        DRAM; used by the static analysis to replay witnesses concretely.
        """
        from ..memory.dram import Dram

        dram = Dram()
        self._write_memory(dram, secret_value)
        return dram.image()

    def _init_memory(self, secret_value: int) -> None:
        self._write_memory(self.hierarchy.dram, secret_value)

    def _write_memory(self, dram, secret_value: int) -> None:
        lay = self.layout
        dram.poke(lay.a_base, 0)  # training value -> P[0]
        # Wrong-path overrun sentinel: A[1] maps past the probed alphabet.
        dram.poke(lay.a_base + 8 * _SENTINEL_INDEX, self.alphabet)
        dram.poke(lay.secret_addr, secret_value % self.alphabet)
        for i in range(self.train_iters):
            dram.poke(lay.table_entry(i), 0)
        dram.poke(lay.table_entry(self.train_iters), lay.out_of_bounds_index)
        for i in range(self.train_iters + 1, self.train_iters + 64):
            dram.poke(lay.table_entry(i), _SENTINEL_INDEX)
        for i, word in enumerate(chain_pointers(lay, 1)):
            dram.poke(lay.chain_entry(i), word)

    def build_round(self) -> Program:
        """The round program (public so the static analyzer can lint it)."""
        lay, r = self.layout, self.regs
        b = ProgramBuilder(f"spectre-v1[alphabet={self.alphabet}]")
        b.li(r.a_base, lay.a_base)
        b.li(r.p_base, lay.p_base)
        b.li(r.chain, lay.chain_base)
        b.li(r.table, lay.table_base)
        b.li(r.iters, self.train_iters + 1)
        b.li(r.i, 0)
        b.label("invoke")
        b.shli(r.scratch_addr, r.i, 3)
        b.add(r.scratch_addr, r.table, r.scratch_addr)
        b.load(r.index, r.scratch_addr, 0)
        # FLUSH(): evict the whole probe array and the bound (Alg. 1 l. 19).
        for j in range(self.alphabet):
            b.flush(r.p_base, 64 * j)
        b.li(r.tmp, lay.chain_entry(0))
        b.flush(r.tmp, 0)
        b.fence()
        # VICTIM(index): bounds check + dependent probe-array load.
        b.load(r.bound, r.chain, 0)
        b.branch("ge", r.index, r.bound, "after_body")
        b.shli(r.scratch_addr, r.index, 3)
        b.add(r.scratch_addr, r.a_base, r.scratch_addr)
        b.load(r.secret, r.scratch_addr, 0)
        b.shli(r.secret_off, r.secret, 6)
        b.add(r.scratch_addr, r.p_base, r.secret_off)
        b.load(r.transient_dst(1), r.scratch_addr, 0)  # y = P[64 * A[index]]
        b.label("after_body")
        b.addi(r.i, r.i, 1)
        b.branch("lt", r.i, r.iters, "invoke")
        b.halt()
        return b.build()

    def secret_ranges(self) -> tuple:
        """Taint-source declaration for the static analyzer."""
        return (self.layout.secret_range,)

    # ------------------------------------------------------------------

    def run(self, secret_value: int) -> SpectreResult:
        """POISON + VICTIM(i), then PROBE by timing each P entry."""
        secret_value, result = self._run_round(secret_value)
        readings = self._probe()
        hot = [r.value for r in readings if r.cached]
        guess = hot[0] if len(hot) == 1 else None
        return SpectreResult(secret=secret_value, readings=tuple(readings), guess=guess)

    def run_measured(self, secret_value: int):
        """One round for the scenario matrix: ``(RunResult, guess)``.

        The :class:`~repro.cpu.timing.RunResult` carries the squash events
        (rollback-timing channel); the guess comes from a *non-mutating*
        residency probe of the P array (flush+reload channel) so probing
        one trial never perturbs the next.
        """
        secret_value, result = self._run_round(secret_value)
        lay = self.layout
        hot = [
            j
            for j in range(self.alphabet)
            if self.hierarchy.in_l1(lay.p_entry(j))
            or self.hierarchy.in_l2(lay.p_entry(j))
        ]
        guess = hot[0] if len(hot) == 1 else None
        return result, guess

    def _run_round(self, secret_value: int):
        secret_value %= self.alphabet
        self._init_memory(secret_value)
        if self._round is None:
            self._round = self.build_round()
        # Warm the secret line (the victim uses it) and the index table.
        lay = self.layout
        self.hierarchy.warm([lay.secret_addr, lay.a_base])
        table_lines = ((self.train_iters + 64) * 8 + 63) // 64
        self.hierarchy.warm(lay.table_base + 64 * i for i in range(table_lines))
        result = self.core.run(self._round)
        return secret_value, result

    def _probe(self) -> List[ProbeReading]:
        """Flush+Reload: time a load of every probe entry (Alg. 1 l. 14-17)."""
        lat = self.hierarchy.latency
        threshold = (lat.l2_total + lat.memory_total) // 2
        readings = []
        for j in range(self.alphabet):
            access = self.hierarchy.access(self.layout.p_entry(j), cycle=0)
            readings.append(
                ProbeReading(value=j, latency=access.latency, cached=access.latency < threshold)
            )
        return readings
