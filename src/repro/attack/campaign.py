"""Secret-leakage campaign (paper §VI-B/C, Figs. 9-11).

A campaign calibrates a threshold, then leaks an n-bit secret one bit per
round (or ``samples_per_bit`` rounds per bit with majority decoding),
recording per-bit latency, guess, and correctness — the raw series behind
Figures 10 and 11 — plus the leakage-rate accounting of §VI-B.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..common.errors import AttackError
from ..common.stats import decode_accuracy
from ..common.units import PAPER_FREQUENCY_HZ, LeakageRate
from .calibration import CalibrationResult, calibrate
from .channel import ThresholdDecoder
from .unxpec import UnxpecAttack


@dataclass(frozen=True)
class BitRecord:
    """One leaked bit (one row of the Fig. 10/11 scatter)."""

    index: int
    secret: int
    latencies: tuple
    guess: int

    @property
    def correct(self) -> bool:
        return self.guess == self.secret

    @property
    def latency(self) -> float:
        """First (usually only) sample — what the figures plot."""
        return self.latencies[0]


@dataclass
class CampaignResult:
    """Everything the effectiveness/speed experiments report."""

    records: List[BitRecord]
    threshold: float
    samples_per_bit: int
    cycles_total: int
    frequency_hz: float = PAPER_FREQUENCY_HZ

    @property
    def bits(self) -> int:
        return len(self.records)

    @property
    def accuracy(self) -> float:
        return decode_accuracy(
            [r.guess for r in self.records], [r.secret for r in self.records]
        )

    @property
    def cycles_per_bit(self) -> float:
        if not self.records:
            raise AttackError("empty campaign")
        return self.cycles_total / self.bits

    @property
    def cycles_per_sample(self) -> float:
        return self.cycles_per_bit / self.samples_per_bit

    @property
    def leakage(self) -> LeakageRate:
        return LeakageRate(self.cycles_per_bit, self.frequency_hz)

    def errors(self) -> List[BitRecord]:
        return [r for r in self.records if not r.correct]


class LeakageCampaign:
    """Calibrate once, then leak an arbitrary bitstring."""

    def __init__(
        self,
        attack: UnxpecAttack,
        samples_per_bit: int = 1,
        calibration_rounds: int = 200,
    ) -> None:
        if samples_per_bit < 1:
            raise AttackError("samples_per_bit must be >= 1")
        self.attack = attack
        self.samples_per_bit = samples_per_bit
        self.calibration_rounds = calibration_rounds
        self.calibration: Optional[CalibrationResult] = None

    def calibrate(self) -> CalibrationResult:
        if self.calibration is None:
            self.calibration = calibrate(self.attack, self.calibration_rounds)
        return self.calibration

    @property
    def decoder(self) -> ThresholdDecoder:
        return self.calibrate().decoder

    def run_bytes(self, secret: bytes) -> "tuple[CampaignResult, bytes]":
        """Leak a byte string; returns the campaign and the recovered bytes.

        Convenience wrapper for message-exfiltration scenarios (see
        ``examples/covert_channel_demo.py``): bits are packed MSB-first.
        """
        from .secrets import bits_to_bytes, bytes_to_bits

        bits = bytes_to_bits(secret, len(secret) * 8)
        result = self.run(bits)
        return result, bits_to_bytes([r.guess for r in result.records])

    def run(self, secret_bits: Sequence[int]) -> CampaignResult:
        """Leak ``secret_bits``; the decoder never sees the planted values."""
        decoder = self.decoder
        records: List[BitRecord] = []
        cycles_total = 0
        for index, secret in enumerate(secret_bits):
            samples = self.attack.sample_many(secret & 1, self.samples_per_bit)
            latencies = tuple(s.latency for s in samples)
            cycles_total += sum(s.total_cycles for s in samples)
            guess = decoder.decode_majority(latencies)
            records.append(
                BitRecord(index=index, secret=secret & 1, latencies=latencies, guess=guess)
            )
        return CampaignResult(
            records=records,
            threshold=decoder.threshold,
            samples_per_bit=self.samples_per_bit,
            cycles_total=cycles_total,
            frequency_hz=self.attack.hierarchy.config.core.frequency_hz,
        )
