"""Secret bitstring utilities (paper Fig. 9).

The effectiveness experiment leaks a randomly generated 1,000-bit secret.
Bits come from a seeded generator so Figures 9–11 are reproducible.
"""

from __future__ import annotations

from typing import List, Sequence

from ..common.rng import derive_rng

#: Seed tag for the canonical 1,000-bit secret of Figs. 9-11.
FIG9_TAG = "fig9-secret"


def random_bits(count: int, seed: int = 0, tag: str = FIG9_TAG) -> List[int]:
    """``count`` uniform random bits from a derived stream."""
    if count < 0:
        raise ValueError("count must be non-negative")
    rng = derive_rng(seed, tag)
    return [int(b) for b in rng.integers(0, 2, size=count)]


def bits_to_text(bits: Sequence[int], width: int = 100) -> str:
    """Render a bitstring in rows of ``width`` (Fig. 9-style dump)."""
    chars = "".join("1" if b else "0" for b in bits)
    return "\n".join(chars[i : i + width] for i in range(0, len(chars), width))


def bits_to_bytes(bits: Sequence[int]) -> bytes:
    """Pack bits MSB-first into bytes (padded with zeros)."""
    out = bytearray()
    for i in range(0, len(bits), 8):
        value = 0
        for b in bits[i : i + 8]:
            value = (value << 1) | (b & 1)
        value <<= max(0, 8 - len(bits[i : i + 8]))
        out.append(value)
    return bytes(out)


def bytes_to_bits(data: bytes, count: int) -> List[int]:
    """Inverse of :func:`bits_to_bytes` (first ``count`` bits)."""
    bits: List[int] = []
    for byte in data:
        for shift in range(7, -1, -1):
            bits.append((byte >> shift) & 1)
    return bits[:count]


def hamming_distance(a: Sequence[int], b: Sequence[int]) -> int:
    """Number of positions where two equal-length bitstrings differ."""
    if len(a) != len(b):
        raise ValueError("bitstrings must have equal length")
    return sum(1 for x, y in zip(a, b) if (x & 1) != (y & 1))
