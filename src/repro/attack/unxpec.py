"""The unXpec attack orchestrator (paper §V).

:class:`UnxpecAttack` wires a protected machine (hierarchy + defense +
core) to an Algorithm-2 gadget and drives the two stages of Figure 4:

* :meth:`prepare` — construct eviction sets (if the §V-B optimisation is
  on), lay out the victim/attacker memory image, and run the setup program
  (warming + priming);
* :meth:`sample` — plant a secret bit, run one round (mistrain → flush →
  fence → timestamp → trigger → timestamp), and return the receiver's
  latency measurement with the defense-side ground truth attached for
  analysis.

The same object is reused across thousands of rounds; the hierarchy,
predictor and defense state persist exactly as they would on real hardware.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from ..cache.hierarchy import CacheHierarchy
from ..common.config import SystemConfig
from ..common.errors import AttackError
from ..cpu.backend import make_core
from ..cpu.noise import NoiseModel
from ..cpu.timing import RunResult, SquashEvent
from ..defense.base import Defense
from ..defense.cleanupspec import CleanupSpec
from .eviction_sets import build_prime_addresses
from .gadgets import GadgetParams, UnxpecGadget
from .layout import DEFAULT_LAYOUT, AttackLayout

DefenseFactory = Callable[[CacheHierarchy], Defense]


@dataclass(frozen=True)
class RoundSample:
    """One covert-channel sample with simulator-side ground truth."""

    secret: int
    #: ts2 - ts1: the only thing the real receiver sees.
    latency: int
    #: Defense stall of the attack squash (ground truth, for analysis).
    stall: int
    rollback_cycles: int
    invalidated_l1: int
    invalidated_l2: int
    restored_l1: int
    inflight_transient: int
    #: Branch resolution time (T1-T2 proxy): resolve minus the first
    #: timestamp (used by the Fig. 2 experiment).
    resolution_time: int
    total_cycles: int


class UnxpecAttack:
    """End-to-end unXpec against a configurable defense."""

    def __init__(
        self,
        params: GadgetParams = GadgetParams(),
        defense_factory: Optional[DefenseFactory] = None,
        use_eviction_sets: bool = False,
        layout: AttackLayout = DEFAULT_LAYOUT,
        config: Optional[SystemConfig] = None,
        noise: Optional[NoiseModel] = None,
        seed: int = 0,
    ) -> None:
        self.params = params
        self.layout = layout
        self.use_eviction_sets = use_eviction_sets
        self.hierarchy = CacheHierarchy(config=config, seed=seed)
        factory = defense_factory or (lambda h: CleanupSpec(h))
        self.defense = factory(self.hierarchy)
        self.core = make_core(
            self.hierarchy,
            self.defense,
            config=self.hierarchy.config.core,
            noise=noise,
            noise_seed=seed,
        )
        self.gadget = UnxpecGadget(params=params, layout=layout)
        self._round_program = None
        self._prepared = False
        self.prime_addresses: List[int] = []

    # ------------------------------------------------------------------
    # preparation stage
    # ------------------------------------------------------------------

    def prepare(self) -> None:
        """Eviction sets + memory image + setup program. Idempotent."""
        if self._prepared:
            return
        self.gadget.init_memory(self.hierarchy.dram, secret_bit=0)
        if self.use_eviction_sets:
            self.prime_addresses = build_prime_addresses(
                self.hierarchy, self.gadget.target_sets_needed(), layout=self.layout
            )
            self.gadget.prime_addresses = self.prime_addresses
        setup = self.gadget.build_setup()
        self.core.run(setup)
        self._round_program = self.gadget.build_round()
        self._prepared = True

    # ------------------------------------------------------------------
    # measurement stage
    # ------------------------------------------------------------------

    def sample(self, secret_bit: int) -> RoundSample:
        """Plant ``secret_bit`` and measure one round."""
        if not self._prepared:
            self.prepare()
        self.gadget.set_secret(self.hierarchy.dram, secret_bit)
        result = self.core.run(self._round_program)
        return self._extract(secret_bit, result)

    def sample_many(self, secret_bit: int, rounds: int) -> List[RoundSample]:
        return [self.sample(secret_bit) for _ in range(rounds)]

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _attack_squash(self, result: RunResult) -> SquashEvent:
        pc = self.gadget.bounds_branch_pc
        if pc is None:
            raise AttackError("round program was never built")
        events = [e for e in result.squashes if e.branch_pc == pc]
        if not events:
            raise AttackError(
                "the bounds-check branch never mis-predicted — mistraining failed"
            )
        return events[-1]

    def _extract(self, secret_bit: int, result: RunResult) -> RoundSample:
        ts1, ts2 = self.gadget.ts_regs
        squash = self._attack_squash(result)
        outcome = squash.outcome
        return RoundSample(
            secret=secret_bit & 1,
            latency=result.timer_delta(ts1, ts2),
            stall=outcome.stall_cycles,
            rollback_cycles=outcome.stage("t5_rollback"),
            invalidated_l1=outcome.invalidated_l1,
            invalidated_l2=outcome.invalidated_l2,
            restored_l1=outcome.restored_l1,
            inflight_transient=squash.inflight_transient,
            resolution_time=squash.resolve_cycle - result.timer(ts1),
            total_cycles=result.cycles,
        )
