"""Eviction-set construction (paper §V-B, after Vila et al. [41]).

The optimised unXpec primes the L1 sets of the transient-load targets
``P[64k]`` so the transient install *must* evict a line, forcing a
restoration during rollback and enlarging the timing difference.

The attacker builds eviction sets with only its own loads and timing:

1. **Candidate generation** — the L1D is virtually indexed with
   4 KB of sets×lines, so addresses at 4 KB stride from a pool share the
   target's set (:func:`congruent_candidates`). This mirrors real attacks,
   where L1 congruence is derivable from page offsets.
2. **Conflict testing** — :func:`evicts` checks whether accessing a
   candidate group displaces the target, using the access *latency* the
   receiver observes (an L1 hit is distinguishable from L2/DRAM). Because
   the protected L1 uses random replacement, a single pass is
   probabilistic; the test makes several passes and majority-votes trials.
3. **Group reduction** — :func:`reduce_eviction_set` shrinks a conflicting
   candidate set to a minimal core with the group-testing strategy of
   Vila et al., adapted to the noisy oracle by re-verification.

NoMo partitioning confines the attacker's allocations to its own ways, but
since unXpec is same-thread (non-SMT model, §III-B), the sender's transient
loads allocate in the *same* partition — priming that partition is exactly
what the attack needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..cache.hierarchy import CacheHierarchy
from ..common.errors import EvictionSetError
from .layout import DEFAULT_LAYOUT, AttackLayout


@dataclass(frozen=True)
class EvictionSet:
    """A verified eviction set for one target line."""

    target: int
    lines: tuple

    def __len__(self) -> int:
        return len(self.lines)


def partition_ways(hierarchy: CacheHierarchy, thread: int = 0) -> int:
    """Ways the attacking thread can allocate into (NoMo partition size)."""
    return len(hierarchy.l1.policy.allowed_ways(thread, hierarchy.l1.geometry.ways))


def l1_hit_threshold(hierarchy: CacheHierarchy) -> int:
    """Latency below which the receiver classifies an access as an L1 hit."""
    return (hierarchy.latency.l1_hit + hierarchy.latency.l2_total) // 2


def congruent_candidates(
    target: int,
    count: int,
    layout: AttackLayout = DEFAULT_LAYOUT,
    stride: int = 4096,
) -> List[int]:
    """``count`` pool addresses sharing the target's L1 set.

    The L1D's sets×line_size span is one 4 KB page, so equal page offsets
    imply equal set indices under conventional (modulo) L1 indexing.
    """
    if count < 0:
        raise EvictionSetError("count must be non-negative")
    page_offset = target & (stride - 1)
    base = layout.eviction_pool_base
    out = []
    j = 0
    while len(out) < count:
        addr = base + j * stride + (page_offset & ~63)
        if addr >= base + layout.eviction_pool_size:
            raise EvictionSetError(
                f"eviction pool exhausted after {len(out)} candidates"
            )
        if (addr >> 6) != (target >> 6):
            out.append(addr)
        j += 1
    return out


def evicts(
    hierarchy: CacheHierarchy,
    candidates: Sequence[int],
    target: int,
    trials: int = 5,
    passes: int = 4,
) -> bool:
    """Timing conflict test: does accessing ``candidates`` evict ``target``?

    Each trial: load the target, traverse the candidates ``passes`` times,
    then reload the target and classify by latency. Majority over trials
    absorbs the randomness of the replacement policy.
    """
    if not candidates:
        return False
    threshold = l1_hit_threshold(hierarchy)
    votes = 0
    for _ in range(trials):
        hierarchy.access(target, cycle=0)
        for _ in range(passes):
            for addr in candidates:
                hierarchy.access(addr, cycle=0)
        latency = hierarchy.access(target, cycle=0).latency
        if latency > threshold:
            votes += 1
    return votes * 2 > trials


def reduce_eviction_set(
    hierarchy: CacheHierarchy,
    candidates: Sequence[int],
    target: int,
    size: int,
    trials: int = 5,
) -> List[int]:
    """Shrink ``candidates`` to ``size`` lines that still evict ``target``.

    Group-testing reduction: split into ``size + 1`` groups and discard any
    group whose removal keeps the set evicting; repeat until minimal.
    """
    current = list(candidates)
    if len(current) < size:
        raise EvictionSetError(f"need at least {size} candidates, got {len(current)}")
    while len(current) > size:
        groups = _split(current, size + 1)
        removed_one = False
        for g in range(len(groups)):
            rest = [a for i, group in enumerate(groups) if i != g for a in group]
            if len(rest) >= size and evicts(hierarchy, rest, target, trials=trials):
                current = rest
                removed_one = True
                break
        if not removed_one:
            # Noisy oracle refused every removal; trim arbitrarily if we are
            # still above the partition size and the trimmed set verifies.
            trimmed = current[: len(current) - 1]
            if len(trimmed) >= size and evicts(hierarchy, trimmed, target, trials=trials):
                current = trimmed
            else:
                break
    return current


def _split(items: Sequence[int], parts: int) -> List[List[int]]:
    size = max(1, (len(items) + parts - 1) // parts)
    return [list(items[i : i + size]) for i in range(0, len(items), size)]


def find_eviction_set(
    hierarchy: CacheHierarchy,
    target: int,
    layout: AttackLayout = DEFAULT_LAYOUT,
    size: Optional[int] = None,
    overprovision: int = 2,
    trials: int = 5,
) -> EvictionSet:
    """Construct and verify an eviction set for ``target``'s L1 set."""
    if size is None:
        size = partition_ways(hierarchy)
    candidates = congruent_candidates(target, overprovision * size + 2, layout)
    if not evicts(hierarchy, candidates, target, trials=trials):
        raise EvictionSetError(
            f"candidate pool does not conflict with target {target:#x}"
        )
    core = reduce_eviction_set(hierarchy, candidates, target, size, trials=trials)
    if not evicts(hierarchy, core, target, trials=trials):
        raise EvictionSetError(f"reduced set failed verification for {target:#x}")
    return EvictionSet(target=target, lines=tuple(core))


def build_prime_addresses(
    hierarchy: CacheHierarchy,
    targets: Sequence[int],
    layout: AttackLayout = DEFAULT_LAYOUT,
    size: Optional[int] = None,
) -> List[int]:
    """Eviction-set lines priming every target's set (setup-program input)."""
    out: List[int] = []
    for target in targets:
        out.extend(find_eviction_set(hierarchy, target, layout=layout, size=size).lines)
    return out
