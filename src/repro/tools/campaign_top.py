"""``campaign_top`` — a live terminal view of a running campaign.

Tails the JSONL lifecycle stream written by ``python -m repro.experiments
... --events-out events.jsonl`` and renders a ``top``-style dashboard:
per-experiment progress bars over shard states, retry/failure counts, the
cache hit rate, and an ETA extrapolated from completed-task throughput.

Usage::

    python -m repro.tools.campaign_top events.jsonl          # once, then exit
    python -m repro.tools.campaign_top events.jsonl --follow # live (0.5s poll)
    make campaign-top EVENTS=events.jsonl

The rendering pipeline is two pure functions — :func:`build_state` folds
an event list into a state dict and :func:`render` turns that into text —
so tests drive it from a file without a TTY, and ``--follow`` is just a
re-read/re-render loop that stops once ``campaign.done`` arrives.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Dict, List, Optional, Sequence

from ..campaign.events import read_events

#: Progress-bar glyphs per shard state.
_BAR = {"done": "#", "failed": "X", "running": ">", "pending": "."}


def build_state(events: Sequence[dict]) -> dict:
    """Fold a lifecycle event stream into the dashboard state.

    Tolerates partial streams (a campaign mid-flight): every field is
    derived only from events seen so far.
    """
    state: dict = {
        "started": None,
        "last_t": None,
        "finished": False,
        "jobs": None,
        "quick": None,
        "seed": None,
        "tasks_total": 0,
        "tasks_done": 0,
        "tasks_failed": 0,
        "retries": 0,
        "cache_hits": 0,
        "cache_lookups": 0,
        "experiments": {},  # id -> per-experiment dict, first-seen order
    }

    def exp(exp_id: str) -> dict:
        return state["experiments"].setdefault(
            exp_id,
            {
                "shards": {},  # shard index -> pending/running/done/failed
                "retries": 0,
                "status": "running",
                "checks": None,
            },
        )

    for event in events:
        t = event.get("t")
        if isinstance(t, (int, float)):
            state["last_t"] = t
        kind = event.get("event")
        if kind == "campaign.start":
            state["started"] = t
            state["jobs"] = event.get("jobs")
            state["quick"] = event.get("quick")
            state["seed"] = event.get("seed")
            state["tasks_total"] = int(event.get("tasks", 0))
            state["cache_lookups"] = int(event.get("experiments", 0))
        elif kind == "task.submit":
            exp(event["experiment"])["shards"][event.get("shard", -1)] = "pending"
        elif kind == "task.cache_hit":
            state["cache_hits"] += 1
            exp(event["experiment"])["status"] = "cached"
        elif kind == "task.start":
            shards = exp(event["experiment"])["shards"]
            shards[event.get("shard", -1)] = "running"
        elif kind == "task.retry":
            state["retries"] += 1
            exp(event["experiment"])["retries"] += 1
        elif kind == "task.done":
            state["tasks_done"] += 1
            exp(event["experiment"])["shards"][event.get("shard", -1)] = "done"
        elif kind == "task.failed":
            state["tasks_failed"] += 1
            record = exp(event["experiment"])
            record["shards"][event.get("shard", -1)] = "failed"
            record["status"] = "failed"
        elif kind == "experiment.done":
            record = exp(event["experiment"])
            record["status"] = event.get("status", "ok")
            passed = event.get("checks_passed")
            total = event.get("checks_total")
            if passed is not None and total is not None:
                record["checks"] = (int(passed), int(total))
        elif kind == "campaign.done":
            state["finished"] = True
    return state


def _bar(shards: Dict[int, str], width: int) -> str:
    if not shards:
        return "-" * width
    states = [shards[i] for i in sorted(shards)]
    if len(states) <= width:
        return "".join(_BAR[s] for s in states).ljust(width, " ")
    # More shards than columns: each column summarises a slice.
    out = []
    for col in range(width):
        lo = col * len(states) // width
        hi = max(lo + 1, (col + 1) * len(states) // width)
        chunk = states[lo:hi]
        for wanted in ("failed", "running", "pending", "done"):
            if wanted in chunk:
                out.append(_BAR[wanted])
                break
    return "".join(out)


def _eta(state: dict, now: Optional[float]) -> str:
    done = state["tasks_done"] + state["tasks_failed"]
    total = state["tasks_total"]
    if state["finished"]:
        return "done"
    if not done or not total or state["started"] is None or now is None:
        return "--"
    elapsed = max(0.0, now - state["started"])
    remaining = elapsed * (total - done) / done
    if remaining >= 90:
        return f"{remaining / 60:.1f}m"
    return f"{remaining:.0f}s"


def render(state: dict, now: Optional[float] = None, width: int = 72) -> str:
    """The dashboard text for one state snapshot (pure; no TTY needed)."""
    if now is None:
        now = state["last_t"]
    done = state["tasks_done"] + state["tasks_failed"]
    lookups = state["cache_lookups"]
    hit_rate = state["cache_hits"] / lookups if lookups else 0.0
    header = (
        f"campaign: {len(state['experiments'])} experiments  "
        f"tasks {done}/{state['tasks_total']}  "
        f"retries {state['retries']}  failed {state['tasks_failed']}  "
        f"cache {state['cache_hits']}/{lookups} ({hit_rate:.0%})  "
        f"eta {_eta(state, now)}"
    )
    lines = [header, "-" * min(width, len(header))]
    name_w = max([len(e) for e in state["experiments"]] or [4])
    bar_w = max(8, min(32, width - name_w - 28))
    for exp_id, record in state["experiments"].items():
        shards = record["shards"]
        n_done = sum(1 for s in shards.values() if s == "done")
        suffix = record["status"]
        if record["checks"] is not None:
            passed, total = record["checks"]
            suffix += f" {passed}/{total} checks"
        if record["retries"]:
            suffix += f" ({record['retries']} retries)"
        if record["status"] == "cached":
            bar = "cached".center(bar_w, " ")
            counts = ""
        else:
            bar = _bar(shards, bar_w)
            counts = f" {n_done}/{len(shards)}"
        lines.append(f"{exp_id:<{name_w}} [{bar}]{counts} {suffix}")
    if not state["experiments"]:
        lines.append("(waiting for campaign.start ...)")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.campaign_top",
        description="Live terminal dashboard over an --events-out stream.",
    )
    parser.add_argument("path", help="JSONL stream written by --events-out")
    parser.add_argument(
        "--follow",
        action="store_true",
        help="re-render until campaign.done arrives (default: render once)",
    )
    parser.add_argument(
        "--interval",
        type=float,
        default=0.5,
        metavar="SECONDS",
        help="poll interval with --follow (default: %(default)s)",
    )
    args = parser.parse_args(argv)

    while True:
        try:
            events = read_events(args.path)
        except OSError as exc:
            print(f"cannot read {args.path}: {exc}", file=sys.stderr)
            return 1
        state = build_state(events)
        now = time.time() if args.follow else None  # det: allow — live UI clock
        text = render(state, now=now)
        if args.follow and sys.stdout.isatty():
            sys.stdout.write("\x1b[2J\x1b[H")  # clear screen, home cursor
        print(text)
        if not args.follow or state["finished"]:
            return 0
        time.sleep(args.interval)


if __name__ == "__main__":
    try:
        sys.exit(main())
    except KeyboardInterrupt:
        print()
        sys.exit(130)
