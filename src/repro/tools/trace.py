"""Execution-trace rendering: text waterfalls of a :class:`RunResult`.

Debugging a timing channel means staring at *when* things happened. These
helpers render a core run (recorded with ``Core(record_timeline=True)``) as
an ASCII waterfall — one row per committed instruction, bars spanning
dispatch→start→complete — plus a squash annotation view showing each
mis-speculation's wrong-path size and defense stall breakdown.

Example::

    h = CacheHierarchy()
    core = Core(h, CleanupSpec(h), record_timeline=True)
    result = core.run(program)
    print(render_timeline(result))
    print(render_squashes(result))
"""

from __future__ import annotations

from typing import List, Optional

from ..cpu.timing import RunResult

#: Bar glyphs: queued (dispatch→start) and executing (start→complete).
_QUEUE_CHAR = "."
_EXEC_CHAR = "="


def _scale(cycle: int, t0: int, t1: int, width: int) -> int:
    if t1 <= t0:
        return 0
    pos = (cycle - t0) * (width - 1) // (t1 - t0)
    return max(0, min(width - 1, pos))


def render_timeline(
    result: RunResult,
    width: int = 64,
    max_rows: Optional[int] = None,
    start_cycle: int = 0,
    end_cycle: Optional[int] = None,
) -> str:
    """ASCII waterfall of the recorded instruction timeline.

    ``width`` is the number of character columns the cycle axis maps onto;
    ``start_cycle``/``end_cycle`` clip the view window.
    """
    if not result.timeline:
        return "(timeline empty — run the core with record_timeline=True)"
    t_end = end_cycle if end_cycle is not None else max(
        e.complete for e in result.timeline
    )
    entries = [
        e
        for e in result.timeline
        if e.complete >= start_cycle and e.dispatch <= t_end
    ]
    if max_rows is not None:
        entries = entries[:max_rows]
    if not entries:
        return "(no instructions in the requested window)"

    label_width = max(len(e.text) for e in entries)
    label_width = min(label_width, 28)
    header = (
        f"{'idx':>4} {'inst':<{label_width}} "
        f"|{str(start_cycle):<{width // 2 - 1}}{str(t_end):>{width - width // 2 - 1}}|"
    )
    lines: List[str] = [header]
    for e in entries:
        row = [" "] * width
        d = _scale(max(e.dispatch, start_cycle), start_cycle, t_end, width)
        s = _scale(max(e.start, start_cycle), start_cycle, t_end, width)
        c = _scale(min(e.complete, t_end), start_cycle, t_end, width)
        for i in range(d, s):
            row[i] = _QUEUE_CHAR
        for i in range(s, c + 1):
            row[i] = _EXEC_CHAR
        level = f" {e.level}" if e.level else ""
        text = e.text if len(e.text) <= label_width else e.text[: label_width - 1] + "~"
        lines.append(f"{e.index:>4} {text:<{label_width}} |{''.join(row)}|{level}")
    return "\n".join(lines)


def render_squashes(result: RunResult) -> str:
    """One line per mis-speculation with the defense's stage breakdown."""
    if not result.squashes:
        return "(no mis-speculations)"
    lines = [
        f"{'pc':>5} {'resolve':>8} {'squash':>7} {'resume':>7} "
        f"{'wp-inst':>7} {'loads':>5} {'stall':>5}  breakdown"
    ]
    for e in result.squashes:
        stages = ", ".join(f"{k}={v}" for k, v in e.outcome.breakdown.items() if v)
        lines.append(
            f"{e.branch_pc:>5} {e.resolve_cycle:>8} {e.squash_cycle:>7} "
            f"{e.fetch_resume:>7} {e.wrong_path_executed:>7} "
            f"{e.transient_loads:>5} {e.outcome.stall_cycles:>5}  "
            f"[{stages or 'none'}]"
        )
    return "\n".join(lines)


def summarize_run(result: RunResult) -> str:
    """Headline counters of a run."""
    lines = [
        f"program      : {result.program_name}",
        f"cycles       : {result.cycles}",
        f"instructions : {result.instructions}",
        f"IPC          : {result.instructions / max(1, result.cycles):.2f}",
        f"squashes     : {result.mispredictions}",
        f"defense stall: {result.total_defense_stall} cycles",
    ]
    if result.noise_event_cycles:
        lines.append(f"noise events : {result.noise_event_cycles} cycles")
    return "\n".join(lines)
