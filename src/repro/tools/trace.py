"""Execution-trace rendering: waterfalls and event logs.

Debugging a timing channel means staring at *when* things happened. These
helpers render instruction timelines as an ASCII waterfall — one row per
committed instruction, bars spanning dispatch→start→complete — plus a
squash annotation view showing each mis-speculation's wrong-path size and
defense stall breakdown.

Two sources feed the same waterfall renderer:

* a :class:`~repro.cpu.timing.RunResult` recorded with
  ``Core(record_timeline=True)`` (:func:`render_timeline`), and
* an :class:`~repro.obs.EventTrace` captured by an attached
  :class:`~repro.obs.Observability` (:func:`render_trace_timeline`), built
  from the trace's ``inst.commit`` events — the structured source that
  also drives the JSONL dump and :func:`render_events`.

Example::

    obs = Observability()
    h = CacheHierarchy(obs=obs)
    core = Core(h, CleanupSpec(h), obs=obs)
    result = core.run(program)
    print(render_trace_timeline(obs.trace, program=program))
    print(render_events(obs.trace, kinds="squash"))
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from ..cpu.timing import InstructionTiming, RunResult
from ..obs import EventTrace

#: Bar glyphs: queued (dispatch→start) and executing (start→complete).
_QUEUE_CHAR = "."
_EXEC_CHAR = "="


def _scale(cycle: int, t0: int, t1: int, width: int) -> int:
    if t1 <= t0:
        return 0
    pos = (cycle - t0) * (width - 1) // (t1 - t0)
    return max(0, min(width - 1, pos))


def _render_waterfall(
    entries: Sequence[InstructionTiming],
    width: int,
    max_rows: Optional[int],
    start_cycle: int,
    end_cycle: Optional[int],
) -> str:
    """Shared waterfall renderer over timeline-like entries."""
    if not entries:
        return "(timeline empty — attach an Observability or record_timeline=True)"
    t_end = end_cycle if end_cycle is not None else max(e.complete for e in entries)
    visible = [
        e for e in entries if e.complete >= start_cycle and e.dispatch <= t_end
    ]
    if max_rows is not None:
        visible = visible[:max_rows]
    if not visible:
        return "(no instructions in the requested window)"

    label_width = max(len(e.text) for e in visible)
    label_width = min(label_width, 28)
    header = (
        f"{'idx':>4} {'inst':<{label_width}} "
        f"|{str(start_cycle):<{width // 2 - 1}}{str(t_end):>{width - width // 2 - 1}}|"
    )
    lines: List[str] = [header]
    for e in visible:
        row = [" "] * width
        d = _scale(max(e.dispatch, start_cycle), start_cycle, t_end, width)
        s = _scale(max(e.start, start_cycle), start_cycle, t_end, width)
        c = _scale(min(e.complete, t_end), start_cycle, t_end, width)
        for i in range(d, s):
            row[i] = _QUEUE_CHAR
        for i in range(s, c + 1):
            row[i] = _EXEC_CHAR
        level = f" {e.level}" if e.level else ""
        text = e.text if len(e.text) <= label_width else e.text[: label_width - 1] + "~"
        lines.append(f"{e.index:>4} {text:<{label_width}} |{''.join(row)}|{level}")
    return "\n".join(lines)


def trace_timeline(trace: EventTrace, program=None) -> List[InstructionTiming]:
    """Rebuild per-instruction timeline entries from ``inst.commit`` events.

    The trace stores only the pc (building instruction text per commit
    would tax the hot path); pass the ``program`` to recover the assembly
    text, otherwise rows are labelled ``pc=N``.
    """
    entries: List[InstructionTiming] = []
    for event in trace.events("inst.commit"):
        index, pc, dispatch, start, complete, level = event.data
        if program is not None and 0 <= pc < len(program):
            text = str(program[pc])
        else:
            text = f"pc={pc}"
        entries.append(
            InstructionTiming(
                index=index,
                pc=pc,
                text=text,
                dispatch=dispatch,
                start=start,
                complete=complete,
                level=level,
            )
        )
    return entries


def render_timeline(
    result: RunResult,
    width: int = 64,
    max_rows: Optional[int] = None,
    start_cycle: int = 0,
    end_cycle: Optional[int] = None,
) -> str:
    """ASCII waterfall of a run recorded with ``record_timeline=True``.

    ``width`` is the number of character columns the cycle axis maps onto;
    ``start_cycle``/``end_cycle`` clip the view window.
    """
    if not result.timeline:
        return "(timeline empty — run the core with record_timeline=True)"
    return _render_waterfall(result.timeline, width, max_rows, start_cycle, end_cycle)


def render_trace_timeline(
    trace: EventTrace,
    program=None,
    width: int = 64,
    max_rows: Optional[int] = None,
    start_cycle: int = 0,
    end_cycle: Optional[int] = None,
) -> str:
    """ASCII waterfall built from an :class:`EventTrace`'s commit events."""
    entries = trace_timeline(trace, program=program)
    if not entries:
        return "(no inst.commit events — trace level 'commit' or 'full' required)"
    return _render_waterfall(entries, width, max_rows, start_cycle, end_cycle)


def render_events(
    trace: EventTrace,
    kinds: Optional[Iterable[str]] = None,
    max_rows: Optional[int] = None,
) -> str:
    """Flat ``cycle kind field=value …`` log of the buffered events.

    ``kinds`` filters by exact kind or dotted prefix (``"cache"``,
    ``"squash"``); a plain string is treated as one filter.
    """
    if isinstance(kinds, str):
        kinds = [kinds]
    rows: List[str] = []
    if trace.dropped:
        rows.append(
            f"(ring buffer wrapped: {trace.dropped} earlier events dropped, "
            f"showing the last {len(trace)} of {trace.emitted})"
        )
    for event in trace.events():
        if kinds is not None and not any(
            event.kind == k or event.kind.startswith(k + ".") for k in kinds
        ):
            continue
        payload = event.to_dict()
        fields = " ".join(
            f"{k}={v}" for k, v in payload.items() if k not in ("cycle", "kind")
        )
        rows.append(f"{event.cycle:>10} {event.kind:<14} {fields}")
        if max_rows is not None and len(rows) >= max_rows:
            break
    if not rows:
        return "(no matching events)"
    return "\n".join(rows)


def render_squashes(result: RunResult) -> str:
    """One line per mis-speculation with the defense's stage breakdown."""
    if not result.squashes:
        return "(no mis-speculations)"
    lines = [
        f"{'pc':>5} {'resolve':>8} {'squash':>7} {'resume':>7} "
        f"{'wp-inst':>7} {'loads':>5} {'stall':>5}  breakdown"
    ]
    for e in result.squashes:
        stages = ", ".join(f"{k}={v}" for k, v in e.outcome.breakdown.items() if v)
        lines.append(
            f"{e.branch_pc:>5} {e.resolve_cycle:>8} {e.squash_cycle:>7} "
            f"{e.fetch_resume:>7} {e.wrong_path_executed:>7} "
            f"{e.transient_loads:>5} {e.outcome.stall_cycles:>5}  "
            f"[{stages or 'none'}]"
        )
    return "\n".join(lines)


def summarize_run(result: RunResult) -> str:
    """Headline counters of a run."""
    lines = [
        f"program      : {result.program_name}",
        f"cycles       : {result.cycles}",
        f"instructions : {result.instructions}",
        f"IPC          : {result.instructions / max(1, result.cycles):.2f}",
        f"squashes     : {result.mispredictions}",
        f"defense stall: {result.total_defense_stall} cycles",
    ]
    if result.noise_event_cycles:
        lines.append(f"noise events : {result.noise_event_cycles} cycles")
    return "\n".join(lines)
