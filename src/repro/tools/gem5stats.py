"""gem5-style statistics facade (the artifact appendix's interface).

The paper's artifact evaluates Figure 12 by running gem5 twice per
benchmark and extracting three counters from ``benchmark_name.txt``:

* ``sim_ticks`` — total time for ``maxinst_count`` instructions,
* ``system.cpu.fetch.startCycles`` — time for the first
  ``startinst_count`` instructions (the warm-up to subtract), and
* ``system.cpu.iew.lsq.thread0.extraCleanupSquashTimeCyclesXX`` — extra
  time imposed by XX-cycle constant-time rollback,

then computes ``overhead = (no-const or XX-const) / unsafe-time`` over the
post-warm-up window. This module reproduces that exact workflow against
our simulator: :func:`run_gem5_style` emits a stats text with the same
keys, :func:`parse_stats` reads one back, and :func:`artifact_overhead`
implements the appendix's Calculation section verbatim — so the repository
can be driven the way the artifact documents, not only through
:mod:`repro.experiments`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..cache.hierarchy import CacheHierarchy
from ..common.errors import ExperimentError
from ..cpu.core import Core
from ..defense.base import Defense
from ..defense.cleanupspec import CleanupSpec
from ..defense.unsafe import UnsafeBaseline
from ..isa.program import Program

#: Artifact scheme names (the run_gem5spec.sh scheme_cleanupcache values).
SCHEME_UNSAFE = "UnsafeBaseline"
SCHEME_CLEANUP = "Cleanup_FOR_L1L2"


@dataclass(frozen=True)
class Gem5Stats:
    """The counters the artifact's Extraction step reads."""

    benchmark: str
    scheme: str
    sim_ticks: int
    start_cycles: int
    #: constant -> extra stall cycles in the measurement window.
    extra_cleanup_squash_time: Dict[int, int]

    @property
    def measured_ticks(self) -> int:
        """sim_ticks minus warm-up, the appendix's unsafe-time/no-constant."""
        return self.sim_ticks - self.start_cycles

    def render(self) -> str:
        """The benchmark_name.txt the artifact greps."""
        lines = [
            f"# scheme_cleanupcache={self.scheme} benchmark={self.benchmark}",
            f"sim_ticks {self.sim_ticks}",
            f"system.cpu.fetch.startCycles {self.start_cycles}",
        ]
        for const, extra in sorted(self.extra_cleanup_squash_time.items()):
            lines.append(
                "system.cpu.iew.lsq.thread0."
                f"extraCleanupSquashTimeCycles{const} {extra}"
            )
        return "\n".join(lines) + "\n"


def run_gem5_style(
    program: Program,
    scheme: str,
    maxinst_count: int,
    startinst_count: int,
    constants: tuple = (25, 30, 35, 45, 65),
    seed: int = 0,
    benchmark: str = "benchmark",
) -> Gem5Stats:
    """Run ``program`` under ``scheme`` and produce artifact-style stats.

    Follows the artifact: the first ``startinst_count`` committed
    instructions are warm-up; counters cover instructions up to
    ``maxinst_count``. For ``Cleanup_FOR_L1L2`` the constant-time extras
    are derived per squash as ``max(const, t5) - t5`` over the measurement
    window — exactly what the relaxed scheme would add.
    """
    if not 0 <= startinst_count < maxinst_count:
        raise ExperimentError("need 0 <= startinst_count < maxinst_count")

    hierarchy = CacheHierarchy(seed=seed)
    defense: Defense
    if scheme == SCHEME_UNSAFE:
        defense = UnsafeBaseline(hierarchy)
    elif scheme == SCHEME_CLEANUP:
        defense = CleanupSpec(hierarchy)
    else:
        raise ExperimentError(f"unknown scheme_cleanupcache {scheme!r}")

    core = Core(hierarchy, defense, record_timeline=True)
    result = core.run(program, max_instructions=max(maxinst_count * 4, 1_000_000))

    # Warm-up boundary: completion time of the startinst_count-th commit.
    start_cycles = 0
    if startinst_count > 0:
        idx = min(startinst_count, len(result.timeline)) - 1
        start_cycles = result.timeline[idx].complete if idx >= 0 else 0
    end_idx = min(maxinst_count, len(result.timeline)) - 1
    sim_ticks = result.timeline[end_idx].complete if end_idx >= 0 else result.cycles

    extras: Dict[int, int] = {}
    if scheme == SCHEME_CLEANUP:
        for const in constants:
            extra = 0
            for event in result.squashes:
                if not start_cycles <= event.squash_cycle <= sim_ticks:
                    continue
                t5 = event.outcome.stage("t5_rollback")
                extra += max(0, const - t5)
            extras[const] = extra

    return Gem5Stats(
        benchmark=benchmark,
        scheme=scheme,
        sim_ticks=sim_ticks,
        start_cycles=start_cycles,
        extra_cleanup_squash_time=extras,
    )


def parse_stats(text: str) -> Dict[str, int]:
    """Parse a rendered stats file back into ``{key: value}``."""
    out: Dict[str, int] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        key, _, value = line.partition(" ")
        try:
            out[key] = int(value)
        except ValueError as exc:
            raise ExperimentError(f"malformed stats line: {line!r}") from exc
    return out


def artifact_overhead(
    unsafe: Gem5Stats,
    cleanup: Gem5Stats,
    constant: Optional[int] = None,
) -> float:
    """The appendix's Calculation step.

    * ``unsafe-time``  = sim_ticks - startCycles   (UnsafeBaseline run)
    * ``no-constant``  = sim_ticks - startCycles   (Cleanup run)
    * ``XX-const``     = no-constant + extraCleanupSquashTimeCyclesXX
    * overhead         = (no-const or XX-const) / unsafe-time
    """
    unsafe_time = unsafe.measured_ticks
    if unsafe_time <= 0:
        raise ExperimentError("empty measurement window")
    protected = cleanup.measured_ticks
    if constant is not None:
        try:
            protected += cleanup.extra_cleanup_squash_time[constant]
        except KeyError as exc:
            raise ExperimentError(
                f"no extraCleanupSquashTimeCycles{constant} in the stats"
            ) from exc
    return protected / unsafe_time
