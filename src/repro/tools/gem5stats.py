"""gem5-style statistics facade (the artifact appendix's interface).

The paper's artifact evaluates Figure 12 by running gem5 twice per
benchmark and extracting three counters from ``benchmark_name.txt``:

* ``sim_ticks`` — total time for ``maxinst_count`` instructions,
* ``system.cpu.fetch.startCycles`` — time for the first
  ``startinst_count`` instructions (the warm-up to subtract), and
* ``system.cpu.iew.lsq.thread0.extraCleanupSquashTimeCyclesXX`` — extra
  time imposed by XX-cycle constant-time rollback,

then computes ``overhead = (no-const or XX-const) / unsafe-time`` over the
post-warm-up window. This module reproduces that exact workflow against
our simulator, driven by the :mod:`repro.obs` subsystem rather than an
ad-hoc recompute: :func:`run_gem5_style` runs the program under an
attached :class:`~repro.obs.Observability`, reads the commit boundaries
and per-squash rollback stages out of the **event trace**, cross-checks
them against the **stat registry**, and ships the registry snapshot with
the result. :func:`parse_stats` reads a rendered stats text back and
:func:`artifact_overhead` implements the appendix's Calculation section
verbatim — so the repository can be driven the way the artifact
documents, not only through :mod:`repro.experiments`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..cache.hierarchy import CacheHierarchy
from ..common.errors import ExperimentError
from ..cpu.core import Core
from ..defense.base import Defense
from ..defense.cleanupspec import CleanupSpec
from ..defense.unsafe import UnsafeBaseline
from ..isa.program import Program
from ..obs import Observability

#: Artifact scheme names (the run_gem5spec.sh scheme_cleanupcache values).
SCHEME_UNSAFE = "UnsafeBaseline"
SCHEME_CLEANUP = "Cleanup_FOR_L1L2"


@dataclass(frozen=True)
class Gem5Stats:
    """The counters the artifact's Extraction step reads."""

    benchmark: str
    scheme: str
    sim_ticks: int
    start_cycles: int
    #: constant -> extra stall cycles in the measurement window.
    extra_cleanup_squash_time: Dict[int, int]
    #: Full hierarchical registry snapshot the counters were derived from.
    registry_snapshot: Dict[str, object] = field(default_factory=dict, compare=False)

    @property
    def measured_ticks(self) -> int:
        """sim_ticks minus warm-up, the appendix's unsafe-time/no-constant."""
        return self.sim_ticks - self.start_cycles

    def render(self) -> str:
        """The benchmark_name.txt the artifact greps."""
        lines = [
            f"# scheme_cleanupcache={self.scheme} benchmark={self.benchmark}",
            f"sim_ticks {self.sim_ticks}",
            f"system.cpu.fetch.startCycles {self.start_cycles}",
        ]
        for const, extra in sorted(self.extra_cleanup_squash_time.items()):
            lines.append(
                "system.cpu.iew.lsq.thread0."
                f"extraCleanupSquashTimeCycles{const} {extra}"
            )
        return "\n".join(lines) + "\n"


def run_gem5_style(
    program: Program,
    scheme: str,
    maxinst_count: int,
    startinst_count: int,
    constants: tuple = (25, 30, 35, 45, 65),
    seed: int = 0,
    benchmark: str = "benchmark",
    obs: Optional[Observability] = None,
) -> Gem5Stats:
    """Run ``program`` under ``scheme`` and produce artifact-style stats.

    Follows the artifact: the first ``startinst_count`` committed
    instructions are warm-up; counters cover instructions up to
    ``maxinst_count``. For ``Cleanup_FOR_L1L2`` the constant-time extras
    are derived per squash as ``max(const, t5) - t5`` over the measurement
    window — exactly what the relaxed scheme would add.

    Every number is read out of the attached observability: commit
    boundaries from the trace's ``inst.commit`` events, rollback stages
    from its ``squash.end`` events, with the registry's ``core.*``
    counters as a consistency cross-check (an inconsistent derivation
    raises). Pass ``obs`` to share a registry across runs (its trace is
    cleared first — the derivation must only see this run); by default
    each run gets a fresh one, returned via ``registry_snapshot``.
    """
    if not 0 <= startinst_count < maxinst_count:
        raise ExperimentError("need 0 <= startinst_count < maxinst_count")

    max_instructions = max(maxinst_count * 4, 1_000_000)
    if obs is None:
        # Size the ring so no commit event of a legal run can be dropped:
        # the run aborts past max_instructions anyway. Squash/install events
        # ride in the same ring; give them headroom.
        obs = Observability(
            trace_capacity=4 * max_instructions, trace_level="commit"
        )
    hierarchy = CacheHierarchy(seed=seed, obs=obs)
    defense: Defense
    if scheme == SCHEME_UNSAFE:
        defense = UnsafeBaseline(hierarchy)
    elif scheme == SCHEME_CLEANUP:
        defense = CleanupSpec(hierarchy)
    else:
        raise ExperimentError(f"unknown scheme_cleanupcache {scheme!r}")

    core = Core(hierarchy, defense, obs=obs)
    reg = obs.registry
    # Pre-run registry values: with a shared obs the counters accumulate
    # across runs, so the cross-checks below compare this run's delta.
    committed_before = reg["core.instructions"].value()
    squashes_before = reg["core.squashes"].value()
    obs.trace.clear()  # the derivation below must only see this run
    result = core.run(program, max_instructions=max_instructions)

    # ---- derive the artifact counters from the event trace ----
    completes = [e.data[4] for e in obs.trace.events("inst.commit")]
    if obs.trace.dropped:
        raise ExperimentError(
            f"trace ring dropped {obs.trace.dropped} events; "
            "pass an Observability with a larger trace_capacity"
        )
    # Warm-up boundary: completion time of the startinst_count-th commit.
    start_cycles = 0
    if startinst_count > 0:
        idx = min(startinst_count, len(completes)) - 1
        start_cycles = completes[idx] if idx >= 0 else 0
    end_idx = min(maxinst_count, len(completes)) - 1
    sim_ticks = completes[end_idx] if end_idx >= 0 else result.cycles

    extras: Dict[int, int] = {}
    squash_ends = list(obs.trace.events("squash.end"))
    if scheme == SCHEME_CLEANUP:
        penalty = core.config.mispredict_penalty
        for const in constants:
            extra = 0
            for event in squash_ends:
                # The event is stamped at fetch-resume; squash handling
                # began mispredict-penalty + stall cycles earlier, which
                # recovers the squash_cycle the artifact windows on.
                squash_cycle = (
                    event.field("fetch_resume") - penalty - event.field("stall")
                )
                if not start_cycles <= squash_cycle <= sim_ticks:
                    continue
                extra += max(0, const - event.field("t5"))
            extras[const] = extra

    # ---- registry cross-checks: trace and counters must agree ----
    delta_committed = reg["core.instructions"].value() - committed_before
    # The Halt commit never emits an inst.commit event (mirroring the
    # recorded timeline); everything else must line up exactly.
    if not delta_committed - 1 <= len(completes) <= delta_committed:
        raise ExperimentError(
            f"trace/registry mismatch: {len(completes)} commit events vs "
            f"{delta_committed} committed instructions"
        )
    if reg["core.squashes"].value() - squashes_before != len(squash_ends):
        raise ExperimentError("trace/registry mismatch on squash count")

    return Gem5Stats(
        benchmark=benchmark,
        scheme=scheme,
        sim_ticks=sim_ticks,
        start_cycles=start_cycles,
        extra_cleanup_squash_time=extras,
        registry_snapshot=reg.to_dict(),
    )


def parse_stats(text: str) -> Dict[str, int]:
    """Parse a rendered stats file back into ``{key: value}``."""
    out: Dict[str, int] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        key, _, value = line.partition(" ")
        try:
            out[key] = int(value)
        except ValueError as exc:
            raise ExperimentError(f"malformed stats line: {line!r}") from exc
    return out


def artifact_overhead(
    unsafe: Gem5Stats,
    cleanup: Gem5Stats,
    constant: Optional[int] = None,
) -> float:
    """The appendix's Calculation step.

    * ``unsafe-time``  = sim_ticks - startCycles   (UnsafeBaseline run)
    * ``no-constant``  = sim_ticks - startCycles   (Cleanup run)
    * ``XX-const``     = no-constant + extraCleanupSquashTimeCyclesXX
    * overhead         = (no-const or XX-const) / unsafe-time
    """
    unsafe_time = unsafe.measured_ticks
    if unsafe_time <= 0:
        raise ExperimentError("empty measurement window")
    protected = cleanup.measured_ticks
    if constant is not None:
        try:
            protected += cleanup.extra_cleanup_squash_time[constant]
        except KeyError as exc:
            raise ExperimentError(
                f"no extraCleanupSquashTimeCycles{constant} in the stats"
            ) from exc
    return protected / unsafe_time
