"""Developer tooling: trace rendering, run summaries, gem5-style stats."""

from .gem5stats import (
    SCHEME_CLEANUP,
    SCHEME_UNSAFE,
    Gem5Stats,
    artifact_overhead,
    parse_stats,
    run_gem5_style,
)
from .trace import (
    render_events,
    render_squashes,
    render_timeline,
    render_trace_timeline,
    summarize_run,
    trace_timeline,
)

__all__ = [
    "render_timeline",
    "render_trace_timeline",
    "render_events",
    "render_squashes",
    "summarize_run",
    "trace_timeline",
    "Gem5Stats",
    "run_gem5_style",
    "parse_stats",
    "artifact_overhead",
    "SCHEME_UNSAFE",
    "SCHEME_CLEANUP",
]
