"""Repo determinism lint: AST checks for nondeterminism hazards.

The reproduction's core contract is bit-identical results for a given
seed (``docs/campaign.md``); this linter statically forbids the usual
ways that contract gets broken inside ``src/repro``:

* ``DET001`` — the stdlib ``random`` module (import or call).  All
  randomness must flow through :mod:`repro.common.rng` seeded streams.
* ``DET002`` — ``numpy.random`` *calls* (``default_rng``, ``seed``,
  distribution draws) outside :mod:`repro.common.rng`.  Type annotations
  such as ``np.random.Generator`` are fine — only calls are flagged.
* ``DET003`` — wall-clock reads whose value can leak into results:
  ``time.time``/``time.time_ns`` and ``datetime.now``/``utcnow``/
  ``today``.  Durations belong to ``time.perf_counter``; a genuinely
  wall-clock-reporting line can carry a ``# det: allow`` pragma.
* ``DET004`` — unsorted directory listings (``os.listdir``,
  ``os.scandir``, ``glob.glob``/``iglob``, ``Path.iterdir``) not
  directly wrapped in ``sorted(...)`` — filesystem order is arbitrary.
* ``DET005`` — iteration over a set expression (``for x in {...}`` /
  ``set(...)`` / a set comprehension, or materializing one with
  ``list``/``tuple``/``enumerate``/``iter``): set order depends on
  insertion history and hash seeds.  Wrap in ``sorted(...)``.
* ``DET006`` — the ``hash()`` builtin (``PYTHONHASHSEED``-dependent).
* ``DET007`` — a Hypothesis ``@given`` test without a ``@settings(...)``
  decorator carrying ``derandomize=True``.  Randomized example search
  makes the suite's pass/fail flip run-to-run; every property test in
  this repo pins its example stream (run over ``tests/``).

Any finding can be suppressed per-line with a ``# det: allow`` comment;
:mod:`repro.common.rng` is exempt from DET001/DET002 wholesale.  Run as::

    python -m repro.tools.lint_determinism [paths...]   # default: src/repro
    python -m repro.tools.lint_determinism --only DET007 tests

Exit status 1 when findings exist; wired as ``make lint`` and the CI
``lint`` job.
"""

from __future__ import annotations

import ast
import os
import sys
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

#: Modules allowed to use randomness primitives directly.
RNG_EXEMPT_SUFFIXES = (os.path.join("common", "rng.py"),)

#: Per-line suppression pragma.
PRAGMA = "det: allow"

_WALLCLOCK_CALLS = {
    ("time", "time"),
    ("time", "time_ns"),
    ("datetime", "now"),
    ("datetime", "utcnow"),
    ("datetime", "today"),
    ("date", "today"),
}

_LISTING_CALLS = {
    ("os", "listdir"),
    ("os", "scandir"),
    ("glob", "glob"),
    ("glob", "iglob"),
    (None, "iterdir"),  # Path(...).iterdir()
}

_SET_MATERIALIZERS = {"list", "tuple", "enumerate", "iter"}


@dataclass(frozen=True)
class LintFinding:
    path: str
    line: int
    code: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.code} {self.message}"


def _dotted(node: ast.AST) -> List[str]:
    """``a.b.c`` attribute chain as ``["a", "b", "c"]`` (best effort)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    else:
        parts.append("")  # non-name head (call result, subscript, ...)
    return parts[::-1]


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


class _Checker(ast.NodeVisitor):
    def __init__(self, path: str, source_lines: Sequence[str], rng_exempt: bool) -> None:
        self.path = path
        self.lines = source_lines
        self.rng_exempt = rng_exempt
        self.findings: List[LintFinding] = []

    # -- helpers -----------------------------------------------------------

    def _allowed(self, node: ast.AST) -> bool:
        line = getattr(node, "lineno", None)
        if line is None or line > len(self.lines):
            return False
        return PRAGMA in self.lines[line - 1]

    def _flag(self, node: ast.AST, code: str, message: str) -> None:
        if not self._allowed(node):
            self.findings.append(
                LintFinding(self.path, getattr(node, "lineno", 0), code, message)
            )

    def _inside_sorted(self, node: ast.Call) -> bool:
        parent = getattr(node, "_det_parent", None)
        return (
            isinstance(parent, ast.Call)
            and isinstance(parent.func, ast.Name)
            and parent.func.id == "sorted"
        )

    # -- imports -----------------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name == "random" and not self.rng_exempt:
                self._flag(
                    node,
                    "DET001",
                    "stdlib 'random' is forbidden; use repro.common.rng",
                )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "random" and not self.rng_exempt:
            self._flag(
                node, "DET001", "stdlib 'random' is forbidden; use repro.common.rng"
            )
        self.generic_visit(node)

    # -- calls -------------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        chain = _dotted(node.func) if isinstance(node.func, ast.Attribute) else []
        if chain:
            head, tail = chain[0], chain[-1]
            if head == "random" and not self.rng_exempt:
                self._flag(
                    node,
                    "DET001",
                    f"random.{tail}() is forbidden; use repro.common.rng",
                )
            elif "random" in chain[:-1] and not self.rng_exempt:
                # np.random.default_rng(), numpy.random.seed(), ...
                self._flag(
                    node,
                    "DET002",
                    f"direct numpy.random.{tail}() call; thread a seeded "
                    "Generator from repro.common.rng instead",
                )
            if (head, tail) in _WALLCLOCK_CALLS or (
                tail in ("now", "utcnow") and "datetime" in chain[:-1]
            ):
                self._flag(
                    node,
                    "DET003",
                    f"wall-clock read {'.'.join(chain)}(); use time.perf_counter "
                    "for durations or add '# det: allow' if genuinely wall-clock",
                )
            if ((head, tail) in _LISTING_CALLS or (None, tail) in _LISTING_CALLS) and (
                not self._inside_sorted(node)
            ):
                self._flag(
                    node,
                    "DET004",
                    f"unsorted directory listing {tail}(); wrap in sorted(...)",
                )
        elif isinstance(node.func, ast.Name):
            if node.func.id == "hash":
                self._flag(
                    node,
                    "DET006",
                    "builtin hash() depends on PYTHONHASHSEED; use hashlib",
                )
            if node.func.id in _SET_MATERIALIZERS and node.args:
                if _is_set_expr(node.args[0]):
                    self._flag(
                        node,
                        "DET005",
                        f"{node.func.id}() over a set has nondeterministic "
                        "order; wrap the set in sorted(...)",
                    )
        self.generic_visit(node)

    # -- iteration over sets ----------------------------------------------

    def visit_For(self, node: ast.For) -> None:
        if _is_set_expr(node.iter):
            self._flag(
                node,
                "DET005",
                "iterating a set has nondeterministic order; wrap in sorted(...)",
            )
        self.generic_visit(node)

    def visit_comprehension(self, node: ast.comprehension) -> None:
        if _is_set_expr(node.iter):
            self._flag(
                node.iter,
                "DET005",
                "iterating a set has nondeterministic order; wrap in sorted(...)",
            )
        self.generic_visit(node)

    # -- hypothesis tests ---------------------------------------------------

    def _check_given(self, node) -> None:
        has_given = False
        derandomized = False
        for deco in node.decorator_list:
            target = deco.func if isinstance(deco, ast.Call) else deco
            name = _dotted(target)[-1] if isinstance(target, ast.Attribute) else (
                target.id if isinstance(target, ast.Name) else ""
            )
            if name == "given":
                has_given = True
            elif name == "settings" and isinstance(deco, ast.Call):
                for kw in deco.keywords:
                    if kw.arg == "derandomize" and (
                        isinstance(kw.value, ast.Constant) and kw.value.value is True
                    ):
                        derandomized = True
        if has_given and not derandomized:
            self._flag(
                node,
                "DET007",
                f"@given test {node.name!r} lacks "
                "@settings(..., derandomize=True); randomized example "
                "search makes the suite nondeterministic",
            )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_given(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_given(node)
        self.generic_visit(node)


def _annotate_parents(tree: ast.AST) -> None:
    for parent in ast.walk(tree):
        for child in ast.iter_child_nodes(parent):
            child._det_parent = parent  # type: ignore[attr-defined]


def lint_source(source: str, path: str = "<string>") -> List[LintFinding]:
    """Lint one module's source text."""
    rng_exempt = any(path.endswith(suffix) for suffix in RNG_EXEMPT_SUFFIXES)
    tree = ast.parse(source, filename=path)
    _annotate_parents(tree)
    checker = _Checker(path, source.splitlines(), rng_exempt)
    checker.visit(tree)
    return sorted(checker.findings, key=lambda f: (f.path, f.line, f.code))


def lint_paths(paths: Iterable[str]) -> List[LintFinding]:
    """Lint every ``*.py`` file under the given files/directories."""
    findings: List[LintFinding] = []
    for path in paths:
        if os.path.isdir(path):
            files = []
            for root, dirs, names in os.walk(path):
                dirs.sort()
                files.extend(
                    os.path.join(root, n) for n in sorted(names) if n.endswith(".py")
                )
        else:
            files = [path]
        for fname in files:
            with open(fname) as fh:
                findings.extend(lint_source(fh.read(), fname))
    return sorted(findings, key=lambda f: (f.path, f.line, f.code))


def main(argv: Optional[List[str]] = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    only: Optional[str] = None
    if "--only" in args:
        at = args.index("--only")
        try:
            only = args[at + 1]
        except IndexError:
            print("lint_determinism: --only requires a code (e.g. DET007)",
                  file=sys.stderr)
            return 2
        del args[at:at + 2]
    paths = args or [os.path.join("src", "repro")]
    findings = lint_paths(paths)
    if only is not None:
        findings = [f for f in findings if f.code == only]
    for finding in findings:
        print(finding.render())
    if findings:
        print(f"lint_determinism: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    scope = f"{', '.join(paths)}" + (f", only {only}" if only else "")
    print(f"lint_determinism: clean ({scope})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
