"""Batched execution backend: memoized whole-round transition replay.

Attack campaigns run the *same* short program thousands of times against a
machine whose state cycles through a small number of configurations (the
golden-round latencies in ``tests/test_golden_rounds.py`` are literally
periodic). The scalar :class:`~repro.cpu.core.Core` re-simulates every
round; this backend instead treats one ``run()`` as a **state transition**

    (machine state, program, out-of-band DRAM writes)  ->
        (next machine state, RunResult, stats/trace outputs)

records the transition once via the scalar path, and *replays* it — a
sparse structure-of-arrays restore plus output reconstruction — whenever
the same left-hand side recurs. Replay is bit-identical by construction:
everything the scalar round changed (cache sets/ways, MSHR entries,
predictor counters, replacement-RNG state, DRAM words, stats bags,
registry counters, distribution reservoirs, trace events, squash records)
is captured in the transition and re-applied.

State is compared by **interned canonical tokens**, never by replaying
history: each cache set's residency is encoded into a dense ``int64``
row-per-way array (numpy, structure-of-arrays) and interned to a small
signature; per-cache signature vectors plus canonical MSHR-occupancy,
predictor-table, RNG-state and DRAM-content encodings intern to one
integer token per machine state. Between rounds, cheap *guard* counters
(cache versions + hit/miss counts, MSHR/predictor versions, RNG draw
counts, pending coherence downgrades) prove the token still describes the
live machine; any out-of-band mutation triggers a full recapture.

The backend falls back to the always-correct scalar path whenever a round
needs it (reusing the trace-level flags hoisted in the perf PR):

* a commit/full-level trace is attached (per-instruction event volume),
* ``record_timeline`` or an explicit ``registers`` argument is used,
* the noise model is enabled (every instruction draws from the noise RNG),
* the defense is not :attr:`~repro.defense.base.Defense.batch_replay_safe`
  (e.g. FuzzyCleanup draws dummy cycles from its own RNG),
* the machine state is not canonicalizable (open speculation epochs,
  live speculative lines, pending coherence downgrades), or
* the program keeps producing fresh states (eviction-set rounds advance
  the replacement RNG every round) — after a streak of memo misses with
  no hits the program is demoted to pure scalar execution.

Rounds that fall back still mutate the same machine; the next memoizable
round simply recaptures the canonical state first.
"""

from __future__ import annotations

from dataclasses import fields as dataclass_fields
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..cache.hierarchy import CacheHierarchy
from ..cache.line import CacheLine, CoherenceState
from ..cache.setassoc import CacheStats, SetAssociativeCache, snapshot_set
from ..isa.program import Program
from ..isa.registers import RegisterFile
from ..memory.dram import DramStats
from ..memory.mshr import MshrEntry, MshrStats
from ..obs.registry import Counter, Distribution
from .core import Core
from .predictor import PredictorStats
from .timing import RunResult

#: Per-way encoding of an empty way (line_addr of -1 cannot occur).
_EMPTY_ROW = (-1, -1, -1, -1, -1, -1, -1)

#: Stable small-int encoding of the MESI-lite states.
_STATE_CODE = {
    CoherenceState.MODIFIED: 0,
    CoherenceState.EXCLUSIVE: 1,
    CoherenceState.SHARED: 2,
    CoherenceState.INVALID: 3,
}

#: Field-name tuples of the stats bags a round mutates, in the order the
#: record/replay code zips them with the live bag objects.
_BAG_FIELDS = tuple(
    tuple(f.name for f in dataclass_fields(cls))
    for cls in (CacheStats, CacheStats, DramStats, MshrStats, PredictorStats)
)

#: Signature id of an all-empty cache set (reserved; interning starts at 1).
_EMPTY_SIG = 0


def _encode_set(snap: tuple) -> bytes:
    """Dense int64 row-per-way encoding of one set snapshot (SoA row)."""
    flat: List[int] = []
    for entry in snap:
        if entry is None:
            flat.extend(_EMPTY_ROW)
        else:
            flat.append(entry[0])
            flat.append(_STATE_CODE[entry[1]])
            flat.append(1 if entry[2] else 0)
            flat.append(1 if entry[3] else 0)
            flat.append(-1 if entry[4] is None else entry[4])
            flat.append(entry[5])
            flat.append(entry[6])
    return np.asarray(flat, dtype=np.int64).tobytes()


def _rng_state_key(rng) -> tuple:
    """Hashable canonical form of a numpy Generator's state."""
    state = rng.bit_generator.state
    inner = state["state"]
    return (
        state["bit_generator"],
        tuple(sorted(inner.items())) if isinstance(inner, dict) else inner,
        state.get("has_uint32", 0),
        state.get("uinteger", 0),
    )


class _CacheCanon:
    """Incrementally maintained canonical view of one cache level.

    ``sigs[set_index]`` is the interned signature of that set's residency
    (0 = empty). The vector doubles as the per-cache component of the
    machine-state token (``sigs.tobytes()``) and is patched in place from
    each recorded transition's touched-set exit signatures.
    """

    __slots__ = ("cache", "sigs", "valid")

    def __init__(self, cache: SetAssociativeCache) -> None:
        self.cache = cache
        self.sigs = np.zeros(cache.geometry.sets, dtype=np.int64)
        self.valid = False


class _Transition:
    """One recorded round: sparse state diff + replayable outputs."""

    __slots__ = (
        "exit_token",
        "program_name",
        "cycles",
        "instructions",
        "registers_raw",
        "squashes",
        "l1_changes",
        "l2_changes",
        "l1_sigs",
        "l2_sigs",
        "mshr_entries",
        "mshr_min_complete",
        "pred_counters",
        "bag_deltas",
        "defense_deltas",
        "counter_incs",
        "dist_adds",
        "trace_events",
        "rebase_spots",
        "base_epoch",
        "epochs_opened",
        "rng_updates",
        "dram_writes",
    )


class BatchedCore(Core):
    """Drop-in :class:`Core` that memoizes and replays repeated rounds."""

    #: A program whose first N memo lookups all miss (state never repeats,
    #: e.g. eviction-set rounds advancing the replacement RNG) is demoted to
    #: pure scalar execution — recording is then wasted work.
    DISABLE_AFTER_MISSES = 16

    #: Hard caps keeping pathological workloads bounded: transitions
    #: touching more sets than this, or memo tables beyond this many
    #: entries, stop being recorded (replay of existing entries continues).
    MAX_TOUCHED_SETS = 512
    MAX_MEMO_ENTRIES = 4096

    def __init__(self, hierarchy: CacheHierarchy, defense, **kwargs) -> None:
        super().__init__(hierarchy, defense, **kwargs)
        self._canon_l1 = _CacheCanon(hierarchy.l1)
        self._canon_l2 = _CacheCanon(hierarchy.l2)
        self._sig_intern: Dict[bytes, int] = {}
        self._token_intern: Dict[tuple, int] = {}
        self._memo: Dict[tuple, _Transition] = {}
        #: id(program) -> [hits, misses, program] (ref pinned so ids stay
        #: unique for the core's lifetime).
        self._program_stats: Dict[int, list] = {}
        self._token: Optional[int] = None
        self._guard: Optional[tuple] = None
        self._noise_on = self.noise.enabled
        self._defense_chain = self._build_defense_chain(defense)
        self._defense_safe = all(
            getattr(d, "batch_replay_safe", False) for d in self._defense_chain
        )
        self._rngs = self._find_rng_policies(hierarchy)
        self._rngs_guarded = all(hasattr(p, "draws") for p in self._rngs)
        self._bags = (
            hierarchy.l1.stats,
            hierarchy.l2.stats,
            hierarchy.dram.stats,
            hierarchy.mshr.stats,
            self.predictor.stats,
        )
        if hierarchy.dram.journal is None:
            hierarchy.dram.journal = []
        #: Diagnostics for the differential harness's divergence bisector:
        #: how the most recent ``run()`` executed.
        self.last_round_info: dict = {}

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------

    @staticmethod
    def _build_defense_chain(defense) -> tuple:
        """The defense plus wrapped inner defenses (ConstantTime -> Cleanup)."""
        from ..defense.base import Defense

        chain = []
        node = defense
        while isinstance(node, Defense) and node not in chain:
            chain.append(node)
            node = getattr(node, "inner", None)
        return tuple(chain)

    @staticmethod
    def _find_rng_policies(hierarchy: CacheHierarchy) -> tuple:
        """Replacement policies that hold an RNG (walking NoMo wrappers)."""
        out = []
        for cache in (hierarchy.l1, hierarchy.l2):
            policy = cache.policy
            inner = getattr(policy, "inner", None)
            if inner is not None and hasattr(inner, "_rng"):
                policy = inner
            if hasattr(policy, "_rng"):
                out.append(policy)
        return tuple(out)

    # ------------------------------------------------------------------
    # guards and canonical state
    # ------------------------------------------------------------------

    def _read_guard(self) -> tuple:
        """Cheap counters proving no out-of-band mutation since capture."""
        h = self.hierarchy
        l1, l2, guard = h.l1, h.l2, h.l1_guard
        gs = guard.stats
        return (
            l1.version,
            l1.stats.hits,
            l1.stats.misses,
            l2.version,
            l2.stats.hits,
            l2.stats.misses,
            h.mshr.version,
            self.predictor.version,
            h.tracker._next_epoch,
            len(guard._pending),
            gs.delayed_downgrades,
            gs.served_downgrades,
            tuple(p.draws for p in self._rngs),
        )

    def _intern_set(self, snap: tuple) -> int:
        encoded = _encode_set(snap)
        sig = self._sig_intern.get(encoded)
        if sig is None:
            sig = len(self._sig_intern) + 1
            self._sig_intern[encoded] = sig
        return sig

    def _rebuild_canon(self, canon: _CacheCanon) -> bool:
        """Full canonical rebuild; False if speculative lines are live."""
        sigs = canon.sigs
        for set_index, ways in enumerate(canon.cache._sets):
            if not any(ways):
                sigs[set_index] = _EMPTY_SIG
                continue
            for line in ways:
                if line is not None and line.speculative:
                    canon.valid = False
                    return False
            sigs[set_index] = self._intern_set(snapshot_set(ways))
        canon.valid = True
        return True

    def _capture_token(self) -> Optional[int]:
        """Intern the current machine state; None if not canonicalizable."""
        h = self.hierarchy
        if h.tracker._open or h.l1_guard._pending:
            return None
        if not self._canon_l1.valid and not self._rebuild_canon(self._canon_l1):
            return None
        if not self._canon_l2.valid and not self._rebuild_canon(self._canon_l2):
            return None
        mshr_key = tuple(
            sorted(
                (
                    e.line_addr,
                    e.issue_cycle,
                    e.complete_cycle,
                    e.speculative,
                    -1 if e.victim_line is None else e.victim_line,
                    e.victim_dirty,
                    e.merged,
                )
                for e in h.mshr._entries.values()
            )
        )
        key = (
            self._canon_l1.sigs.tobytes(),
            self._canon_l2.sigs.tobytes(),
            mshr_key,
            tuple(sorted(self.predictor._counters.items())),
            tuple(_rng_state_key(p._rng) for p in self._rngs),
            tuple(sorted(h.dram._words.items())),
        )
        token = self._token_intern.get(key)
        if token is None:
            token = len(self._token_intern) + 1
            self._token_intern[key] = token
        return token

    def _ensure_token(self) -> Optional[int]:
        guard = self._read_guard()
        if self._token is not None and guard == self._guard:
            return self._token
        # First round, or something mutated the machine out of band:
        # recapture from scratch.
        self._canon_l1.valid = False
        self._canon_l2.valid = False
        self._token = self._capture_token()
        self._guard = self._read_guard() if self._token is not None else None
        return self._token

    def _invalidate_token(self) -> None:
        self._token = None
        self._guard = None
        self._canon_l1.valid = False
        self._canon_l2.valid = False

    # ------------------------------------------------------------------
    # main entry point
    # ------------------------------------------------------------------

    def run(
        self,
        program: Program,
        registers: Optional[RegisterFile] = None,
        max_instructions: int = 1_000_000,
    ) -> RunResult:
        dram = self.hierarchy.dram
        journal = dram.journal
        if journal is None:
            journal = dram.journal = []
        # Writes performed since the previous run (e.g. the gadget poking
        # the next secret bit) are part of the transition's left-hand side.
        out_of_band = tuple(journal)
        del journal[:]

        obs = self.obs
        trace = obs.trace if obs is not None else None
        if (
            registers is not None
            or self.record_timeline
            or self._noise_on
            or not self._defense_safe
            or not self._rngs_guarded
            or (trace is not None and trace.commit_events)
            # Interference timelines couple separate runs (victim records,
            # attacker replays) — memoized replay cannot see the coupling,
            # so such cores always execute scalar. (Per-run FuPool divider
            # state needs no demotion: replaying a round replays it.)
            or self.port_timeline is not None
            or self.contended_timeline is not None
        ):
            return self._run_scalar(program, registers, max_instructions)

        prog_id = id(program)
        pstat = self._program_stats.get(prog_id)
        if pstat is None:
            pstat = self._program_stats[prog_id] = [0, 0, program]
        elif pstat[0] == 0 and pstat[1] >= self.DISABLE_AFTER_MISSES:
            # This program never revisits a state — stop paying for capture.
            return self._run_scalar(program, None, max_instructions)

        token = self._ensure_token()
        if token is None:
            return self._run_scalar(program, None, max_instructions)

        key = (token, program, out_of_band, obs, max_instructions)
        transition = self._memo.get(key)
        if transition is not None:
            pstat[0] += 1
            return self._replay(transition, obs)
        pstat[1] += 1
        return self._record(key, program, max_instructions)

    def run_batch(
        self,
        program: Program,
        rounds: int,
        max_instructions: int = 1_000_000,
    ) -> List[RunResult]:
        """Run ``program`` ``rounds`` times (the campaign round loop)."""
        return [
            self.run(program, max_instructions=max_instructions)
            for _ in range(rounds)
        ]

    # ------------------------------------------------------------------
    # scalar fallback
    # ------------------------------------------------------------------

    def _run_scalar(self, program, registers, max_instructions) -> RunResult:
        self._invalidate_token()
        self.last_round_info = {"mode": "scalar", "program": program.name}
        try:
            return Core.run(self, program, registers, max_instructions)
        finally:
            journal = self.hierarchy.dram.journal
            if journal:
                del journal[:]

    # ------------------------------------------------------------------
    # record
    # ------------------------------------------------------------------

    def _record(self, key, program, max_instructions) -> RunResult:
        h = self.hierarchy
        l1, l2, mshr, dram = h.l1, h.l2, h.mshr, h.dram
        predictor = self.predictor
        obs = self.obs
        trace = obs.trace if obs is not None else None

        rec_l1: dict = {}
        rec_l2: dict = {}
        l1._recording = rec_l1
        l2._recording = rec_l2
        l1._record_spill = False
        l2._record_spill = False
        counter_journal: list = []
        dist_journal: list = []
        Counter._journal = counter_journal
        Distribution._journal = dist_journal

        bags_before = tuple(
            tuple(getattr(bag, name) for name in names)
            for bag, names in zip(self._bags, _BAG_FIELDS)
        )
        defense_before = tuple(
            tuple(getattr(d, attr) for attr in d.replay_counter_attrs)
            for d in self._defense_chain
        )
        draws_before = tuple(p.draws for p in self._rngs)
        base_epoch = h.tracker._next_epoch
        mshr_version_before = mshr.version
        pred_version_before = predictor.version
        emitted_before = trace.emitted if trace is not None else 0

        try:
            result = Core.run(self, program, None, max_instructions)
        except BaseException:
            self._invalidate_token()
            journal = dram.journal
            if journal:
                del journal[:]
            raise
        finally:
            l1._recording = None
            l2._recording = None
            Counter._journal = None
            Distribution._journal = None

        writes = tuple(dram.journal)
        del dram.journal[:]

        storable = (
            not l1._record_spill
            and not l2._record_spill
            and len(rec_l1) + len(rec_l2) <= self.MAX_TOUCHED_SETS
            and not h.tracker._open
            and not h.l1_guard._pending
            and len(self._memo) < self.MAX_MEMO_ENTRIES
        )

        trace_events: tuple = ()
        rebase_spots: tuple = ()
        if trace is not None:
            emitted = trace.emitted - emitted_before
            if emitted:
                if emitted > len(trace._buf):
                    storable = False  # ring wrapped mid-round
                else:
                    trace_events = tuple(list(trace._buf)[-emitted:])
                    spots = []
                    for index, (_cycle, kind, data) in enumerate(trace_events):
                        if kind == "spec.delta":
                            spots.append((index, 0))
                        elif kind == "cache.install" and data[3] is not None:
                            spots.append((index, 3))
                    rebase_spots = tuple(spots)

        l1_changes, l1_sigs, clean1 = self._diff_cache(l1, rec_l1)
        l2_changes, l2_sigs, clean2 = self._diff_cache(l2, rec_l2)
        storable = storable and clean1 and clean2

        exit_token: Optional[int] = None
        if storable:
            # Patch the canonical view with the touched sets' exit state,
            # then intern the new machine token incrementally.
            for set_index, sig in l1_sigs:
                self._canon_l1.sigs[set_index] = sig
            for set_index, sig in l2_sigs:
                self._canon_l2.sigs[set_index] = sig
            exit_token = self._capture_token()

        if exit_token is None:
            self._invalidate_token()
            self.last_round_info = {
                "mode": "record-unreplayable",
                "program": program.name,
            }
            return result

        transition = _Transition()
        transition.exit_token = exit_token
        transition.program_name = result.program_name
        transition.cycles = result.cycles
        transition.instructions = result.instructions
        transition.registers_raw = dict(result.registers.raw)
        transition.squashes = tuple(result.squashes)
        transition.l1_changes = l1_changes
        transition.l2_changes = l2_changes
        transition.l1_sigs = l1_sigs
        transition.l2_sigs = l2_sigs
        if mshr.version != mshr_version_before:
            transition.mshr_entries = tuple(
                (
                    e.line_addr,
                    e.issue_cycle,
                    e.complete_cycle,
                    e.speculative,
                    e.victim_line,
                    e.victim_dirty,
                    e.merged,
                )
                for e in mshr._entries.values()
            )
            transition.mshr_min_complete = mshr._min_complete
        else:
            transition.mshr_entries = None
            transition.mshr_min_complete = mshr._min_complete
        transition.pred_counters = (
            dict(predictor._counters)
            if predictor.version != pred_version_before
            else None
        )
        transition.bag_deltas = tuple(
            tuple(
                getattr(bag, name) - before
                for name, before in zip(names, befores)
            )
            for bag, names, befores in zip(self._bags, _BAG_FIELDS, bags_before)
        )
        transition.defense_deltas = tuple(
            tuple(
                getattr(d, attr) - before
                for attr, before in zip(d.replay_counter_attrs, befores)
            )
            for d, befores in zip(self._defense_chain, defense_before)
        )
        # Compact the counter journal: order is irrelevant for +=, so sum
        # per stat (dict preserves first-seen order for determinism).
        summed: dict = {}
        for stat, n in counter_journal:
            summed[stat] = summed.get(stat, 0) + n
        transition.counter_incs = tuple(summed.items())
        transition.dist_adds = tuple(dist_journal)
        transition.trace_events = trace_events
        transition.rebase_spots = rebase_spots
        transition.base_epoch = base_epoch
        transition.epochs_opened = h.tracker._next_epoch - base_epoch
        transition.rng_updates = tuple(
            (p, p.draws - before, p._rng.bit_generator.state)
            for p, before in zip(self._rngs, draws_before)
            if p.draws != before
        )
        transition.dram_writes = writes

        self._memo[key] = transition
        self._token = exit_token
        self._guard = self._read_guard()
        self.last_round_info = {"mode": "record", "program": program.name}
        return result

    def _diff_cache(self, cache, recording: dict):
        """Per-way diff of touched sets vs. their copy-on-first-touch
        snapshots, plus exit signatures. ``clean`` is False when a touched
        set leaves speculative lines behind (epoch numbers would leak into
        the canonical state)."""
        changes: List[tuple] = []
        sigs: List[tuple] = []
        sets = cache._sets
        for set_index, before in recording.items():
            ways = sets[set_index]
            after = snapshot_set(ways)
            for line in ways:
                if line is not None and line.speculative:
                    return (), (), False
            for way, (old, new) in enumerate(zip(before, after)):
                if old != new:
                    changes.append((set_index, way, new))
            sigs.append(
                (
                    set_index,
                    _EMPTY_SIG if not any(ways) else self._intern_set(after),
                )
            )
        return tuple(changes), tuple(sigs), True

    # ------------------------------------------------------------------
    # replay
    # ------------------------------------------------------------------

    def _replay(self, transition: _Transition, obs) -> RunResult:
        h = self.hierarchy
        l1, l2, mshr, dram = h.l1, h.l2, h.mshr, h.dram

        for cache, canon, changes, sigs in (
            (l1, self._canon_l1, transition.l1_changes, transition.l1_sigs),
            (l2, self._canon_l2, transition.l2_changes, transition.l2_sigs),
        ):
            sets = cache._sets
            where = cache._where
            for set_index, way, entry in changes:
                if entry is None:
                    sets[set_index][way] = None
                else:
                    # Fresh line objects: recorded tuples must never alias
                    # live lines a later round would mutate.
                    line = CacheLine(
                        entry[0], entry[1], entry[2], entry[3],
                        entry[4], entry[5], entry[6],
                    )
                    sets[set_index][way] = line
                    where[entry[0]] = (set_index, way)
            canon_sigs = canon.sigs
            for set_index, sig in sigs:
                canon_sigs[set_index] = sig

        words = dram._words
        for word, value in transition.dram_writes:
            words[word] = value

        if transition.mshr_entries is not None:
            entries = mshr._entries
            entries.clear()
            for t in transition.mshr_entries:
                entries[t[0]] = MshrEntry(t[0], t[1], t[2], t[3], t[4], t[5], t[6])
            mshr._min_complete = transition.mshr_min_complete

        if transition.pred_counters is not None:
            self.predictor._counters = dict(transition.pred_counters)

        for bag, names, deltas in zip(self._bags, _BAG_FIELDS, transition.bag_deltas):
            for name, delta in zip(names, deltas):
                if delta:
                    setattr(bag, name, getattr(bag, name) + delta)
        for defense, deltas in zip(self._defense_chain, transition.defense_deltas):
            for attr, delta in zip(defense.replay_counter_attrs, deltas):
                if delta:
                    setattr(defense, attr, getattr(defense, attr) + delta)
        for policy, draws_delta, state in transition.rng_updates:
            policy.draws += draws_delta
            policy._rng.bit_generator.state = state
        for stat, n in transition.counter_incs:
            stat._count += n
        for dist, value in transition.dist_adds:
            dist.add(value)

        if obs is not None and transition.trace_events:
            offset = h.tracker._next_epoch - transition.base_epoch
            emit = obs.trace.emit
            if offset == 0:
                for cycle, kind, data in transition.trace_events:
                    emit(cycle, kind, data)
            else:
                events = list(transition.trace_events)
                for index, pos in transition.rebase_spots:
                    cycle, kind, data = events[index]
                    events[index] = (
                        cycle,
                        kind,
                        data[:pos] + (data[pos] + offset,) + data[pos + 1:],
                    )
                for cycle, kind, data in events:
                    emit(cycle, kind, data)
        h.tracker._next_epoch += transition.epochs_opened

        registers = RegisterFile()
        registers.restore(transition.registers_raw)
        result = RunResult(
            program_name=transition.program_name,
            cycles=transition.cycles,
            instructions=transition.instructions,
            registers=registers,
        )
        result.squashes = list(transition.squashes)
        if obs is not None:
            result.attach_stats_source(obs.registry.to_dict)

        self._token = transition.exit_token
        self._guard = self._read_guard()
        self.last_round_info = {
            "mode": "replay",
            "program": transition.program_name,
        }
        return result


# ----------------------------------------------------------------------
# differential-harness helpers
# ----------------------------------------------------------------------

def machine_fingerprint(core: Core) -> tuple:
    """Full comparable snapshot of a core's machine state.

    Built from the same canonical encodings the batched backend interns, so
    two machines (one per backend) that diverge in *any* replay-relevant
    component produce different fingerprints. Used by ``tests/differential``
    to pin state equality after every round.
    """
    h = core.hierarchy

    def cache_state(cache: SetAssociativeCache) -> tuple:
        out = []
        for set_index, ways in enumerate(cache._sets):
            if any(ways):
                out.append((set_index, snapshot_set(ways)))
        return tuple(out)

    mshr_state = tuple(
        sorted(
            (
                e.line_addr,
                e.issue_cycle,
                e.complete_cycle,
                e.speculative,
                -1 if e.victim_line is None else e.victim_line,
                e.victim_dirty,
                e.merged,
            )
            for e in h.mshr._entries.values()
        )
    )
    rng_states = tuple(
        _rng_state_key(p._rng)
        for p in BatchedCore._find_rng_policies(h)
    )
    return (
        cache_state(h.l1),
        cache_state(h.l2),
        mshr_state,
        tuple(sorted(core.predictor._counters.items())),
        rng_states,
        tuple(sorted(h.dram._words.items())),
        h.tracker._next_epoch,
        tuple(h.tracker.open_epochs()),
        len(h.l1_guard._pending),
    )


def stats_fingerprint(core: Core) -> Tuple[tuple, ...]:
    """Comparable snapshot of every stats bag a round can mutate."""
    h = core.hierarchy
    bags = (h.l1.stats, h.l2.stats, h.dram.stats, h.mshr.stats, core.predictor.stats)
    out = [
        tuple(getattr(bag, name) for name in names)
        for bag, names in zip(bags, _BAG_FIELDS)
    ]
    chain = BatchedCore._build_defense_chain(core.defense)
    for defense in chain:
        out.append(tuple(getattr(defense, a) for a in defense.replay_counter_attrs))
    return tuple(out)
