"""Reorder-buffer occupancy model for the trace-driven core.

The core dispatches in order, ``dispatch_width`` instructions per cycle, and
an instruction cannot dispatch until the instruction ``rob_entries`` older
than it has committed (in-order commit). That is exactly the back-pressure a
real ROB exerts on a dataflow-scheduled machine, captured with a bounded
deque of commit timestamps instead of a per-cycle structural simulation.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass


@dataclass
class RobStats:
    dispatched: int = 0
    rob_stall_cycles: int = 0


class RobModel:
    """Tracks dispatch cadence and ROB-full back-pressure."""

    def __init__(self, entries: int, dispatch_width: int) -> None:
        if entries < 2:
            raise ValueError("ROB needs at least 2 entries")
        if dispatch_width < 1:
            raise ValueError("dispatch width must be >= 1")
        self.entries = entries
        self.dispatch_width = dispatch_width
        self._commit_times: deque = deque(maxlen=entries)
        self._last_dispatch_cycle = -1
        self._dispatched_this_cycle = 0
        self._last_commit = 0
        self.stats = RobStats()

    def next_dispatch_cycle(self, earliest: int) -> int:
        """Dispatch cycle for the next instruction, >= ``earliest``.

        Applies dispatch-width limits and ROB-full stalls; the caller then
        reports the instruction's completion via :meth:`record_commit`.
        """
        cycle = max(earliest, self._last_dispatch_cycle)
        if cycle == self._last_dispatch_cycle and self._dispatched_this_cycle >= self.dispatch_width:
            cycle += 1
        # ROB full: the entry `entries` back must have committed.
        if len(self._commit_times) == self.entries:
            oldest_commit = self._commit_times[0]
            if oldest_commit > cycle:
                self.stats.rob_stall_cycles += oldest_commit - cycle
                cycle = oldest_commit
        if cycle != self._last_dispatch_cycle:
            self._last_dispatch_cycle = cycle
            self._dispatched_this_cycle = 1
        else:
            self._dispatched_this_cycle += 1
        self.stats.dispatched += 1
        return cycle

    def record_commit(self, complete_cycle: int) -> int:
        """Record in-order commit of the instruction just dispatched.

        Returns the commit cycle (monotonically non-decreasing).
        """
        commit = max(complete_cycle, self._last_commit)
        self._last_commit = commit
        self._commit_times.append(commit)
        return commit

    @property
    def last_commit(self) -> int:
        return self._last_commit

    def snapshot(self) -> tuple:
        """Opaque state capture for wrong-path what-if execution."""
        return (
            deque(self._commit_times, maxlen=self.entries),
            self._last_dispatch_cycle,
            self._dispatched_this_cycle,
            self._last_commit,
        )

    def restore(self, snap: tuple) -> None:
        self._commit_times, self._last_dispatch_cycle, self._dispatched_this_cycle, self._last_commit = (
            deque(snap[0], maxlen=self.entries),
            snap[1],
            snap[2],
            snap[3],
        )
