"""Load/store-queue bookkeeping: in-flight memory operations and fences.

The core needs two queries the paper's timeline depends on:

* **Fence drain** — a `Fence` makes younger memory ops wait until every
  older memory op has completed; unXpec uses this to zero T4.
* **T4 at squash** — CleanupSpec delays rollback until in-flight
  *correct-path* loads retire; the extra wait is
  ``max(0, latest_older_completion - resolve_time)``.

Both reduce to tracking the maximum completion time over issued memory
operations (and its reset point at a fence), plus counters for reporting.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class LsqStats:
    loads: int = 0
    stores: int = 0
    flushes: int = 0
    fences: int = 0


class InflightMemTracker:
    """Monotonic summary of outstanding memory-op completion times."""

    def __init__(self) -> None:
        self._max_complete = 0
        self._fence_barrier = 0
        self.stats = LsqStats()

    # -- recording -------------------------------------------------------------

    def record_load(self, complete_cycle: int) -> None:
        self.stats.loads += 1
        self._max_complete = max(self._max_complete, complete_cycle)

    def record_store(self, complete_cycle: int) -> None:
        self.stats.stores += 1
        self._max_complete = max(self._max_complete, complete_cycle)

    def record_flush(self, complete_cycle: int) -> None:
        self.stats.flushes += 1
        self._max_complete = max(self._max_complete, complete_cycle)

    def record_fence(self, ready_cycle: int) -> None:
        """All memory ops ordered before the fence completed by ``ready_cycle``."""
        self.stats.fences += 1
        self._fence_barrier = max(self._fence_barrier, ready_cycle)

    # -- queries -------------------------------------------------------------------

    @property
    def fence_barrier(self) -> int:
        """Earliest cycle a post-fence memory op may start."""
        return self._fence_barrier

    def drain_time(self, at_least: int = 0) -> int:
        """Cycle by which all memory ops issued so far have completed."""
        return max(self._max_complete, at_least)

    def inflight_beyond(self, cycle: int) -> int:
        """Extra cycles of T4 wait if a squash happens at ``cycle``."""
        return max(0, self._max_complete - cycle)

    def snapshot(self) -> tuple:
        return (self._max_complete, self._fence_barrier)

    def restore(self, snap: tuple) -> None:
        self._max_complete, self._fence_barrier = snap
