"""Measurement-noise model.

The paper's latency samples (Figs. 7, 8, 10, 11) show a Gaussian-ish core
around each secret's mean plus occasional large positive outliers (the
scattered 300–400-cycle points in Figs. 10/11 — OS / co-runner
interference). We model both:

* **DRAM jitter** — per memory-level access, a rounded Gaussian added to
  the access latency (row-buffer state, refresh, controller queueing);
* **system events** — with small per-instruction probability, a large
  uniformly distributed stall (interrupt, TLB shootdown, co-runner burst).

The default model is *disabled* (a deterministic simulator); attack
campaigns construct a calibrated instance. Everything draws from a seeded
generator, so noisy experiments are still exactly reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class NoiseModel:
    """Parameters of the stochastic perturbations."""

    #: Std-dev (cycles) of per-DRAM-access latency jitter; 0 disables.
    mem_jitter_std: float = 0.0
    #: Largest negative jitter allowed (DRAM can be early, but not by much).
    mem_jitter_floor: int = -10
    #: Per-instruction probability of a large system-event stall.
    event_prob: float = 0.0
    event_min_cycles: int = 80
    event_max_cycles: int = 250

    def __post_init__(self) -> None:
        if self.mem_jitter_std < 0:
            raise ValueError("mem_jitter_std must be non-negative")
        if not 0 <= self.event_prob <= 1:
            raise ValueError("event_prob must be a probability")
        if self.event_min_cycles > self.event_max_cycles:
            raise ValueError("event_min_cycles must be <= event_max_cycles")

    @property
    def enabled(self) -> bool:
        return self.mem_jitter_std > 0 or self.event_prob > 0

    def mem_jitter(self, rng: np.random.Generator) -> int:
        """Signed cycles added to one DRAM access."""
        if self.mem_jitter_std <= 0:
            return 0
        return max(self.mem_jitter_floor, int(round(rng.normal(0, self.mem_jitter_std))))

    def system_event(self, rng: np.random.Generator) -> int:
        """Stall cycles from a system event at one instruction (usually 0)."""
        if self.event_prob <= 0 or rng.random() >= self.event_prob:
            return 0
        return int(rng.integers(self.event_min_cycles, self.event_max_cycles + 1))


#: Calibrated noise used by the attack-campaign experiments: yields the
#: paper's single-sample accuracies (≈86.7% without eviction sets, ≈91.6%
#: with) at the 22/32-cycle timing differences.
def campaign_noise() -> NoiseModel:
    return NoiseModel(mem_jitter_std=11.0, event_prob=0.0015)
