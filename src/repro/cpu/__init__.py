"""Out-of-order core: predictor, ROB/LSQ models, noise, trace-driven executor."""

from .backend import (
    BACKENDS,
    current_backend,
    make_core,
    set_backend,
    use_backend,
)
from .batched import BatchedCore
from .core import DEFAULT_SQUASH_DELAY, NEVER, Core
from .fu import FU_ALU, FU_DIV, FU_MUL, FuPool, OccupancyTimeline, fu_for_op
from .lsq import InflightMemTracker, LsqStats
from .noise import NoiseModel, campaign_noise
from .predictor import (
    STRONG_NOT_TAKEN,
    STRONG_TAKEN,
    WEAK_NOT_TAKEN,
    WEAK_TAKEN,
    BimodalPredictor,
    PredictorStats,
)
from .rob import RobModel, RobStats
from .timing import InstructionTiming, RunResult, SquashEvent

__all__ = [
    "BACKENDS",
    "BatchedCore",
    "Core",
    "current_backend",
    "make_core",
    "set_backend",
    "use_backend",
    "DEFAULT_SQUASH_DELAY",
    "NEVER",
    "BimodalPredictor",
    "PredictorStats",
    "STRONG_NOT_TAKEN",
    "WEAK_NOT_TAKEN",
    "WEAK_TAKEN",
    "STRONG_TAKEN",
    "FU_ALU",
    "FU_MUL",
    "FU_DIV",
    "fu_for_op",
    "FuPool",
    "OccupancyTimeline",
    "RobModel",
    "RobStats",
    "InflightMemTracker",
    "LsqStats",
    "NoiseModel",
    "campaign_noise",
    "InstructionTiming",
    "RunResult",
    "SquashEvent",
]
