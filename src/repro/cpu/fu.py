"""Functional-unit occupancy model (SpectreRewind / interference substrate).

Two small timestamp-domain trackers back the non-cache covert channels:

* :class:`FuPool` — a **non-pipelined divider** shared between the committed
  path and ``_run_wrong_path``. Real dividers (and other long-latency
  non-pipelined units) keep grinding after a squash: an in-flight transient
  division is *not* cancelled, so a younger-in-time **committed** division
  observes a busy unit and starts late. That contention delta is exactly the
  SpectreRewind primitive — it leaks from transient to pre-transient/committed
  instructions without touching any cache state, so undo-based defenses that
  roll the cache back (CleanupSpec) cannot close it.

* :class:`OccupancyTimeline` — busy intervals on a shared downstream port
  (the L2/memory side of the hierarchy). One context records the cycles its
  beyond-L1 accesses occupy the port; a second context replays against the
  recording and sees its own accesses pushed later (Speculative Interference
  Attacks: even *cancellable* or *shadowed* requests occupy shared bandwidth
  while in flight, which a sibling context can time).

Both trackers live in plain cycle timestamps — the same one-pass timing
domain as :class:`~repro.cpu.core.Core` — and are deliberately tiny: no
cycle-stepping, no event queue. A :class:`FuPool` is created fresh per
``Core.run`` call (per round), which makes the batched backend's
memoized-replay bit-identical for free: replaying a round's timing replays
the same intra-round divider occupancy, and no occupancy leaks across
rounds. :class:`OccupancyTimeline` instances, by contrast, intentionally
couple two *separate* runs (victim records, attacker replays), so cores
carrying one are demoted to the scalar backend (see ``batched.py``).
"""

from __future__ import annotations

from typing import List, Tuple

# The FU identifiers are assigned at decode time, so they are defined next to
# the tuple layouts in repro.isa.decoded (importing the other way round would
# be circular); this module is their canonical re-export for core-side code.
from ..isa.decoded import FU_ALU, FU_BY_OP, FU_DIV, FU_MUL, fu_for_op

__all__ = [
    "FU_ALU",
    "FU_MUL",
    "FU_DIV",
    "FU_BY_OP",
    "fu_for_op",
    "FuPool",
    "OccupancyTimeline",
]


class FuPool:
    """Issue-occupancy tracker for the non-pipelined functional units.

    Only the divider is non-pipelined in this model (the ALU and the
    multiplier accept one op per cycle, so they never induce structural
    delay in a timestamp model). ``acquire_div`` serialises divisions:
    a division that arrives while the unit is busy starts when the unit
    frees, and the unit then stays busy for the full latency — whether the
    issuing instruction is committed-path or transient. A squash does not
    release the unit: that is the physical property SpectreRewind exploits.
    """

    __slots__ = ("div_busy_until", "div_issues", "div_contended")

    def __init__(self) -> None:
        #: Cycle the divider frees; divisions arriving earlier queue.
        self.div_busy_until = 0
        #: Divisions issued (committed + transient) this run.
        self.div_issues = 0
        #: Divisions that found the unit busy and had to wait.
        self.div_contended = 0

    def acquire_div(self, start: int, latency: int) -> int:
        """Occupy the divider from ``start``; return the actual start cycle.

        Returns ``max(start, busy_until)`` and marks the unit busy until
        ``actual_start + latency``. Callers complete the division at
        ``actual_start + latency``.
        """
        busy = self.div_busy_until
        if busy > start:
            start = busy
            self.div_contended += 1
        self.div_busy_until = start + latency
        self.div_issues += 1
        return start

    def try_acquire_div(self, start: int, latency: int, deadline: int):
        """Speculative acquire: occupy the divider only if issue beats ``deadline``.

        A transient division sitting in the reservation station (operands
        ready at ``start`` but the unit busy) is killed by the squash like
        any other un-issued uop — only a division that actually *reaches*
        the divider before the squash point keeps grinding through it.
        Returns the actual start cycle, or ``None`` (no side effect) when
        the issue slot ``max(start, busy_until)`` lands at or past
        ``deadline``.
        """
        busy = self.div_busy_until
        actual = busy if busy > start else start
        if actual >= deadline:
            return None
        if busy > start:
            self.div_contended += 1
        self.div_busy_until = actual + latency
        self.div_issues += 1
        return actual


class OccupancyTimeline:
    """Busy intervals on a shared port, in one context's cycle domain.

    The recording context calls :meth:`record` for every interval its
    accesses occupy the port; the contending context calls :meth:`next_free`
    to find when a request arriving at ``t`` actually gets the port. The
    deterministic interleave is strictly one-way (recorder has priority):
    the recorder's timing is computed first and is never perturbed by the
    replayer, which keeps both runs' timings well-defined in one pass.
    """

    __slots__ = ("_intervals", "_sorted")

    def __init__(self) -> None:
        self._intervals: List[Tuple[int, int]] = []
        self._sorted = True

    def record(self, start: int, duration: int) -> None:
        """Mark the port busy for ``[start, start + duration)``."""
        if duration <= 0:
            return
        iv = self._intervals
        if iv and start < iv[-1][0]:
            self._sorted = False
        iv.append((start, start + duration))

    @property
    def busy_cycles(self) -> int:
        """Total recorded busy cycles (intervals may overlap)."""
        return sum(end - start for start, end in self._intervals)

    def __len__(self) -> int:
        return len(self._intervals)

    def next_free(self, t: int) -> int:
        """Earliest cycle >= ``t`` at which the port is not recorded busy.

        A request landing inside a busy interval slips to that interval's
        end, then re-checks (recorded intervals may abut or overlap).
        """
        if not self._sorted:
            self._intervals.sort()
            self._sorted = True
        for start, end in self._intervals:
            if start > t:
                break
            if end > t:
                t = end
        return t
