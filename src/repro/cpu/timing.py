"""Timing records produced by the core.

The core's :meth:`~repro.cpu.core.Core.run` returns a :class:`RunResult`;
experiments read timer registers, squash events and counters from it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..defense.base import SquashOutcome
from ..isa.registers import RegisterFile


@dataclass(frozen=True)
class InstructionTiming:
    """Timeline entry for one committed instruction (debug/record mode)."""

    index: int
    pc: int
    text: str
    dispatch: int
    start: int
    complete: int
    level: Optional[str] = None  # cache level for memory ops


@dataclass(frozen=True)
class SquashEvent:
    """One mis-speculation, with the defense's response."""

    branch_pc: int
    #: Cycle the branch condition resolved (T2).
    resolve_cycle: int
    #: Cycle squash handling began (resolve + squash-identification delay).
    squash_cycle: int
    #: Cycle fetch resumed on the correct path (after penalty + stall).
    fetch_resume: int
    #: Wrong-path instructions that issued before the squash.
    wrong_path_executed: int
    #: Wrong-path loads that issued.
    transient_loads: int
    #: Wrong-path loads still in flight at squash (MSHR-clean targets).
    inflight_transient: int
    outcome: SquashOutcome


@dataclass
class RunResult:
    """Everything observable after a program run."""

    program_name: str
    cycles: int
    instructions: int
    registers: RegisterFile
    squashes: List[SquashEvent] = field(default_factory=list)
    timeline: List[InstructionTiming] = field(default_factory=list)
    noise_event_cycles: int = 0
    #: Lazy stats snapshot: the core attaches ``registry.to_dict`` instead of
    #: serializing the whole registry per run (thousand-round campaigns never
    #: read most snapshots). Materialized on first ``.stats`` access.
    _stats: Optional[Dict[str, object]] = field(default=None, repr=False)
    _stats_source: Optional[Callable[[], Dict[str, object]]] = field(
        default=None, repr=False
    )

    @property
    def stats(self) -> Optional[Dict[str, object]]:
        """Hierarchical stats snapshot (``StatRegistry.to_dict()``), or None.

        Materialized lazily from the source the core attached at the end of
        the run; reading it immediately after :meth:`Core.run` returns the
        same snapshot the eager implementation produced.
        """
        if self._stats is None and self._stats_source is not None:
            self._stats = self._stats_source()
            self._stats_source = None
        return self._stats

    @stats.setter
    def stats(self, value: Optional[Dict[str, object]]) -> None:
        self._stats = value
        self._stats_source = None

    def attach_stats_source(
        self, source: Callable[[], Dict[str, object]]
    ) -> None:
        """Defer the stats snapshot to ``source`` until first access."""
        self._stats = None
        self._stats_source = source

    def timer(self, reg_name: str) -> int:
        """Value of a timestamp register (``ReadTimer`` destination)."""
        return self.registers.read(reg_name)

    def timer_delta(self, start_reg: str, end_reg: str) -> int:
        """ts2 - ts1: the receiver's latency measurement."""
        return self.timer(end_reg) - self.timer(start_reg)

    @property
    def mispredictions(self) -> int:
        return len(self.squashes)

    @property
    def total_defense_stall(self) -> int:
        return sum(e.outcome.stall_cycles for e in self.squashes)

    def last_squash(self) -> SquashEvent:
        if not self.squashes:
            raise ValueError("run had no squash events")
        return self.squashes[-1]
