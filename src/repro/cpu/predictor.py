"""Bimodal branch predictor (table of 2-bit saturating counters).

The attack's preparation stage *mistrains* this predictor: repeated
in-bounds invocations of the sender drive the bounds-check branch's counter
to a strong state, so the subsequent out-of-bounds invocation mis-speculates
into the transient body (paper Fig. 4, "mistrain()").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..common.errors import ConfigError

# Counter values: 0 strongly-not-taken, 1 weakly-not-taken,
#                 2 weakly-taken,       3 strongly-taken.
STRONG_NOT_TAKEN = 0
WEAK_NOT_TAKEN = 1
WEAK_TAKEN = 2
STRONG_TAKEN = 3


@dataclass
class PredictorStats:
    predictions: int = 0
    mispredictions: int = 0
    updates: int = 0

    @property
    def accuracy(self) -> float:
        if self.predictions == 0:
            return 1.0
        return 1.0 - self.mispredictions / self.predictions


class BimodalPredictor:
    """PC-indexed 2-bit counter table."""

    def __init__(self, table_size: int = 16384, initial: int = WEAK_NOT_TAKEN) -> None:
        if table_size <= 0 or table_size & (table_size - 1):
            raise ConfigError("predictor table size must be a power of two")
        if not 0 <= initial <= 3:
            raise ConfigError("initial counter must be in [0, 3]")
        self.table_size = table_size
        self.initial = initial
        self._counters: Dict[int, int] = {}
        self.stats = PredictorStats()
        #: Training-mutation counter (update/reset); ``predict`` only reads.
        #: The batched backend uses it to detect out-of-band training.
        self.version = 0

    def _slot(self, pc: int) -> int:
        return pc & (self.table_size - 1)

    def counter(self, pc: int) -> int:
        return self._counters.get(self._slot(pc), self.initial)

    def predict(self, pc: int) -> bool:
        """Predicted direction for the branch at ``pc`` (True = taken)."""
        self.stats.predictions += 1
        return self.counter(pc) >= WEAK_TAKEN

    def update(self, pc: int, taken: bool, mispredicted: bool) -> None:
        """Train the counter with the resolved outcome."""
        slot = self._slot(pc)
        value = self._counters.get(slot, self.initial)
        if taken:
            value = min(STRONG_TAKEN, value + 1)
        else:
            value = max(STRONG_NOT_TAKEN, value - 1)
        self._counters[slot] = value
        self.stats.updates += 1
        self.version += 1
        if mispredicted:
            self.stats.mispredictions += 1

    def reset(self) -> None:
        self._counters.clear()
        self.stats = PredictorStats()
        self.version += 1
