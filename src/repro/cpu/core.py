"""Trace-driven out-of-order core with speculative (wrong-path) execution.

The core executes a :class:`~repro.isa.program.Program` functionally while
computing per-instruction *timestamps* with dataflow scheduling:

* instructions dispatch in order, ``dispatch_width`` per cycle, subject to
  ROB-occupancy back-pressure (the bounded commit-time deque below — the
  standalone :class:`~repro.cpu.rob.RobModel` documents and unit-tests the
  same recurrence);
* an instruction starts once its source registers are ready (plus the fence
  barrier for memory ops) and completes after its unit latency — loads get
  their latency from the cache hierarchy, *mutating* it;
* a conditional branch resolves when its operands are ready. On a
  misprediction the core executes the **wrong path**: instructions from the
  predicted target issue (and loads really install cache lines, marked
  speculative) until the squash point, exactly the transient-execution
  behaviour Undo defenses must roll back. The attached
  :class:`~repro.defense.base.Defense` then observes the speculative delta
  and returns a stall; fetch resumes after
  ``squash_point + mispredict_penalty + stall``.

This reproduces the properties the attack rests on (paper §IV): branch
resolution time is set by the condition's dependence chain, independent of
the in-branch loads that execute concurrently; and the post-resolve stall is
set by the defense's rollback work.

The model is deliberately not cycle-stepped: timestamps are computed in one
pass, which keeps thousand-round attack campaigns and 10⁵-instruction
synthetic SPEC runs fast while preserving the timing relations that matter.
The inner loop dispatches over the program's *decoded* form
(:meth:`~repro.isa.program.Program.decoded`): small-integer opcodes, label
targets pre-resolved, ALU/branch callables pre-looked-up — decoded once per
program and cached, since attack campaigns run the same program thousands
of times.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..cache.hierarchy import CacheHierarchy
from ..common.config import CoreConfig
from ..common.errors import SimulationError
from ..common.rng import derive_rng
from ..defense.base import Defense, SquashContext
from ..isa.decoded import (
    OP_BRANCH,
    OP_FENCE,
    OP_FLUSH,
    OP_HALT,
    OP_INT_OP,
    OP_INT_OP_IMM,
    OP_JUMP,
    OP_LOAD,
    OP_LOAD_IMM,
    OP_NOP,
    OP_READ_TIMER,
    OP_STORE,
)
from ..isa.program import Program
from ..isa.registers import WORD_MASK, RegisterFile
from ..obs import Observability, get_default_obs
from .fu import FU_DIV, FuPool
from .noise import NoiseModel
from .predictor import BimodalPredictor, WEAK_TAKEN
from .timing import InstructionTiming, RunResult, SquashEvent

#: Sentinel completion time for wrong-path results that never arrive.
NEVER = 1 << 60

#: Cycles between branch resolution and the squash taking effect (walking
#: the ROB, broadcasting the squash). Transient loads completing within this
#: window still install and are then rolled back.
DEFAULT_SQUASH_DELAY = 12


@dataclass
class _WrongPathResult:
    executed: int = 0
    loads_issued: int = 0
    inflight: int = 0
    #: Wrong-path misses serviced into shadow structures (SafeSpec-style
    #: shadow fills / CacheSquash-style cancellable requests) — they never
    #: touch the real hierarchy.
    shadow_fills: int = 0
    #: Of those, fills still in flight at the squash point (the requests a
    #: cancellation-based defense must squash).
    shadow_inflight: int = 0


class Core:
    """One out-of-order core bound to a hierarchy and a defense.

    The predictor and hierarchy persist across :meth:`run` calls — an attack
    campaign runs one program per round against the same core, exactly like
    repeated invocations of sender/receiver code on real hardware.
    """

    def __init__(
        self,
        hierarchy: CacheHierarchy,
        defense: Defense,
        config: Optional[CoreConfig] = None,
        predictor: Optional[BimodalPredictor] = None,
        noise: Optional[NoiseModel] = None,
        squash_delay: int = DEFAULT_SQUASH_DELAY,
        noise_seed: int = 0,
        record_timeline: bool = False,
        obs: Optional[Observability] = None,
    ) -> None:
        self.hierarchy = hierarchy
        self.defense = defense
        self.config = config or CoreConfig()
        self.predictor = predictor or BimodalPredictor()
        self.noise = noise or NoiseModel()
        if squash_delay < 0:
            raise SimulationError("squash_delay must be non-negative")
        self.squash_delay = squash_delay
        self._noise_rng: np.random.Generator = derive_rng(noise_seed, "core-noise")
        self.record_timeline = record_timeline
        #: Wrong-path execution is bounded by the ROB (an instruction can
        #: only issue speculatively if it fits behind the branch).
        self.max_wrong_path = self.config.rob_entries
        #: Two-context interference hooks (repro.cpu.fu.OccupancyTimeline).
        #: ``port_timeline`` — this core *records* the busy intervals its
        #: beyond-L1 traffic (committed loads, wrong-path fills, shadow
        #: fills) puts on the shared L2/memory port. ``contended_timeline``
        #: — this core's committed beyond-L1 loads wait out another
        #: context's recorded intervals before being serviced. Both default
        #: to None (no-op; timing is bit-identical to a hook-free core) and
        #: are assigned by the interference harness between runs. A core
        #: carrying either is demoted to scalar by the batched backend:
        #: the timelines couple *separate* runs, which memoized replay
        #: cannot see.
        self.port_timeline = None
        self.contended_timeline = None
        #: Divider occupancy of the most recent run (repro.cpu.fu.FuPool);
        #: fresh per run, shared between committed and wrong path within it.
        self.fu_pool: Optional[FuPool] = None
        #: Observability: explicit > hierarchy's > process default > None.
        self.obs = obs or hierarchy.obs or get_default_obs()
        if self.obs is not None:
            hierarchy.attach_obs(self.obs)
            if hasattr(defense, "attach_obs"):
                defense.attach_obs(self.obs)
            self._register_stats(self.obs.registry)

    def _register_stats(self, reg) -> None:
        """Create (or share) the ``core.*`` stats this core bumps."""
        self._st_runs = reg.counter("core.runs", "programs executed to Halt")
        self._st_instructions = reg.counter("core.instructions", "committed instructions")
        self._st_cycles = reg.counter("core.cycles", "total run cycles")
        self._st_squashes = reg.counter("core.squashes", "branch mispredict squashes")
        self._st_wp_executed = reg.counter(
            "core.wrong_path.executed", "wrong-path instructions issued"
        )
        self._st_wp_loads = reg.counter(
            "core.wrong_path.loads", "wrong-path loads issued"
        )
        self._st_wp_inflight = reg.counter(
            "core.wrong_path.inflight", "wrong-path loads still in flight at squash"
        )
        self._st_noise = reg.counter("core.noise_cycles", "system-noise event cycles")
        self._st_defense_stall = reg.counter(
            "core.defense_stall_cycles", "cycles stalled for the defense after squashes"
        )
        self._st_squash_stall = reg.distribution(
            "core.squash.stall", "per-squash defense stall seen by the core"
        )
        self._st_run_cycles = reg.distribution("core.run.cycles", "cycles per run")
        reg.formula(
            "core.ipc",
            lambda i=self._st_instructions, c=self._st_cycles: i.value()
            / max(1, c.value()),
            desc="committed instructions per cycle",
        )

    # ------------------------------------------------------------------
    # main entry point
    # ------------------------------------------------------------------

    def run(
        self,
        program: Program,
        registers: Optional[RegisterFile] = None,
        max_instructions: int = 1_000_000,
    ) -> RunResult:
        """Execute ``program`` to its ``Halt``; return timing and state."""
        cfg = self.config
        regs = registers or RegisterFile()
        ready: Dict[str, int] = {}
        result = RunResult(program_name=program.name, cycles=0, instructions=0, registers=regs)

        obs = self.obs
        has_obs = obs is not None
        trace = obs.trace if has_obs else None
        emit_commit = trace is not None and trace.commit_events
        emit_full = trace is not None and trace.full_events
        record_timeline = self.record_timeline

        code = program.decoded()
        n_code = len(code)

        # Local aliases: every name below is read on (almost) every executed
        # instruction — keeping them in locals avoids repeated attribute and
        # global lookups in the hottest Python loop of the repository.
        raw = regs.raw
        raw_get = raw.get
        ready_get = ready.get
        hierarchy = self.hierarchy
        hier_access = hierarchy.access
        dram_peek = hierarchy.dram.peek
        # Effective addresses wrap to the DRAM address space (a power of
        # two), so negative/overflowed computed addresses execute
        # deterministically; register values keep full 64-bit semantics.
        addr_mask = hierarchy.addr_mask
        noise = self.noise
        noise_enabled = noise.enabled
        noise_event = noise.system_event
        noise_jitter = noise.mem_jitter
        noise_rng = self._noise_rng
        predictor = self.predictor
        alu_latency = cfg.alu_latency
        mul_latency = cfg.mul_latency
        div_latency = cfg.div_latency
        branch_latency = cfg.branch_latency
        flush_latency = cfg.flush_latency
        timer_latency = cfg.timer_latency
        dispatch_width = cfg.dispatch_width
        squash_delay = self.squash_delay
        # Divider occupancy is per-run (the machine quiesces between runs,
        # like the MSHR drain below) — which is also what keeps the batched
        # backend's memoized round replay bit-identical with no extra
        # signature state: replaying a round replays its divider schedule.
        fu_pool = FuPool()
        self.fu_pool = fu_pool
        acquire_div = fu_pool.acquire_div
        port_timeline = self.port_timeline
        contended = self.contended_timeline

        # ROB back-pressure state (see repro.cpu.rob.RobModel for the same
        # recurrence in documented, unit-tested form).
        rob_entries = cfg.rob_entries
        commit_times: deque = deque(maxlen=rob_entries)
        commit_times_append = commit_times.append
        last_dispatch_cycle = -1
        dispatched_this_cycle = 0
        last_commit = 0

        # In-flight memory summary (see repro.cpu.lsq.InflightMemTracker):
        # max completion time of issued memory ops, and the fence barrier.
        mem_max_complete = 0
        fence_barrier = 0

        fetch_available = 0
        last_complete_all = 0
        pc = 0
        committed = 0
        # Latest branch-resolution time seen so far: a load starting before
        # this is speculative w.r.t. an older branch (delay-on-miss uses it).
        max_branch_resolve = 0
        delay_misses = getattr(self.defense, "delay_speculative_misses", False)

        while True:
            if committed >= max_instructions:
                raise SimulationError(
                    f"{program.name}: exceeded {max_instructions} instructions"
                )
            if not 0 <= pc < n_code:
                raise SimulationError(f"{program.name}: pc {pc} out of range")
            ins = code[pc]
            op = ins[0]

            # -- dispatch (in order, width-limited, ROB back-pressure) ----
            cycle = fetch_available if fetch_available > last_dispatch_cycle else last_dispatch_cycle
            if cycle == last_dispatch_cycle and dispatched_this_cycle >= dispatch_width:
                cycle += 1
            if len(commit_times) == rob_entries and commit_times[0] > cycle:
                cycle = commit_times[0]
            if cycle != last_dispatch_cycle:
                last_dispatch_cycle = cycle
                dispatched_this_cycle = 1
            else:
                dispatched_this_cycle += 1
            dispatch = cycle

            if noise_enabled:
                event = noise_event(noise_rng)
                if event:
                    result.noise_event_cycles += event
                    dispatch += event
                    if dispatch > fetch_available:
                        fetch_available = dispatch

            start = dispatch
            complete = dispatch
            level: Optional[str] = None
            next_pc = pc + 1

            if op == OP_INT_OP_IMM:
                # (dst, src1, imm, fn, fu)
                src1 = ins[2]
                start = ready_get(src1, 0)
                if dispatch > start:
                    start = dispatch
                fu = ins[5]
                if fu == FU_DIV:
                    # Non-pipelined: queue behind any in-flight division —
                    # including a *transient* one (the SpectreRewind leak).
                    start = acquire_div(start, div_latency)
                    complete = start + div_latency
                else:
                    complete = start + (mul_latency if fu else alu_latency)
                dst = ins[1]
                raw[dst] = ins[4](raw_get(src1, 0), ins[3]) & WORD_MASK
                ready[dst] = complete

            elif op == OP_INT_OP:
                # (dst, src1, src2, fn, fu)
                src1 = ins[2]
                src2 = ins[3]
                start = ready_get(src1, 0)
                r2 = ready_get(src2, 0)
                if r2 > start:
                    start = r2
                if dispatch > start:
                    start = dispatch
                fu = ins[5]
                if fu == FU_DIV:
                    start = acquire_div(start, div_latency)
                    complete = start + div_latency
                else:
                    complete = start + (mul_latency if fu else alu_latency)
                dst = ins[1]
                raw[dst] = ins[4](raw_get(src1, 0), raw_get(src2, 0)) & WORD_MASK
                ready[dst] = complete

            elif op == OP_LOAD:
                # (dst, base, offset)
                base = ins[2]
                start = ready_get(base, 0)
                if dispatch > start:
                    start = dispatch
                if fence_barrier > start:
                    start = fence_barrier
                addr = (raw_get(base, 0) + ins[3]) & addr_mask
                if delay_misses and start < max_branch_resolve:
                    # Invisible-family delay-on-miss: an L1 miss issued under
                    # an unresolved branch waits for the branch to resolve.
                    # The miss prediction is MSHR-pressure-aware, matching
                    # the wrong-path predict_latency call — probe_latency
                    # here would disagree with what access() charges when
                    # the MSHR file is full (same level, so the *decision*
                    # is unchanged; kept aligned so it stays that way).
                    _, probe_level = hierarchy.predict_latency(addr, start)
                    if probe_level != "L1":
                        start = max_branch_resolve
                access = hier_access(addr, cycle=start)
                latency = access.latency
                level = access.level
                if level == "MEM":
                    latency = max(1, latency + noise_jitter(noise_rng))
                if level != "L1":
                    if contended is not None:
                        # Two-context interference: wait out the other
                        # context's recorded traffic on the shared port.
                        latency += contended.next_free(start) - start
                    if port_timeline is not None:
                        port_timeline.record(start, latency)
                complete = start + latency
                dst = ins[1]
                raw[dst] = dram_peek(addr) & WORD_MASK
                ready[dst] = complete
                if complete > mem_max_complete:
                    mem_max_complete = complete

            elif op == OP_LOAD_IMM:
                # (dst, imm)
                complete = dispatch + alu_latency
                dst = ins[1]
                raw[dst] = ins[2] & WORD_MASK
                ready[dst] = complete

            elif op == OP_BRANCH:
                # (src1, src2, cond_fn, taken_pc)
                src1 = ins[1]
                src2 = ins[2]
                a = raw_get(src1, 0)
                b = raw_get(src2, 0)
                predicted = predictor.predict(pc)
                actual = bool(ins[3](a, b))
                resolve = ready_get(src1, 0)
                r2 = ready_get(src2, 0)
                if r2 > resolve:
                    resolve = r2
                if dispatch > resolve:
                    resolve = dispatch
                resolve += branch_latency
                complete = resolve
                if resolve > max_branch_resolve:
                    max_branch_resolve = resolve
                taken_pc = ins[4]
                correct_next = taken_pc if actual else pc + 1
                if predicted != actual:
                    wrong_pc = taken_pc if predicted else pc + 1
                    squash_point = resolve + squash_delay
                    epoch = hierarchy.open_epoch()
                    wp = self._run_wrong_path(
                        program,
                        wrong_pc,
                        regs,
                        ready,
                        branch_dispatch=dispatch,
                        squash_point=squash_point,
                        epoch=epoch,
                        fence_barrier=fence_barrier,
                    )
                    delta = hierarchy.squash_epoch_delta(epoch)
                    # Observability guard: one predicate for the whole squash
                    # path (begin + delta + end + counters). ``obs`` carries
                    # the trace, so ``has_obs`` implies ``trace is not None``.
                    if has_obs:
                        trace.emit(
                            squash_point,
                            "squash.begin",
                            (pc, resolve, wp.executed, wp.loads_issued, wp.inflight),
                        )
                        trace.emit(
                            squash_point,
                            "spec.delta",
                            (
                                epoch,
                                sum(1 for i in delta.installs if i.level == "L1"),
                                sum(1 for i in delta.installs if i.level == "L2"),
                                sum(1 for e in delta.evictions if e.level == "L1"),
                                sum(1 for e in delta.evictions if e.level == "L2"),
                                wp.inflight,
                            ),
                        )
                    ctx = SquashContext(
                        resolve_cycle=squash_point,
                        delta=delta,
                        inflight_transient=wp.inflight,
                        older_mem_complete=mem_max_complete,
                        shadow_fills=wp.shadow_fills,
                        shadow_inflight=wp.shadow_inflight,
                    )
                    outcome = self.defense.on_squash(ctx)
                    fetch_resume = (
                        squash_point + cfg.mispredict_penalty + outcome.stall_cycles
                    )
                    if fetch_resume > fetch_available:
                        fetch_available = fetch_resume
                    if has_obs:
                        trace.emit(
                            fetch_resume,
                            "squash.end",
                            (
                                pc,
                                fetch_resume,
                                outcome.stall_cycles,
                                outcome.stage("t3_mshr_clean"),
                                outcome.stage("t4_inflight_wait"),
                                outcome.stage("t5_rollback"),
                                outcome.stage("dummy"),
                                outcome.stage("padding"),
                                outcome.invalidated_l1,
                                outcome.invalidated_l2,
                                outcome.restored_l1,
                            ),
                        )
                        self._st_squashes.inc()
                        self._st_wp_executed.inc(wp.executed)
                        self._st_wp_loads.inc(wp.loads_issued)
                        self._st_wp_inflight.inc(wp.inflight)
                        self._st_defense_stall.inc(outcome.stall_cycles)
                        self._st_squash_stall.add(outcome.stall_cycles)
                    result.squashes.append(
                        SquashEvent(
                            branch_pc=pc,
                            resolve_cycle=resolve,
                            squash_cycle=squash_point,
                            fetch_resume=fetch_resume,
                            wrong_path_executed=wp.executed,
                            transient_loads=wp.loads_issued,
                            inflight_transient=wp.inflight,
                            outcome=outcome,
                        )
                    )
                # Train the predictor only *after* wrong-path simulation: the
                # transient path peeks the counter via ``predictor.counter``,
                # and real hardware updates the BPU at resolution/commit — a
                # wrong-path re-fetch of the same branch pc (a loop) must see
                # the pre-resolution counter, not this update.
                predictor.update(pc, actual, mispredicted=predicted != actual)
                next_pc = correct_next

            elif op == OP_STORE:
                # (src, base, offset)
                src = ins[1]
                base = ins[2]
                start = ready_get(src, 0)
                rb = ready_get(base, 0)
                if rb > start:
                    start = rb
                if dispatch > start:
                    start = dispatch
                if fence_barrier > start:
                    start = fence_barrier
                addr = (raw_get(base, 0) + ins[3]) & addr_mask
                access = hier_access(addr, cycle=start, is_write=True)
                hierarchy.dram.poke(addr, raw_get(src, 0))
                complete = start + access.latency
                level = access.level
                if complete > mem_max_complete:
                    mem_max_complete = complete

            elif op == OP_FLUSH:
                # (base, offset)
                base = ins[1]
                start = ready_get(base, 0)
                if dispatch > start:
                    start = dispatch
                if fence_barrier > start:
                    start = fence_barrier
                addr = (raw_get(base, 0) + ins[2]) & addr_mask
                hierarchy.flush_line(addr)
                complete = start + flush_latency
                if complete > mem_max_complete:
                    mem_max_complete = complete

            elif op == OP_FENCE:
                complete = mem_max_complete if mem_max_complete > dispatch else dispatch
                if complete > fence_barrier:
                    fence_barrier = complete

            elif op == OP_READ_TIMER:
                # Serialising: waits for every older instruction.
                start = last_complete_all if last_complete_all > dispatch else dispatch
                complete = start + timer_latency
                dst = ins[1]
                raw[dst] = complete & WORD_MASK
                ready[dst] = complete

            elif op == OP_JUMP:
                complete = dispatch
                next_pc = ins[1]

            elif op == OP_NOP:
                complete = dispatch

            elif op == OP_HALT:
                commit = dispatch if dispatch > last_commit else last_commit
                last_commit = commit
                commit_times_append(commit)
                committed += 1
                if dispatch > last_complete_all:
                    last_complete_all = dispatch
                break

            else:  # pragma: no cover - exhaustive over the ISA
                raise SimulationError(f"unhandled opcode: {op!r}")

            # -- in-order commit --------------------------------------------
            commit = complete if complete > last_commit else last_commit
            last_commit = commit
            commit_times_append(commit)
            if complete > last_complete_all:
                last_complete_all = complete
            committed += 1
            if emit_commit:
                trace.emit(
                    complete,
                    "inst.commit",
                    (committed - 1, pc, dispatch, start, complete, level),
                )
                if emit_full:
                    trace.emit(dispatch, "inst.dispatch", (committed - 1, pc))
                    trace.emit(start, "inst.issue", (committed - 1, pc))
                    trace.emit(complete, "inst.complete", (committed - 1, pc, level))
            if record_timeline:
                result.timeline.append(
                    InstructionTiming(
                        index=committed - 1,
                        pc=pc,
                        text=str(program[pc]),
                        dispatch=dispatch,
                        start=start,
                        complete=complete,
                        level=level,
                    )
                )
            pc = next_pc

        result.cycles = max(last_complete_all, fetch_available)
        result.instructions = committed
        # Drain in-flight fills: the machine quiesces between runs, and the
        # cycle clock restarts at 0 next run — an entry carried across would
        # sit in the previous run's cycle domain, merging every later miss
        # to its line into a phantom far-future completion. (Defenses whose
        # wrong path never touches the hierarchy otherwise leak the final
        # committed miss's entry into every subsequent round.)
        hierarchy.mshr.retire_completed(NEVER)
        if has_obs:
            self._st_runs.inc()
            self._st_instructions.inc(committed)
            self._st_cycles.inc(result.cycles)
            self._st_noise.inc(result.noise_event_cycles)
            self._st_run_cycles.add(result.cycles)
            # Lazy snapshot: serializing the whole registry per run is far
            # too expensive for thousand-round campaigns that never read it.
            result.attach_stats_source(obs.registry.to_dict)
        return result

    # ------------------------------------------------------------------
    # wrong-path (transient) execution
    # ------------------------------------------------------------------

    def _run_wrong_path(
        self,
        program: Program,
        pc: int,
        regs: RegisterFile,
        ready: Dict[str, int],
        branch_dispatch: int,
        squash_point: int,
        epoch: int,
        fence_barrier: int,
    ) -> _WrongPathResult:
        """Execute the mispredicted path until the squash point.

        Uses a speculative copy of register values/ready-times. Loads whose
        address is ready before the squash issue real (speculative) cache
        accesses — they install lines, evict victims, and are recorded under
        ``epoch`` for the defense to roll back. Stores, flushes and timer
        reads have no speculative side effects (they only perform at
        retirement on the modelled machine). Nested branches follow their
        predicted direction without opening nested epochs: the outer squash
        discards everything at once.
        """
        cfg = self.config
        code = program.decoded()
        n_code = len(code)
        spec_values: Dict[str, int] = {}
        spec_ready = dict(ready)
        spec_values_get = spec_values.get
        spec_ready_get = spec_ready.get
        raw_get = regs.raw.get
        barrier = fence_barrier
        out = _WrongPathResult()

        hierarchy = self.hierarchy
        addr_mask = hierarchy.addr_mask
        noise_jitter = self.noise.mem_jitter
        noise_rng = self._noise_rng
        predictor_counter = self.predictor.counter
        alu_latency = cfg.alu_latency
        mul_latency = cfg.mul_latency
        div_latency = cfg.div_latency
        # Shared with the committed path: a transient division occupies the
        # same physical divider, and the squash does not release it.
        try_acquire_div = self.fu_pool.try_acquire_div
        port_timeline = self.port_timeline
        dispatch_width = cfg.dispatch_width
        max_wrong_path = self.max_wrong_path
        allows_install = getattr(self.defense, "allows_speculative_install", True)
        shadow_fills = getattr(self.defense, "shadow_speculative_fills", False)

        count = 0
        while 0 <= pc < n_code and count < max_wrong_path:
            ins = code[pc]
            op = ins[0]
            dispatch = branch_dispatch + 1 + count // dispatch_width
            if dispatch >= squash_point:
                break
            count += 1
            next_pc = pc + 1

            if op == OP_INT_OP_IMM:
                src1 = ins[2]
                start = spec_ready_get(src1, 0)
                if dispatch > start:
                    start = dispatch
                v1 = spec_values_get(src1)
                if v1 is None:
                    v1 = raw_get(src1, 0)
                spec_values[ins[1]] = ins[4](v1, ins[3]) & WORD_MASK
                fu = ins[5]
                if fu == FU_DIV:
                    # Divider occupancy is a real side effect, so it gets
                    # the same squash-point gate as OP_LOAD — but on the
                    # *issue slot*, not the operand-ready time: a transient
                    # division still queued behind a busy divider at the
                    # squash is killed in the reservation station like any
                    # un-issued uop (operands readying past the squash, or
                    # never via the NEVER sentinel, gate the same way). One
                    # that reaches the unit in time occupies it past the
                    # squash — the squash cannot recall an in-flight
                    # division.
                    issued = try_acquire_div(start, div_latency, squash_point)
                    spec_ready[ins[1]] = (
                        NEVER if issued is None else issued + div_latency
                    )
                else:
                    spec_ready[ins[1]] = start + (mul_latency if fu else alu_latency)

            elif op == OP_INT_OP:
                src1 = ins[2]
                src2 = ins[3]
                start = spec_ready_get(src1, 0)
                r2 = spec_ready_get(src2, 0)
                if r2 > start:
                    start = r2
                if dispatch > start:
                    start = dispatch
                v1 = spec_values_get(src1)
                if v1 is None:
                    v1 = raw_get(src1, 0)
                v2 = spec_values_get(src2)
                if v2 is None:
                    v2 = raw_get(src2, 0)
                spec_values[ins[1]] = ins[4](v1, v2) & WORD_MASK
                fu = ins[5]
                if fu == FU_DIV:
                    issued = try_acquire_div(start, div_latency, squash_point)
                    spec_ready[ins[1]] = (
                        NEVER if issued is None else issued + div_latency
                    )
                else:
                    spec_ready[ins[1]] = start + (mul_latency if fu else alu_latency)

            elif op == OP_LOAD:
                base = ins[2]
                dst = ins[1]
                base_ready = spec_ready_get(base, 0)
                start = base_ready
                if dispatch > start:
                    start = dispatch
                if barrier > start:
                    start = barrier
                if start >= squash_point or base_ready >= NEVER:
                    spec_ready[dst] = NEVER
                elif not allows_install:
                    # Invisible-family defense: L1 hits proceed; misses
                    # either die (delay-on-miss) or — for shadow-structure
                    # defenses (SafeSpec shadow fills, CacheSquash
                    # cancellable requests) — complete from a shadow buffer
                    # without any real-hierarchy state change.
                    vb = spec_values_get(base)
                    if vb is None:
                        vb = raw_get(base, 0)
                    addr = (vb + ins[3]) & addr_mask
                    latency, probed = hierarchy.probe_latency(addr)
                    if probed == "L1":
                        out.loads_issued += 1
                        spec_values[dst] = hierarchy.dram.peek(addr)
                        spec_ready[dst] = start + latency
                    elif shadow_fills:
                        if probed == "MEM":
                            latency = max(1, latency + noise_jitter(noise_rng))
                        if port_timeline is not None:
                            # Shadow fills never touch real cache state, but
                            # they DO occupy the shared downstream port while
                            # in flight — the interference-attack observation.
                            port_timeline.record(start, latency)
                        complete = start + latency
                        out.loads_issued += 1
                        out.shadow_fills += 1
                        if complete > squash_point:
                            # Still in flight when the squash hits: a
                            # cancellation-based defense must squash it.
                            out.shadow_inflight += 1
                            spec_ready[dst] = NEVER
                        else:
                            spec_values[dst] = hierarchy.dram.peek(addr)
                            spec_ready[dst] = complete
                    else:
                        # Delay-on-miss: the miss is never issued downstream
                        # (no port occupancy, no fill). Burn the jitter draw
                        # the other defense families make for this would-be
                        # memory access, so per-round RNG draw counts are
                        # family-invariant and the BatchedCore draw-count
                        # guard can't spuriously demote one family.
                        if probed == "MEM":
                            noise_jitter(noise_rng)
                        spec_ready[dst] = NEVER
                else:
                    vb = spec_values_get(base)
                    if vb is None:
                        vb = raw_get(base, 0)
                    addr = (vb + ins[3]) & addr_mask
                    # Predict the modelled cost *including* MSHR-full
                    # pressure, without side effects: the in-flight-vs-landed
                    # decision must agree with what access() will charge.
                    latency, level = hierarchy.predict_latency(addr, start)
                    jitter = 0
                    if level == "MEM":
                        jitter = noise_jitter(noise_rng)
                        latency = max(1, latency + jitter)
                    if level != "L1" and port_timeline is not None:
                        # The fill occupies the shared port whether it lands
                        # before the squash or is cleaned out of the MSHR.
                        port_timeline.record(start, latency)
                    complete = start + latency
                    out.loads_issued += 1
                    if complete <= squash_point or level == "L1":
                        # The access (and, on a miss, its fill) lands before
                        # the squash: it really installs and must be rolled
                        # back. L1 hits never occupy the MSHR. The completion
                        # is re-derived from the *actual* access cost (it can
                        # only differ from the prediction if cache/MSHR state
                        # changed between predict and access, which nothing
                        # here does — the re-derivation keeps them coupled).
                        access = hierarchy.access(
                            addr, cycle=start, speculative=True, epoch=epoch
                        )
                        actual_latency = access.latency
                        if access.level == "MEM":
                            actual_latency = max(1, actual_latency + jitter)
                        spec_values[dst] = hierarchy.dram.peek(addr)
                        spec_ready[dst] = start + actual_latency
                    else:
                        # Fill still in flight at squash: CleanupSpec cleans
                        # it out of the MSHR (T3); the line never installs.
                        out.inflight += 1
                        spec_ready[dst] = NEVER

            elif op == OP_LOAD_IMM:
                spec_values[ins[1]] = ins[2]
                spec_ready[ins[1]] = dispatch + alu_latency

            elif op == OP_BRANCH:
                # Peek the counter without polluting prediction statistics.
                predicted = predictor_counter(pc) >= WEAK_TAKEN
                next_pc = ins[4] if predicted else pc + 1

            elif op == OP_STORE:
                # Speculative stores do not perform; they sit in the store
                # queue and are squashed.
                pass

            elif op == OP_FLUSH:
                # clflush is ordered; it does not perform speculatively.
                pass

            elif op == OP_FENCE:
                fence_at = dispatch
                for t in spec_ready.values():
                    if fence_at < t < NEVER:
                        fence_at = t
                if fence_at > barrier:
                    barrier = fence_at

            elif op == OP_READ_TIMER:
                # Serialising: younger wrong-path work would not execute
                # before the squash anyway; the destination never readies.
                spec_ready[ins[1]] = NEVER

            elif op == OP_JUMP:
                next_pc = ins[1]

            elif op == OP_NOP:
                pass

            elif op == OP_HALT:
                break

            out.executed += 1
            pc = next_pc

        return out
