"""Trace-driven out-of-order core with speculative (wrong-path) execution.

The core executes a :class:`~repro.isa.program.Program` functionally while
computing per-instruction *timestamps* with dataflow scheduling:

* instructions dispatch in order, ``dispatch_width`` per cycle, subject to
  ROB-occupancy back-pressure (:class:`~repro.cpu.rob.RobModel`);
* an instruction starts once its source registers are ready (plus the fence
  barrier for memory ops) and completes after its unit latency — loads get
  their latency from the cache hierarchy, *mutating* it;
* a conditional branch resolves when its operands are ready. On a
  misprediction the core executes the **wrong path**: instructions from the
  predicted target issue (and loads really install cache lines, marked
  speculative) until the squash point, exactly the transient-execution
  behaviour Undo defenses must roll back. The attached
  :class:`~repro.defense.base.Defense` then observes the speculative delta
  and returns a stall; fetch resumes after
  ``squash_point + mispredict_penalty + stall``.

This reproduces the properties the attack rests on (paper §IV): branch
resolution time is set by the condition's dependence chain, independent of
the in-branch loads that execute concurrently; and the post-resolve stall is
set by the defense's rollback work.

The model is deliberately not cycle-stepped: timestamps are computed in one
pass, which keeps thousand-round attack campaigns and 10⁵-instruction
synthetic SPEC runs fast while preserving the timing relations that matter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..cache.hierarchy import CacheHierarchy
from ..common.config import CoreConfig
from ..common.errors import SimulationError
from ..common.rng import derive_rng
from ..defense.base import Defense, SquashContext
from ..isa.instructions import (
    Branch,
    Fence,
    Flush,
    Halt,
    IntOp,
    IntOpImm,
    Jump,
    Load,
    LoadImm,
    Nop,
    ReadTimer,
    Store,
    alu_eval,
)
from ..isa.program import Program
from ..isa.registers import RegisterFile
from ..obs import Observability, get_default_obs
from .lsq import InflightMemTracker
from .noise import NoiseModel
from .predictor import BimodalPredictor, WEAK_TAKEN
from .rob import RobModel
from .timing import InstructionTiming, RunResult, SquashEvent

#: Sentinel completion time for wrong-path results that never arrive.
NEVER = 1 << 60

#: Cycles between branch resolution and the squash taking effect (walking
#: the ROB, broadcasting the squash). Transient loads completing within this
#: window still install and are then rolled back.
DEFAULT_SQUASH_DELAY = 12


@dataclass
class _WrongPathResult:
    executed: int = 0
    loads_issued: int = 0
    inflight: int = 0


class Core:
    """One out-of-order core bound to a hierarchy and a defense.

    The predictor and hierarchy persist across :meth:`run` calls — an attack
    campaign runs one program per round against the same core, exactly like
    repeated invocations of sender/receiver code on real hardware.
    """

    def __init__(
        self,
        hierarchy: CacheHierarchy,
        defense: Defense,
        config: Optional[CoreConfig] = None,
        predictor: Optional[BimodalPredictor] = None,
        noise: Optional[NoiseModel] = None,
        squash_delay: int = DEFAULT_SQUASH_DELAY,
        noise_seed: int = 0,
        record_timeline: bool = False,
        obs: Optional[Observability] = None,
    ) -> None:
        self.hierarchy = hierarchy
        self.defense = defense
        self.config = config or CoreConfig()
        self.predictor = predictor or BimodalPredictor()
        self.noise = noise or NoiseModel()
        if squash_delay < 0:
            raise SimulationError("squash_delay must be non-negative")
        self.squash_delay = squash_delay
        self._noise_rng: np.random.Generator = derive_rng(noise_seed, "core-noise")
        self.record_timeline = record_timeline
        #: Wrong-path execution is bounded by the ROB (an instruction can
        #: only issue speculatively if it fits behind the branch).
        self.max_wrong_path = self.config.rob_entries
        #: Observability: explicit > hierarchy's > process default > None.
        self.obs = obs or hierarchy.obs or get_default_obs()
        if self.obs is not None:
            hierarchy.attach_obs(self.obs)
            if hasattr(defense, "attach_obs"):
                defense.attach_obs(self.obs)
            self._register_stats(self.obs.registry)

    def _register_stats(self, reg) -> None:
        """Create (or share) the ``core.*`` stats this core bumps."""
        self._st_runs = reg.counter("core.runs", "programs executed to Halt")
        self._st_instructions = reg.counter("core.instructions", "committed instructions")
        self._st_cycles = reg.counter("core.cycles", "total run cycles")
        self._st_squashes = reg.counter("core.squashes", "branch mispredict squashes")
        self._st_wp_executed = reg.counter(
            "core.wrong_path.executed", "wrong-path instructions issued"
        )
        self._st_wp_loads = reg.counter(
            "core.wrong_path.loads", "wrong-path loads issued"
        )
        self._st_wp_inflight = reg.counter(
            "core.wrong_path.inflight", "wrong-path loads still in flight at squash"
        )
        self._st_noise = reg.counter("core.noise_cycles", "system-noise event cycles")
        self._st_defense_stall = reg.counter(
            "core.defense_stall_cycles", "cycles stalled for the defense after squashes"
        )
        self._st_squash_stall = reg.distribution(
            "core.squash.stall", "per-squash defense stall seen by the core"
        )
        self._st_run_cycles = reg.distribution("core.run.cycles", "cycles per run")
        reg.formula(
            "core.ipc",
            lambda i=self._st_instructions, c=self._st_cycles: i.value()
            / max(1, c.value()),
            desc="committed instructions per cycle",
        )

    # ------------------------------------------------------------------
    # main entry point
    # ------------------------------------------------------------------

    def run(
        self,
        program: Program,
        registers: Optional[RegisterFile] = None,
        max_instructions: int = 1_000_000,
    ) -> RunResult:
        """Execute ``program`` to its ``Halt``; return timing and state."""
        cfg = self.config
        regs = registers or RegisterFile()
        ready: Dict[str, int] = {}
        rob = RobModel(cfg.rob_entries, cfg.dispatch_width)
        mem = InflightMemTracker()
        result = RunResult(program_name=program.name, cycles=0, instructions=0, registers=regs)

        obs = self.obs
        trace = obs.trace if obs is not None else None
        emit_commit = trace is not None and trace.commit_events
        emit_full = trace is not None and trace.full_events

        fetch_available = 0
        last_complete_all = 0
        pc = 0
        committed = 0
        # Latest branch-resolution time seen so far: a load starting before
        # this is speculative w.r.t. an older branch (delay-on-miss uses it).
        max_branch_resolve = 0
        delay_misses = getattr(self.defense, "delay_speculative_misses", False)

        def reg_ready(name: str) -> int:
            return ready.get(name, 0)

        while True:
            if committed >= max_instructions:
                raise SimulationError(
                    f"{program.name}: exceeded {max_instructions} instructions"
                )
            if not 0 <= pc < len(program):
                raise SimulationError(f"{program.name}: pc {pc} out of range")
            inst = program[pc]
            dispatch = rob.next_dispatch_cycle(fetch_available)

            if self.noise.enabled:
                event = self.noise.system_event(self._noise_rng)
                if event:
                    result.noise_event_cycles += event
                    dispatch += event
                    fetch_available = max(fetch_available, dispatch)

            start = dispatch
            complete = dispatch
            level: Optional[str] = None
            next_pc = pc + 1

            if isinstance(inst, Halt):
                rob.record_commit(dispatch)
                committed += 1
                last_complete_all = max(last_complete_all, dispatch)
                break

            elif isinstance(inst, LoadImm):
                complete = dispatch + cfg.alu_latency
                regs.write(inst.dst, inst.imm)
                ready[inst.dst] = complete

            elif isinstance(inst, IntOp):
                start = max(dispatch, reg_ready(inst.src1), reg_ready(inst.src2))
                latency = cfg.mul_latency if inst.op == "mul" else cfg.alu_latency
                complete = start + latency
                regs.write(inst.dst, alu_eval(inst.op, regs.read(inst.src1), regs.read(inst.src2)))
                ready[inst.dst] = complete

            elif isinstance(inst, IntOpImm):
                start = max(dispatch, reg_ready(inst.src1))
                latency = cfg.mul_latency if inst.op == "mul" else cfg.alu_latency
                complete = start + latency
                regs.write(inst.dst, alu_eval(inst.op, regs.read(inst.src1), inst.imm))
                ready[inst.dst] = complete

            elif isinstance(inst, Load):
                start = max(dispatch, reg_ready(inst.base), mem.fence_barrier)
                addr = (regs.read(inst.base) + inst.offset) & ((1 << 64) - 1)
                if delay_misses and start < max_branch_resolve:
                    # Invisible-family delay-on-miss: an L1 miss issued under
                    # an unresolved branch waits for the branch to resolve.
                    _, probe_level = self.hierarchy.probe_latency(addr)
                    if probe_level != "L1":
                        start = max_branch_resolve
                access = self.hierarchy.access(addr, cycle=start)
                latency = access.latency
                if access.level == "MEM":
                    latency = max(1, latency + self.noise.mem_jitter(self._noise_rng))
                complete = start + latency
                level = access.level
                regs.write(inst.dst, self.hierarchy.dram.peek(addr))
                ready[inst.dst] = complete
                mem.record_load(complete)

            elif isinstance(inst, Store):
                start = max(
                    dispatch, reg_ready(inst.src), reg_ready(inst.base), mem.fence_barrier
                )
                addr = (regs.read(inst.base) + inst.offset) & ((1 << 64) - 1)
                access = self.hierarchy.access(addr, cycle=start, is_write=True)
                self.hierarchy.dram.poke(addr, regs.read(inst.src))
                complete = start + access.latency
                level = access.level
                mem.record_store(complete)

            elif isinstance(inst, Flush):
                start = max(dispatch, reg_ready(inst.base), mem.fence_barrier)
                addr = (regs.read(inst.base) + inst.offset) & ((1 << 64) - 1)
                self.hierarchy.flush_line(addr)
                complete = start + cfg.flush_latency
                mem.record_flush(complete)

            elif isinstance(inst, Fence):
                complete = mem.drain_time(at_least=dispatch)
                mem.record_fence(complete)

            elif isinstance(inst, ReadTimer):
                # Serialising: waits for every older instruction.
                start = max(dispatch, last_complete_all)
                complete = start + cfg.timer_latency
                regs.write(inst.dst, complete)
                ready[inst.dst] = complete

            elif isinstance(inst, Jump):
                complete = dispatch
                next_pc = program.resolve(inst.target)

            elif isinstance(inst, Nop):
                complete = dispatch

            elif isinstance(inst, Branch):
                a = regs.read(inst.src1)
                b = regs.read(inst.src2)
                predicted = self.predictor.predict(pc)
                actual = inst.taken(a, b)
                resolve = (
                    max(dispatch, reg_ready(inst.src1), reg_ready(inst.src2))
                    + cfg.branch_latency
                )
                complete = resolve
                max_branch_resolve = max(max_branch_resolve, resolve)
                self.predictor.update(pc, actual, mispredicted=predicted != actual)
                correct_next = program.resolve(inst.target) if actual else pc + 1
                if predicted != actual:
                    wrong_pc = program.resolve(inst.target) if predicted else pc + 1
                    squash_point = resolve + self.squash_delay
                    epoch = self.hierarchy.open_epoch()
                    wp = self._run_wrong_path(
                        program,
                        wrong_pc,
                        regs,
                        ready,
                        branch_dispatch=dispatch,
                        squash_point=squash_point,
                        epoch=epoch,
                        fence_barrier=mem.fence_barrier,
                    )
                    delta = self.hierarchy.squash_epoch_delta(epoch)
                    if trace is not None:
                        trace.emit(
                            squash_point,
                            "squash.begin",
                            (pc, resolve, wp.executed, wp.loads_issued, wp.inflight),
                        )
                        trace.emit(
                            squash_point,
                            "spec.delta",
                            (
                                epoch,
                                sum(1 for i in delta.installs if i.level == "L1"),
                                sum(1 for i in delta.installs if i.level == "L2"),
                                sum(1 for e in delta.evictions if e.level == "L1"),
                                sum(1 for e in delta.evictions if e.level == "L2"),
                                wp.inflight,
                            ),
                        )
                    ctx = SquashContext(
                        resolve_cycle=squash_point,
                        delta=delta,
                        inflight_transient=wp.inflight,
                        older_mem_complete=mem.drain_time(),
                    )
                    outcome = self.defense.on_squash(ctx)
                    fetch_resume = (
                        squash_point + cfg.mispredict_penalty + outcome.stall_cycles
                    )
                    fetch_available = max(fetch_available, fetch_resume)
                    if obs is not None:
                        trace.emit(
                            fetch_resume,
                            "squash.end",
                            (
                                pc,
                                fetch_resume,
                                outcome.stall_cycles,
                                outcome.stage("t3_mshr_clean"),
                                outcome.stage("t4_inflight_wait"),
                                outcome.stage("t5_rollback"),
                                outcome.stage("dummy"),
                                outcome.stage("padding"),
                                outcome.invalidated_l1,
                                outcome.invalidated_l2,
                                outcome.restored_l1,
                            ),
                        )
                        self._st_squashes.inc()
                        self._st_wp_executed.inc(wp.executed)
                        self._st_wp_loads.inc(wp.loads_issued)
                        self._st_wp_inflight.inc(wp.inflight)
                        self._st_defense_stall.inc(outcome.stall_cycles)
                        self._st_squash_stall.add(outcome.stall_cycles)
                    result.squashes.append(
                        SquashEvent(
                            branch_pc=pc,
                            resolve_cycle=resolve,
                            squash_cycle=squash_point,
                            fetch_resume=fetch_resume,
                            wrong_path_executed=wp.executed,
                            transient_loads=wp.loads_issued,
                            inflight_transient=wp.inflight,
                            outcome=outcome,
                        )
                    )
                next_pc = correct_next

            else:  # pragma: no cover - exhaustive over the ISA
                raise SimulationError(f"unhandled instruction: {inst!r}")

            rob.record_commit(complete)
            last_complete_all = max(last_complete_all, complete)
            committed += 1
            if emit_commit:
                trace.emit(
                    complete,
                    "inst.commit",
                    (committed - 1, pc, dispatch, start, complete, level),
                )
                if emit_full:
                    trace.emit(dispatch, "inst.dispatch", (committed - 1, pc))
                    trace.emit(start, "inst.issue", (committed - 1, pc))
                    trace.emit(complete, "inst.complete", (committed - 1, pc, level))
            if self.record_timeline:
                result.timeline.append(
                    InstructionTiming(
                        index=committed - 1,
                        pc=pc,
                        text=str(inst),
                        dispatch=dispatch,
                        start=start,
                        complete=complete,
                        level=level,
                    )
                )
            pc = next_pc

        result.cycles = max(last_complete_all, fetch_available)
        result.instructions = committed
        if obs is not None:
            self._st_runs.inc()
            self._st_instructions.inc(committed)
            self._st_cycles.inc(result.cycles)
            self._st_noise.inc(result.noise_event_cycles)
            self._st_run_cycles.add(result.cycles)
            result.stats = obs.registry.to_dict()
        return result

    # ------------------------------------------------------------------
    # wrong-path (transient) execution
    # ------------------------------------------------------------------

    def _run_wrong_path(
        self,
        program: Program,
        pc: int,
        regs: RegisterFile,
        ready: Dict[str, int],
        branch_dispatch: int,
        squash_point: int,
        epoch: int,
        fence_barrier: int,
    ) -> _WrongPathResult:
        """Execute the mispredicted path until the squash point.

        Uses a speculative copy of register values/ready-times. Loads whose
        address is ready before the squash issue real (speculative) cache
        accesses — they install lines, evict victims, and are recorded under
        ``epoch`` for the defense to roll back. Stores, flushes and timer
        reads have no speculative side effects (they only perform at
        retirement on the modelled machine). Nested branches follow their
        predicted direction without opening nested epochs: the outer squash
        discards everything at once.
        """
        cfg = self.config
        spec_values: Dict[str, int] = {}
        spec_ready = dict(ready)
        barrier = fence_barrier
        out = _WrongPathResult()

        def value_of(name: str) -> int:
            return spec_values.get(name, regs.read(name))

        def ready_of(name: str) -> int:
            return spec_ready.get(name, 0)

        count = 0
        while 0 <= pc < len(program) and count < self.max_wrong_path:
            inst = program[pc]
            dispatch = branch_dispatch + 1 + count // cfg.dispatch_width
            if dispatch >= squash_point:
                break
            count += 1
            next_pc = pc + 1

            if isinstance(inst, Halt):
                break

            elif isinstance(inst, LoadImm):
                spec_values[inst.dst] = inst.imm
                spec_ready[inst.dst] = dispatch + cfg.alu_latency

            elif isinstance(inst, IntOp):
                start = max(dispatch, ready_of(inst.src1), ready_of(inst.src2))
                latency = cfg.mul_latency if inst.op == "mul" else cfg.alu_latency
                spec_values[inst.dst] = alu_eval(
                    inst.op, value_of(inst.src1), value_of(inst.src2)
                )
                spec_ready[inst.dst] = start + latency

            elif isinstance(inst, IntOpImm):
                start = max(dispatch, ready_of(inst.src1))
                latency = cfg.mul_latency if inst.op == "mul" else cfg.alu_latency
                spec_values[inst.dst] = alu_eval(inst.op, value_of(inst.src1), inst.imm)
                spec_ready[inst.dst] = start + latency

            elif isinstance(inst, Load):
                start = max(dispatch, ready_of(inst.base), barrier)
                if start >= squash_point or ready_of(inst.base) >= NEVER:
                    spec_ready[inst.dst] = NEVER
                elif not getattr(self.defense, "allows_speculative_install", True):
                    # Invisible-family defense: L1 hits proceed, misses are
                    # deferred past the squash and die without any cache
                    # state change.
                    addr = (value_of(inst.base) + inst.offset) & ((1 << 64) - 1)
                    latency, level = self.hierarchy.probe_latency(addr)
                    if level == "L1":
                        out.loads_issued += 1
                        spec_values[inst.dst] = self.hierarchy.dram.peek(addr)
                        spec_ready[inst.dst] = start + latency
                    else:
                        spec_ready[inst.dst] = NEVER
                else:
                    addr = (value_of(inst.base) + inst.offset) & ((1 << 64) - 1)
                    latency, level = self.hierarchy.probe_latency(addr)
                    if level == "MEM":
                        latency = max(1, latency + self.noise.mem_jitter(self._noise_rng))
                    complete = start + latency
                    out.loads_issued += 1
                    if complete <= squash_point or level == "L1":
                        # The access (and, on a miss, its fill) lands before
                        # the squash: it really installs and must be rolled
                        # back. L1 hits never occupy the MSHR.
                        self.hierarchy.access(
                            addr, cycle=start, speculative=True, epoch=epoch
                        )
                        spec_values[inst.dst] = self.hierarchy.dram.peek(addr)
                        spec_ready[inst.dst] = complete
                    else:
                        # Fill still in flight at squash: CleanupSpec cleans
                        # it out of the MSHR (T3); the line never installs.
                        out.inflight += 1
                        spec_ready[inst.dst] = NEVER

            elif isinstance(inst, Store):
                # Speculative stores do not perform; they sit in the store
                # queue and are squashed.
                pass

            elif isinstance(inst, Flush):
                # clflush is ordered; it does not perform speculatively.
                pass

            elif isinstance(inst, Fence):
                barrier = max(
                    barrier,
                    dispatch,
                    max(
                        (t for t in spec_ready.values() if t < NEVER),
                        default=dispatch,
                    ),
                )

            elif isinstance(inst, ReadTimer):
                # Serialising: younger wrong-path work would not execute
                # before the squash anyway; the destination never readies.
                spec_ready[inst.dst] = NEVER

            elif isinstance(inst, Jump):
                next_pc = program.resolve(inst.target)

            elif isinstance(inst, Nop):
                pass

            elif isinstance(inst, Branch):
                # Peek the counter without polluting prediction statistics.
                predicted = self.predictor.counter(pc) >= WEAK_TAKEN
                next_pc = program.resolve(inst.target) if predicted else pc + 1

            out.executed += 1
            pc = next_pc

        return out
