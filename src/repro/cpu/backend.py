"""Execution-backend selection for attack cores.

Two backends produce **bit-identical** results:

* ``"scalar"`` — :class:`~repro.cpu.core.Core`, the reference
  one-round-at-a-time model;
* ``"batched"`` — :class:`~repro.cpu.batched.BatchedCore`, which memoizes
  whole-round machine-state transitions and replays them for the repeated
  rounds an attack campaign is made of (see ``repro.cpu.batched``).

The choice is ambient: attacks construct their core through
:func:`make_core`, which reads the currently selected backend. The campaign
runner selects per task via :func:`use_backend`; the ``REPRO_BACKEND``
environment variable sets the process-wide default (used by CI to run the
whole test suite under either backend).
"""

from __future__ import annotations

import os
from contextlib import contextmanager

from ..common.errors import ConfigError

#: Supported backend names, in preference order for docs/CLIs.
BACKENDS = ("scalar", "batched")

#: Default backend for this process (a ``--backend`` flag or
#: :func:`use_backend` overrides it per campaign task).
DEFAULT_BACKEND = os.environ.get("REPRO_BACKEND", "scalar")

_current: str = DEFAULT_BACKEND


def _check(name: str) -> str:
    if name not in BACKENDS:
        raise ConfigError(f"unknown backend {name!r}, want one of {BACKENDS}")
    return name


def current_backend() -> str:
    """The backend :func:`make_core` will build right now."""
    # Validated lazily so a bogus REPRO_BACKEND fails at first use with a
    # clear error instead of at import time.
    return _check(_current)


def set_backend(name: str) -> None:
    """Set the process-wide backend (prefer :func:`use_backend` for scopes)."""
    global _current
    _current = _check(name)


@contextmanager
def use_backend(name: str):
    """Select ``name`` for the duration of the ``with`` block."""
    global _current
    previous = _current
    _current = _check(name)
    try:
        yield
    finally:
        _current = previous


def make_core(hierarchy, defense, **kwargs):
    """Build a core for the current backend (``Core`` or ``BatchedCore``).

    Both classes share the :class:`~repro.cpu.core.Core` constructor
    signature, so callers pass the same keyword arguments regardless of the
    selected backend.
    """
    if current_backend() == "batched":
        from .batched import BatchedCore

        return BatchedCore(hierarchy, defense, **kwargs)
    from .core import Core

    return Core(hierarchy, defense, **kwargs)
