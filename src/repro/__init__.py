"""repro — a Python reproduction of *unXpec: Breaking Undo-based Safe
Speculation* (HPCA 2022).

The package provides, from the bottom up:

* :mod:`repro.isa` — a small register ISA (loads, flushes, fences,
  serialising timer reads, branches) for writing attacker/victim programs;
* :mod:`repro.memory` / :mod:`repro.cache` — DRAM, MSHR, and a two-level
  Undo-protected cache hierarchy (NoMo-partitioned random-replacement L1,
  CEASER-randomised L2, speculative-state tracking);
* :mod:`repro.cpu` — a trace-driven out-of-order core with wrong-path
  (transient) execution and a calibrated noise model;
* :mod:`repro.defense` — UnsafeBaseline, CleanupSpec (invalidation +
  restoration rollback), constant-time rollback, fuzzy cleanup;
* :mod:`repro.attack` — the unXpec attack (gadgets, eviction sets,
  calibration, covert channel, leakage campaigns) plus classic Spectre v1;
* :mod:`repro.workloads` — synthetic SPEC CPU 2017-like programs;
* :mod:`repro.experiments` — one runnable experiment per paper table and
  figure (``python -m repro.experiments list``).

Quickstart::

    from repro import UnxpecAttack

    attack = UnxpecAttack(use_eviction_sets=True)
    attack.prepare()
    diff = attack.sample(1).latency - attack.sample(0).latency
    print(f"secret-dependent timing difference: {diff} cycles")
"""

from .attack import (
    GadgetParams,
    LeakageCampaign,
    SpectreV1Attack,
    ThresholdDecoder,
    UnxpecAttack,
    calibrate,
    find_eviction_set,
    random_bits,
)
from .cache import CacheHierarchy
from .common import SystemConfig, paper_system_config
from .cpu import BimodalPredictor, Core, NoiseModel, campaign_noise
from .defense import (
    CleanupMode,
    CleanupSpec,
    CleanupTimingModel,
    ConstantTimeRollback,
    FuzzyCleanup,
    UnsafeBaseline,
)
from .isa import Program, ProgramBuilder, assemble
from .realcpu import RealCpuModel
from .workloads import SPEC2017_PROFILES, synthesize

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "UnxpecAttack",
    "GadgetParams",
    "LeakageCampaign",
    "SpectreV1Attack",
    "ThresholdDecoder",
    "calibrate",
    "find_eviction_set",
    "random_bits",
    "CacheHierarchy",
    "SystemConfig",
    "paper_system_config",
    "Core",
    "BimodalPredictor",
    "NoiseModel",
    "campaign_noise",
    "CleanupSpec",
    "CleanupMode",
    "CleanupTimingModel",
    "ConstantTimeRollback",
    "FuzzyCleanup",
    "UnsafeBaseline",
    "Program",
    "ProgramBuilder",
    "assemble",
    "RealCpuModel",
    "SPEC2017_PROFILES",
    "synthesize",
]
