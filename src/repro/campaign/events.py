"""Streaming campaign lifecycle events (JSONL) + canonical views.

The campaign runner narrates a run as structured events — one JSON
object per line, flushed as they happen, so ``tools/campaign_top.py``
(or ``tail -f``) can watch a campaign live::

    {"seq": 0, "t": ..., "event": "campaign.start", "experiments": 3, "tasks": 9}
    {"seq": 1, "t": ..., "event": "task.submit", "experiment": "fig3", "shard": 0}
    {"seq": 2, "t": ..., "event": "task.cache_hit", "experiment": "fig9", ...}
    {"seq": 3, "t": ..., "event": "task.start", "experiment": "fig3", "shard": 0}
    {"seq": 4, "t": ..., "event": "task.done", "experiment": "fig3", "shard": 0,
     "attempts": 1, "seconds": 0.41}
    ...
    {"seq": N, "t": ..., "event": "campaign.done", "failed": 0, "retries": 0}

Event kinds and their extra fields (every event carries ``seq``, ``t``
— unix seconds — and ``event``):

========================  ====================================================
``campaign.start``        ``experiments``, ``tasks``, ``jobs``, ``quick``,
                          ``seed``
``task.submit``           ``experiment``, ``shard`` (−1 for whole-run tasks)
``task.cache_hit``        ``experiment``, ``shards`` (entry's shard count)
``task.start``            ``experiment``, ``shard`` (pool mode reports it
                          when the result arrives — the parent cannot see a
                          worker start remotely)
``task.retry``            ``experiment``, ``shard``, ``attempt`` (the attempt
                          that failed), ``error``
``task.done``             ``experiment``, ``shard``, ``attempts``, ``seconds``
``task.failed``           ``experiment``, ``shard``, ``attempts``, ``error``,
                          ``seconds``
``experiment.done``       ``experiment``, ``status`` (ok/failed/cached),
                          ``checks_passed``, ``checks_total``
``campaign.done``         ``experiments``, ``failed``, ``retries``,
                          ``cache_hits``
========================  ====================================================

Two views of the same stream:

* **live** (the JSONL sink): arrival order, wall-clock stamped — what a
  dashboard wants;
* **canonical** (:func:`canonical_events`): wall-clock and arrival-order
  fields stripped, rows sorted by (experiment, shard, event rank,
  attempt) — deterministic across worker counts, which is what the
  jobs-invariance tests pin.
"""

from __future__ import annotations

import json
import time
from typing import Dict, List, Optional, Sequence, TextIO

#: Canonical ordering rank per event kind (campaign bookends first/last).
EVENT_ORDER = {
    "campaign.start": 0,
    "task.submit": 1,
    "task.cache_hit": 2,
    "task.start": 3,
    "task.retry": 4,
    "task.done": 5,
    "task.failed": 6,
    "experiment.done": 7,
    "campaign.done": 8,
}

#: Fields that describe *this* run's wall-clock / scheduling luck, not
#: the campaign's content; stripped by the canonical view.  ``jobs`` is
#: scheduling config: the canonical stream must be identical across
#: worker counts, which is the whole point of the view.
NONDETERMINISTIC_FIELDS = ("seq", "t", "seconds", "jobs")


class CampaignEventLog:
    """Collects lifecycle events in memory and streams them as JSONL.

    ``path``/``stream`` are optional live sinks (every event is written
    and flushed immediately); the in-memory list always accumulates, so
    the runner can expose the full stream afterwards either way.
    """

    def __init__(
        self, path: Optional[str] = None, stream: Optional[TextIO] = None
    ) -> None:
        self.events: List[dict] = []
        self._stream = stream
        self._file: Optional[TextIO] = open(path, "w") if path else None

    def emit(self, event: str, **fields: object) -> dict:
        record: Dict[str, object] = {
            "seq": len(self.events),
            "t": time.time(),  # det: allow — wall-clock stamp for live tailing
            "event": event,
        }
        record.update(fields)
        self.events.append(record)
        line = json.dumps(record, sort_keys=True, default=str)
        for sink in (self._file, self._stream):
            if sink is not None:
                sink.write(line + "\n")
                sink.flush()
        return record

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None

    def __enter__(self) -> "CampaignEventLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def canonical(self) -> List[dict]:
        return canonical_events(self.events)


def canonical_events(events: Sequence[dict]) -> List[dict]:
    """The deterministic view: strip wall-clock fields, sort canonically.

    Two campaigns over the same experiments at any ``--jobs`` value
    produce bit-identical canonical streams (asserted in
    ``tests/test_campaign_determinism.py``).
    """
    stripped = [
        {k: v for k, v in event.items() if k not in NONDETERMINISTIC_FIELDS}
        for event in events
    ]

    def sort_key(event: dict):
        shard = event.get("shard")
        attempt = event.get("attempt")
        return (
            str(event.get("experiment", "")),
            -1 if shard is None else int(shard),
            EVENT_ORDER.get(event.get("event", ""), 99),
            0 if attempt is None else int(attempt),
        )

    return sorted(stripped, key=sort_key)


def read_events(path: str) -> List[dict]:
    """Load an ``--events-out`` JSONL stream back into event dicts.

    Tolerates a truncated final line (the writer may be mid-record when
    a live reader polls), so ``campaign_top`` can tail safely.
    """
    out: List[dict] = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                out.append(json.loads(line))
            except ValueError:
                break  # half-written trailing record; next poll gets it
    return out
