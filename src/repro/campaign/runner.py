"""Parallel cached campaign execution engine.

``CampaignRunner`` turns the experiment registry into a task list — one
task per shard for :class:`~repro.experiments.base.ShardableExperiment`
subclasses, one whole-run task otherwise — executes it either in-process
(``jobs=1``) or across a ``multiprocessing`` pool, and folds per-shard
partials, stat snapshots, and timings back into per-experiment
:class:`ExperimentOutcome` records.

Determinism contract (tested in tests/test_campaign_determinism.py):
tables, metrics, and checks are bit-identical for every ``jobs`` value,
because shard plans depend only on ``(quick, seed)``, shard bodies derive
their own RNG substreams, and merges happen in shard-index order
regardless of completion order.

Fault tolerance (tested in tests/test_campaign_faults.py): a worker
exception never aborts the campaign.  ``_execute_task`` retries transient
faults with capped exponential backoff, enforces a per-attempt wall-clock
timeout, and on exhaustion returns a picklable :class:`TaskFailure`
instead of raising; the parent degrades the affected experiment to a
``failed`` :class:`ExperimentOutcome` (error + traceback preserved) while
every other experiment completes untouched.  If the pool itself breaks,
the unfinished tasks re-run in-process.  See docs/campaign.md.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import threading
import time
import traceback as traceback_mod
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Union

from ..experiments import registry
from ..experiments.base import ExperimentResult, Shard, ShardableExperiment
from ..obs.spans import SpanRecorder, merge_span_trees
from .cache import ResultCache
from .events import CampaignEventLog
from .faults import FaultPlan, TaskTimeout, failure_kind, is_transient
from .merge import (
    StatSnapshot,
    merge_snapshots,
    merge_trace_meta,
    snapshot_with_kinds,
)

#: Stat names the runner itself records (parent side); stripped from
#: cache entries so warm hits do not replay stale failure/retry counts.
FAILED_TASKS_STAT = "campaign.tasks.failed"
RETRIES_STAT = "campaign.retries"


@dataclass(frozen=True)
class TaskSpec:
    """One unit of worker work plus its fault policy (fully picklable)."""

    experiment_id: str
    shard: Optional[Shard]
    quick: bool
    seed: int
    retries: int = 0
    task_timeout: Optional[float] = None
    backoff: float = 0.1
    backoff_cap: float = 2.0
    faults: Optional[FaultPlan] = None
    record_spans: bool = True
    #: Execution backend the worker selects around the experiment run
    #: (see :mod:`repro.cpu.backend`). Results are backend-agnostic —
    #: cache keys and digests do not include it.
    backend: str = "scalar"

    @property
    def shard_index(self) -> int:
        return -1 if self.shard is None else self.shard.index

    @property
    def span_name(self) -> str:
        return "run" if self.shard is None else f"shard[{self.shard.index}]"


@dataclass
class _TaskResult:
    experiment_id: str
    shard_index: int
    payload: object  # shard partial, or a whole ExperimentResult
    seconds: float
    stats: StatSnapshot
    trace_meta: dict
    attempts: int = 1
    #: Serialized span tree of this task (deterministic — no wall-clock).
    spans: list = field(default_factory=list)
    #: (attempt, error repr) per transient failure that was retried, in
    #: attempt order — lets the parent emit task.retry events post-hoc.
    retry_errors: list = field(default_factory=list)


@dataclass
class TaskFailure:
    """A task that exhausted its attempts; picklable, carries the evidence."""

    experiment_id: str
    shard_index: int
    error: str  # repr() of the final exception
    exc_type: str
    traceback: str
    attempts: int = 1
    seconds: float = 0.0
    spans: list = field(default_factory=list)
    retry_errors: list = field(default_factory=list)


@dataclass
class ExperimentOutcome:
    """One experiment's merged result plus campaign metadata."""

    experiment_id: str
    result: ExperimentResult
    wall_seconds: float = 0.0
    worker_seconds: float = 0.0
    n_shards: int = 1
    cached: bool = False
    stats: StatSnapshot = field(default_factory=dict)
    trace_meta: dict = field(default_factory=dict)
    failed: bool = False
    error: str = ""
    error_traceback: str = ""
    retries: int = 0
    #: Serialized experiment-level span tree (deterministic; see
    #: repro.obs.spans — wall-clock never enters this form).
    spans: dict = field(default_factory=dict)

    @property
    def speedup(self) -> float:
        """Worker-time / parent-wall-time ratio (>1 means shards overlapped).

        Cached outcomes report 1.0: their ``wall_seconds`` is the cache
        *load* time, so the raw ratio would be meaninglessly huge.
        """
        if self.cached or self.wall_seconds <= 0:
            return 1.0
        return self.worker_seconds / self.wall_seconds


@contextmanager
def _attempt_deadline(seconds: Optional[float]):
    """Raise :class:`TaskTimeout` in the body after ``seconds`` wall-clock.

    Uses ``SIGALRM``, so it is active only on POSIX main threads — which
    is exactly where campaign tasks run (pool workers execute tasks on
    their main thread, and ``jobs=1`` runs in the parent's).  Elsewhere
    the timeout is quietly best-effort-disabled.
    """
    if (
        not seconds
        or seconds <= 0
        or not hasattr(signal, "SIGALRM")
        or threading.current_thread() is not threading.main_thread()
    ):
        yield
        return

    def _on_alarm(signum, frame):
        raise TaskTimeout(f"task exceeded --task-timeout={seconds:g}s")

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def _run_attempt(task: TaskSpec, attempt: int, faults: FaultPlan) -> _TaskResult:
    """Run one task attempt under its own observability scope (worker side)."""
    from ..cpu.backend import use_backend
    from ..obs import Observability, observe

    started = time.perf_counter()
    # "squash" keeps only security-relevant events buffered, so campaign
    # runs don't pay for per-commit tracing (same policy as --stats-out).
    with observe(Observability(trace_level="squash")) as obs:
        with _attempt_deadline(task.task_timeout), use_backend(task.backend):
            faults.trigger(task.experiment_id, task.shard_index, attempt)
            exp = registry.get(task.experiment_id)
            if task.shard is None:
                payload: object = exp.run(quick=task.quick, seed=task.seed)
            else:
                payload = exp.run_shard(task.shard, quick=task.quick, seed=task.seed)
    seconds = time.perf_counter() - started
    return _TaskResult(
        experiment_id=task.experiment_id,
        shard_index=task.shard_index,
        payload=payload,
        seconds=seconds,
        stats=snapshot_with_kinds(obs.registry),
        trace_meta={
            "level": obs.trace.level,
            "capacity": obs.trace.capacity,
            "emitted": obs.trace.emitted,
            "buffered": len(obs.trace),
            "dropped": obs.trace.dropped,
        },
        attempts=attempt,
    )


def _execute_task(task: TaskSpec) -> Union[_TaskResult, TaskFailure]:
    """Run one task to completion or exhaustion; never raises.

    Transient exceptions (see :func:`repro.campaign.faults.is_transient`)
    are retried up to ``task.retries`` times with capped exponential
    backoff; deterministic failures return immediately.  The return value
    is always picklable, so nothing can propagate out of the worker pool.

    Each attempt is recorded as a span under this task's shard span
    (``attempt[n]``, status ok/error/timeout; a ``timeout`` child marks
    the budget that fired, a ``retry[n]`` sibling the backoff taken), so
    the parent can reconstruct exactly what every worker did.
    """
    faults = task.faults if task.faults is not None else FaultPlan.from_env()
    recorder = SpanRecorder(enabled=task.record_spans)
    shard_span = recorder.start(
        task.span_name,
        "shard",
        experiment=task.experiment_id,
        shard=task.shard_index,
    )
    retry_errors: list = []
    started = time.perf_counter()
    attempt = 0
    while True:
        attempt += 1
        attempt_span = shard_span.child(f"attempt[{attempt}]", "attempt", attempt=attempt)
        try:
            result = _run_attempt(task, attempt, faults)
            attempt_span.finish("ok")
            shard_span.finish("ok")
            result.spans = recorder.to_dicts()
            result.retry_errors = retry_errors
            return result
        except Exception as exc:
            kind = failure_kind(exc)
            if kind == "timeout":
                attempt_span.child(
                    "timeout", "timeout", budget=task.task_timeout
                ).finish("timeout")
            attempt_span.attrs["error"] = repr(exc)
            attempt_span.finish("timeout" if kind == "timeout" else "error")
            failure = TaskFailure(
                experiment_id=task.experiment_id,
                shard_index=task.shard_index,
                error=repr(exc),
                exc_type=type(exc).__name__,
                traceback=traceback_mod.format_exc(),
                attempts=attempt,
                seconds=time.perf_counter() - started,
                retry_errors=retry_errors,
            )
            if attempt > task.retries or not is_transient(exc):
                shard_span.finish("error")
                failure.spans = recorder.to_dicts()
                return failure
            retry_errors.append((attempt, repr(exc)))
            delay = min(task.backoff_cap, task.backoff * (2 ** (attempt - 1)))
            shard_span.child(
                f"retry[{attempt + 1}]", "retry", attempt=attempt + 1, backoff=delay
            ).finish("ok")
            if delay > 0:
                time.sleep(delay)


def _pool_context():
    """Prefer fork (fast, inherits sys.path); fall back to the default."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


class CampaignRunner:
    """Shard, schedule, cache, and merge a set of experiments.

    ``retries`` bounds in-worker re-attempts of *transient* faults
    (deterministic failures never retry); ``task_timeout`` caps one
    attempt's wall-clock; ``fault_plan`` injects deterministic failures
    for testing (default: whatever ``$REPRO_FAULT_INJECT`` describes).
    """

    def __init__(
        self,
        jobs: Optional[int] = None,
        cache: Optional[ResultCache] = None,
        progress: Optional[Callable[[str], None]] = None,
        retries: int = 1,
        task_timeout: Optional[float] = None,
        fault_plan: Optional[FaultPlan] = None,
        retry_backoff: float = 0.1,
        retry_backoff_cap: float = 2.0,
        spans: bool = True,
        event_log: Optional[CampaignEventLog] = None,
        backend: Optional[str] = None,
    ) -> None:
        from ..cpu.backend import current_backend

        self.jobs = max(1, int(jobs)) if jobs else (os.cpu_count() or 1)
        #: Execution backend workers select per task; defaults to the
        #: ambient :func:`repro.cpu.backend.current_backend` so
        #: ``use_backend(...)`` around runner construction also works.
        self.backend = backend if backend is not None else current_backend()
        self.cache = cache
        self._progress = progress
        self.retries = max(0, int(retries))
        self.task_timeout = task_timeout
        self.fault_plan = fault_plan
        self.retry_backoff = retry_backoff
        self.retry_backoff_cap = retry_backoff_cap
        #: Span recording (task granularity; ``False`` takes the no-op path).
        self.spans = spans
        #: Lifecycle event sink; a fresh in-memory log is created per run
        #: when none is supplied, so ``last_events`` always works.
        self.event_log = event_log
        #: Outcomes of the most recent :meth:`run` (for stats dumps).
        self.last_outcomes: List[ExperimentOutcome] = []
        #: Lifecycle events of the most recent :meth:`run` (arrival order).
        self.last_events: List[dict] = []

    def _say(self, message: str) -> None:
        if self._progress is not None:
            self._progress(message)

    # -- cache entry (de)hydration -------------------------------------------

    def _outcome_from_entry(
        self, exp_id: str, entry: dict, load_seconds: float
    ) -> ExperimentOutcome:
        stats = {
            name: (kind, value)
            for name, (kind, value) in (
                (n, tuple(kv)) for n, kv in entry.get("stats", {}).items()
            )
        }
        return ExperimentOutcome(
            experiment_id=exp_id,
            result=ExperimentResult.from_json(entry["result"]),
            wall_seconds=load_seconds,
            worker_seconds=float(entry.get("worker_seconds", 0.0)),
            n_shards=int(entry.get("n_shards", 1)),
            cached=True,
            stats=stats,
            trace_meta=entry.get("trace", {}),
            spans=self._experiment_span(
                exp_id, entry.get("spans", []), status="cached", lookup="hit"
            ),
        )

    @staticmethod
    def _entry_from_outcome(outcome: ExperimentOutcome) -> dict:
        # Like the campaign.* stat strip below: the cache_lookup span
        # describes *this* run's cache luck, so only the shard subtrees
        # are stored; hydration re-attaches a fresh lookup span.  The
        # stored spans carry no wall-clock by construction (Span.to_dict).
        shard_spans = [
            s
            for s in outcome.spans.get("children", ())
            if s.get("kind") != "cache_lookup"
        ]
        return {
            "experiment_id": outcome.experiment_id,
            "result": outcome.result.to_json(),
            # campaign.* counters describe *this* run's scheduling luck,
            # not the experiment's content — a warm hit must not replay them.
            "stats": {
                n: list(kv)
                for n, kv in outcome.stats.items()
                if not n.startswith("campaign.")
            },
            "trace": outcome.trace_meta,
            "spans": shard_spans,
            "worker_seconds": outcome.worker_seconds,
            "n_shards": outcome.n_shards,
        }

    # -- span plumbing ---------------------------------------------------------

    def _experiment_span(
        self,
        exp_id: str,
        shard_spans: Sequence[dict],
        status: str,
        lookup: Optional[str] = None,
    ) -> dict:
        """The experiment-level span node (empty dict when spans are off)."""
        if not self.spans:
            return {}
        children: List[dict] = []
        if lookup is not None:
            children.append(
                {"name": "cache.lookup", "kind": "cache_lookup", "status": lookup}
            )
        children.extend(s for s in shard_spans if s)
        return merge_span_trees(exp_id, "experiment", children, status=status)

    def span_tree(self) -> dict:
        """The merged campaign span tree of the most recent :meth:`run`.

        Deterministic by construction: children are in requested-id order
        (experiments) and shard-index order (tasks), and the serialized
        spans carry no wall-clock fields — ``--jobs 1`` and ``--jobs N``
        return bit-identical trees.
        """
        if not self.spans:
            return {}
        status = "error" if any(o.failed for o in self.last_outcomes) else "ok"
        return merge_span_trees(
            "campaign",
            "campaign",
            [o.spans for o in self.last_outcomes if o.spans],
            status=status,
        )

    # -- failure plumbing ------------------------------------------------------

    @staticmethod
    def _record_campaign_counters(n_failed: int, n_retries: int) -> None:
        """Bump the process-default stats registry, when one is installed."""
        from ..obs import get_default_obs

        obs = get_default_obs()
        if obs is None:
            return
        if n_failed:
            obs.registry.counter(
                FAILED_TASKS_STAT, "campaign tasks that exhausted their attempts"
            ).inc(n_failed)
        if n_retries:
            obs.registry.counter(
                RETRIES_STAT, "transient-fault task re-attempts"
            ).inc(n_retries)

    @staticmethod
    def _failed_result(exp_id: str, detail: str) -> ExperimentResult:
        exp = registry.get(exp_id)
        result = ExperimentResult(
            experiment_id=exp_id, title=exp.title, paper_claim=exp.paper_claim
        )
        result.check("campaign.execution", False, detail)
        return result

    # -- execution ------------------------------------------------------------

    def run(
        self,
        ids: Optional[Sequence[str]] = None,
        quick: bool = False,
        seed: int = 0,
        profiler=None,
    ) -> List[ExperimentOutcome]:
        """Run ``ids`` (default: every registered experiment).

        ``profiler`` (a :class:`repro.obs.Profiler`) receives the
        *parent-observed* per-experiment wall-clock under
        ``experiment.<id>`` — correct even when shards ran in workers,
        where process-local profilers cannot see the time.

        Never raises on worker failure: a failed experiment surfaces as
        an outcome with ``failed=True`` (error + traceback attached) and
        the remaining experiments complete normally.
        """
        ids = list(ids) if ids else registry.all_ids()
        outcomes: Dict[str, ExperimentOutcome] = {}
        events = self.event_log if self.event_log is not None else CampaignEventLog()
        self.last_events = events.events

        # Cache probe pass.
        keys: Dict[str, str] = {}
        cache_hits = 0
        for exp_id in ids:
            if self.cache is None:
                continue
            started = time.perf_counter()
            key = self.cache.key(exp_id, quick, seed)
            keys[exp_id] = key
            entry = self.cache.get(exp_id, key)
            if entry is not None:
                outcome = self._outcome_from_entry(
                    exp_id, entry, time.perf_counter() - started
                )
                outcomes[exp_id] = outcome
                cache_hits += 1
                events.emit(
                    "task.cache_hit", experiment=exp_id, shards=outcome.n_shards
                )
                events.emit(
                    "experiment.done",
                    experiment=exp_id,
                    status="cached",
                    checks_passed=sum(1 for c in outcome.result.checks if c.passed),
                    checks_total=len(outcome.result.checks),
                )
                self._say(f"{exp_id}: cache hit ({outcome.n_shards} shards)")

        # Task list for the misses, grouped by experiment in id order.
        plans: Dict[str, List[Optional[Shard]]] = {}
        tasks: List[TaskSpec] = []
        for exp_id in ids:
            if exp_id in outcomes:
                continue
            exp = registry.get(exp_id)
            if isinstance(exp, ShardableExperiment):
                shards: List[Optional[Shard]] = list(
                    exp.shard_plan(quick=quick, seed=seed)
                )
            else:
                shards = [None]
            plans[exp_id] = shards
            tasks.extend(
                TaskSpec(
                    experiment_id=exp_id,
                    shard=shard,
                    quick=quick,
                    seed=seed,
                    retries=self.retries,
                    task_timeout=self.task_timeout,
                    backoff=self.retry_backoff,
                    backoff_cap=self.retry_backoff_cap,
                    faults=self.fault_plan,
                    record_spans=self.spans,
                    backend=self.backend,
                )
                for shard in shards
            )

        events.emit(
            "campaign.start",
            experiments=len(ids),
            tasks=len(tasks),
            cached=len(outcomes),
            jobs=self.jobs,
            quick=bool(quick),
            seed=int(seed),
        )
        for task in tasks:
            events.emit(
                "task.submit", experiment=task.experiment_id, shard=task.shard_index
            )
        if tasks:
            self._say(
                f"running {len(plans)} experiments / {len(tasks)} shards "
                f"on {min(self.jobs, len(tasks))} worker(s)"
            )

        done: Dict[str, List[Union[_TaskResult, TaskFailure]]] = {
            exp_id: [] for exp_id in plans
        }
        starts: Dict[str, float] = {}

        lookup_status = "miss" if self.cache is not None else None

        def finish(exp_id: str) -> None:
            results = done[exp_id]
            failures = [t for t in results if isinstance(t, TaskFailure)]
            successes = sorted(
                (t for t in results if isinstance(t, _TaskResult)),
                key=lambda t: t.shard_index,
            )
            n_retries = sum(max(0, t.attempts - 1) for t in results)
            wall = time.perf_counter() - starts[exp_id]
            worker = sum(t.seconds for t in results)
            all_spans = [
                span
                for t in sorted(results, key=lambda t: t.shard_index)
                for span in t.spans
            ]
            if failures:
                first = failures[0]
                detail = (
                    f"{len(failures)}/{len(results)} task(s) failed after "
                    f"{first.attempts} attempt(s); first: {first.error}"
                )
                stats: StatSnapshot = {
                    FAILED_TASKS_STAT: ("counter", len(failures))
                }
                if n_retries:
                    stats[RETRIES_STAT] = ("counter", n_retries)
                outcome = ExperimentOutcome(
                    experiment_id=exp_id,
                    result=self._failed_result(exp_id, detail),
                    wall_seconds=wall,
                    worker_seconds=worker,
                    n_shards=len(results),
                    cached=False,
                    stats=stats,
                    trace_meta={},
                    failed=True,
                    error=first.error,
                    error_traceback=first.traceback,
                    retries=n_retries,
                    spans=self._experiment_span(
                        exp_id, all_spans, status="error", lookup=lookup_status
                    ),
                )
                outcomes[exp_id] = outcome
                self._record_campaign_counters(len(failures), n_retries)
                events.emit(
                    "experiment.done",
                    experiment=exp_id,
                    status="failed",
                    checks_passed=0,
                    checks_total=len(outcome.result.checks),
                )
                self._say(f"{exp_id}: FAILED — {detail}")
                return
            exp = registry.get(exp_id)
            if isinstance(exp, ShardableExperiment):
                result = exp.merge_shards(
                    [t.payload for t in successes], quick=quick, seed=seed
                )
            else:
                result = successes[0].payload
            stats = merge_snapshots([t.stats for t in successes])
            if n_retries:
                stats = dict(stats)
                stats[RETRIES_STAT] = ("counter", n_retries)
            outcome = ExperimentOutcome(
                experiment_id=exp_id,
                result=result,
                wall_seconds=wall,
                worker_seconds=worker,
                n_shards=len(successes),
                cached=False,
                stats=stats,
                trace_meta=merge_trace_meta([t.trace_meta for t in successes]),
                retries=n_retries,
                spans=self._experiment_span(
                    exp_id, all_spans, status="ok", lookup=lookup_status
                ),
            )
            outcomes[exp_id] = outcome
            self._record_campaign_counters(0, n_retries)
            if self.cache is not None and exp_id in keys:
                self.cache.put(exp_id, keys[exp_id], self._entry_from_outcome(outcome))
            checks = result.checks
            ok = sum(1 for c in checks if c.passed)
            events.emit(
                "experiment.done",
                experiment=exp_id,
                status="ok",
                checks_passed=ok,
                checks_total=len(checks),
            )
            self._say(
                f"{exp_id}: {ok}/{len(checks)} checks in {outcome.wall_seconds:.1f}s "
                f"({outcome.n_shards} shard{'s' if outcome.n_shards != 1 else ''})"
            )

        def absorb(task_result: Union[_TaskResult, TaskFailure]) -> None:
            exp_id = task_result.experiment_id
            for attempt, error in task_result.retry_errors:
                events.emit(
                    "task.retry",
                    experiment=exp_id,
                    shard=task_result.shard_index,
                    attempt=attempt,
                    error=error,
                )
            if isinstance(task_result, TaskFailure):
                events.emit(
                    "task.failed",
                    experiment=exp_id,
                    shard=task_result.shard_index,
                    attempts=task_result.attempts,
                    error=task_result.error,
                    seconds=task_result.seconds,
                )
            else:
                events.emit(
                    "task.done",
                    experiment=exp_id,
                    shard=task_result.shard_index,
                    attempts=task_result.attempts,
                    seconds=task_result.seconds,
                )
            done[exp_id].append(task_result)
            if len(done[exp_id]) == len(plans[exp_id]):
                finish(exp_id)

        if self.jobs == 1 or len(tasks) <= 1:
            for task in tasks:
                starts.setdefault(task.experiment_id, time.perf_counter())
                events.emit(
                    "task.start",
                    experiment=task.experiment_id,
                    shard=task.shard_index,
                )
                absorb(_execute_task(task))
        else:
            submit = time.perf_counter()
            for exp_id in plans:
                starts[exp_id] = submit
            remaining = {
                (task.experiment_id, task.shard_index): task for task in tasks
            }
            ctx = _pool_context()
            try:
                with ctx.Pool(processes=min(self.jobs, len(tasks))) as pool:
                    for task_result in pool.imap_unordered(_execute_task, tasks):
                        remaining.pop(
                            (task_result.experiment_id, task_result.shard_index),
                            None,
                        )
                        # The parent cannot observe a remote worker start;
                        # the start event lands when the result arrives.
                        events.emit(
                            "task.start",
                            experiment=task_result.experiment_id,
                            shard=task_result.shard_index,
                        )
                        absorb(task_result)
            except Exception as exc:  # pool-level breakage (BrokenProcessPool &c.)
                self._say(
                    f"worker pool failed ({exc!r}); "
                    f"re-running {len(remaining)} task(s) in-process"
                )
                for task in remaining.values():
                    events.emit(
                        "task.start",
                        experiment=task.experiment_id,
                        shard=task.shard_index,
                    )
                    absorb(_execute_task(task))

        # Belt-and-braces: no experiment may end without an outcome, even
        # if a scheduling bug ever drops a task result on the floor.
        for exp_id, shards in plans.items():
            if exp_id in outcomes:
                continue
            seen = {t.shard_index for t in done[exp_id]}
            for shard in shards:
                index = -1 if shard is None else shard.index
                if index not in seen:
                    failure = TaskFailure(
                        experiment_id=exp_id,
                        shard_index=index,
                        error="task result never arrived",
                        exc_type="LostTask",
                        traceback="(no traceback: the task result was lost)",
                    )
                    done[exp_id].append(failure)
                    events.emit(
                        "task.failed",
                        experiment=exp_id,
                        shard=index,
                        attempts=failure.attempts,
                        error=failure.error,
                        seconds=0.0,
                    )
            finish(exp_id)

        if profiler is not None:
            for exp_id in ids:
                outcome = outcomes.get(exp_id)
                if outcome is None:
                    continue
                profiler.record(f"experiment.{exp_id}", outcome.wall_seconds)
        self.last_outcomes = [outcomes[exp_id] for exp_id in ids if exp_id in outcomes]
        events.emit(
            "campaign.done",
            experiments=len(self.last_outcomes),
            failed=sum(1 for o in self.last_outcomes if o.failed),
            retries=sum(o.retries for o in self.last_outcomes),
            cache_hits=cache_hits,
        )
        return self.last_outcomes
