"""Parallel cached campaign execution engine.

``CampaignRunner`` turns the experiment registry into a task list — one
task per shard for :class:`~repro.experiments.base.ShardableExperiment`
subclasses, one whole-run task otherwise — executes it either in-process
(``jobs=1``) or across a ``multiprocessing`` pool, and folds per-shard
partials, stat snapshots, and timings back into per-experiment
:class:`ExperimentOutcome` records.

Determinism contract (tested in tests/test_campaign_determinism.py):
tables, metrics, and checks are bit-identical for every ``jobs`` value,
because shard plans depend only on ``(quick, seed)``, shard bodies derive
their own RNG substreams, and merges happen in shard-index order
regardless of completion order.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..experiments import registry
from ..experiments.base import ExperimentResult, Shard, ShardableExperiment
from .cache import ResultCache
from .merge import (
    StatSnapshot,
    merge_snapshots,
    merge_trace_meta,
    snapshot_with_kinds,
)

#: One unit of worker work: (experiment id, shard or None, quick, seed).
TaskSpec = Tuple[str, Optional[Shard], bool, int]


@dataclass
class _TaskResult:
    experiment_id: str
    shard_index: int
    payload: object  # shard partial, or a whole ExperimentResult
    seconds: float
    stats: StatSnapshot
    trace_meta: dict


@dataclass
class ExperimentOutcome:
    """One experiment's merged result plus campaign metadata."""

    experiment_id: str
    result: ExperimentResult
    wall_seconds: float = 0.0
    worker_seconds: float = 0.0
    n_shards: int = 1
    cached: bool = False
    stats: StatSnapshot = field(default_factory=dict)
    trace_meta: dict = field(default_factory=dict)

    @property
    def speedup(self) -> float:
        """Worker-time / parent-wall-time ratio (>1 means shards overlapped)."""
        if self.wall_seconds <= 0:
            return 1.0
        return self.worker_seconds / self.wall_seconds


def _execute_task(task: TaskSpec) -> _TaskResult:
    """Run one task under its own observability scope (worker side)."""
    from ..obs import Observability, observe

    exp_id, shard, quick, seed = task
    started = time.perf_counter()
    # "squash" keeps only security-relevant events buffered, so campaign
    # runs don't pay for per-commit tracing (same policy as --stats-out).
    with observe(Observability(trace_level="squash")) as obs:
        exp = registry.get(exp_id)
        if shard is None:
            payload: object = exp.run(quick=quick, seed=seed)
        else:
            payload = exp.run_shard(shard, quick=quick, seed=seed)
    seconds = time.perf_counter() - started
    return _TaskResult(
        experiment_id=exp_id,
        shard_index=-1 if shard is None else shard.index,
        payload=payload,
        seconds=seconds,
        stats=snapshot_with_kinds(obs.registry),
        trace_meta={
            "level": obs.trace.level,
            "capacity": obs.trace.capacity,
            "emitted": obs.trace.emitted,
            "buffered": len(obs.trace),
            "dropped": obs.trace.dropped,
        },
    )


def _pool_context():
    """Prefer fork (fast, inherits sys.path); fall back to the default."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


class CampaignRunner:
    """Shard, schedule, cache, and merge a set of experiments."""

    def __init__(
        self,
        jobs: Optional[int] = None,
        cache: Optional[ResultCache] = None,
        progress: Optional[Callable[[str], None]] = None,
    ) -> None:
        self.jobs = max(1, int(jobs)) if jobs else (os.cpu_count() or 1)
        self.cache = cache
        self._progress = progress
        #: Outcomes of the most recent :meth:`run` (for stats dumps).
        self.last_outcomes: List[ExperimentOutcome] = []

    def _say(self, message: str) -> None:
        if self._progress is not None:
            self._progress(message)

    # -- cache entry (de)hydration -------------------------------------------

    @staticmethod
    def _outcome_from_entry(
        exp_id: str, entry: dict, load_seconds: float
    ) -> ExperimentOutcome:
        stats = {
            name: (kind, value)
            for name, (kind, value) in (
                (n, tuple(kv)) for n, kv in entry.get("stats", {}).items()
            )
        }
        return ExperimentOutcome(
            experiment_id=exp_id,
            result=ExperimentResult.from_json(entry["result"]),
            wall_seconds=load_seconds,
            worker_seconds=float(entry.get("worker_seconds", 0.0)),
            n_shards=int(entry.get("n_shards", 1)),
            cached=True,
            stats=stats,
            trace_meta=entry.get("trace", {}),
        )

    @staticmethod
    def _entry_from_outcome(outcome: ExperimentOutcome) -> dict:
        return {
            "experiment_id": outcome.experiment_id,
            "result": outcome.result.to_json(),
            "stats": {n: list(kv) for n, kv in outcome.stats.items()},
            "trace": outcome.trace_meta,
            "worker_seconds": outcome.worker_seconds,
            "n_shards": outcome.n_shards,
        }

    # -- execution ------------------------------------------------------------

    def run(
        self,
        ids: Optional[Sequence[str]] = None,
        quick: bool = False,
        seed: int = 0,
        profiler=None,
    ) -> List[ExperimentOutcome]:
        """Run ``ids`` (default: every registered experiment).

        ``profiler`` (a :class:`repro.obs.Profiler`) receives the
        *parent-observed* per-experiment wall-clock under
        ``experiment.<id>`` — correct even when shards ran in workers,
        where process-local profilers cannot see the time.
        """
        ids = list(ids) if ids else registry.all_ids()
        outcomes: Dict[str, ExperimentOutcome] = {}

        # Cache probe pass.
        keys: Dict[str, str] = {}
        for exp_id in ids:
            if self.cache is None:
                continue
            started = time.perf_counter()
            key = self.cache.key(exp_id, quick, seed)
            keys[exp_id] = key
            entry = self.cache.get(exp_id, key)
            if entry is not None:
                outcome = self._outcome_from_entry(
                    exp_id, entry, time.perf_counter() - started
                )
                outcomes[exp_id] = outcome
                self._say(f"{exp_id}: cache hit ({outcome.n_shards} shards)")

        # Task list for the misses, grouped by experiment in id order.
        plans: Dict[str, List[Optional[Shard]]] = {}
        tasks: List[TaskSpec] = []
        for exp_id in ids:
            if exp_id in outcomes:
                continue
            exp = registry.get(exp_id)
            if isinstance(exp, ShardableExperiment):
                shards: List[Optional[Shard]] = list(
                    exp.shard_plan(quick=quick, seed=seed)
                )
            else:
                shards = [None]
            plans[exp_id] = shards
            tasks.extend((exp_id, shard, quick, seed) for shard in shards)

        if tasks:
            self._say(
                f"running {len(plans)} experiments / {len(tasks)} shards "
                f"on {min(self.jobs, len(tasks))} worker(s)"
            )

        done: Dict[str, List[_TaskResult]] = {exp_id: [] for exp_id in plans}
        starts: Dict[str, float] = {}

        def finish(exp_id: str) -> None:
            results = sorted(done[exp_id], key=lambda t: t.shard_index)
            exp = registry.get(exp_id)
            if isinstance(exp, ShardableExperiment):
                result = exp.merge_shards(
                    [t.payload for t in results], quick=quick, seed=seed
                )
            else:
                result = results[0].payload
            outcome = ExperimentOutcome(
                experiment_id=exp_id,
                result=result,
                wall_seconds=time.perf_counter() - starts[exp_id],
                worker_seconds=sum(t.seconds for t in results),
                n_shards=len(results),
                cached=False,
                stats=merge_snapshots([t.stats for t in results]),
                trace_meta=merge_trace_meta([t.trace_meta for t in results]),
            )
            outcomes[exp_id] = outcome
            if self.cache is not None:
                self.cache.put(exp_id, keys[exp_id], self._entry_from_outcome(outcome))
            checks = result.checks
            ok = sum(1 for c in checks if c.passed)
            self._say(
                f"{exp_id}: {ok}/{len(checks)} checks in {outcome.wall_seconds:.1f}s "
                f"({outcome.n_shards} shard{'s' if outcome.n_shards != 1 else ''})"
            )

        def absorb(task_result: _TaskResult) -> None:
            exp_id = task_result.experiment_id
            done[exp_id].append(task_result)
            if len(done[exp_id]) == len(plans[exp_id]):
                finish(exp_id)

        if self.jobs == 1 or len(tasks) <= 1:
            for task in tasks:
                starts.setdefault(task[0], time.perf_counter())
                absorb(_execute_task(task))
        else:
            submit = time.perf_counter()
            for exp_id in plans:
                starts[exp_id] = submit
            ctx = _pool_context()
            with ctx.Pool(processes=min(self.jobs, len(tasks))) as pool:
                for task_result in pool.imap_unordered(_execute_task, tasks):
                    absorb(task_result)

        if profiler is not None:
            for exp_id in ids:
                profiler.record(f"experiment.{exp_id}", outcomes[exp_id].wall_seconds)
        self.last_outcomes = [outcomes[exp_id] for exp_id in ids]
        return self.last_outcomes
