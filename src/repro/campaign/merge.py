"""Folding per-shard observability snapshots back into one view.

Workers cannot ship :class:`~repro.obs.registry.StatRegistry` objects
across process boundaries (gauges hold closures over live components), so
each task returns a *snapshot with kinds* — the plain
``{name: dump value}`` mapping plus ``{name: kind}`` — and the parent
merges them here.

Merge rules, applied in shard-index order so floating-point results are
independent of worker count:

* ``counter`` / ``gauge`` — sum (gauges are pull-sums of component
  counters, so summing across shards is the campaign-wide aggregate);
* ``distribution`` — exact pooled count / total / min / max / mean /
  stddev; percentiles are count-weighted means of the shard percentiles
  (approximate, and documented as such in docs/campaign.md);
* ``formula`` — arithmetic mean across shards (a derived ratio such as
  IPC cannot be recovered exactly from dump values alone).
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

from ..obs import StatRegistry

#: A picklable registry dump: {name: (kind, entry)}.
StatSnapshot = Dict[str, Tuple[str, object]]

_PERCENTILE_KEYS = ("p50", "p90", "p99")


def snapshot_with_kinds(registry: StatRegistry) -> StatSnapshot:
    """Serialize a registry into the picklable merge format."""
    kinds = registry.kinds()
    return {
        name: (kinds[name], entry) for name, entry in registry.snapshot().items()
    }


def _merge_distributions(entries: Sequence[dict]) -> dict:
    counts = [e["count"] for e in entries]
    total_count = sum(counts)
    if total_count == 0:
        return dict(entries[0])
    total = sum(e["total"] for e in entries)
    mean = total / total_count
    # Pooled sample variance from per-shard (n, mean, stddev) via the
    # standard M2 combination; shards with n < 2 contribute no M2 term.
    m2 = 0.0
    for e in entries:
        n = e["count"]
        if n >= 2:
            m2 += e["stddev"] ** 2 * (n - 1)
        if n >= 1:
            m2 += n * (e["mean"] - mean) ** 2
    stddev = math.sqrt(m2 / (total_count - 1)) if total_count >= 2 else 0.0
    merged = {
        "count": total_count,
        "total": total,
        "min": min(e["min"] for e in entries if e["count"]),
        "max": max(e["max"] for e in entries if e["count"]),
        "mean": mean,
        "stddev": stddev,
    }
    for key in _PERCENTILE_KEYS:
        merged[key] = (
            sum(e[key] * e["count"] for e in entries if e["count"]) / total_count
        )
    return merged


def merge_snapshots(snapshots: Sequence[StatSnapshot]) -> StatSnapshot:
    """Fold task snapshots (in shard order) into one campaign-wide snapshot."""
    merged: Dict[str, Tuple[str, List[object]]] = {}
    for snap in snapshots:
        for name, (kind, entry) in snap.items():
            if name in merged:
                prev_kind, entries = merged[name]
                if prev_kind == kind:
                    entries.append(entry)
                # Mismatched kinds across shards: keep the first sighting.
            else:
                merged[name] = (kind, [entry])

    out: StatSnapshot = {}
    for name, (kind, entries) in merged.items():
        if kind == "distribution":
            out[name] = (kind, _merge_distributions(entries))
        elif kind == "formula":
            out[name] = (kind, sum(entries) / len(entries))
        else:  # counter, gauge, unknown scalar kinds
            out[name] = (kind, sum(entries))
    return out


def snapshot_values(snapshot: StatSnapshot) -> Dict[str, object]:
    """Drop the kind tags: plain ``{name: entry}`` for nesting/dumping."""
    return {name: entry for name, (_, entry) in snapshot.items()}


def merge_trace_meta(metas: Sequence[dict]) -> dict:
    """Aggregate the per-task event-trace summaries for the stats dump."""
    metas = [m for m in metas if m]
    if not metas:
        return {"level": "off", "capacity": 0, "emitted": 0, "buffered": 0, "dropped": 0}
    return {
        "level": metas[0]["level"],
        "capacity": metas[0]["capacity"],
        "emitted": sum(m["emitted"] for m in metas),
        "buffered": sum(m["buffered"] for m in metas),
        "dropped": sum(m["dropped"] for m in metas),
        # Re-merging already-merged metas keeps the true task count.
        "tasks": sum(m.get("tasks", 1) for m in metas),
    }
