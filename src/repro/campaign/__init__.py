"""``repro.campaign`` — parallel, cached experiment campaign execution.

The paper's evaluation is thousands of independent secret-bit trials per
figure; this package shards them across ``multiprocessing`` workers with
per-shard deterministic RNG substreams, caches merged results on disk
keyed by (experiment, config, code version), and folds per-shard stat
registries and result tables back into one report.  ``--jobs 1`` and
``--jobs N`` produce bit-identical tables/metrics/checks.

Entry points::

    from repro.campaign import CampaignRunner, ResultCache

    runner = CampaignRunner(jobs=8, cache=ResultCache(".campaign-cache"))
    outcomes = runner.run(quick=True, seed=0)

or on the command line::

    python -m repro.experiments --jobs 8            # full cached report
    python -m repro.experiments all --jobs 4 --no-cache

See docs/campaign.md for the architecture and determinism contract.
"""

from __future__ import annotations

from typing import Dict, Sequence

from .cache import CACHE_SCHEMA, ResultCache, code_version
from .events import (
    EVENT_ORDER,
    CampaignEventLog,
    canonical_events,
    read_events,
)
from .faults import (
    FAULT_INJECT_ENV,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    TaskTimeout,
    failure_kind,
    is_transient,
)
from .merge import (
    StatSnapshot,
    merge_snapshots,
    merge_trace_meta,
    snapshot_values,
    snapshot_with_kinds,
)
from .runner import CampaignRunner, ExperimentOutcome, TaskFailure
from .sharding import shard_seed, split_trials

__all__ = [
    "CACHE_SCHEMA",
    "CampaignEventLog",
    "CampaignRunner",
    "EVENT_ORDER",
    "ExperimentOutcome",
    "FAULT_INJECT_ENV",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "ResultCache",
    "StatSnapshot",
    "TaskFailure",
    "TaskTimeout",
    "campaign_digest",
    "canonical_events",
    "code_version",
    "failure_kind",
    "is_transient",
    "merge_snapshots",
    "merge_trace_meta",
    "read_events",
    "shard_seed",
    "snapshot_values",
    "snapshot_with_kinds",
    "split_trials",
]


def campaign_digest(
    outcomes: Sequence[ExperimentOutcome], ndigits: int = 6
) -> Dict[str, dict]:
    """Compact fixed-seed regression digest of a campaign.

    Per experiment: the check pass/fail vector (as a ``"PF"`` string in
    check order) and every metric rounded to ``ndigits``.  Golden-value
    tests freeze this so runner refactors cannot silently change results.
    """
    digest: Dict[str, dict] = {}
    for outcome in outcomes:
        r = outcome.result
        digest[outcome.experiment_id] = {
            "checks": "".join("P" if c.passed else "F" for c in r.checks),
            "metrics": {
                name: round(float(value), ndigits)
                for name, value in sorted(r.metrics.items())
            },
        }
    return digest
