"""Fault model for the campaign engine: classification + deterministic injection.

Two concerns live here:

* **Classification** — :func:`is_transient` decides whether a worker
  exception is worth retrying (I/O hiccups, broken pipes, timeouts) or
  deterministic (assertion/value errors that will fail identically on
  every attempt, so retrying only wastes campaign time).
* **Injection** — a :class:`FaultPlan` describes *exactly* which task
  attempt should fail and how, so the retry/degradation machinery in
  :mod:`repro.campaign.runner` is testable under both ``jobs=1`` and
  pooled execution.  Plans are plain picklable dataclasses (they ride
  inside each task spec to the worker) and can also be supplied through
  the ``REPRO_FAULT_INJECT`` environment variable, which fork-started
  workers inherit::

      REPRO_FAULT_INJECT="fig9:0:1:OSError"     # shard 0, first attempt only
      REPRO_FAULT_INJECT="fig9:*:*:AssertionError"  # every shard, every attempt
      REPRO_FAULT_INJECT="fig3:2:1:hang;fig9:0:*"   # multiple specs

  Spec grammar: ``experiment:shard:attempt[:kind]`` — ``shard`` and
  ``attempt`` are 1-based ints or ``*`` (any; attempts count from 1),
  ``shard`` is ``-1`` for a whole-run (non-sharded) task, and ``kind``
  is an exception name from :data:`FAULT_KINDS` or ``hang`` (sleep until
  the task wall-clock timeout kills the attempt).  Default kind:
  ``RuntimeError``.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Optional, Tuple

from ..common.errors import ConfigError

#: Environment variable holding a parseable fault plan (see module doc).
FAULT_INJECT_ENV = "REPRO_FAULT_INJECT"


class TaskTimeout(TimeoutError):
    """A campaign task attempt exceeded its ``--task-timeout`` budget."""


class InjectedFault(RuntimeError):
    """Default exception type raised by a fault spec with no ``kind``."""


#: Exception types a fault spec may raise by name.  ``TimeoutError`` and
#: ``OSError`` model transient faults (retried); ``AssertionError`` and
#: friends model deterministic failures (not retried).
FAULT_KINDS = {
    "RuntimeError": InjectedFault,
    "OSError": OSError,
    "IOError": OSError,
    "TimeoutError": TimeoutError,
    "AssertionError": AssertionError,
    "ValueError": ValueError,
    "KeyError": KeyError,
    "MemoryError": MemoryError,
}

#: Special kind: sleep instead of raising (exercises the timeout path).
HANG_KIND = "hang"

#: Exceptions considered transient and therefore retryable.  Note
#: ``TimeoutError`` (and thus :class:`TaskTimeout`) is an ``OSError``
#: subclass, so task timeouts are retried too — a hang under contention
#: may well succeed on a quieter attempt.  ``BrokenProcessPool`` (a
#: pool-level failure, matched by name since it lives in
#: ``concurrent.futures``) is transient: the runner falls back to
#: in-process execution for the tasks the pool lost.
_TRANSIENT_TYPES = (OSError, EOFError, InterruptedError, BrokenPipeError)
_TRANSIENT_NAMES = frozenset({"BrokenProcessPool"})


def is_transient(exc: BaseException) -> bool:
    """Whether ``exc`` is plausibly transient (worth a retry)."""
    if isinstance(exc, _TRANSIENT_TYPES):
        return True
    return type(exc).__name__ in _TRANSIENT_NAMES


def failure_kind(exc: BaseException) -> str:
    """Coarse failure class for span statuses and lifecycle events.

    ``"timeout"`` (a :class:`TaskTimeout`, i.e. the ``--task-timeout``
    budget fired), ``"transient"`` (retryable per :func:`is_transient`),
    or ``"deterministic"`` (would fail identically on every attempt).
    """
    if isinstance(exc, TaskTimeout):
        return "timeout"
    return "transient" if is_transient(exc) else "deterministic"


@dataclass(frozen=True)
class FaultSpec:
    """Fail one (experiment, shard, attempt) coordinate in a chosen way.

    ``shard_index``/``attempt`` of ``None`` match any value; attempts are
    1-based.  ``kind`` names an entry of :data:`FAULT_KINDS` or ``hang``.
    """

    experiment_id: str
    shard_index: Optional[int] = None
    attempt: Optional[int] = None
    kind: str = "RuntimeError"

    def __post_init__(self) -> None:
        if self.kind != HANG_KIND and self.kind not in FAULT_KINDS:
            raise ConfigError(
                f"unknown fault kind {self.kind!r} "
                f"(want one of {sorted(FAULT_KINDS)} or {HANG_KIND!r})"
            )

    def matches(self, experiment_id: str, shard_index: int, attempt: int) -> bool:
        return (
            experiment_id == self.experiment_id
            and (self.shard_index is None or shard_index == self.shard_index)
            and (self.attempt is None or attempt == self.attempt)
        )

    def fire(self, hang_seconds: float) -> None:
        """Raise the configured exception (or sleep, for ``hang``)."""
        if self.kind == HANG_KIND:
            time.sleep(hang_seconds)
            return
        exc_type = FAULT_KINDS[self.kind]
        raise exc_type(
            f"injected {self.kind} fault "
            f"({self.experiment_id}:{self.shard_index}:{self.attempt})"
        )


def _parse_coord(text: str, what: str) -> Optional[int]:
    if text in ("*", ""):
        return None
    try:
        return int(text)
    except ValueError:
        raise ConfigError(f"bad fault-spec {what} {text!r} (want int or '*')") from None


@dataclass(frozen=True)
class FaultPlan:
    """An ordered set of :class:`FaultSpec` records; picklable and inert.

    An empty plan never triggers, so ``FaultPlan()`` is a safe default.
    """

    specs: Tuple[FaultSpec, ...] = ()
    #: How long a ``hang`` fault sleeps; far beyond any sane task timeout.
    hang_seconds: float = 3600.0

    def __bool__(self) -> bool:
        return bool(self.specs)

    @classmethod
    def parse(cls, text: str, hang_seconds: float = 3600.0) -> "FaultPlan":
        """Parse ``exp:shard:attempt[:kind]`` specs separated by ``;`` or ``,``."""
        specs = []
        for chunk in text.replace(",", ";").split(";"):
            chunk = chunk.strip()
            if not chunk:
                continue
            parts = chunk.split(":")
            if not 3 <= len(parts) <= 4:
                raise ConfigError(
                    f"bad fault spec {chunk!r} (want experiment:shard:attempt[:kind])"
                )
            exp_id = parts[0].strip()
            if not exp_id:
                raise ConfigError(f"bad fault spec {chunk!r}: empty experiment id")
            specs.append(
                FaultSpec(
                    experiment_id=exp_id,
                    shard_index=_parse_coord(parts[1].strip(), "shard"),
                    attempt=_parse_coord(parts[2].strip(), "attempt"),
                    kind=parts[3].strip() if len(parts) == 4 else "RuntimeError",
                )
            )
        return cls(specs=tuple(specs), hang_seconds=hang_seconds)

    @classmethod
    def from_env(cls, environ=None) -> "FaultPlan":
        """The plan described by ``$REPRO_FAULT_INJECT`` (empty when unset)."""
        text = (environ if environ is not None else os.environ).get(
            FAULT_INJECT_ENV, ""
        )
        return cls.parse(text) if text.strip() else cls()

    def trigger(self, experiment_id: str, shard_index: int, attempt: int) -> None:
        """Fire the first spec matching this task attempt, if any."""
        for spec in self.specs:
            if spec.matches(experiment_id, shard_index, attempt):
                spec.fire(self.hang_seconds)
                return
