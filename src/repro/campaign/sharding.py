"""Trial-grid splitting and per-shard RNG substream derivation.

The campaign runner's determinism rests on two properties enforced here:

* :func:`split_trials` partitions ``n`` trials into at most ``k``
  contiguous, disjoint, non-empty spans that cover every trial exactly
  once — and the partition depends only on ``(n, k)``, never on how many
  workers happen to execute it;
* :func:`shard_seed` derives a child seed per ``(experiment, shard)``
  through :func:`repro.common.rng.derive_seed`, so shard RNG streams are
  statistically disjoint from each other and from the master seed, and a
  shard's stream does not shift when its neighbours change size.
"""

from __future__ import annotations

from typing import List, Tuple

from ..common.errors import ExperimentError
from ..common.rng import derive_seed


def split_trials(n_trials: int, n_shards: int) -> List[Tuple[int, int]]:
    """Partition ``n_trials`` into ``min(n_shards, n_trials)`` spans.

    Returns ``[(start, stop), ...]`` half-open ranges in ascending order.
    The first ``n_trials % shards`` spans are one trial longer, so sizes
    differ by at most one.
    """
    if n_shards < 1:
        raise ExperimentError(f"n_shards must be >= 1, got {n_shards}")
    if n_trials < 0:
        raise ExperimentError(f"n_trials must be >= 0, got {n_trials}")
    if n_trials == 0:
        return []
    shards = min(n_shards, n_trials)
    base, extra = divmod(n_trials, shards)
    spans = []
    start = 0
    for i in range(shards):
        size = base + (1 if i < extra else 0)
        spans.append((start, start + size))
        start += size
    return spans


def shard_seed(parent_seed: int, experiment_id: str, shard_index: int) -> int:
    """Deterministic substream seed for one shard of one experiment."""
    return derive_seed(parent_seed, f"campaign.{experiment_id}.shard{shard_index}")
