"""Content-addressed on-disk cache of campaign experiment results.

A cache entry is keyed by everything that can change an experiment's
output: the experiment id, its run configuration (``quick``, ``seed``,
shard count), and a content hash of the ``repro`` source tree (the *code
version*).  Editing any ``.py`` file under the package therefore
invalidates every entry automatically — there is no staleness knob to
forget.  Entries store the merged :class:`ExperimentResult` JSON plus the
merged stats snapshot and trace meta, so a warm run can still serve
``--stats-out``.
"""

from __future__ import annotations

import hashlib
import json
import os
from functools import lru_cache
from typing import Dict, Optional

#: Bump when the entry layout changes; part of every key.
CACHE_SCHEMA = 1

#: Stat names bumped on every lookup when a default obs is installed.
#: ``campaign.*`` names are stripped from cache entries by the runner, so
#: a warm hit never replays a previous run's cache luck.
CACHE_HITS_STAT = "campaign.cache.hits"
CACHE_MISSES_STAT = "campaign.cache.misses"
CACHE_HIT_RATE_STAT = "campaign.cache.hit_rate"


def _json_default(obj):
    """Coerce numpy scalars to native numbers so entries round-trip exactly."""
    item = getattr(obj, "item", None)
    if callable(item):
        return item()
    return str(obj)


@lru_cache(maxsize=1)
def code_version() -> str:
    """SHA-256 over the ``repro`` package's ``.py`` sources (path + content).

    Computed once per process.  Two trees with identical sources produce
    the same version regardless of location, mtimes, or bytecode caches.
    """
    import repro

    root = os.path.dirname(os.path.abspath(repro.__file__))
    digest = hashlib.sha256()
    for dirpath, dirnames, filenames in sorted(os.walk(root)):
        dirnames.sort()
        for fname in sorted(filenames):
            if not fname.endswith(".py"):
                continue
            path = os.path.join(dirpath, fname)
            digest.update(os.path.relpath(path, root).encode("utf-8"))
            with open(path, "rb") as fh:
                digest.update(fh.read())
    return digest.hexdigest()


class ResultCache:
    """Directory of ``<experiment>.<key16>.json`` entries with hit/miss stats."""

    def __init__(self, root: str) -> None:
        self.root = root
        os.makedirs(root, exist_ok=True)
        self.hits = 0
        self.misses = 0

    def key(
        self,
        experiment_id: str,
        quick: bool,
        seed: int,
        extra: Optional[Dict[str, object]] = None,
    ) -> str:
        """Content-addressed key for one experiment configuration."""
        payload = {
            "schema": CACHE_SCHEMA,
            "experiment": experiment_id,
            "quick": bool(quick),
            "seed": int(seed),
            "code": code_version(),
            "extra": extra or {},
        }
        blob = json.dumps(payload, sort_keys=True, default=str).encode("utf-8")
        return hashlib.sha256(blob).hexdigest()

    def _path(self, experiment_id: str, key: str) -> str:
        return os.path.join(self.root, f"{experiment_id}.{key[:16]}.json")

    def get(self, experiment_id: str, key: str) -> Optional[dict]:
        """The stored entry document, or ``None`` on miss/corruption."""
        path = self._path(experiment_id, key)
        try:
            with open(path) as fh:
                doc = json.load(fh)
        except (OSError, ValueError):
            self.misses += 1
            self._record_lookup(hit=False)
            return None
        if doc.get("key") != key:  # 16-hex-char filename collision
            self.misses += 1
            self._record_lookup(hit=False)
            return None
        self.hits += 1
        self._record_lookup(hit=True)
        return doc

    def _record_lookup(self, hit: bool) -> None:
        """Mirror hits/misses into the default obs registry, if installed."""
        from ..obs import get_default_obs

        obs = get_default_obs()
        if obs is None:
            return
        hits = obs.registry.counter(CACHE_HITS_STAT, "campaign cache hits")
        misses = obs.registry.counter(CACHE_MISSES_STAT, "campaign cache misses")
        (hits if hit else misses).inc()
        if CACHE_HIT_RATE_STAT not in obs.registry:
            obs.registry.formula(
                CACHE_HIT_RATE_STAT,
                lambda h=hits, m=misses: (
                    h.value() / (h.value() + m.value())
                    if (h.value() + m.value())
                    else 0.0
                ),
                desc="campaign cache hit fraction",
            )

    def put(self, experiment_id: str, key: str, doc: dict) -> str:
        """Store ``doc`` under ``key``; returns the entry path."""
        doc = dict(doc, key=key)
        path = self._path(experiment_id, key)
        tmp = path + ".tmp"
        with open(tmp, "w") as fh:
            json.dump(doc, fh, default=_json_default)
        os.replace(tmp, path)
        return path

    def clear(self) -> int:
        """Delete every entry; returns how many were removed.

        Also sweeps orphaned ``*.json.tmp`` files a crashed :meth:`put`
        may have left behind (not counted — they were never entries), and
        tolerates another process deleting files concurrently.
        """
        removed = 0
        for fname in sorted(os.listdir(self.root)):
            if not (fname.endswith(".json") or fname.endswith(".json.tmp")):
                continue
            try:
                os.unlink(os.path.join(self.root, fname))
            except FileNotFoundError:
                continue
            if fname.endswith(".json"):
                removed += 1
        return removed

    def __len__(self) -> int:
        """Number of entries (``*.json.tmp`` write leftovers don't count)."""
        return sum(1 for f in sorted(os.listdir(self.root)) if f.endswith(".json"))
