"""Coherence-facing protection strategies of the Undo-protected cache.

Two of CleanupSpec's speculation-window strategies (paper §II-B) concern
what *other* agents (threads/cores) observe while a window is open:

1. **Delayed coherence downgrade** — a request that would downgrade a line
   from M/E to S is deferred until the speculation window resolves, so a
   cross-core attacker cannot time coherence transitions of speculatively
   touched lines.
2. **Dummy cache miss** — a request from another thread/core that hits a
   *speculatively installed* line is served as if it missed (full miss
   latency, no state change visible), hiding transient installs.

The main unXpec attack is same-thread and does not rely on these, but they
are part of the protected-cache model and are exercised by tests showing the
window itself does not leak.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from .line import CacheLine, CoherenceState


@dataclass
class DowngradeRequest:
    """A deferred M/E -> S downgrade."""

    line_addr: int
    requested_at: int


@dataclass
class CoherenceGuardStats:
    delayed_downgrades: int = 0
    served_downgrades: int = 0
    dummy_misses: int = 0
    true_misses: int = 0
    shared_hits: int = 0


class CoherenceGuard:
    """Implements delayed downgrades and dummy-miss servicing for one cache."""

    def __init__(self, miss_latency: int, hit_latency: int) -> None:
        if miss_latency < hit_latency:
            raise ValueError("miss latency must be >= hit latency")
        self.miss_latency = miss_latency
        self.hit_latency = hit_latency
        self._pending: List[DowngradeRequest] = []
        self.stats = CoherenceGuardStats()

    # -- downgrade handling -----------------------------------------------------

    def request_downgrade(
        self, line: Optional[CacheLine], cycle: int, window_open: bool
    ) -> bool:
        """Handle an external downgrade request for ``line``.

        Returns True if the downgrade was applied immediately, False if it
        was deferred (speculation window open and the line was touched
        speculatively) or the line is absent.
        """
        if line is None or not line.valid:
            return False
        if line.state not in (CoherenceState.MODIFIED, CoherenceState.EXCLUSIVE):
            return True  # already shared; nothing to do
        if window_open and line.speculative:
            self._pending.append(DowngradeRequest(line.line_addr, cycle))
            self.stats.delayed_downgrades += 1
            return False
        line.state = CoherenceState.SHARED
        self.stats.served_downgrades += 1
        return True

    def resolve_window(self, lines_by_addr: dict, cycle: int) -> int:
        """Serve deferred downgrades once the window resolves; count served."""
        served = 0
        for req in self._pending:
            line = lines_by_addr.get(req.line_addr)
            if line is not None and line.valid:
                line.state = CoherenceState.SHARED
                self.stats.served_downgrades += 1
                served += 1
        self._pending.clear()
        return served

    @property
    def pending_downgrades(self) -> int:
        return len(self._pending)

    # -- cross-agent probe servicing -------------------------------------------

    def probe_latency(self, line: Optional[CacheLine]) -> int:
        """Latency another thread/core observes when probing ``line``.

        A hit on a speculatively installed line is served as a *dummy miss*
        (full miss latency) so the probe cannot distinguish it from absence.
        """
        if line is None or not line.valid:
            self.stats.true_misses += 1
            return self.miss_latency
        if line.speculative:
            self.stats.dummy_misses += 1
            return self.miss_latency
        self.stats.shared_hits += 1
        return self.hit_latency
