"""Cache line and coherence state.

Lines carry a MESI-lite coherence state. CleanupSpec's "delay unsafe
coherence downgrade" strategy (paper §II-B) needs M/E vs S to be explicit;
the rest of the simulator mostly cares about valid/invalid and dirty.

A line installed by a speculatively executed (potentially transient) load is
marked ``speculative`` and stamped with the speculation *epoch* that
installed it, so the rollback engine can find exactly the lines a squashed
window brought in.
"""

from __future__ import annotations

import enum
from typing import Optional


class CoherenceState(enum.Enum):
    """MESI-lite state of a cache line."""

    MODIFIED = "M"
    EXCLUSIVE = "E"
    SHARED = "S"
    INVALID = "I"


class CacheLine:
    """One cache line (tag store entry); data lives in the DRAM model.

    A plain ``__slots__`` class (not a dataclass): the simulator creates and
    probes millions of these per campaign, and slots cut both the per-line
    memory and the attribute-access cost on the hot path.
    """

    __slots__ = (
        "line_addr",
        "state",
        "dirty",
        "speculative",
        "epoch",
        "installed_at",
        "last_access",
    )

    def __init__(
        self,
        line_addr: int,
        state: CoherenceState = CoherenceState.EXCLUSIVE,
        dirty: bool = False,
        speculative: bool = False,
        epoch: Optional[int] = None,
        installed_at: int = 0,
        last_access: int = 0,
    ) -> None:
        self.line_addr = line_addr
        self.state = state
        self.dirty = dirty
        self.speculative = speculative
        self.epoch = epoch
        #: Insertion timestamp (cycle), used by tests and debugging.
        self.installed_at = installed_at
        #: Last-touch timestamp for LRU bookkeeping.
        self.last_access = last_access

    @property
    def valid(self) -> bool:
        return self.state is not CoherenceState.INVALID

    def touch(self, cycle: int) -> None:
        self.last_access = cycle

    def commit(self) -> None:
        """Clear speculative marking (the installing window committed)."""
        self.speculative = False
        self.epoch = None

    def write(self, cycle: int) -> None:
        """Mark the line written: dirty, M state."""
        self.dirty = True
        self.state = CoherenceState.MODIFIED
        self.touch(cycle)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        spec = f" spec@{self.epoch}" if self.speculative else ""
        dirty = " dirty" if self.dirty else ""
        return f"<Line {self.line_addr:#x} {self.state.value}{dirty}{spec}>"
