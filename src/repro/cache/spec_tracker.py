"""Speculative-state tracking for Undo rollback.

During a speculation window (an *epoch*), the hierarchy records every cache
state change made by speculatively executed loads:

* lines **installed** at L1 and/or L2 (invalidation targets), and
* L1 lines **evicted** by those installs (restoration targets; the paper
  notes these addresses are held in the load queue / MSHR).

At squash, CleanupSpec walks the epoch's delta; at commit the marks are
simply cleared. L2 evictions are recorded too — not for restoration (the
paper's CleanupSpec never restores below L1) but for statistics and for the
security argument tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass(frozen=True)
class SpecInstall:
    """A line speculatively installed at one cache level."""

    level: str  # "L1" or "L2"
    line_addr: int
    set_index: int
    way: int


@dataclass(frozen=True)
class SpecEviction:
    """A line evicted (at ``level``) by a speculative install."""

    level: str
    line_addr: int
    dirty: bool
    set_index: int
    way: int
    #: True if the victim was itself a speculative install (then it is not
    #: an "original" line and must not be restored).
    was_speculative: bool = False


@dataclass
class EpochDelta:
    """All speculative cache-state changes of one epoch."""

    epoch: int
    installs: List[SpecInstall] = field(default_factory=list)
    evictions: List[SpecEviction] = field(default_factory=list)

    def installs_at(self, level: str) -> List[SpecInstall]:
        return [i for i in self.installs if i.level == level]

    def evictions_at(self, level: str) -> List[SpecEviction]:
        return [e for e in self.evictions if e.level == level]

    @property
    def is_empty(self) -> bool:
        return not self.installs and not self.evictions


class SpeculationTracker:
    """Allocates epochs and accumulates per-epoch deltas."""

    def __init__(self) -> None:
        self._next_epoch = 1
        self._open: Dict[int, EpochDelta] = {}

    def open_epoch(self) -> int:
        """Start a new speculation window; returns its epoch id."""
        epoch = self._next_epoch
        self._next_epoch += 1
        self._open[epoch] = EpochDelta(epoch=epoch)
        return epoch

    def record_install(
        self, epoch: int, level: str, line_addr: int, set_index: int, way: int
    ) -> None:
        self._delta(epoch).installs.append(
            SpecInstall(level=level, line_addr=line_addr, set_index=set_index, way=way)
        )

    def record_eviction(
        self,
        epoch: int,
        level: str,
        line_addr: int,
        dirty: bool,
        set_index: int,
        way: int,
        was_speculative: bool = False,
    ) -> None:
        self._delta(epoch).evictions.append(
            SpecEviction(
                level=level,
                line_addr=line_addr,
                dirty=dirty,
                set_index=set_index,
                way=way,
                was_speculative=was_speculative,
            )
        )

    def close_epoch(self, epoch: int) -> EpochDelta:
        """Remove and return the epoch's delta (squash or commit)."""
        return self._open.pop(epoch)

    def peek(self, epoch: int) -> EpochDelta:
        return self._delta(epoch)

    def open_epochs(self) -> List[int]:
        return sorted(self._open)

    def _delta(self, epoch: int) -> EpochDelta:
        try:
            return self._open[epoch]
        except KeyError as exc:
            raise KeyError(f"epoch {epoch} is not open") from exc
