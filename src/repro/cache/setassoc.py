"""Set-associative cache (tag store).

One level of the hierarchy: lookup, install with victim selection,
invalidation, flush. Data values live in the DRAM model; the cache tracks
presence, dirtiness, coherence state, and speculative marking.

The cache optionally routes set indexing through a
:class:`~repro.cache.randomized.RandomizedIndexing` permutation (CEASER-like,
used for the shared L2) and restricts allocation ways per thread through the
replacement policy's ``allowed_ways`` (NoMo partition, used for the L1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..common.config import CacheGeometry
from ..memory.address import AddressMapper
from .line import CacheLine, CoherenceState
from .randomized import RandomizedIndexing
from .replacement import ReplacementPolicy


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    installs: int = 0
    spec_installs: int = 0
    evictions: int = 0
    dirty_evictions: int = 0
    invalidations: int = 0
    restorations: int = 0
    flushes: int = 0


@dataclass
class Eviction:
    """Record of a line evicted to make room for an install."""

    line_addr: int
    dirty: bool
    set_index: int
    way: int
    was_speculative: bool


class SetAssociativeCache:
    """One cache level."""

    def __init__(
        self,
        geometry: CacheGeometry,
        policy: ReplacementPolicy,
        randomizer: Optional[RandomizedIndexing] = None,
    ) -> None:
        self.geometry = geometry
        self.mapper = AddressMapper(geometry)
        self.policy = policy
        self.randomizer = randomizer
        self._sets: List[List[Optional[CacheLine]]] = [
            [None] * geometry.ways for _ in range(geometry.sets)
        ]
        self.stats = CacheStats()

    # -- indexing ---------------------------------------------------------------

    def set_index_of(self, addr: int) -> int:
        """Set index of ``addr``, honouring the randomized mapping if present."""
        line_number = addr >> self.geometry.offset_bits
        if self.randomizer is not None:
            line_number = self.randomizer.permute(
                line_number & ((1 << self.randomizer.bits) - 1)
            )
        return line_number & (self.geometry.sets - 1)

    def line_addr_of(self, addr: int) -> int:
        return self.mapper.line(addr)

    # -- lookup -------------------------------------------------------------------

    def _find(self, addr: int) -> tuple:
        """Return ``(set_index, way, line)`` or ``(set_index, None, None)``."""
        line_addr = self.line_addr_of(addr)
        set_index = self.set_index_of(addr)
        for way, line in enumerate(self._sets[set_index]):
            if line is not None and line.valid and line.line_addr == line_addr:
                return set_index, way, line
        return set_index, None, None

    def lookup(self, addr: int, cycle: int = 0, touch: bool = True) -> Optional[CacheLine]:
        """Hit check with stats and (optionally) recency update."""
        _, way, line = self._find(addr)
        if line is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        if touch:
            line.touch(cycle)
        return line

    def contains(self, addr: int) -> bool:
        """Presence probe without statistics or recency side effects."""
        _, way, _line = self._find(addr)
        return way is not None

    def get_line(self, addr: int) -> Optional[CacheLine]:
        """The resident line for ``addr`` with no side effects, or None."""
        _, _, line = self._find(addr)
        return line

    # -- install ---------------------------------------------------------------

    def install(
        self,
        addr: int,
        cycle: int,
        dirty: bool = False,
        speculative: bool = False,
        epoch: Optional[int] = None,
        thread: int = 0,
        preferred_way: Optional[int] = None,
    ) -> tuple:
        """Install the line for ``addr``; return ``(line, eviction_or_None)``.

        Invalid ways are filled first; otherwise the replacement policy picks
        a victim among the ways the accessing ``thread`` may allocate into.
        ``preferred_way`` pins the destination way (used by restoration to
        put a victim back where the transient line was invalidated).
        """
        line_addr = self.line_addr_of(addr)
        set_index, way, existing = self._find(addr)
        if existing is not None:
            # Already present — refresh rather than duplicate.
            existing.touch(cycle)
            if dirty:
                existing.write(cycle)
            return existing, None

        ways = self._sets[set_index]
        eviction: Optional[Eviction] = None
        if preferred_way is not None:
            target = preferred_way
        else:
            allowed = self.policy.allowed_ways(thread, self.geometry.ways)
            invalid = [w for w in allowed if ways[w] is None or not ways[w].valid]
            if invalid:
                target = invalid[0]
            else:
                candidates = [w for w in allowed if ways[w] is not None]
                target = self.policy.choose_victim(set_index, ways, candidates)

        victim = ways[target]
        if victim is not None and victim.valid:
            eviction = Eviction(
                line_addr=victim.line_addr,
                dirty=victim.dirty,
                set_index=set_index,
                way=target,
                was_speculative=victim.speculative,
            )
            self.stats.evictions += 1
            if victim.dirty:
                self.stats.dirty_evictions += 1

        state = CoherenceState.MODIFIED if dirty else CoherenceState.EXCLUSIVE
        new_line = CacheLine(
            line_addr=line_addr,
            state=state,
            dirty=dirty,
            speculative=speculative,
            epoch=epoch,
            installed_at=cycle,
            last_access=cycle,
        )
        ways[target] = new_line
        self.stats.installs += 1
        if speculative:
            self.stats.spec_installs += 1
        return new_line, eviction

    # -- removal -----------------------------------------------------------------

    def invalidate(self, addr: int) -> Optional[CacheLine]:
        """Remove the line for ``addr``; return it (pre-invalidation) or None."""
        set_index, way, line = self._find(addr)
        if line is None or way is None:
            return None
        removed = line
        self._sets[set_index][way] = None
        self.stats.invalidations += 1
        return removed

    def way_of(self, addr: int) -> Optional[int]:
        """Way currently holding ``addr``'s line, if resident."""
        _, way, _ = self._find(addr)
        return way

    def flush(self, addr: int) -> Optional[CacheLine]:
        """clflush semantics at this level: invalidate, report the line."""
        line = self.invalidate(addr)
        if line is not None:
            self.stats.flushes += 1
        return line

    # -- maintenance ---------------------------------------------------------------

    def commit_epoch(self, epoch: int) -> int:
        """Clear speculative marks of ``epoch`` (window committed); count them."""
        cleared = 0
        for ways in self._sets:
            for line in ways:
                if line is not None and line.speculative and line.epoch == epoch:
                    line.commit()
                    cleared += 1
        return cleared

    def speculative_lines(self, epoch: Optional[int] = None) -> List[CacheLine]:
        """All speculative lines (optionally of one epoch)."""
        out = []
        for ways in self._sets:
            for line in ways:
                if line is not None and line.speculative:
                    if epoch is None or line.epoch == epoch:
                        out.append(line)
        return out

    def resident_lines(self) -> List[CacheLine]:
        return [l for ways in self._sets for l in ways if l is not None and l.valid]

    def set_occupancy(self, set_index: int) -> int:
        """Number of valid lines currently in ``set_index``."""
        return sum(
            1 for l in self._sets[set_index] if l is not None and l.valid
        )

    def clear(self) -> None:
        for s in range(self.geometry.sets):
            self._sets[s] = [None] * self.geometry.ways

    # -- observability -------------------------------------------------------

    def register_stats(self, registry, prefix: str) -> None:
        """Publish this level's counters under ``prefix`` (e.g. ``l1d``).

        Pull-based: the registry reads ``self.stats`` at dump time, so the
        lookup/install hot paths pay nothing.  Several caches registering
        under the same prefix (one per hierarchy in a campaign) aggregate.
        """
        st = self.stats
        pulls = (
            ("hits", "demand hits at this level", lambda: st.hits),
            ("misses", "demand misses at this level", lambda: st.misses),
            ("installs", "lines installed", lambda: st.installs),
            ("spec_installs", "speculatively installed lines", lambda: st.spec_installs),
            ("evictions", "victims evicted by installs", lambda: st.evictions),
            ("dirty_evictions", "dirty victims written back", lambda: st.dirty_evictions),
            ("invalidations", "lines invalidated (incl. rollback)", lambda: st.invalidations),
            ("restorations", "rollback-restored victims", lambda: st.restorations),
            ("flushes", "clflush invalidations", lambda: st.flushes),
        )
        for name, desc, fn in pulls:
            registry.gauge(f"{prefix}.{name}", desc).add_source(fn)
        hits = registry.gauge(f"{prefix}.hits")
        misses = registry.gauge(f"{prefix}.misses")
        registry.formula(
            f"{prefix}.miss_rate",
            lambda h=hits, m=misses: m.value() / max(1, h.value() + m.value()),
            desc="misses / accesses at this level",
        )
