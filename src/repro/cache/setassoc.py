"""Set-associative cache (tag store).

One level of the hierarchy: lookup, install with victim selection,
invalidation, flush. Data values live in the DRAM model; the cache tracks
presence, dirtiness, coherence state, and speculative marking.

The cache optionally routes set indexing through a
:class:`~repro.cache.randomized.RandomizedIndexing` permutation (CEASER-like,
used for the shared L2) and restricts allocation ways per thread through the
replacement policy's ``allowed_ways`` (NoMo partition, used for the L1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..common.config import CacheGeometry
from ..memory.address import AddressMapper
from .line import CacheLine, CoherenceState
from .randomized import RandomizedIndexing
from .replacement import ReplacementPolicy


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    installs: int = 0
    spec_installs: int = 0
    evictions: int = 0
    dirty_evictions: int = 0
    invalidations: int = 0
    restorations: int = 0
    flushes: int = 0


@dataclass
class Eviction:
    """Record of a line evicted to make room for an install."""

    line_addr: int
    dirty: bool
    set_index: int
    way: int
    was_speculative: bool


def snapshot_set(ways) -> tuple:
    """Immutable per-way snapshot of one set's lines.

    ``None`` for empty ways, else the full 7-field line tuple. Used by the
    batched backend both as the copy-on-first-touch undo record and as the
    canonical per-set state for interning.
    """
    return tuple(
        None
        if line is None
        else (
            line.line_addr,
            line.state,
            line.dirty,
            line.speculative,
            line.epoch,
            line.installed_at,
            line.last_access,
        )
        for line in ways
    )


class SetAssociativeCache:
    """One cache level."""

    def __init__(
        self,
        geometry: CacheGeometry,
        policy: ReplacementPolicy,
        randomizer: Optional[RandomizedIndexing] = None,
    ) -> None:
        self.geometry = geometry
        self.mapper = AddressMapper(geometry)
        self.policy = policy
        self.randomizer = randomizer
        self._sets: List[List[Optional[CacheLine]]] = [
            [None] * geometry.ways for _ in range(geometry.sets)
        ]
        self.stats = CacheStats()
        # Hot-path precomputes: line/set masks, the (expensive, pure)
        # randomized set-index function memoized per line number, and an
        # exact line_addr -> (set_index, way) residency map so lookups are
        # O(1) instead of a way scan.
        self._offset_bits = geometry.offset_bits
        self._line_mask = ~(geometry.line_size - 1)
        self._set_mask = geometry.sets - 1
        self._rand_mask = (1 << randomizer.bits) - 1 if randomizer is not None else 0
        self._set_index_cache: dict = {}
        self._where: dict = {}
        #: Structural-mutation counter: bumped by install/invalidate/flush/
        #: commit_epoch/clear (recency touches are covered by the hit/miss
        #: stat counters, which every lookup bumps). The batched backend uses
        #: ``(version, stats.hits, stats.misses)`` to detect out-of-band
        #: mutations between memoized rounds.
        self.version = 0
        #: Copy-on-first-touch recording (batched backend): when a dict is
        #: attached, every mutating path snapshots the touched set's content
        #: *before* its first mutation of the round, keyed by set index.
        self._recording: Optional[dict] = None
        #: Set True when a whole-cache mutation (clear) happens while a
        #: recording is attached — the round's transition is then too big to
        #: memoize and is discarded.
        self._record_spill = False

    # -- indexing ---------------------------------------------------------------

    def set_index_of(self, addr: int) -> int:
        """Set index of ``addr``, honouring the randomized mapping if present.

        The randomized (CEASER-like Feistel) mapping is a pure function of
        the line number, so it is memoized: experiment working sets touch a
        bounded set of lines but access each one thousands of times.
        """
        line_number = addr >> self._offset_bits
        cached = self._set_index_cache.get(line_number)
        if cached is None:
            if self.randomizer is not None:
                permuted = self.randomizer.permute(line_number & self._rand_mask)
            else:
                permuted = line_number
            cached = permuted & self._set_mask
            self._set_index_cache[line_number] = cached
        return cached

    def line_addr_of(self, addr: int) -> int:
        return addr & self._line_mask

    # -- lookup -------------------------------------------------------------------

    def _find(self, addr: int) -> tuple:
        """Return ``(set_index, way, line)`` or ``(set_index, None, None)``."""
        line_addr = addr & self._line_mask
        loc = self._where.get(line_addr)
        if loc is not None:
            set_index, way = loc
            line = self._sets[set_index][way]
            if line is not None and line.line_addr == line_addr and line.valid:
                return set_index, way, line
            # Stale entry (line invalidated in place or way re-used).
            del self._where[line_addr]
        return self.set_index_of(addr), None, None

    def lookup(self, addr: int, cycle: int = 0, touch: bool = True) -> Optional[CacheLine]:
        """Hit check with stats and (optionally) recency update."""
        # Hot path: the residency-map check is inlined (rather than going
        # through _find) — lookup() runs once per hierarchy access.
        line_addr = addr & self._line_mask
        loc = self._where.get(line_addr)
        if loc is not None:
            line = self._sets[loc[0]][loc[1]]
            if line is not None and line.line_addr == line_addr and line.valid:
                self.stats.hits += 1
                if touch:
                    rec = self._recording
                    if rec is not None and loc[0] not in rec:
                        rec[loc[0]] = snapshot_set(self._sets[loc[0]])
                    line.last_access = cycle
                return line
            del self._where[line_addr]
        self.stats.misses += 1
        return None

    def contains(self, addr: int) -> bool:
        """Presence probe without statistics or recency side effects."""
        _, way, _line = self._find(addr)
        return way is not None

    def get_line(self, addr: int) -> Optional[CacheLine]:
        """The resident line for ``addr`` with no side effects, or None."""
        _, _, line = self._find(addr)
        return line

    # -- install ---------------------------------------------------------------

    def install(
        self,
        addr: int,
        cycle: int,
        dirty: bool = False,
        speculative: bool = False,
        epoch: Optional[int] = None,
        thread: int = 0,
        preferred_way: Optional[int] = None,
    ) -> tuple:
        """Install the line for ``addr``; return ``(line, eviction_or_None)``.

        Invalid ways are filled first; otherwise the replacement policy picks
        a victim among the ways the accessing ``thread`` may allocate into.
        ``preferred_way`` pins the destination way (used by restoration to
        put a victim back where the transient line was invalidated).
        """
        line_addr = addr & self._line_mask
        set_index, way, existing = self._find(addr)
        self.version += 1
        rec = self._recording
        if rec is not None and set_index not in rec:
            rec[set_index] = snapshot_set(self._sets[set_index])
        if existing is not None:
            # Already present — refresh rather than duplicate.
            existing.touch(cycle)
            if dirty:
                existing.write(cycle)
            return existing, None

        ways = self._sets[set_index]
        eviction: Optional[Eviction] = None
        if preferred_way is not None:
            target = preferred_way
        else:
            allowed = self.policy.allowed_ways(thread, self.geometry.ways)
            invalid = [w for w in allowed if ways[w] is None or not ways[w].valid]
            if invalid:
                target = invalid[0]
            else:
                candidates = [w for w in allowed if ways[w] is not None]
                target = self.policy.choose_victim(set_index, ways, candidates)

        victim = ways[target]
        if victim is not None and victim.valid:
            eviction = Eviction(
                line_addr=victim.line_addr,
                dirty=victim.dirty,
                set_index=set_index,
                way=target,
                was_speculative=victim.speculative,
            )
            self.stats.evictions += 1
            if victim.dirty:
                self.stats.dirty_evictions += 1
        if victim is not None and self._where.get(victim.line_addr) == (set_index, target):
            del self._where[victim.line_addr]

        state = CoherenceState.MODIFIED if dirty else CoherenceState.EXCLUSIVE
        new_line = CacheLine(
            line_addr=line_addr,
            state=state,
            dirty=dirty,
            speculative=speculative,
            epoch=epoch,
            installed_at=cycle,
            last_access=cycle,
        )
        ways[target] = new_line
        self._where[line_addr] = (set_index, target)
        self.stats.installs += 1
        if speculative:
            self.stats.spec_installs += 1
        return new_line, eviction

    # -- removal -----------------------------------------------------------------

    def invalidate(self, addr: int) -> Optional[CacheLine]:
        """Remove the line for ``addr``; return it (pre-invalidation) or None."""
        set_index, way, line = self._find(addr)
        if line is None or way is None:
            return None
        self.version += 1
        rec = self._recording
        if rec is not None and set_index not in rec:
            rec[set_index] = snapshot_set(self._sets[set_index])
        removed = line
        self._sets[set_index][way] = None
        self._where.pop(line.line_addr, None)
        self.stats.invalidations += 1
        return removed

    def way_of(self, addr: int) -> Optional[int]:
        """Way currently holding ``addr``'s line, if resident."""
        _, way, _ = self._find(addr)
        return way

    def flush(self, addr: int) -> Optional[CacheLine]:
        """clflush semantics at this level: invalidate, report the line."""
        line = self.invalidate(addr)
        if line is not None:
            self.stats.flushes += 1
        return line

    # -- maintenance ---------------------------------------------------------------

    def commit_epoch(self, epoch: int) -> int:
        """Clear speculative marks of ``epoch`` (window committed); count them."""
        cleared = 0
        rec = self._recording
        for set_index, ways in enumerate(self._sets):
            for line in ways:
                if line is not None and line.speculative and line.epoch == epoch:
                    if rec is not None and set_index not in rec:
                        rec[set_index] = snapshot_set(ways)
                    line.commit()
                    cleared += 1
        if cleared:
            self.version += 1
        return cleared

    def speculative_lines(self, epoch: Optional[int] = None) -> List[CacheLine]:
        """All speculative lines (optionally of one epoch)."""
        out = []
        for ways in self._sets:
            for line in ways:
                if line is not None and line.speculative:
                    if epoch is None or line.epoch == epoch:
                        out.append(line)
        return out

    def resident_lines(self) -> List[CacheLine]:
        return [l for ways in self._sets for l in ways if l is not None and l.valid]

    def set_occupancy(self, set_index: int) -> int:
        """Number of valid lines currently in ``set_index``."""
        return sum(
            1 for l in self._sets[set_index] if l is not None and l.valid
        )

    def clear(self) -> None:
        self.version += 1
        if self._recording is not None:
            self._record_spill = True
        for s in range(self.geometry.sets):
            self._sets[s] = [None] * self.geometry.ways
        self._where.clear()

    # -- observability -------------------------------------------------------

    def register_stats(self, registry, prefix: str) -> None:
        """Publish this level's counters under ``prefix`` (e.g. ``l1d``).

        Pull-based: the registry reads ``self.stats`` at dump time, so the
        lookup/install hot paths pay nothing.  Several caches registering
        under the same prefix (one per hierarchy in a campaign) aggregate.
        """
        st = self.stats
        pulls = (
            ("hits", "demand hits at this level", lambda: st.hits),
            ("misses", "demand misses at this level", lambda: st.misses),
            ("installs", "lines installed", lambda: st.installs),
            ("spec_installs", "speculatively installed lines", lambda: st.spec_installs),
            ("evictions", "victims evicted by installs", lambda: st.evictions),
            ("dirty_evictions", "dirty victims written back", lambda: st.dirty_evictions),
            ("invalidations", "lines invalidated (incl. rollback)", lambda: st.invalidations),
            ("restorations", "rollback-restored victims", lambda: st.restorations),
            ("flushes", "clflush invalidations", lambda: st.flushes),
        )
        for name, desc, fn in pulls:
            registry.gauge(f"{prefix}.{name}", desc).add_source(fn)
        hits = registry.gauge(f"{prefix}.hits")
        misses = registry.gauge(f"{prefix}.misses")
        registry.formula(
            f"{prefix}.miss_rate",
            lambda h=hits, m=misses: m.value() / max(1, h.value() + m.value()),
            desc="misses / accesses at this level",
        )
