"""Cache substrate: lines, policies, set-associative levels, hierarchy."""

from .coherence import CoherenceGuard, CoherenceGuardStats, DowngradeRequest
from .hierarchy import AccessResult, CacheHierarchy
from .line import CacheLine, CoherenceState
from .randomized import RandomizedIndexing
from .replacement import (
    LruReplacement,
    NoMoPartition,
    RandomReplacement,
    ReplacementPolicy,
)
from .setassoc import CacheStats, Eviction, SetAssociativeCache
from .spec_tracker import (
    EpochDelta,
    SpecEviction,
    SpecInstall,
    SpeculationTracker,
)

__all__ = [
    "CacheLine",
    "CoherenceState",
    "ReplacementPolicy",
    "RandomReplacement",
    "LruReplacement",
    "NoMoPartition",
    "SetAssociativeCache",
    "CacheStats",
    "Eviction",
    "RandomizedIndexing",
    "CoherenceGuard",
    "CoherenceGuardStats",
    "DowngradeRequest",
    "SpeculationTracker",
    "EpochDelta",
    "SpecInstall",
    "SpecEviction",
    "CacheHierarchy",
    "AccessResult",
]
