"""Replacement policies.

CleanupSpec's protected L1 uses **random replacement** (to close
replacement-state side channels such as LRU attacks) and a **NoMo-style way
partition** (to stop an SMT sibling from building same-core Prime+Probe).
We implement:

* :class:`RandomReplacement` — uniform choice among candidate ways,
* :class:`LruReplacement` — classic least-recently-used (the unsafe
  baseline's policy, and what replacement-state attacks exploit),
* :class:`NoMoPartition` — a wrapper that restricts victim selection to the
  ways owned by the accessing thread.

A policy selects a victim way among ``candidates`` (way indices whose lines
are valid; invalid ways are always preferred by the cache before asking the
policy).
"""

from __future__ import annotations

from typing import List, Optional, Protocol, Sequence

import numpy as np

from ..common.errors import ConfigError
from .line import CacheLine


class ReplacementPolicy(Protocol):
    """Strategy interface for victim selection."""

    def choose_victim(
        self,
        set_index: int,
        lines: Sequence[Optional[CacheLine]],
        candidates: Sequence[int],
    ) -> int:
        """Pick the way to evict among ``candidates`` (non-empty)."""
        ...

    def allowed_ways(self, thread: int, ways: int) -> List[int]:
        """Ways thread ``thread`` may allocate into (partitioning hook)."""
        ...


class RandomReplacement:
    """Uniformly random victim choice (CleanupSpec's protected-L1 policy)."""

    def __init__(self, rng: np.random.Generator) -> None:
        self._rng = rng
        #: Total RNG draws performed; the batched backend compares this
        #: against the count at snapshot time to know whether the generator
        #: state moved (reading it is much cheaper than ``bit_generator.state``).
        self.draws = 0

    def choose_victim(
        self,
        set_index: int,
        lines: Sequence[Optional[CacheLine]],
        candidates: Sequence[int],
    ) -> int:
        if not candidates:
            raise ValueError("no candidate ways to evict")
        self.draws += 1
        return int(candidates[self._rng.integers(len(candidates))])

    def allowed_ways(self, thread: int, ways: int) -> List[int]:
        return list(range(ways))


class LruReplacement:
    """Least-recently-used victim choice (baseline policy)."""

    def choose_victim(
        self,
        set_index: int,
        lines: Sequence[Optional[CacheLine]],
        candidates: Sequence[int],
    ) -> int:
        if not candidates:
            raise ValueError("no candidate ways to evict")
        return min(
            candidates,
            key=lambda way: (lines[way].last_access, way),  # type: ignore[union-attr]
        )

    def allowed_ways(self, thread: int, ways: int) -> List[int]:
        return list(range(ways))


class NoMoPartition:
    """NoMo-style static way partition wrapped around an inner policy.

    With ``threads`` hardware threads and ``W`` ways, thread ``t`` owns the
    contiguous way range ``[t*W/threads, (t+1)*W/threads)``. Victim selection
    is restricted to the accessor's ways; hits in any way still count (NoMo
    partitions allocation, not lookup).
    """

    def __init__(self, inner: ReplacementPolicy, threads: int = 2) -> None:
        if threads < 1:
            raise ConfigError("NoMo needs at least one thread")
        self.inner = inner
        self.threads = threads

    def allowed_ways(self, thread: int, ways: int) -> List[int]:
        if not 0 <= thread < self.threads:
            raise ConfigError(f"thread {thread} out of range (< {self.threads})")
        if ways % self.threads != 0:
            raise ConfigError(
                f"{ways} ways do not partition evenly over {self.threads} threads"
            )
        per = ways // self.threads
        return list(range(thread * per, (thread + 1) * per))

    def choose_victim(
        self,
        set_index: int,
        lines: Sequence[Optional[CacheLine]],
        candidates: Sequence[int],
    ) -> int:
        return self.inner.choose_victim(set_index, lines, candidates)
