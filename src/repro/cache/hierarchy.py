"""Two-level cache hierarchy with DRAM backing and speculative tracking.

This is the Undo-protected cache model of paper §III-A:

* private **L1D** — way-partitioned (NoMo) random replacement,
* shared **L2** — CEASER-style randomized indexing, random replacement,
* **DRAM** — fixed round-trip latency,
* an **MSHR** file shared by the levels (one per-core file, as in the
  CleanupSpec artifact), and
* a :class:`SpeculationTracker` recording, per speculation epoch, every
  install and every L1 eviction performed by speculative loads.

The hierarchy is *functional*: installs, evictions, invalidations,
restorations and flushes really change which lines are resident, so repeated
attack rounds observe exactly the cache states CleanupSpec's rollback leaves
behind. Timing is returned to the caller per access; the hierarchy itself
holds no clock.
"""

from __future__ import annotations

from typing import List, Optional

from ..common.config import LatencyConfig, SystemConfig
from ..common.errors import ConfigError
from ..common.rng import derive_rng
from ..memory.dram import Dram
from ..memory.mshr import MshrFile
from ..obs import Observability, get_default_obs
from .coherence import CoherenceGuard
from .randomized import RandomizedIndexing
from .replacement import NoMoPartition, RandomReplacement, ReplacementPolicy
from .setassoc import Eviction, SetAssociativeCache
from .spec_tracker import EpochDelta, SpecEviction, SpeculationTracker


class AccessResult:
    """Outcome of one data access.

    A ``__slots__`` class rather than a (frozen) dataclass: one is built per
    :meth:`CacheHierarchy.access`, which is the single most-called API of a
    campaign, and frozen-dataclass construction costs an ``object.__setattr__``
    per field.
    """

    __slots__ = (
        "addr",
        "latency",
        "level",
        "is_write",
        "speculative",
        "installed",
        "l1_victim",
    )

    def __init__(
        self,
        addr: int,
        latency: int,
        level: str,  # "L1", "L2", or "MEM" — where the access was served
        is_write: bool,
        speculative: bool,
        installed: tuple = (),
        l1_victim: Optional[int] = None,
    ) -> None:
        self.addr = addr
        self.latency = latency
        self.level = level
        self.is_write = is_write
        self.speculative = speculative
        #: Levels at which the access installed a new line ("L1"/"L2").
        self.installed = installed
        #: L1 victim line address if the install evicted one, else None.
        self.l1_victim = l1_victim

    @property
    def l1_hit(self) -> bool:
        return self.level == "L1"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<AccessResult {self.addr:#x} {self.level} lat={self.latency}"
            f"{' write' if self.is_write else ''}"
            f"{' spec' if self.speculative else ''}>"
        )


class CacheHierarchy:
    """L1D + shared L2 + DRAM with speculative-state tracking."""

    def __init__(
        self,
        config: Optional[SystemConfig] = None,
        seed: int = 0,
        l1_policy: Optional[ReplacementPolicy] = None,
        l2_policy: Optional[ReplacementPolicy] = None,
        randomize_l2: bool = True,
        nomo_threads: int = 2,
        obs: Optional[Observability] = None,
    ) -> None:
        self.config = config or SystemConfig()
        self.latency: LatencyConfig = self.config.latency
        self.seed = seed

        if l1_policy is None:
            base = RandomReplacement(derive_rng(seed, "l1-replacement"))
            l1_policy = NoMoPartition(base, threads=nomo_threads) if nomo_threads > 1 else base
        if l2_policy is None:
            l2_policy = RandomReplacement(derive_rng(seed, "l2-replacement"))

        randomizer = None
        if randomize_l2:
            key = int(derive_rng(seed, "ceaser-key").integers(1 << 62))
            randomizer = RandomizedIndexing(key=key)

        self.l1 = SetAssociativeCache(self.config.l1d, l1_policy)
        self.l2 = SetAssociativeCache(self.config.l2, l2_policy, randomizer=randomizer)
        self.dram = Dram(latency=self.latency.memory)
        #: Address-space mask (size is a power of two): the core wraps
        #: every computed effective address with this at the
        #: core/hierarchy boundary, on committed and wrong paths alike.
        self.addr_mask = self.dram.addr_mask
        self.mshr = MshrFile(capacity=self.config.core.mshr_entries)
        self.tracker = SpeculationTracker()
        self.l1_guard = CoherenceGuard(
            miss_latency=self.latency.memory_total, hit_latency=self.latency.l1_hit
        )
        self.obs: Optional[Observability] = None
        #: Hot-path cache of ``obs.trace`` when full-level events are on
        #: (None otherwise) — checked once per access instead of two
        #: attribute hops plus a flag test.
        self._trace_full = None
        self.attach_obs(obs if obs is not None else get_default_obs())

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------

    def attach_obs(self, obs: Optional[Observability]) -> None:
        """Report stats/events through ``obs`` (idempotent once attached)."""
        if obs is None or self.obs is not None:
            return
        self.obs = obs
        self._trace_full = obs.trace if obs.trace.full_events else None
        reg = obs.registry
        self.l1.register_stats(reg, "l1d")
        self.l2.register_stats(reg, "l2")
        self.dram.register_stats(reg, "dram")
        self.mshr.register_stats(reg, "mshr")

    # ------------------------------------------------------------------
    # demand accesses
    # ------------------------------------------------------------------

    def access(
        self,
        addr: int,
        cycle: int,
        is_write: bool = False,
        speculative: bool = False,
        epoch: Optional[int] = None,
        thread: int = 0,
    ) -> AccessResult:
        """Perform one data access; mutate state; return timing and outcome.

        ``speculative`` accesses stamp installed lines with ``epoch`` and
        record installs/evictions with the tracker so a later squash can
        roll them back.
        """
        if speculative and epoch is None:
            raise ConfigError("speculative access requires an epoch")
        self.mshr.retire_completed(cycle)
        trace = self._trace_full

        line1 = self.l1.lookup(addr, cycle)
        if line1 is not None:
            if is_write:
                line1.write(cycle)
            if trace is not None:
                trace.emit(cycle, "cache.hit", (self.l1.line_addr_of(addr), "L1"))
            return AccessResult(
                addr=addr,
                latency=self.latency.l1_hit,
                level="L1",
                is_write=is_write,
                speculative=speculative,
            )

        line_addr = self.l1.line_addr_of(addr)
        line2 = self.l2.lookup(addr, cycle)
        installed: List[str] = []
        if line2 is not None:
            latency = self.latency.l2_total
            level = "L2"
            if trace is not None:
                trace.emit(cycle, "cache.hit", (self.l2.line_addr_of(addr), "L2"))
        else:
            latency = self.latency.memory_total
            level = "MEM"
            if trace is not None:
                trace.emit(cycle, "cache.miss", (self.l2.line_addr_of(addr), "MEM"))
            self.dram.read_word(self.l2.line_addr_of(addr))
            ev2 = self._install_l2(addr, cycle, speculative, epoch, thread)
            installed.append("L2")
            del ev2  # L2 evictions recorded inside _install_l2

        l1_victim = self._install_l1(addr, cycle, is_write, speculative, epoch, thread)
        installed.insert(0, "L1")

        if self.mshr.can_allocate(line_addr):
            self.mshr.allocate(
                line_addr,
                issue_cycle=cycle,
                complete_cycle=cycle + latency,
                speculative=speculative,
                victim_line=l1_victim.line_addr if l1_victim else None,
                victim_dirty=l1_victim.dirty if l1_victim else False,
            )
        else:
            # MSHR file full: the miss queues behind an existing entry.
            self.mshr.stats.stall_events += 1
            latency += self.latency.mshr_full_penalty

        if is_write:
            resident = self.l1.get_line(addr)
            if resident is not None:
                resident.write(cycle)

        return AccessResult(
            addr=addr,
            latency=latency,
            level=level,
            is_write=is_write,
            speculative=speculative,
            installed=tuple(installed),
            l1_victim=l1_victim.line_addr if l1_victim else None,
        )

    def probe_latency(self, addr: int) -> "tuple[int, str]":
        """Latency and serving level an access *would* see, without side
        effects. The core uses this to decide whether a wrong-path load's
        fill lands before the squash (install + rollback) or is cancelled in
        the MSHR (T3) without ever installing."""
        if self.l1.contains(addr):
            return self.latency.l1_hit, "L1"
        if self.l2.contains(addr):
            return self.latency.l2_total, "L2"
        return self.latency.memory_total, "MEM"

    def predict_latency(self, addr: int, cycle: int) -> "tuple[int, str]":
        """Latency and level :meth:`access` *would* charge at ``cycle``,
        side-effect-free — :meth:`probe_latency` plus the MSHR-full penalty
        a miss would pay when the file has no free slot (and no entry to
        merge into) once fills completed by ``cycle`` retire. The core's
        wrong path uses this so its in-flight-vs-landed decision agrees
        with the cost the subsequent access is actually charged."""
        if self.l1.contains(addr):
            return self.latency.l1_hit, "L1"
        if self.l2.contains(addr):
            latency, level = self.latency.l2_total, "L2"
        else:
            latency, level = self.latency.memory_total, "MEM"
        if not self.mshr.can_allocate_at(self.l1.line_addr_of(addr), cycle):
            latency += self.latency.mshr_full_penalty
        return latency, level

    def _install_l1(
        self,
        addr: int,
        cycle: int,
        is_write: bool,
        speculative: bool,
        epoch: Optional[int],
        thread: int,
    ) -> Optional[Eviction]:
        line, eviction = self.l1.install(
            addr,
            cycle,
            dirty=is_write,
            speculative=speculative,
            epoch=epoch,
            thread=thread,
        )
        if self.obs is not None:
            self._emit_install("L1", addr, cycle, speculative, epoch, eviction)
        wb_eviction: Optional[Eviction] = None
        if eviction is not None and eviction.dirty:
            # Writeback into L2 (data already in DRAM functional store). The
            # victim itself is *architectural* data, so its L2 copy is
            # installed non-speculatively even when the displacing install
            # was transient — CleanupSpec deliberately leaves it there on
            # rollback (restoration re-fetches L1 victims *from* L2).
            _, wb_eviction = self.l2.install(
                eviction.line_addr, cycle, dirty=True, thread=thread
            )
        if speculative and epoch is not None:
            set_index = self.l1.set_index_of(addr)
            way = self.l1.way_of(addr)
            self.tracker.record_install(
                epoch, "L1", self.l1.line_addr_of(addr), set_index, way if way is not None else -1
            )
            if eviction is not None:
                self.tracker.record_eviction(
                    epoch,
                    "L1",
                    eviction.line_addr,
                    eviction.dirty,
                    eviction.set_index,
                    eviction.way,
                    was_speculative=eviction.was_speculative,
                )
            if wb_eviction is not None:
                # The writeback displaced an L2 line. That eviction is a
                # side effect of transient execution and must be visible in
                # the epoch's delta (the security argument counts every
                # speculative footprint), even though — like direct L2
                # evictions — it is not rolled back: only L1 victims are
                # restorable, and the written-back line stays in L2 as
                # architectural state.
                self.tracker.record_eviction(
                    epoch,
                    "L2",
                    wb_eviction.line_addr,
                    wb_eviction.dirty,
                    wb_eviction.set_index,
                    wb_eviction.way,
                    was_speculative=wb_eviction.was_speculative,
                )
        return eviction

    def _install_l2(
        self,
        addr: int,
        cycle: int,
        speculative: bool,
        epoch: Optional[int],
        thread: int,
    ) -> Optional[Eviction]:
        line, eviction = self.l2.install(
            addr, cycle, dirty=False, speculative=speculative, epoch=epoch, thread=thread
        )
        if self.obs is not None:
            self._emit_install("L2", addr, cycle, speculative, epoch, eviction)
        if eviction is not None:
            # L2 victims leave the hierarchy entirely; the inclusive-ish
            # model also drops any L1 copy of the victim.
            self.l1.invalidate(eviction.line_addr)
            if eviction.dirty:
                self.dram.writeback_line(eviction.line_addr)
        if speculative and epoch is not None:
            set_index = self.l2.set_index_of(addr)
            way = self.l2.way_of(addr)
            self.tracker.record_install(
                epoch, "L2", self.l2.line_addr_of(addr), set_index, way if way is not None else -1
            )
            if eviction is not None:
                self.tracker.record_eviction(
                    epoch,
                    "L2",
                    eviction.line_addr,
                    eviction.dirty,
                    eviction.set_index,
                    eviction.way,
                    was_speculative=eviction.was_speculative,
                )
        return eviction

    def _emit_install(
        self,
        level: str,
        addr: int,
        cycle: int,
        speculative: bool,
        epoch: Optional[int],
        eviction: Optional[Eviction],
    ) -> None:
        """Trace one install (and its eviction, if any) at ``level``."""
        trace = self.obs.trace
        cache = self.l1 if level == "L1" else self.l2
        trace.emit(
            cycle,
            "cache.install",
            (
                cache.line_addr_of(addr),
                level,
                speculative,
                epoch,
                eviction.line_addr if eviction is not None else None,
            ),
        )
        if eviction is not None:
            trace.emit(
                cycle,
                "cache.evict",
                (eviction.line_addr, level, eviction.dirty, eviction.was_speculative),
            )

    # ------------------------------------------------------------------
    # flush (clflush)
    # ------------------------------------------------------------------

    def flush_line(self, addr: int) -> bool:
        """Evict ``addr``'s line hierarchy-wide; True if it was resident."""
        present = False
        l1_line = self.l1.flush(addr)
        if l1_line is not None:
            present = True
            if l1_line.dirty:
                self.dram.writeback_line(self.l1.line_addr_of(addr))
        l2_line = self.l2.flush(addr)
        if l2_line is not None:
            present = True
            if l2_line.dirty:
                self.dram.writeback_line(self.l2.line_addr_of(addr))
        return present

    # ------------------------------------------------------------------
    # speculation epochs
    # ------------------------------------------------------------------

    def open_epoch(self) -> int:
        return self.tracker.open_epoch()

    def commit_epoch(self, epoch: int) -> EpochDelta:
        """Window resolved correct: clear speculative marks, keep state."""
        delta = self.tracker.close_epoch(epoch)
        self.l1.commit_epoch(epoch)
        self.l2.commit_epoch(epoch)
        self.l1_guard.resolve_window(self._l1_lines_by_addr(), cycle=0)
        return delta

    def squash_epoch_delta(self, epoch: int) -> EpochDelta:
        """Window mis-speculated: hand the delta to the defense.

        The defense decides what (if anything) to roll back; state mutation
        happens through :meth:`rollback_invalidate` / :meth:`rollback_restore`.
        """
        return self.tracker.close_epoch(epoch)

    # ------------------------------------------------------------------
    # rollback primitives (used by the Undo defense)
    # ------------------------------------------------------------------

    def rollback_invalidate(self, level: str, line_addr: int) -> bool:
        """Invalidate one transiently installed line at ``level``.

        Returns True if a (still speculative) line was actually removed —
        a transient line may already have been displaced by later traffic.
        """
        cache = self.l1 if level == "L1" else self.l2
        resident = cache.get_line(line_addr)
        if resident is None or not resident.speculative:
            return False
        cache.invalidate(line_addr)
        return True

    def rollback_restore(self, eviction: SpecEviction) -> bool:
        """Restore one L1 victim evicted by a transient install.

        The line is re-fetched from L2 (CleanupSpec services restorations
        from L2) and re-installed into the way the transient line vacated.
        Returns True if a restore actually happened.
        """
        if eviction.level != "L1":
            raise ConfigError("only L1 evictions are restorable")
        if eviction.was_speculative:
            return False
        if self.l1.contains(eviction.line_addr):
            return False  # already back (e.g. re-demanded meanwhile)
        # Ensure L2 has the line to serve the restore from.
        if not self.l2.contains(eviction.line_addr):
            self.l2.install(eviction.line_addr, cycle=0, dirty=eviction.dirty)
        self.l1.install(
            eviction.line_addr,
            cycle=0,
            dirty=eviction.dirty,
            preferred_way=eviction.way,
        )
        self.l1.stats.restorations += 1
        if self.obs is not None:
            self.obs.trace.emit(
                0, "cache.restore", (eviction.line_addr, eviction.way)
            )
        return True

    # ------------------------------------------------------------------
    # cross-agent probing (coherence-facing strategies)
    # ------------------------------------------------------------------

    def probe_as_other_agent(self, addr: int) -> int:
        """Latency another thread/core observes probing ``addr`` in L1.

        Served through the :class:`CoherenceGuard`: hits on speculative
        lines are dummy misses.
        """
        return self.l1_guard.probe_latency(self.l1.get_line(addr))

    def request_downgrade(self, addr: int, cycle: int, window_open: bool) -> bool:
        return self.l1_guard.request_downgrade(
            self.l1.get_line(addr), cycle, window_open
        )

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    def _l1_lines_by_addr(self) -> dict:
        return {line.line_addr: line for line in self.l1.resident_lines()}

    def in_l1(self, addr: int) -> bool:
        return self.l1.contains(addr)

    def in_l2(self, addr: int) -> bool:
        return self.l2.contains(addr)

    def warm(self, addrs, cycle: int = 0) -> None:
        """Bring each address in ``addrs`` into the hierarchy (test helper)."""
        for addr in addrs:
            self.access(addr, cycle)
