"""CEASER-style randomized index mapping.

CleanupSpec does not restore evictions below L1; instead the lower-level
caches use an encrypted-address (CEASER-like) mapping so that an attacker
cannot tell which architectural addresses are congruent. We model the
essential property — a keyed pseudorandom permutation of line addresses
applied before set indexing — with a small Feistel network over the line
address bits (a real CEASER uses a low-latency block cipher; any keyed PRP
gives the same security-relevant behaviour at this abstraction level).

Remapping (CEASER's periodic key change) is supported via :meth:`rekey`,
which changes the permutation; the cache using the mapper is responsible for
flushing itself on rekey (our model rekeys only between experiments).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass


def _feistel_round(value: int, key: int, round_index: int, half_bits: int) -> int:
    """One Feistel round over ``2*half_bits`` bits of ``value``."""
    mask = (1 << half_bits) - 1
    left = (value >> half_bits) & mask
    right = value & mask
    digest = hashlib.blake2b(
        right.to_bytes(8, "little") + key.to_bytes(8, "little") + bytes([round_index]),
        digest_size=8,
    ).digest()
    f = int.from_bytes(digest, "little") & mask
    return ((right << half_bits) | (left ^ f)) & ((1 << (2 * half_bits)) - 1)


@dataclass
class RandomizedIndexing:
    """Keyed pseudorandom permutation of line-address bits.

    ``bits`` is the width of the permuted domain (line-address bits that
    participate in indexing; 32 covers a 256 GB physical space at 64 B
    lines). The permutation is bijective, so distinct lines never collide in
    the encrypted domain.
    """

    key: int
    bits: int = 32
    rounds: int = 4

    def __post_init__(self) -> None:
        if self.bits < 2 or self.bits % 2 != 0:
            raise ValueError("bits must be an even number >= 2")
        if self.rounds < 2:
            raise ValueError("need at least 2 Feistel rounds")

    def permute(self, line_number: int) -> int:
        """Map a line number into the encrypted domain."""
        if not 0 <= line_number < (1 << self.bits):
            raise ValueError(f"line number {line_number:#x} exceeds {self.bits} bits")
        value = line_number
        half = self.bits // 2
        for r in range(self.rounds):
            value = _feistel_round(value, self.key, r, half)
        return value

    def unpermute(self, encrypted: int) -> int:
        """Inverse permutation (tests verify bijectivity)."""
        if not 0 <= encrypted < (1 << self.bits):
            raise ValueError(f"value {encrypted:#x} exceeds {self.bits} bits")
        mask = (1 << (self.bits // 2)) - 1
        half = self.bits // 2
        value = encrypted
        for r in reversed(range(self.rounds)):
            # undo one round: value = (right' << h) | left'; right = right',
            # left = left' ^ F(right)
            right = (value >> half) & mask
            left_x = value & mask
            digest = hashlib.blake2b(
                right.to_bytes(8, "little")
                + self.key.to_bytes(8, "little")
                + bytes([r]),
                digest_size=8,
            ).digest()
            f = int.from_bytes(digest, "little") & mask
            left = left_x ^ f
            value = ((left << half) | right) & ((1 << self.bits) - 1)
        return value

    def rekey(self, new_key: int) -> "RandomizedIndexing":
        """Return a mapper with a fresh key (CEASER remap epoch)."""
        return RandomizedIndexing(key=new_key, bits=self.bits, rounds=self.rounds)
