"""Extension — SpectreRewind: the divider-contention covert channel.

Undo- and shadow-based defenses police *cache state*: CleanupSpec restores
evicted lines, SafeSpec keeps speculative fills in shadow structures. The
SpectreRewind observation (Fustos & Yun; carried into the interference
literature) is that the functional units are a transmitter those defenses
never touch: the divider is non-pipelined, so transient divisions that
*issue* before the squash occupy it past the squash, and a committed
division right after the mis-predicted branch queues behind them. The
receiver's ``rdtscp``-bracketed latency over that committed division is
secret-dependent with **zero cache involvement** — no flush, no reload,
no footprint.

One shard per registered defense: each runs the
:class:`~repro.attack.rewind.RewindAttack` round loop (the
:class:`~repro.attack.gadgets.RewindGadget` sender) for both secrets and
records the committed-division latency plus the squash stall. The merged
table shows the paper-shaped story:

* under **CleanupSpec** (the unXpec target) and **SafeSpec** the cache
  channels are closed but the divider delta survives untouched;
* **CacheSquash**'s quantized squash stall and **constant-time** rollback
  happen to cover the divider tail — the contention delta collapses, by
  accident of their fixed post-squash delay, not by design;
* the squash stall itself stays secret-independent wherever the defense
  claims the rollback channel closed (the gadget transmits *only*
  through the divider).

Shards run under whatever backend the campaign selected: the round loop
is memoization-friendly, so this experiment is the batched backend's
coverage of the FU-occupancy model. Only replay-stable observables
(latencies, stalls) are reported — FU diagnostic counters live on the
scalar core and are excluded to keep output byte-identical across
backends.
"""

from __future__ import annotations

from statistics import mean
from typing import Dict, List, Sequence

from ..attack.rewind import RewindAttack
from ..defense.base import defense_keys, make_defense
from .base import ExperimentResult, Shard, ShardableExperiment
from .registry import register


@register
class ExtRewind(ShardableExperiment):
    id = "ext_rewind"
    title = "SpectreRewind divider contention vs cache defenses (extension)"
    paper_claim = (
        "Transient divisions occupy the non-pipelined divider past the "
        "squash; a committed division's latency leaks the secret with no "
        "cache involvement, under CleanupSpec and SafeSpec alike"
    )

    #: Defenses whose fixed post-squash delay covers the divider tail —
    #: the contention delta collapses there (see module docstring).
    COVERED = ("cachesquash", "constant_time")

    def _rounds(self, quick: bool) -> int:
        return 3 if quick else 6

    def shard_plan(self, quick: bool = False, seed: int = 0) -> List[Shard]:
        keys = defense_keys()
        return [
            Shard(
                index=i,
                count=len(keys),
                tag=f"defense:{key}",
                params={"defense": key},
            )
            for i, key in enumerate(keys)
        ]

    def run_shard(self, shard: Shard, quick: bool = False, seed: int = 0) -> object:
        defense_key = shard.params["defense"]
        attack = RewindAttack(
            defense_factory=lambda h: make_defense(defense_key, h),
            seed=seed,
        )
        attack.prepare()
        rounds = self._rounds(quick)
        rows = []
        for bit in (0, 1):
            for sample in attack.sample_many(bit, rounds):
                # Replay-stable observables only: latency and stall are
                # architecturally visible and identical across backends;
                # the scalar core's FU diagnostic counters are not.
                rows.append([sample.secret, sample.latency, sample.stall])
        return {"defense": defense_key, "rows": rows}

    def merge_shards(
        self, partials: Sequence[object], quick: bool = False, seed: int = 0
    ) -> ExperimentResult:
        result = self.new_result()
        tbl = result.table(
            "divider_channel",
            ["defense", "lat s=0", "lat s=1", "delta", "stall s=0", "stall s=1"],
        )
        deltas: Dict[str, float] = {}
        stall_dependent: Dict[str, bool] = {}
        for partial in partials:
            key = partial["defense"]
            lat = {0: [], 1: []}
            stall = {0: [], 1: []}
            for secret, latency, stall_cycles in partial["rows"]:
                lat[secret].append(latency)
                stall[secret].append(stall_cycles)
            delta = mean(lat[0]) - mean(lat[1])
            deltas[key] = delta
            stall_dependent[key] = mean(stall[0]) != mean(stall[1])
            tbl.add(
                key,
                round(mean(lat[0]), 1),
                round(mean(lat[1]), 1),
                round(delta, 1),
                round(mean(stall[0]), 1),
                round(mean(stall[1]), 1),
            )

        for key in sorted(deltas):
            result.metric(f"divider_delta_{key}", deltas[key])

        result.check(
            "divider_leaks_under_cleanupspec",
            abs(deltas["cleanupspec"]) >= 10,
            f"committed-division delta {deltas['cleanupspec']:.1f} cycles "
            "under CleanupSpec: undoing cache state leaves the divider "
            "occupied",
        )
        result.check(
            "divider_leaks_under_safespec",
            abs(deltas["safespec"]) >= 10,
            f"delta {deltas['safespec']:.1f} cycles under SafeSpec: shadow "
            "fills never touch the functional units either",
        )
        result.check(
            "fixed_delay_covers_divider_tail",
            all(deltas[key] == 0 for key in self.COVERED),
            "cachesquash/constant-time post-squash delays exceed the "
            "divider tail, collapsing the delta (by accident, not design)",
        )
        result.check(
            "no_cache_side_effects",
            not any(
                stall_dependent[key]
                for key in deltas
                if key in ("safespec", "cachesquash", "delay_on_miss")
            ),
            "the squash stall stays secret-independent under the shadow/"
            "cancel/invisible families — the gadget transmits only through "
            "the divider",
        )
        return result
