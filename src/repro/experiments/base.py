"""Experiment framework: structured results with paper-vs-measured checks.

Every table/figure of the paper's evaluation is one :class:`Experiment`.
Running one yields an :class:`ExperimentResult` holding named tables (the
rows/series the paper's figure plots), scalar metrics, and a list of
:class:`Check` records comparing the measurement against the paper's
claim — *shape* checks (orderings, bands, monotonicity), not exact cycle
equality, per the reproduction contract in DESIGN.md §5.
"""

from __future__ import annotations

import abc
import json
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from ..common.tables import render_kv, render_table


@dataclass(frozen=True)
class Check:
    """One paper-vs-measured assertion."""

    name: str
    passed: bool
    detail: str

    def __str__(self) -> str:
        mark = "PASS" if self.passed else "FAIL"
        return f"[{mark}] {self.name}: {self.detail}"


@dataclass
class ResultTable:
    """One named table of an experiment result."""

    headers: Sequence[str]
    rows: List[Sequence[object]] = field(default_factory=list)

    def add(self, *cells: object) -> None:
        self.rows.append(list(cells))


@dataclass
class ExperimentResult:
    """Everything an experiment produces."""

    experiment_id: str
    title: str
    paper_claim: str
    tables: Dict[str, ResultTable] = field(default_factory=dict)
    metrics: Dict[str, float] = field(default_factory=dict)
    checks: List[Check] = field(default_factory=list)

    def table(self, name: str, headers: Sequence[str]) -> ResultTable:
        tbl = ResultTable(headers=list(headers))
        self.tables[name] = tbl
        return tbl

    def metric(self, name: str, value: float) -> None:
        self.metrics[name] = float(value)

    def check(self, name: str, passed: bool, detail: str) -> None:
        self.checks.append(Check(name=name, passed=bool(passed), detail=detail))

    def check_band(self, name: str, value: float, lo: float, hi: float, paper: str) -> None:
        """Common case: measured value must land in [lo, hi] around the paper's."""
        self.check(
            name,
            lo <= value <= hi,
            f"measured {value:.2f}, expected in [{lo:g}, {hi:g}] (paper: {paper})",
        )

    @property
    def all_passed(self) -> bool:
        return all(c.passed for c in self.checks)

    # -- rendering ------------------------------------------------------------

    def render(self) -> str:
        parts = [
            f"== {self.experiment_id}: {self.title} ==",
            f"paper claim: {self.paper_claim}",
            "",
        ]
        for name, tbl in self.tables.items():
            parts.append(render_table(tbl.headers, tbl.rows, title=name))
            parts.append("")
        if self.metrics:
            parts.append(render_kv(sorted(self.metrics.items()), title="metrics"))
            parts.append("")
        for c in self.checks:
            parts.append(str(c))
        return "\n".join(parts)

    def to_json(self) -> dict:
        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "paper_claim": self.paper_claim,
            "tables": {
                name: {"headers": list(t.headers), "rows": [list(r) for r in t.rows]}
                for name, t in self.tables.items()
            },
            "metrics": self.metrics,
            "checks": [
                {"name": c.name, "passed": c.passed, "detail": c.detail}
                for c in self.checks
            ],
            "all_passed": self.all_passed,
        }

    @classmethod
    def from_json(cls, data: dict) -> "ExperimentResult":
        """Rebuild a result from :meth:`to_json` output (cache hydration)."""
        result = cls(
            experiment_id=data["experiment_id"],
            title=data["title"],
            paper_claim=data["paper_claim"],
        )
        for name, tbl in data.get("tables", {}).items():
            result.tables[name] = ResultTable(
                headers=list(tbl["headers"]), rows=[list(r) for r in tbl["rows"]]
            )
        for name, value in data.get("metrics", {}).items():
            result.metrics[name] = float(value)
        for c in data.get("checks", []):
            result.checks.append(
                Check(name=c["name"], passed=bool(c["passed"]), detail=c["detail"])
            )
        return result

    def dump_json(self, path: str) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_json(), fh, indent=2, default=str)

    def dump_csv(self, directory: str) -> List[str]:
        """Write each table as ``<id>_<table>.csv``; return written paths.

        CSVs are the plotting-friendly export: one file per figure series.
        """
        import csv
        import os

        written = []
        os.makedirs(directory, exist_ok=True)
        for name, tbl in self.tables.items():
            path = os.path.join(directory, f"{self.experiment_id}_{name}.csv")
            with open(path, "w", newline="") as fh:
                writer = csv.writer(fh)
                writer.writerow(tbl.headers)
                writer.writerows(tbl.rows)
            written.append(path)
        return written


class Experiment(abc.ABC):
    """One reproducible table/figure."""

    #: Short id used on the command line and in DESIGN.md ("fig3", …).
    id: str = ""
    title: str = ""
    #: One-line statement of what the paper reports.
    paper_claim: str = ""

    @abc.abstractmethod
    def run(self, quick: bool = False, seed: int = 0) -> ExperimentResult:
        """Execute the experiment. ``quick`` trades sample count for time."""

    def new_result(self) -> ExperimentResult:
        return ExperimentResult(
            experiment_id=self.id, title=self.title, paper_claim=self.paper_claim
        )


@dataclass(frozen=True)
class Shard:
    """One independently-runnable slice of an experiment's trial grid.

    A shard is a pure *description* — a picklable parameter record the
    campaign runner can ship to a worker process.  ``params`` carries the
    experiment-specific slice (a load count, a bit range, …).
    """

    index: int
    count: int
    tag: str
    params: Dict[str, object] = field(default_factory=dict)


class ShardableExperiment(Experiment):
    """Experiment whose trials split into independent, mergeable shards.

    The determinism contract (docs/campaign.md): :meth:`shard_plan` may
    depend only on ``(quick, seed)`` — never on worker count — and
    :meth:`merge_shards` receives partials in shard-index order.  Together
    these make the campaign runner's output bit-identical for any
    ``--jobs`` value, including the in-process ``--jobs 1`` path, because
    the same shard bodies run with the same RNG substreams and merge in
    the same order.
    """

    @abc.abstractmethod
    def shard_plan(self, quick: bool = False, seed: int = 0) -> List[Shard]:
        """The fixed decomposition of this run's trials into shards."""

    @abc.abstractmethod
    def run_shard(self, shard: Shard, quick: bool = False, seed: int = 0) -> object:
        """Execute one shard; the return value must be picklable."""

    @abc.abstractmethod
    def merge_shards(
        self, partials: Sequence[object], quick: bool = False, seed: int = 0
    ) -> ExperimentResult:
        """Fold shard partials (in shard-index order) into the result."""

    def run(self, quick: bool = False, seed: int = 0) -> ExperimentResult:
        """Serial reference path: run every shard in order, then merge."""
        shards = self.shard_plan(quick=quick, seed=seed)
        partials = [self.run_shard(s, quick=quick, seed=seed) for s in shards]
        return self.merge_shards(partials, quick=quick, seed=seed)
