"""Extension C — Invisible vs Undo, quantified (paper §I/§II background).

The paper motivates attacking Undo defenses by the cost asymmetry:
Invisible schemes (InvisiSpec, delay-on-miss) complicate the *common case*
and cost 11-17%, while CleanupSpec's Undo costs ~5% by only paying on rare
mis-speculations. unXpec then shows Undo buys its efficiency with a timing
channel. This experiment puts all three claims in one table, on the same
machine and workloads:

========================  =========  ============  ==============
defense                    Spectre    unXpec diff   workload cost
========================  =========  ============  ==============
UnsafeBaseline             leaks      0 cycles      0% (baseline)
DelayOnMiss (Invisible)    blocked    0 cycles      high
CleanupSpec (Undo)         blocked    22 cycles     low
========================  =========  ============  ==============
"""

from __future__ import annotations

from ..attack.spectre import SpectreV1Attack
from ..attack.unxpec import UnxpecAttack
from ..cache.hierarchy import CacheHierarchy
from ..cpu.core import Core
from ..defense.cleanupspec import CleanupSpec
from ..defense.delay_on_miss import DelayOnMiss
from ..defense.unsafe import UnsafeBaseline
from ..workloads.profiles import SPEC2017_PROFILES
from ..workloads.synth import synthesize
from .base import Experiment, ExperimentResult
from .registry import register

SCHEMES = (
    ("UnsafeBaseline", lambda h: UnsafeBaseline(h)),
    ("DelayOnMiss", lambda h: DelayOnMiss(h)),
    ("CleanupSpec", lambda h: CleanupSpec(h)),
)


@register
class ExtInvisibleVsUndo(Experiment):
    id = "ext_invisible"
    title = "Invisible vs Undo: security and cost on one machine (extension)"
    paper_claim = (
        "Invisible schemes block transient footprints at 11-17% slowdown; "
        "Undo blocks them at ~5% but opens the rollback timing channel"
    )

    def run(self, quick: bool = False, seed: int = 0) -> ExperimentResult:
        profiles = SPEC2017_PROFILES[:4] if quick else SPEC2017_PROFILES[:8]
        instructions = 3000 if quick else 8000
        result = self.new_result()
        tbl = result.table(
            "three_way",
            ["defense", "Spectre leaks", "unXpec diff (cycles)", "avg overhead %"],
        )

        metrics = {}
        for name, factory in SCHEMES:
            spectre = SpectreV1Attack(defense_factory=factory, alphabet=8, seed=seed)
            leaks = spectre.run(5).success

            unxpec = UnxpecAttack(defense_factory=factory, seed=seed)
            unxpec.prepare()
            diff = unxpec.sample(1).latency - unxpec.sample(0).latency

            overhead = 0.0
            if name != "UnsafeBaseline":
                for profile in profiles:
                    workload = synthesize(profile, instructions=instructions, seed=seed + 1)

                    def run_with(make):
                        h = CacheHierarchy(seed=seed + 1)
                        return Core(h, make(h)).run(
                            workload.program, max_instructions=20_000_000
                        )

                    base = run_with(lambda h: UnsafeBaseline(h))
                    prot = run_with(factory)
                    overhead += prot.cycles / base.cycles - 1.0
                overhead /= len(profiles)

            metrics[name] = (leaks, diff, overhead)
            tbl.add(name, leaks, diff, round(100 * overhead, 1))

        result.metric("unxpec_diff_cleanupspec", metrics["CleanupSpec"][1])
        result.metric("unxpec_diff_delay_on_miss", metrics["DelayOnMiss"][1])
        result.metric("overhead_delay_on_miss_pct", 100 * metrics["DelayOnMiss"][2])
        result.metric("overhead_cleanupspec_pct", 100 * metrics["CleanupSpec"][2])

        result.check(
            "spectre_only_on_unsafe",
            metrics["UnsafeBaseline"][0]
            and not metrics["DelayOnMiss"][0]
            and not metrics["CleanupSpec"][0],
            "the transient footprint leaks only without a defense",
        )
        result.check(
            "unxpec_only_on_undo",
            metrics["CleanupSpec"][1] >= 18
            and metrics["DelayOnMiss"][1] == 0
            and metrics["UnsafeBaseline"][1] == 0,
            "the rollback timing channel exists only under the Undo scheme",
        )
        result.check(
            "undo_is_cheaper",
            metrics["CleanupSpec"][2] < metrics["DelayOnMiss"][2] * 0.6,
            f"CleanupSpec costs {100 * metrics['CleanupSpec'][2]:.1f}% vs "
            f"{100 * metrics['DelayOnMiss'][2]:.1f}% for delay-on-miss — the "
            "efficiency that motivated Undo designs (paper: ~5% vs 11-17%)",
        )
        return result
