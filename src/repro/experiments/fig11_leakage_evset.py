"""Figure 11 — leaking the 1,000-bit secret with eviction sets.

The enlarged timing difference makes decoding less susceptible to noise.
Paper: 916/1,000 bits correct (91.6%), vs 86.7% without eviction sets.
"""

from __future__ import annotations

from .base import Experiment, ExperimentResult
from .fig10_leakage import fill_leakage_result, run_leakage_campaign
from .registry import register


@register
class Fig11LeakageEvset(Experiment):
    id = "fig11"
    title = "Secret leakage with eviction sets (Figure 11)"
    paper_claim = "916/1000 bits decoded correctly (91.6%) at one sample per bit"

    def run(self, quick: bool = False, seed: int = 0) -> ExperimentResult:
        bits = 200 if quick else 1000
        result = self.new_result()
        with_ev = run_leakage_campaign(True, seed, bits)
        fill_leakage_result(result, with_ev, 0.85, 0.97, "91.6%")

        plain = run_leakage_campaign(False, seed, max(100, bits // 2))
        result.metric("accuracy_no_evsets", plain.accuracy)
        result.check(
            "better_than_fig10",
            with_ev.accuracy > plain.accuracy,
            f"eviction sets raise accuracy: {with_ev.accuracy:.1%} vs "
            f"{plain.accuracy:.1%} (paper: 91.6% vs 86.7%)",
        )
        return result
