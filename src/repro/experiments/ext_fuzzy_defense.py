"""Extension B — the paper's future-work fuzzy (dummy-delay) cleanup.

Paper §VII proposes injecting random dummy cleanup delays instead of a
worst-case constant stall. We quantify the trade-off: unXpec decode
accuracy versus the defense's average cost per squash, across dummy
amplitudes, and compare against the relaxed constant-time scheme at an
amplitude that suppresses the attack comparably.
"""

from __future__ import annotations

from ..attack.calibration import calibrate
from ..attack.channel import ThresholdDecoder
from ..attack.secrets import random_bits
from ..attack.unxpec import UnxpecAttack
from ..cache.hierarchy import CacheHierarchy
from ..cpu.core import Core
from ..cpu.noise import campaign_noise
from ..defense.constant_time import ConstantTimeRollback
from ..defense.fuzzy import FuzzyCleanup
from ..defense.unsafe import UnsafeBaseline
from ..workloads.profiles import SPEC2017_PROFILES
from ..workloads.synth import synthesize
from .base import Experiment, ExperimentResult
from .registry import register

AMPLITUDES = (0, 16, 32, 64, 96)


def _attack_accuracy(amplitude: int, bits: int, seed: int) -> float:
    """unXpec single-sample accuracy against FuzzyCleanup(amplitude)."""
    attack = UnxpecAttack(
        defense_factory=lambda h: FuzzyCleanup(h, amplitude, seed=seed),
        noise=campaign_noise(),
        seed=seed,
    )
    cal = calibrate(attack, rounds_per_class=max(60, bits // 3))
    decoder = ThresholdDecoder(cal.threshold)
    secret = random_bits(bits, seed=seed, tag="ext-fuzzy")
    correct = 0
    for bit in secret:
        guess = decoder.decode(attack.sample(bit).latency)
        correct += int(guess == bit)
    return correct / bits


def _workload_overhead(defense_factory, seed: int, instructions: int) -> float:
    """Average slowdown vs unsafe over three representative profiles."""
    total = 0.0
    profiles = [SPEC2017_PROFILES[i] for i in (1, 2, 6)]  # gcc, mcf, deepsjeng
    for profile in profiles:
        workload = synthesize(profile, instructions=instructions, seed=seed)

        def run(factory):
            h = CacheHierarchy(seed=seed)
            return Core(h, factory(h)).run(workload.program, max_instructions=20_000_000)

        base = run(lambda h: UnsafeBaseline(h))
        prot = run(defense_factory)
        total += prot.cycles / base.cycles - 1.0
    return total / len(profiles)


@register
class ExtFuzzyDefense(Experiment):
    id = "ext_fuzzy"
    title = "Fuzzy (dummy-delay) cleanup trade-off (extension)"
    paper_claim = (
        "random dummy cleanup delays should mitigate unXpec at lower cost "
        "than enforcing the longest (constant) rollback time (paper SVII)"
    )

    def run(self, quick: bool = False, seed: int = 0) -> ExperimentResult:
        bits = 80 if quick else 300
        instructions = 2500 if quick else 8000
        result = self.new_result()
        tbl = result.table(
            "fuzzy_tradeoff",
            ["dummy amplitude (cycles)", "unXpec accuracy", "avg workload overhead %"],
        )

        accuracies = {}
        for amplitude in AMPLITUDES:
            acc = _attack_accuracy(amplitude, bits, seed)
            overhead = _workload_overhead(
                lambda h: FuzzyCleanup(h, amplitude, seed=seed), seed, instructions
            )
            accuracies[amplitude] = (acc, overhead)
            tbl.add(amplitude, round(acc, 3), round(100 * overhead, 1))

        const_overhead = _workload_overhead(
            lambda h: ConstantTimeRollback(h, 65), seed, instructions
        )
        result.metric("const65_overhead_pct", 100 * const_overhead)
        result.metric("accuracy_no_dummy", accuracies[0][0])
        best_amp = max(AMPLITUDES)
        result.metric("accuracy_max_dummy", accuracies[best_amp][0])
        result.metric("overhead_max_dummy_pct", 100 * accuracies[best_amp][1])

        result.check(
            "dummy_degrades_attack",
            accuracies[best_amp][0] <= accuracies[0][0] - 0.15,
            f"accuracy falls from {accuracies[0][0]:.1%} (no dummies) to "
            f"{accuracies[best_amp][0]:.1%} at amplitude {best_amp}",
        )
        result.check(
            "near_coin_flip",
            accuracies[best_amp][0] <= 0.70,
            f"at amplitude {best_amp} decoding approaches guessing "
            f"({accuracies[best_amp][0]:.1%})",
        )
        result.check(
            "cheaper_than_constant_time",
            accuracies[best_amp][1] < const_overhead,
            f"fuzzy@{best_amp} costs {100*accuracies[best_amp][1]:.1f}% vs "
            f"{100*const_overhead:.1f}% for 65-cycle constant-time rollback",
        )
        return result
