"""Aggregate report writer: every experiment, one markdown document.

``python -m repro.experiments report [--quick] [--out PATH]`` runs the
entire registry and writes a single markdown file with a summary
check-matrix followed by each experiment's full tables — the file a
reviewer would diff against the paper.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence

from . import registry
from .base import ExperimentResult


def run_all(
    quick: bool = False,
    seed: int = 0,
    ids: Optional[Sequence[str]] = None,
) -> List[ExperimentResult]:
    """Run the requested experiments (default: all) and return results."""
    results = []
    for exp_id in ids or registry.all_ids():
        results.append(registry.get(exp_id).run(quick=quick, seed=seed))
    return results


def render_markdown(results: Sequence[ExperimentResult], elapsed: float = 0.0) -> str:
    """Render a combined markdown report."""
    total = sum(len(r.checks) for r in results)
    passed = sum(1 for r in results for c in r.checks if c.passed)
    lines = [
        "# unXpec reproduction report",
        "",
        f"{len(results)} experiments, {passed}/{total} paper-vs-measured checks passed"
        + (f" ({elapsed:.0f}s)." if elapsed else "."),
        "",
        "| experiment | title | checks |",
        "|---|---|---|",
    ]
    for r in results:
        ok = sum(1 for c in r.checks if c.passed)
        status = "PASS" if r.all_passed else "**FAIL**"
        lines.append(
            f"| `{r.experiment_id}` | {r.title} | {ok}/{len(r.checks)} {status} |"
        )
    lines.append("")
    for r in results:
        lines.append("---")
        lines.append("")
        lines.append("```")
        lines.append(r.render())
        lines.append("```")
        lines.append("")
    return "\n".join(lines)


def write_report(
    path: str,
    quick: bool = False,
    seed: int = 0,
    ids: Optional[Sequence[str]] = None,
) -> List[ExperimentResult]:
    """Run experiments and write the markdown report to ``path``."""
    started = time.time()
    results = run_all(quick=quick, seed=seed, ids=ids)
    text = render_markdown(results, elapsed=time.time() - started)
    with open(path, "w") as fh:
        fh.write(text)
    return results
