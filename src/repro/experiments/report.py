"""Aggregate report writer: every experiment, one markdown document.

``python -m repro.experiments report [--quick] [--out PATH]`` runs the
entire registry and writes a single markdown file with a summary
check-matrix followed by each experiment's full tables — the file a
reviewer would diff against the paper. Per-experiment wall-clock is
measured with an :class:`~repro.obs.Profiler` (pass one in to share it
with a wider observability scope, e.g. the CLI's ``--stats-out``).
"""

from __future__ import annotations

import time
from typing import List, Mapping, Optional, Sequence

from ..obs import Profiler
from . import registry
from .base import ExperimentResult

#: Profiler phase prefix for one experiment run.
_PHASE_PREFIX = "experiment."


def run_all(
    quick: bool = False,
    seed: int = 0,
    ids: Optional[Sequence[str]] = None,
    profiler: Optional[Profiler] = None,
) -> List[ExperimentResult]:
    """Run the requested experiments (default: all) and return results.

    When a ``profiler`` is given, each run is timed under the phase
    ``experiment.<id>``.
    """
    results = []
    for exp_id in ids or registry.all_ids():
        exp = registry.get(exp_id)
        if profiler is not None:
            with profiler.phase(_PHASE_PREFIX + exp_id):
                results.append(exp.run(quick=quick, seed=seed))
        else:
            results.append(exp.run(quick=quick, seed=seed))
    return results


def experiment_timings(profiler: Profiler) -> Mapping[str, float]:
    """Extract ``{experiment_id: seconds}`` from a profiler's phases."""
    return {
        name[len(_PHASE_PREFIX) :]: profiler.seconds(name)
        for name in profiler.phases()
        if name.startswith(_PHASE_PREFIX)
    }


def render_markdown(
    results: Sequence[ExperimentResult],
    elapsed: float = 0.0,
    timings: Optional[Mapping[str, float]] = None,
    cache_hits: Optional[Mapping[str, bool]] = None,
    speedups: Optional[Mapping[str, float]] = None,
    failures: Optional[Mapping[str, Sequence[str]]] = None,
) -> str:
    """Render a combined markdown report.

    ``timings`` (``{experiment_id: seconds}``, parent-observed wall clock)
    adds a time column to the summary matrix; campaign runs additionally
    pass ``speedups`` (worker-seconds / parent-wall ratio) and
    ``cache_hits`` for their own columns.  ``failures`` maps experiment
    ids whose campaign execution failed to ``(error, traceback)`` pairs;
    those rows render as **FAILED** and the tracebacks land in a
    collapsible section after the summary matrix.
    """
    failures = failures or {}
    total = sum(len(r.checks) for r in results)
    passed = sum(1 for r in results for c in r.checks if c.passed)
    with_time = timings is not None
    with_speedup = speedups is not None
    with_cache = cache_hits is not None
    header = "| experiment | title | checks |"
    rule = "|---|---|---|"
    for enabled, column in (
        (with_time, " time |"),
        (with_speedup, " speedup |"),
        (with_cache, " cache |"),
    ):
        if enabled:
            header += column
            rule += "---|"
    lines = [
        "# unXpec reproduction report",
        "",
        f"{len(results)} experiments, {passed}/{total} paper-vs-measured checks passed"
        + (f" ({elapsed:.0f}s)." if elapsed else "."),
        "",
    ]
    if with_cache and cache_hits:
        hits = sum(1 for hit in cache_hits.values() if hit)
        lines.append(
            f"Campaign cache: {hits}/{len(cache_hits)} hit "
            f"({100 * hits // len(cache_hits)}%)."
        )
        lines.append("")
    lines.extend([header, rule])
    for r in results:
        ok = sum(1 for c in r.checks if c.passed)
        if r.experiment_id in failures:
            status = "**FAILED**"
        else:
            status = "PASS" if r.all_passed else "**FAIL**"
        row = f"| `{r.experiment_id}` | {r.title} | {ok}/{len(r.checks)} {status} |"
        if with_time:
            secs = timings.get(r.experiment_id)
            row += f" {secs:.1f}s |" if secs is not None else " — |"
        if with_speedup:
            cached = cache_hits is not None and cache_hits.get(r.experiment_id)
            ratio = speedups.get(r.experiment_id)
            row += f" {ratio:.1f}x |" if ratio is not None and not cached else " — |"
        if with_cache:
            hit = cache_hits.get(r.experiment_id)
            row += " hit |" if hit else (" miss |" if hit is not None else " — |")
        lines.append(row)
    lines.append("")
    if failures:
        lines.append("## Failures")
        lines.append("")
        for r in results:
            if r.experiment_id not in failures:
                continue
            error, trace = failures[r.experiment_id]
            lines.append("<details>")
            lines.append(f"<summary><code>{r.experiment_id}</code> — {error}</summary>")
            lines.append("")
            lines.append("```")
            lines.append(str(trace).rstrip())
            lines.append("```")
            lines.append("")
            lines.append("</details>")
            lines.append("")
    for r in results:
        lines.append("---")
        lines.append("")
        lines.append("```")
        lines.append(r.render())
        lines.append("```")
        lines.append("")
    return "\n".join(lines)


def write_report(
    path: str,
    quick: bool = False,
    seed: int = 0,
    ids: Optional[Sequence[str]] = None,
    profiler: Optional[Profiler] = None,
    runner=None,
) -> List[ExperimentResult]:
    """Run experiments and write the markdown report to ``path``.

    With a :class:`~repro.campaign.CampaignRunner` as ``runner``, the
    experiments execute through the campaign engine (sharded, cached) and
    the summary matrix gains speedup and cache-hit columns.  Timings are
    parent-observed wall clock either way — a campaign worker's
    process-local profiler cannot be read from here.
    """
    profiler = profiler if profiler is not None else Profiler()
    started = time.perf_counter()
    if runner is not None:
        outcomes = runner.run(ids=ids, quick=quick, seed=seed, profiler=profiler)
        results = [o.result for o in outcomes]
        text = render_markdown(
            results,
            elapsed=time.perf_counter() - started,
            timings=experiment_timings(profiler),
            cache_hits={o.experiment_id: o.cached for o in outcomes},
            speedups={o.experiment_id: o.speedup for o in outcomes},
            failures={
                o.experiment_id: (o.error, o.error_traceback)
                for o in outcomes
                if o.failed
            },
        )
    else:
        results = run_all(quick=quick, seed=seed, ids=ids, profiler=profiler)
        text = render_markdown(
            results,
            elapsed=time.perf_counter() - started,
            timings=experiment_timings(profiler),
        )
    with open(path, "w") as fh:
        fh.write(text)
    return results
