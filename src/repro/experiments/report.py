"""Aggregate report writer: every experiment, one markdown document.

``python -m repro.experiments report [--quick] [--out PATH]`` runs the
entire registry and writes a single markdown file with a summary
check-matrix followed by each experiment's full tables — the file a
reviewer would diff against the paper. Per-experiment wall-clock is
measured with an :class:`~repro.obs.Profiler` (pass one in to share it
with a wider observability scope, e.g. the CLI's ``--stats-out``).
"""

from __future__ import annotations

import time
from typing import List, Mapping, Optional, Sequence

from ..obs import Profiler
from . import registry
from .base import ExperimentResult

#: Profiler phase prefix for one experiment run.
_PHASE_PREFIX = "experiment."


def run_all(
    quick: bool = False,
    seed: int = 0,
    ids: Optional[Sequence[str]] = None,
    profiler: Optional[Profiler] = None,
) -> List[ExperimentResult]:
    """Run the requested experiments (default: all) and return results.

    When a ``profiler`` is given, each run is timed under the phase
    ``experiment.<id>``.
    """
    results = []
    for exp_id in ids or registry.all_ids():
        exp = registry.get(exp_id)
        if profiler is not None:
            with profiler.phase(_PHASE_PREFIX + exp_id):
                results.append(exp.run(quick=quick, seed=seed))
        else:
            results.append(exp.run(quick=quick, seed=seed))
    return results


def experiment_timings(profiler: Profiler) -> Mapping[str, float]:
    """Extract ``{experiment_id: seconds}`` from a profiler's phases."""
    return {
        name[len(_PHASE_PREFIX) :]: profiler.seconds(name)
        for name in profiler.phases()
        if name.startswith(_PHASE_PREFIX)
    }


def render_markdown(
    results: Sequence[ExperimentResult],
    elapsed: float = 0.0,
    timings: Optional[Mapping[str, float]] = None,
) -> str:
    """Render a combined markdown report.

    ``timings`` (``{experiment_id: seconds}``) adds a wall-clock column to
    the summary matrix when given.
    """
    total = sum(len(r.checks) for r in results)
    passed = sum(1 for r in results for c in r.checks if c.passed)
    with_time = timings is not None
    lines = [
        "# unXpec reproduction report",
        "",
        f"{len(results)} experiments, {passed}/{total} paper-vs-measured checks passed"
        + (f" ({elapsed:.0f}s)." if elapsed else "."),
        "",
        "| experiment | title | checks |" + (" time |" if with_time else ""),
        "|---|---|---|" + ("---|" if with_time else ""),
    ]
    for r in results:
        ok = sum(1 for c in r.checks if c.passed)
        status = "PASS" if r.all_passed else "**FAIL**"
        row = f"| `{r.experiment_id}` | {r.title} | {ok}/{len(r.checks)} {status} |"
        if with_time:
            secs = timings.get(r.experiment_id)
            row += f" {secs:.1f}s |" if secs is not None else " — |"
        lines.append(row)
    lines.append("")
    for r in results:
        lines.append("---")
        lines.append("")
        lines.append("```")
        lines.append(r.render())
        lines.append("```")
        lines.append("")
    return "\n".join(lines)


def write_report(
    path: str,
    quick: bool = False,
    seed: int = 0,
    ids: Optional[Sequence[str]] = None,
    profiler: Optional[Profiler] = None,
) -> List[ExperimentResult]:
    """Run experiments and write the markdown report to ``path``."""
    profiler = profiler if profiler is not None else Profiler()
    started = time.time()
    results = run_all(quick=quick, seed=seed, ids=ids, profiler=profiler)
    text = render_markdown(
        results,
        elapsed=time.time() - started,
        timings=experiment_timings(profiler),
    )
    with open(path, "w") as fh:
        fh.write(text)
    return results
