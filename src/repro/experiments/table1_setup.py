"""Table I — the simulated system configuration."""

from __future__ import annotations

from ..common.config import paper_system_config
from .base import Experiment, ExperimentResult
from .registry import register


@register
class Table1Setup(Experiment):
    id = "table1"
    title = "Experiment setup (Table I)"
    paper_claim = (
        "1 core @ 2 GHz with a 192-entry ROB; 32 KB 4-way/128-set L1I; "
        "32 KB 8-way/64-set L1D; 2 MB 16-way/2048-set L2; 50 ns memory RT after L2"
    )

    def run(self, quick: bool = False, seed: int = 0) -> ExperimentResult:
        del quick, seed  # configuration is static
        result = self.new_result()
        config = paper_system_config()
        tbl = result.table("table1", ["Module", "Configuration"])
        for module, desc in config.table1_rows():
            tbl.add(module, desc)

        result.metric("frequency_ghz", config.core.frequency_hz / 1e9)
        result.metric("rob_entries", config.core.rob_entries)
        result.metric("memory_latency_cycles", config.latency.memory)

        result.check(
            "frequency", config.core.frequency_hz == 2e9, "core runs at 2 GHz"
        )
        result.check("rob", config.core.rob_entries == 192, "192-entry ROB")
        result.check(
            "l1i",
            (config.l1i.size_bytes, config.l1i.ways, config.l1i.sets)
            == (32 * 1024, 4, 128),
            "L1I is 32 KB, 4-way, 128-set",
        )
        result.check(
            "l1d",
            (config.l1d.size_bytes, config.l1d.ways, config.l1d.sets)
            == (32 * 1024, 8, 64),
            "L1D is 32 KB, 8-way, 64-set",
        )
        result.check(
            "l2",
            (config.l2.size_bytes, config.l2.ways, config.l2.sets)
            == (2 * 1024 * 1024, 16, 2048),
            "L2 is 2 MB, 16-way, 2048-set",
        )
        result.check(
            "memory",
            config.latency.memory == 100,
            f"50 ns RT at 2 GHz = {config.latency.memory} cycles",
        )
        return result
