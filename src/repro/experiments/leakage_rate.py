"""§VI-B — leakage rate.

The paper's artifact samples about 140,000 time measurements per second on
a 2 GHz core (~14,300 cycles per round, dominated by the mistraining loop
and per-round flush/fence work in gem5 SE mode), yielding 140 Kbps at one
sample per bit. We report cycles-per-round and the implied rate for two
round shapes:

* the library default (``train_iters=16``) — a lean round, faster than the
  artifact's (our simulator has no syscall-emulation overhead), and
* an artifact-matched round (``train_iters=100``) whose cost per round
  lands near the paper's operating point.

Both variants must clear the paper's *sufficiency* claim: a rate high
enough that one sample per bit already gives >100 Kbps.
"""

from __future__ import annotations

from ..attack.gadgets import GadgetParams
from ..attack.unxpec import UnxpecAttack
from ..common.units import LeakageRate
from ..cpu.noise import campaign_noise
from .base import Experiment, ExperimentResult
from .registry import register


@register
class LeakageRateExperiment(Experiment):
    id = "leakage_rate"
    title = "Leakage rate (Section VI-B)"
    paper_claim = (
        "both unXpec variants sample ~140,000 measurements/second at 2 GHz "
        "(~140 Kbps at one sample per bit); priming once suffices because "
        "rollback restores the primed state every round"
    )

    ROUND_SHAPES = (("default", 16), ("artifact-matched", 100))

    def run(self, quick: bool = False, seed: int = 0) -> ExperimentResult:
        rounds = 20 if quick else 100
        result = self.new_result()
        tbl = result.table(
            "leakage_rate",
            ["round shape", "eviction sets", "cycles/round", "samples/s", "Kbps"],
        )

        rates = {}
        for shape_name, train_iters in self.ROUND_SHAPES:
            for evset in (False, True):
                attack = UnxpecAttack(
                    params=GadgetParams(train_iters=train_iters),
                    use_eviction_sets=evset,
                    noise=campaign_noise(),
                    seed=seed,
                )
                attack.prepare()
                samples = [attack.sample(i % 2) for i in range(rounds)]
                cycles = sum(s.total_cycles for s in samples) / len(samples)
                rate = LeakageRate(cycles)
                rates[(shape_name, evset)] = rate
                tbl.add(
                    shape_name,
                    evset,
                    round(cycles),
                    round(rate.bits_per_second),
                    round(rate.kbps, 1),
                )

        matched = rates[("artifact-matched", False)]
        matched_ev = rates[("artifact-matched", True)]
        result.metric("default_kbps", rates[("default", False)].kbps)
        result.metric("matched_kbps", matched.kbps)
        result.metric("matched_evset_kbps", matched_ev.kbps)

        result.check_band(
            "artifact_matched_rate", matched.kbps, 90, 260, "~140 Kbps"
        )
        result.check(
            "sufficiently_high",
            min(r.kbps for r in rates.values()) >= 100,
            "every variant clears 100 Kbps at one sample per bit",
        )
        result.check(
            "evset_comparable",
            abs(matched_ev.kbps - matched.kbps) / matched.kbps < 0.25,
            f"eviction-set variant is rate-comparable ({matched_ev.kbps:.0f} "
            f"vs {matched.kbps:.0f} Kbps) because priming happens once",
        )
        return result
