"""Figure 13 — branch resolution time on a real processor (i7-8550U model).

The paper validates the Fig. 2 shape claims on real hardware under system
noise. We run the same sweep against the analytic real-CPU model: mean
resolution time must be flat in the in-branch load count and the secret,
linear in the condition complexity N, with visible (but zero-mean) noise.
"""

from __future__ import annotations

import statistics

from ..realcpu.model import RealCpuModel
from .base import Experiment, ExperimentResult
from .registry import register


@register
class Fig13RealCpu(Experiment):
    id = "fig13"
    title = "Branch resolution time on a real CPU (Figure 13)"
    paper_claim = (
        "on an i7-8550U the resolution time stays flat across in-branch "
        "loads and secrets and grows linearly with N, despite system noise"
    )

    N_VALUES = (1, 2, 3)
    LOADS = (1, 2, 3, 4, 5)

    def run(self, quick: bool = False, seed: int = 0) -> ExperimentResult:
        samples_per_point = 30 if quick else 200
        model = RealCpuModel()
        result = self.new_result()
        tbl = result.table(
            "resolution_cycles",
            ["N", "loads", "secret", "median", "mean", "std"],
        )

        medians = {}
        for n in self.N_VALUES:
            for loads in self.LOADS:
                for secret in (0, 1):
                    data = model.measure(n, loads, secret, samples_per_point, seed=seed)
                    med = statistics.median(data)
                    medians[(n, loads, secret)] = med
                    tbl.add(
                        n,
                        loads,
                        secret,
                        round(med, 1),
                        round(statistics.mean(data), 1),
                        round(statistics.pstdev(data), 1),
                    )

        for n in self.N_VALUES:
            band = [medians[(n, l, s)] for l in self.LOADS for s in (0, 1)]
            spread = max(band) - min(band)
            result.metric(f"median_spread_N{n}", spread)
            result.check(
                f"flat_N{n}",
                spread <= 0.15 * model.mem_access_cycles,
                f"median spread over loads x secret is {spread:.0f} cycles",
            )

        level = {
            n: statistics.median(
                [medians[(n, l, s)] for l in self.LOADS for s in (0, 1)]
            )
            for n in self.N_VALUES
        }
        step12 = level[2] - level[1]
        step23 = level[3] - level[2]
        result.metric("level_N1", level[1])
        result.metric("level_N2", level[2])
        result.metric("level_N3", level[3])
        result.check(
            "linear_in_N",
            abs(step12 - model.mem_access_cycles) < 0.25 * model.mem_access_cycles
            and abs(step23 - model.mem_access_cycles) < 0.25 * model.mem_access_cycles,
            f"steps {step12:.0f} and {step23:.0f} cycles, one memory access "
            f"({model.mem_access_cycles}) each",
        )
        return result
