"""The (attack x defense x channel) matrix experiment.

One cell = one attack scenario against one registry-constructed defense,
judged under one observation channel.  Machine work is sharded per
(attack, defense) pair — every channel reads the same trial set — plus one
overhead shard per defense (synthetic SPEC-profile workloads, protected
vs. unsafe cycles).  The merged result is the leakage grid the paper's
story reduces to one table:

* the flush+reload footprint leaks only where speculative fills reach the
  real hierarchy and survive (the unsafe baseline);
* undo-based schemes close the footprint but open the rollback-timing
  channel (CleanupSpec's ~22-cycle secret-dependent squash — unXpec);
* SafeSpec-style shadow structures and CacheSquash-style cancellable
  requests close both *cache* channels, at near-baseline workload cost —
  but the non-cache contention channels stay open: SpectreRewind's
  divider occupancy leaks under CleanupSpec and SafeSpec, and the
  two-context interference probe leaks under SafeSpec and CacheSquash
  (no cache-centric defense claims the contention channel closed);
* every defense's *measured* row must be consistent with its registered
  :class:`~repro.defense.base.DefenseCapabilities` claim.

Run as ``python -m repro.experiments matrix [--jobs N] [--backend batched]``;
tables, metrics, and checks are bit-identical for any jobs count and
backend (the campaign determinism contract, docs/campaign.md).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..cache.hierarchy import CacheHierarchy
from ..cpu.backend import make_core
from ..defense.base import defense_capabilities, defense_keys, make_defense
from ..matrix import (
    evaluate_cell,
    grid_pairs,
    observations_to_rows,
    render_grid,
    rows_to_observations,
    run_cell_trials,
)
from ..workloads.profiles import SPEC2017_PROFILES
from ..workloads.synth import synthesize
from .base import ExperimentResult, Shard, ShardableExperiment
from .registry import register


@register
class MatrixGrid(ShardableExperiment):
    id = "matrix"
    title = "Attack x defense x channel leakage matrix (extension)"
    paper_claim = (
        "Undo schemes close the flush+reload footprint but leak through "
        "rollback timing; shadow-structure and cancellable-request schemes "
        "close both cache channels at near-baseline cost yet still leak "
        "through non-cache contention (divider occupancy, shared-port "
        "interference)"
    )

    def _trials(self, quick: bool) -> int:
        return 8 if quick else 16

    def shard_plan(self, quick: bool = False, seed: int = 0) -> List[Shard]:
        pairs = grid_pairs()
        overhead_defenses = [k for k in defense_keys() if k != "unsafe"]
        count = len(pairs) + len(overhead_defenses)
        shards = [
            Shard(
                index=i,
                count=count,
                tag=f"cell:{attack}:{defense}",
                params={"kind": "cell", "attack": attack, "defense": defense},
            )
            for i, (attack, defense) in enumerate(pairs)
        ]
        shards.extend(
            Shard(
                index=len(pairs) + j,
                count=count,
                tag=f"overhead:{defense}",
                params={"kind": "overhead", "defense": defense},
            )
            for j, defense in enumerate(overhead_defenses)
        )
        return shards

    def run_shard(self, shard: Shard, quick: bool = False, seed: int = 0) -> object:
        params = shard.params
        if params["kind"] == "cell":
            rows = observations_to_rows(
                run_cell_trials(
                    params["attack"], params["defense"], self._trials(quick), seed=seed
                )
            )
            return {
                "kind": "cell",
                "attack": params["attack"],
                "defense": params["defense"],
                "rows": rows,
            }
        return {
            "kind": "overhead",
            "defense": params["defense"],
            "overhead": self._overhead(params["defense"], quick, seed),
        }

    @staticmethod
    def _overhead(defense_key: str, quick: bool, seed: int) -> float:
        """Workload slowdown of one defense vs the unsafe baseline."""
        profiles = SPEC2017_PROFILES[:2] if quick else SPEC2017_PROFILES[:4]
        instructions = 2000 if quick else 6000

        def cycles(workload, key: str) -> int:
            hierarchy = CacheHierarchy(seed=seed + 1)
            core = make_core(
                hierarchy, make_defense(key, hierarchy), config=hierarchy.config.core
            )
            return core.run(workload.program, max_instructions=20_000_000).cycles

        total = 0.0
        for profile in profiles:
            workload = synthesize(profile, instructions=instructions, seed=seed + 1)
            total += cycles(workload, defense_key) / cycles(workload, "unsafe") - 1.0
        return total / len(profiles)

    def merge_shards(
        self, partials: Sequence[object], quick: bool = False, seed: int = 0
    ) -> ExperimentResult:
        result = self.new_result()
        verdicts = []
        overheads: Dict[str, float] = {}
        for partial in partials:
            if partial["kind"] == "cell":
                verdicts.extend(
                    evaluate_cell(
                        partial["attack"],
                        partial["defense"],
                        rows_to_observations(partial["rows"]),
                    )
                )
            else:
                overheads[partial["defense"]] = partial["overhead"]

        cells = result.table(
            "cells",
            ["attack", "defense", "channel", "leaks", "signal", "accuracy",
             "claimed closed"],
        )
        for cv in sorted(
            verdicts, key=lambda v: (v.cell.attack, v.cell.defense, v.cell.channel)
        ):
            cells.add(
                cv.cell.attack,
                cv.cell.defense,
                cv.cell.channel,
                cv.leaks,
                round(cv.signal, 2),
                round(cv.accuracy, 3),
                cv.claimed_closed,
            )

        pivot = render_grid(verdicts)
        columns = sorted({column for row in pivot.values() for column in row})
        grid = result.table(
            "grid",
            ["defense", "family", *columns, "overhead %"],
        )
        for defense in defense_keys():
            caps = defense_capabilities(defense)
            overhead = overheads.get(defense)
            grid.add(
                defense,
                caps.family,
                *[pivot[defense].get(column, "-") for column in columns],
                "baseline" if overhead is None else round(100 * overhead, 1),
            )

        leak = {
            (cv.cell.attack, cv.cell.defense, cv.cell.channel): cv.leaks
            for cv in verdicts
        }

        def leaks_cache_channels(defense: str) -> bool:
            """Any flush/rollback leak — the channels cache-centric
            defenses actually claim; contention is judged separately."""
            return any(
                v
                for (_, d, c), v in leak.items()
                if d == defense and c in ("flush", "rollback")
            )

        result.metric(
            "unxpec_rollback_gap_cleanupspec",
            next(
                cv.signal
                for cv in verdicts
                if cv.cell == type(cv.cell)("unxpec", "cleanupspec", "rollback")
            ),
        )
        for defense, overhead in sorted(overheads.items()):
            result.metric(f"overhead_{defense}_pct", 100 * overhead)

        result.check(
            "footprint_leaks_only_unprotected",
            leak[("spectre", "unsafe", "flush")]
            and leak[("unxpec", "unsafe", "flush")]
            and not any(
                v
                for (_, d, c), v in leak.items()
                if c == "flush" and d != "unsafe"
            ),
            "the flush+reload footprint survives only without a defense",
        )
        result.check(
            "undo_opens_rollback_channel",
            leak[("unxpec", "cleanupspec", "rollback")],
            "unXpec reads the secret off CleanupSpec's rollback duration",
        )
        result.check(
            "shadow_closes_cache_channels",
            not leaks_cache_channels("safespec"),
            "SafeSpec-style shadow fills leave neither footprint nor "
            "secret-dependent squash timing",
        )
        result.check(
            "cancellable_closes_cache_channels",
            not leaks_cache_channels("cachesquash"),
            "coalesced cancellation quantizes squash timing and installs "
            "nothing",
        )
        result.check(
            "rewind_contention_survives_undo_and_shadow",
            leak[("rewind", "cleanupspec", "contention")]
            and leak[("rewind", "safespec", "contention")],
            "a committed division queues behind transient divider "
            "occupancy whether the cache state is undone or shadowed — "
            "no cache defense touches the functional units",
        )
        result.check(
            "interference_contention_survives_shadow_and_cancel",
            leak[("interference", "safespec", "contention")]
            and leak[("interference", "cachesquash", "contention")],
            "shadow and cancellable fills still occupy shared port "
            "bandwidth while in flight; the second context times it",
        )
        result.check(
            "delay_on_miss_closes_interference",
            not leak[("interference", "delay_on_miss", "contention")],
            "delaying speculative misses at issue means the transient "
            "burst never reaches the shared port at all",
        )
        result.check(
            "capabilities_match_measurement",
            not any(cv.leaks and cv.claimed_closed for cv in verdicts),
            "no defense leaks through a channel its capability descriptor "
            "claims closed",
        )
        if {"safespec", "cachesquash", "delay_on_miss"} <= set(overheads):
            result.check(
                "shadow_and_cancel_cheaper_than_invisible",
                max(overheads["safespec"], overheads["cachesquash"])
                < overheads["delay_on_miss"],
                f"safespec {100 * overheads['safespec']:.1f}% / cachesquash "
                f"{100 * overheads['cachesquash']:.1f}% vs delay-on-miss "
                f"{100 * overheads['delay_on_miss']:.1f}%: closing the squash "
                "channel does not require the invisible schemes' common-case "
                "cost",
            )
        return result
