"""Figure 2 — branch resolution time is constant per f(N), linear in N.

Sweeps the branch-condition complexity N (dependent memory accesses),
the number of in-branch loads, and the secret bit, measuring the
T1-T2 branch-resolution time on the deterministic simulator. The paper's
claims: resolution time (a) barely moves with the number of in-branch loads,
(b) is insensitive to the secret value, and (c) grows linearly with N.
"""

from __future__ import annotations

from ..attack.gadgets import GadgetParams
from ..attack.unxpec import UnxpecAttack
from .base import Experiment, ExperimentResult
from .registry import register


@register
class Fig2BranchResolution(Experiment):
    id = "fig2"
    title = "Constant branch resolution time (Figure 2)"
    paper_claim = (
        "resolution time is contained in a narrow band regardless of the "
        "number of in-branch loads and the secret bit, and increases "
        "linearly with the condition's dependent memory accesses N"
    )

    N_VALUES = (1, 2, 3)

    def run(self, quick: bool = False, seed: int = 0) -> ExperimentResult:
        loads_values = (1, 3, 5) if quick else (1, 2, 3, 4, 5)
        result = self.new_result()
        tbl = result.table(
            "branch_resolution_cycles",
            ["N (cond. accesses)", "loads in branch", "secret=0", "secret=1"],
        )

        times = {}
        for n_accesses in self.N_VALUES:
            for n_loads in loads_values:
                params = GadgetParams(n_loads=n_loads, condition_accesses=n_accesses)
                attack = UnxpecAttack(params=params, seed=seed)
                attack.prepare()
                t0 = attack.sample(0).resolution_time
                t1 = attack.sample(1).resolution_time
                times[(n_accesses, n_loads, 0)] = t0
                times[(n_accesses, n_loads, 1)] = t1
                tbl.add(n_accesses, n_loads, t0, t1)

        # Claim (a)+(b): per-N spread over loads and secrets is narrow.
        for n_accesses in self.N_VALUES:
            band = [
                times[(n_accesses, l, s)] for l in loads_values for s in (0, 1)
            ]
            spread = max(band) - min(band)
            result.metric(f"spread_N{n_accesses}", spread)
            result.check(
                f"flat_N{n_accesses}",
                spread <= 10,
                f"resolution spread over loads x secret is {spread} cycles (<= 10)",
            )

        # Claim (c): linear growth with N, step approx. one memory round trip.
        means = {
            n: sum(times[(n, l, s)] for l in loads_values for s in (0, 1))
            / (2 * len(loads_values))
            for n in self.N_VALUES
        }
        step12 = means[2] - means[1]
        step23 = means[3] - means[2]
        result.metric("mean_N1", means[1])
        result.metric("mean_N2", means[2])
        result.metric("mean_N3", means[3])
        result.check(
            "linear_in_N",
            step12 > 60 and step23 > 60 and abs(step12 - step23) <= 15,
            f"steps N1->N2={step12:.1f}, N2->N3={step23:.1f} cycles (equal, "
            "about one memory access each)",
        )
        return result
