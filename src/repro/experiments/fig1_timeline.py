"""Figure 1 — the CleanupSpec timeline, instantiated with measured cycles.

The paper's Figure 1 is a schematic: T1 (speculation starts) → T2
(mis-speculation detected) → T3 (MSHR clean) → T4 (wait for in-flight
correct-path loads) → T5 (invalidate + restore) → T6 (fetch resumes).
This experiment runs one attack round per secret value and reports the
*measured* span of every stage, verifying the structural claims the attack
depends on: T1→T2 constant across secrets, T4 zeroed by the fence, and all
of the secret dependence concentrated in T5.
"""

from __future__ import annotations

from ..attack.gadgets import GadgetParams
from ..attack.unxpec import UnxpecAttack
from .base import Experiment, ExperimentResult
from .registry import register


@register
class Fig1Timeline(Experiment):
    id = "fig1"
    title = "CleanupSpec timeline with measured stage durations (Figure 1)"
    paper_claim = (
        "squash handling spans T2..T6; the attack engineers T1-T2 constant, "
        "T4 = 0 (fence), leaving T5 as the only secret-dependent stage"
    )

    def run(self, quick: bool = False, seed: int = 0) -> ExperimentResult:
        del quick  # a single round per secret either way
        result = self.new_result()
        attack = UnxpecAttack(
            params=GadgetParams(n_loads=1), use_eviction_sets=True, seed=seed
        )
        attack.prepare()

        tbl = result.table(
            "timeline",
            ["stage", "meaning", "secret=0 (cycles)", "secret=1 (cycles)"],
        )
        stages = {}
        for secret in (0, 1):
            sample = attack.sample(secret)
            stages[secret] = {
                "T1-T2": sample.resolution_time,
                # stall = T3 + T4 + T5; the rollback (T5) is reported
                # separately, so the residue is the MSHR clean + wait.
                "T3": sample.stall - sample.rollback_cycles,
                "T5": sample.rollback_cycles,
                "total": sample.latency,
            }

        tbl.add("T1-T2", "branch resolution", stages[0]["T1-T2"], stages[1]["T1-T2"])
        tbl.add("T3+T4", "MSHR clean + in-flight wait", stages[0]["T3"], stages[1]["T3"])
        tbl.add("T5", "invalidation + restoration", stages[0]["T5"], stages[1]["T5"])
        tbl.add("T1-T6", "receiver's measurement", stages[0]["total"], stages[1]["total"])

        result.metric("resolution_secret0", stages[0]["T1-T2"])
        result.metric("resolution_secret1", stages[1]["T1-T2"])
        result.metric("t5_secret0", stages[0]["T5"])
        result.metric("t5_secret1", stages[1]["T5"])
        result.metric("t3_t4_residue", stages[1]["T3"])

        result.check(
            "t1_t2_constant",
            stages[0]["T1-T2"] == stages[1]["T1-T2"],
            f"branch resolution identical across secrets "
            f"({stages[0]['T1-T2']} cycles)",
        )
        result.check(
            "t4_zeroed_by_fence",
            stages[0]["T3"] == 0 and stages[1]["T3"] == 0,
            "the memory fence leaves no in-flight older loads: T3+T4 = 0",
        )
        result.check(
            "secret_dependence_in_t5_only",
            stages[0]["T5"] == 0 and stages[1]["T5"] >= 20,
            f"T5 is 0 vs {stages[1]['T5']} cycles — the entire channel",
        )
        result.check(
            "totals_differ_by_t5",
            stages[1]["total"] - stages[0]["total"] == stages[1]["T5"] - stages[0]["T5"],
            "the end-to-end difference equals the T5 difference exactly",
        )
        return result
