"""Figure 9 — the randomly generated 1,000-bit secret.

The artifact hardcodes one random 1,000-bit instance; we derive ours from
the master seed so Figures 10/11 leak a reproducible pattern. The figure's
only checkable content is that the bits look uniform.
"""

from __future__ import annotations

from ..attack.secrets import bits_to_text, random_bits
from .base import Experiment, ExperimentResult
from .registry import register


@register
class Fig9SecretBits(Experiment):
    id = "fig9"
    title = "Bit pattern of the 1,000-bit random secret (Figure 9)"
    paper_claim = "a 1,000-bit uniformly random secret is the leak target"

    def run(self, quick: bool = False, seed: int = 0) -> ExperimentResult:
        count = 200 if quick else 1000
        result = self.new_result()
        bits = random_bits(count, seed=seed)

        tbl = result.table("bit_rows", ["bits (rows of 100)"])
        for row in bits_to_text(bits, width=100).splitlines():
            tbl.add(row)

        ones = sum(bits)
        longest = max(
            len(run)
            for run in "".join(str(b) for b in bits)
            .replace("10", "1|0")
            .replace("01", "0|1")
            .split("|")
        )
        transitions = sum(1 for a, b in zip(bits, bits[1:]) if a != b)
        result.metric("bits", count)
        result.metric("ones_fraction", ones / count)
        result.metric("longest_run", longest)
        result.metric("transition_fraction", transitions / (count - 1))

        result.check_band("balance", ones / count, 0.44, 0.56, "~0.5 for uniform bits")
        result.check_band(
            "transitions", transitions / (count - 1), 0.42, 0.58, "~0.5 for iid bits"
        )
        result.check(
            "no_degenerate_run",
            longest <= 25,
            f"longest constant run is {longest} bits",
        )
        return result
