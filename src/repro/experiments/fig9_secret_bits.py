"""Figure 9 — the randomly generated 1,000-bit secret.

The artifact hardcodes one random 1,000-bit instance; we derive ours from
the master seed so Figures 10/11 leak a reproducible pattern. The figure's
only checkable content is that the bits look uniform.

Shardable: the secret is one cheap derived-stream draw, so each shard
regenerates it and returns its slice; the merge concatenates slices (in
shard order they reassemble the exact original string) and computes the
uniformity statistics over the whole — bit-identical to a serial run.
"""

from __future__ import annotations

from typing import List

from ..attack.secrets import bits_to_text, random_bits
from .base import Shard, ShardableExperiment
from .registry import register
from ..campaign.sharding import split_trials

#: Fixed shard count — part of the determinism contract (never derived
#: from the worker count).
N_SHARDS = 4


@register
class Fig9SecretBits(ShardableExperiment):
    id = "fig9"
    title = "Bit pattern of the 1,000-bit random secret (Figure 9)"
    paper_claim = "a 1,000-bit uniformly random secret is the leak target"

    @staticmethod
    def _count(quick: bool) -> int:
        return 200 if quick else 1000

    def shard_plan(self, quick: bool = False, seed: int = 0) -> List[Shard]:
        count = self._count(quick)
        return [
            Shard(
                index=i,
                count=stop - start,
                tag=f"bits[{start}:{stop})",
                params={"start": start, "stop": stop, "count": count},
            )
            for i, (start, stop) in enumerate(split_trials(count, N_SHARDS))
        ]

    def run_shard(self, shard: Shard, quick: bool = False, seed: int = 0) -> dict:
        bits = random_bits(shard.params["count"], seed=seed)
        return {
            "start": shard.params["start"],
            "bits": bits[shard.params["start"] : shard.params["stop"]],
        }

    def merge_shards(self, partials, quick: bool = False, seed: int = 0):
        count = self._count(quick)
        result = self.new_result()
        bits: List[int] = []
        for p in partials:
            bits.extend(p["bits"])
        assert len(bits) == count, "shard slices must reassemble the secret"

        tbl = result.table("bit_rows", ["bits (rows of 100)"])
        for row in bits_to_text(bits, width=100).splitlines():
            tbl.add(row)

        ones = sum(bits)
        longest = max(
            len(run)
            for run in "".join(str(b) for b in bits)
            .replace("10", "1|0")
            .replace("01", "0|1")
            .split("|")
        )
        transitions = sum(1 for a, b in zip(bits, bits[1:]) if a != b)
        result.metric("bits", count)
        result.metric("ones_fraction", ones / count)
        result.metric("longest_run", longest)
        result.metric("transition_fraction", transitions / (count - 1))

        result.check_band("balance", ones / count, 0.44, 0.56, "~0.5 for uniform bits")
        result.check_band(
            "transitions", transitions / (count - 1), 0.42, 0.58, "~0.5 for iid bits"
        )
        result.check(
            "no_degenerate_run",
            longest <= 25,
            f"longest constant run is {longest} bits",
        )
        return result
