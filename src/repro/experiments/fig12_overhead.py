"""Figure 12 — overhead of constant-time rollback on SPEC-like workloads.

Runs every synthetic SPEC CPU 2017 profile under the unsafe baseline,
plain CleanupSpec ("no const"), and relaxed constant-time rollback with
constants 25/30/35/45/65, and reports execution time normalised to the
unsafe baseline. Paper: average slowdown grows from 22.4% (25 cycles) to
72.8% (65 cycles); plain CleanupSpec costs ~5%.
"""

from __future__ import annotations

from typing import Dict, List

from ..cache.hierarchy import CacheHierarchy
from ..cpu.core import Core
from ..defense.cleanupspec import CleanupSpec
from ..defense.constant_time import ConstantTimeRollback
from ..defense.unsafe import UnsafeBaseline
from ..workloads.profiles import SPEC2017_PROFILES
from ..workloads.synth import synthesize
from .base import Experiment, ExperimentResult
from .registry import register

CONSTANTS = (25, 30, 35, 45, 65)


def overhead_for_profile(
    profile, instructions: int, seed: int, constants=CONSTANTS
) -> Dict[str, float]:
    """Per-scheme overhead (fraction) of one benchmark vs the unsafe baseline."""
    workload = synthesize(profile, instructions=instructions, seed=seed)

    def run_with(factory):
        hierarchy = CacheHierarchy(seed=seed)
        core = Core(hierarchy, factory(hierarchy))
        return core.run(workload.program, max_instructions=20_000_000)

    base = run_with(lambda h: UnsafeBaseline(h))
    out: Dict[str, float] = {
        "no_const": run_with(lambda h: CleanupSpec(h)).cycles / base.cycles - 1.0
    }
    for const in constants:
        ct = run_with(lambda h: ConstantTimeRollback(h, const))
        out[f"const_{const}"] = ct.cycles / base.cycles - 1.0
    out["mispredicts_per_kinst"] = 1000.0 * base.mispredictions / base.instructions
    return out


@register
class Fig12Overhead(Experiment):
    id = "fig12"
    title = "Constant-time rollback overhead (Figure 12)"
    paper_claim = (
        "average slowdown over SPEC CPU 2017 rises from 22.4% with 25-cycle "
        "constant rollback to 72.8% with 65 cycles; plain CleanupSpec ~5%"
    )

    def run(self, quick: bool = False, seed: int = 0) -> ExperimentResult:
        profiles = SPEC2017_PROFILES[:4] if quick else SPEC2017_PROFILES
        instructions = 3000 if quick else 12_000
        result = self.new_result()
        headers = ["benchmark", "MPKI", "no const"] + [f"const={c}" for c in CONSTANTS]
        tbl = result.table("overhead_pct", headers)

        schemes = ["no_const"] + [f"const_{c}" for c in CONSTANTS]
        sums = {s: 0.0 for s in schemes}
        per_bench: List[Dict[str, float]] = []
        for profile in profiles:
            ov = overhead_for_profile(profile, instructions, seed)
            per_bench.append(ov)
            tbl.add(
                profile.name,
                round(ov["mispredicts_per_kinst"], 1),
                *[round(100 * ov[s], 1) for s in schemes],
            )
            for s in schemes:
                sums[s] += ov[s]

        n = len(profiles)
        averages = {s: sums[s] / n for s in schemes}
        tbl.add("AVERAGE", "", *[round(100 * averages[s], 1) for s in schemes])

        result.metric("avg_no_const_pct", 100 * averages["no_const"])
        result.metric("avg_const25_pct", 100 * averages["const_25"])
        result.metric("avg_const65_pct", 100 * averages["const_65"])

        result.check_band(
            "avg_const25", 100 * averages["const_25"], 15, 38, "22.4%"
        )
        result.check_band(
            "avg_const65", 100 * averages["const_65"], 50, 90, "72.8%"
        )
        result.check(
            "no_const_cheap",
            averages["no_const"] < 0.12,
            f"plain CleanupSpec costs {100 * averages['no_const']:.1f}% "
            "(paper: ~5%) — the constant-time padding, not the rollback "
            "itself, is what hurts",
        )
        series = [100 * averages[f"const_{c}"] for c in CONSTANTS]
        result.check(
            "monotone_in_const",
            all(b > a for a, b in zip(series, series[1:])),
            f"average overhead grows with the constant: {[round(s,1) for s in series]}",
        )
        result.check(
            "every_bench_grows",
            all(ov["const_65"] >= ov["const_25"] for ov in per_bench),
            "per-benchmark overhead is ordered by constant for every benchmark",
        )
        return result
