"""Extension — two-context speculative interference (shared-port channel).

The strongest cache defenses in the matrix make transient loads
*invisible*: SafeSpec fills shadow structures, CacheSquash cancels
requests at squash. The speculative-interference observation is that
invisibility in cache *state* is not invisibility in cache *bandwidth* —
an in-flight shadow fill or cancellable request still occupies the shared
L2/memory port while outstanding, and a second hardware context timing
its own misses against that port sees it.

One shard per registered defense. Each runs the
:class:`~repro.attack.interference.InterferenceHarness` two-context
model: the victim executes a Spectre-style sender under the defense with
an :class:`~repro.cpu.fu.OccupancyTimeline` recording every beyond-L1
access, then the attacker context — its own hierarchy, no shared cache
state at all — replays a timed pointer chase against the recording. The
probe-latency delta between secrets is the channel.

The merged table shows:

* **SafeSpec** and **CacheSquash** leak: their invisible fills are still
  port traffic while in flight;
* **delay-on-miss** closes the channel: the speculative misses never
  *issue*, so there is nothing on the port to time;
* the victim's own squash stall stays secret-independent wherever the
  defense claims the rollback channel closed — the leak rides entirely
  on the second context's observation.

The harness couples two runs through a shared timeline, which memoized
replay cannot see, so it constructs scalar cores directly; shards are
backend-invariant by construction (docs/channels.md).
"""

from __future__ import annotations

from statistics import mean
from typing import Dict, List, Sequence

from ..attack.interference import InterferenceHarness
from ..defense.base import defense_keys
from .base import ExperimentResult, Shard, ShardableExperiment
from .registry import register


@register
class ExtInterference(ShardableExperiment):
    id = "ext_interference"
    title = "Two-context interference vs invisible defenses (extension)"
    paper_claim = (
        "In-flight shadow/cancellable fills occupy shared port bandwidth; "
        "a second context's probe latency leaks the secret under SafeSpec "
        "and CacheSquash, while delay-on-miss never issues the traffic"
    )

    def _rounds(self, quick: bool) -> int:
        return 3 if quick else 6

    def shard_plan(self, quick: bool = False, seed: int = 0) -> List[Shard]:
        keys = defense_keys()
        return [
            Shard(
                index=i,
                count=len(keys),
                tag=f"defense:{key}",
                params={"defense": key},
            )
            for i, key in enumerate(keys)
        ]

    def run_shard(self, shard: Shard, quick: bool = False, seed: int = 0) -> object:
        defense_key = shard.params["defense"]
        harness = InterferenceHarness(defense_key=defense_key, seed=seed)
        harness.prepare()
        rounds = self._rounds(quick)
        rows = []
        for bit in (0, 1):
            for sample in harness.sample_many(bit, rounds):
                rows.append(
                    [
                        sample.secret,
                        sample.probe_latency,
                        sample.victim_stall,
                        sample.port_busy_cycles,
                    ]
                )
        return {"defense": defense_key, "rows": rows}

    def merge_shards(
        self, partials: Sequence[object], quick: bool = False, seed: int = 0
    ) -> ExperimentResult:
        result = self.new_result()
        tbl = result.table(
            "port_channel",
            [
                "defense",
                "probe s=0",
                "probe s=1",
                "delta",
                "busy s=0",
                "busy s=1",
                "stall s=0",
                "stall s=1",
            ],
        )
        deltas: Dict[str, float] = {}
        stall_dependent: Dict[str, bool] = {}
        for partial in partials:
            key = partial["defense"]
            probe = {0: [], 1: []}
            stall = {0: [], 1: []}
            busy = {0: [], 1: []}
            for secret, latency, stall_cycles, busy_cycles in partial["rows"]:
                probe[secret].append(latency)
                stall[secret].append(stall_cycles)
                busy[secret].append(busy_cycles)
            delta = mean(probe[1]) - mean(probe[0])
            deltas[key] = delta
            stall_dependent[key] = mean(stall[0]) != mean(stall[1])
            tbl.add(
                key,
                round(mean(probe[0]), 1),
                round(mean(probe[1]), 1),
                round(delta, 1),
                round(mean(busy[0]), 1),
                round(mean(busy[1]), 1),
                round(mean(stall[0]), 1),
                round(mean(stall[1]), 1),
            )

        for key in sorted(deltas):
            result.metric(f"probe_delta_{key}", deltas[key])

        result.check(
            "interference_leaks_under_safespec",
            deltas["safespec"] >= 30,
            f"probe delta {deltas['safespec']:.1f} cycles under SafeSpec: "
            "shadow fills are invisible in state, not in bandwidth",
        )
        result.check(
            "interference_leaks_under_cachesquash",
            deltas["cachesquash"] >= 30,
            f"probe delta {deltas['cachesquash']:.1f} cycles under "
            "CacheSquash: cancellable requests still occupy the port "
            "until squash",
        )
        result.check(
            "delay_on_miss_issues_no_traffic",
            deltas["delay_on_miss"] == 0,
            "delaying speculative misses at issue keeps the transient "
            "burst off the shared port entirely — the one family that "
            "closes this channel",
        )
        result.check(
            "rollback_observable_stays_clean",
            not any(
                stall_dependent[key]
                for key in deltas
                if key in ("safespec", "cachesquash", "delay_on_miss")
            ),
            "the victim-side squash stall is secret-independent under the "
            "shadow/cancel/invisible families — the leak is entirely the "
            "second context's observation",
        )
        return result
