"""Figure 10 — leaking the 1,000-bit secret without eviction sets.

One latency sample per bit, threshold decoding. Paper: 867 of 1,000 bits
decoded correctly (86.7%); the per-bit scatter clusters around the two
class means with occasional large outliers.
"""

from __future__ import annotations

from ..attack.campaign import CampaignResult, LeakageCampaign
from ..attack.secrets import random_bits
from ..attack.unxpec import UnxpecAttack
from ..cpu.noise import campaign_noise
from .base import Experiment, ExperimentResult
from .registry import register


def run_leakage_campaign(
    use_eviction_sets: bool, seed: int, bits: int, calibration_rounds: int = 150
) -> CampaignResult:
    """Fig. 10/11 campaign body (also used by the leakage-rate experiment)."""
    attack = UnxpecAttack(
        use_eviction_sets=use_eviction_sets, noise=campaign_noise(), seed=seed
    )
    campaign = LeakageCampaign(attack, calibration_rounds=calibration_rounds)
    secret = random_bits(bits, seed=seed)
    return campaign.run(secret)


def fill_leakage_result(
    result: ExperimentResult,
    campaign: CampaignResult,
    acc_lo: float,
    acc_hi: float,
    paper_acc: str,
    detail_rows: int = 100,
) -> None:
    tbl = result.table(
        "first_bits", ["bit index", "secret", "latency", "guess", "correct"]
    )
    for record in campaign.records[:detail_rows]:
        tbl.add(
            record.index, record.secret, record.latency, record.guess, record.correct
        )
    result.metric("bits", campaign.bits)
    result.metric("accuracy", campaign.accuracy)
    result.metric("threshold", campaign.threshold)
    result.metric("errors", len(campaign.errors()))
    result.check_band("accuracy", campaign.accuracy, acc_lo, acc_hi, paper_acc)
    result.check(
        "single_sample", campaign.samples_per_bit == 1, "one sample per bit"
    )
    # The scatter shape: correct bits cluster near the class means; the
    # decoder beats guessing by a wide margin.
    result.check(
        "beats_guessing",
        campaign.accuracy > 0.75,
        f"accuracy {campaign.accuracy:.1%} is far above the 50% guess rate",
    )


@register
class Fig10Leakage(Experiment):
    id = "fig10"
    title = "Secret leakage without eviction sets (Figure 10)"
    paper_claim = "867/1000 bits decoded correctly (86.7%) at one sample per bit"

    def run(self, quick: bool = False, seed: int = 0) -> ExperimentResult:
        bits = 200 if quick else 1000
        result = self.new_result()
        campaign = run_leakage_campaign(False, seed, bits)
        fill_leakage_result(result, campaign, 0.78, 0.93, "86.7%")
        return result
