"""Figure 10 — leaking the 1,000-bit secret without eviction sets.

One latency sample per bit, threshold decoding. Paper: 867 of 1,000 bits
decoded correctly (86.7%); the per-bit scatter clusters around the two
class means with occasional large outliers.

Shardable: the secret splits into ``N_SHARDS`` contiguous bit ranges and
each shard leaks its range through an *independent* attacker instance
whose noise stream is derived from :func:`~repro.campaign.sharding.shard_seed`
— disjoint RNG substreams, so no shard's measurements depend on how many
bits its neighbours leaked.  Each shard calibrates its own threshold (an
attacker restarting mid-secret would do the same); the merge re-indexes
the per-bit records into one global scatter and reports the count-weighted
mean threshold.
"""

from __future__ import annotations

from typing import List

from ..attack.campaign import BitRecord, CampaignResult, LeakageCampaign
from ..attack.secrets import random_bits
from ..attack.unxpec import UnxpecAttack
from ..campaign.sharding import shard_seed, split_trials
from ..cpu.noise import campaign_noise
from .base import ExperimentResult, Shard, ShardableExperiment
from .registry import register

#: Fixed shard counts — part of the determinism contract (a function of
#: the run configuration only, never of the worker count).  Quick mode
#: uses fewer shards because each shard pays its own calibration rounds.
N_SHARDS = 4
N_SHARDS_QUICK = 2


def run_leakage_campaign(
    use_eviction_sets: bool, seed: int, bits: int, calibration_rounds: int = 150
) -> CampaignResult:
    """Fig. 10/11 campaign body (also used by the leakage-rate experiment)."""
    attack = UnxpecAttack(
        use_eviction_sets=use_eviction_sets, noise=campaign_noise(), seed=seed
    )
    campaign = LeakageCampaign(attack, calibration_rounds=calibration_rounds)
    secret = random_bits(bits, seed=seed)
    return campaign.run(secret)


def fill_leakage_result(
    result: ExperimentResult,
    campaign: CampaignResult,
    acc_lo: float,
    acc_hi: float,
    paper_acc: str,
    detail_rows: int = 100,
) -> None:
    tbl = result.table(
        "first_bits", ["bit index", "secret", "latency", "guess", "correct"]
    )
    for record in campaign.records[:detail_rows]:
        tbl.add(
            record.index, record.secret, record.latency, record.guess, record.correct
        )
    result.metric("bits", campaign.bits)
    result.metric("accuracy", campaign.accuracy)
    result.metric("threshold", campaign.threshold)
    result.metric("errors", len(campaign.errors()))
    result.check_band("accuracy", campaign.accuracy, acc_lo, acc_hi, paper_acc)
    result.check(
        "single_sample", campaign.samples_per_bit == 1, "one sample per bit"
    )
    # The scatter shape: correct bits cluster near the class means; the
    # decoder beats guessing by a wide margin.
    result.check(
        "beats_guessing",
        campaign.accuracy > 0.75,
        f"accuracy {campaign.accuracy:.1%} is far above the 50% guess rate",
    )


@register
class Fig10Leakage(ShardableExperiment):
    id = "fig10"
    title = "Secret leakage without eviction sets (Figure 10)"
    paper_claim = "867/1000 bits decoded correctly (86.7%) at one sample per bit"

    CALIBRATION_ROUNDS = 150

    @staticmethod
    def _bits(quick: bool) -> int:
        return 200 if quick else 1000

    def shard_plan(self, quick: bool = False, seed: int = 0) -> List[Shard]:
        bits = self._bits(quick)
        n_shards = N_SHARDS_QUICK if quick else N_SHARDS
        return [
            Shard(
                index=i,
                count=stop - start,
                tag=f"bits[{start}:{stop})",
                params={"start": start, "stop": stop, "bits": bits},
            )
            for i, (start, stop) in enumerate(split_trials(bits, n_shards))
        ]

    def run_shard(self, shard: Shard, quick: bool = False, seed: int = 0) -> dict:
        start, stop = shard.params["start"], shard.params["stop"]
        secret = random_bits(shard.params["bits"], seed=seed)[start:stop]
        attack = UnxpecAttack(
            use_eviction_sets=False,
            noise=campaign_noise(),
            seed=shard_seed(seed, self.id, shard.index),
        )
        campaign = LeakageCampaign(
            attack, calibration_rounds=self.CALIBRATION_ROUNDS
        )
        return {"start": start, "campaign": campaign.run(secret)}

    def merge_shards(self, partials, quick: bool = False, seed: int = 0):
        result = self.new_result()
        merged = merge_campaigns(partials)
        fill_leakage_result(result, merged, 0.78, 0.93, "86.7%")
        return result


def merge_campaigns(partials) -> CampaignResult:
    """Fold per-shard :class:`CampaignResult` slices into one campaign.

    Records are re-indexed into the global bit numbering; the threshold
    becomes the count-weighted mean of the shard thresholds (each shard
    calibrated independently); cycle totals sum.
    """
    records: List[BitRecord] = []
    cycles_total = 0
    threshold_weighted = 0.0
    for p in partials:
        campaign: CampaignResult = p["campaign"]
        offset = p["start"]
        for r in campaign.records:
            records.append(
                BitRecord(
                    index=offset + r.index,
                    secret=r.secret,
                    latencies=r.latencies,
                    guess=r.guess,
                )
            )
        cycles_total += campaign.cycles_total
        threshold_weighted += campaign.threshold * campaign.bits
    first = partials[0]["campaign"]
    return CampaignResult(
        records=records,
        threshold=threshold_weighted / len(records),
        samples_per_bit=first.samples_per_bit,
        cycles_total=cycles_total,
        frequency_hz=first.frequency_hz,
    )
