"""Figure 3 — secret-dependent rollback timing difference (no eviction sets).

For 1..8 squashed transient loads, the latency gap between secret=1 and
secret=0 rounds on CleanupSpec. Paper: 22 cycles at one load, growing
slowly (to about 25 at eight loads) — "more transient loads do not
necessarily yield a significant growth of timing difference".
"""

from __future__ import annotations

from ..attack.gadgets import GadgetParams
from ..attack.unxpec import UnxpecAttack
from .base import Experiment, ExperimentResult
from .registry import register

LOAD_COUNTS = (1, 2, 3, 4, 5, 6, 7, 8)


def timing_difference_series(
    use_eviction_sets: bool, seed: int, load_counts=LOAD_COUNTS
):
    """(loads -> (diff, sample1, sample0)) for one attack variant.

    Shared by the Fig. 3 and Fig. 6 experiments and their benchmarks.
    """
    series = {}
    for n_loads in load_counts:
        attack = UnxpecAttack(
            params=GadgetParams(n_loads=n_loads),
            use_eviction_sets=use_eviction_sets,
            seed=seed,
        )
        attack.prepare()
        s0 = attack.sample(0)
        s1 = attack.sample(1)
        series[n_loads] = (s1.latency - s0.latency, s1, s0)
    return series


@register
class Fig3TimingDifference(Experiment):
    id = "fig3"
    title = "Rollback timing difference vs #squashed loads (Figure 3)"
    paper_claim = (
        "22-cycle difference with a single squashed load, growing slowly "
        "(about 25 cycles at 8 loads); sufficient for a timing channel"
    )

    def run(self, quick: bool = False, seed: int = 0) -> ExperimentResult:
        load_counts = (1, 2, 4, 8) if quick else LOAD_COUNTS
        result = self.new_result()
        series = timing_difference_series(False, seed, load_counts)

        tbl = result.table(
            "timing_difference",
            ["squashed loads", "diff (cycles)", "inval L1", "inval L2", "restored"],
        )
        for n_loads in load_counts:
            diff, s1, _ = series[n_loads]
            tbl.add(n_loads, diff, s1.invalidated_l1, s1.invalidated_l2, s1.restored_l1)

        diffs = [series[n][0] for n in load_counts]
        result.metric("diff_1_load", diffs[0])
        result.metric("diff_max", max(diffs))
        result.check_band("single_load_diff", diffs[0], 18, 26, "22 cycles")
        result.check(
            "monotone_nondecreasing",
            all(b >= a for a, b in zip(diffs, diffs[1:])),
            f"series {diffs} never shrinks with more loads",
        )
        result.check(
            "slow_growth",
            max(diffs) - diffs[0] <= 8,
            f"growth over the sweep is {max(diffs) - diffs[0]} cycles (slow, "
            "paper: ~3 cycles from 1 to 8 loads)",
        )
        result.check(
            "exploitable",
            diffs[0] >= 15,
            "difference exceeds the ~15-cycle resolution needed for a covert "
            "channel [refs 3, 46 in paper]",
        )
        return result
