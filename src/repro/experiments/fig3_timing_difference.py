"""Figure 3 — secret-dependent rollback timing difference (no eviction sets).

For 1..8 squashed transient loads, the latency gap between secret=1 and
secret=0 rounds on CleanupSpec. Paper: 22 cycles at one load, growing
slowly (to about 25 at eight loads) — "more transient loads do not
necessarily yield a significant growth of timing difference".
"""

from __future__ import annotations

from typing import List

from ..attack.gadgets import GadgetParams
from ..attack.unxpec import UnxpecAttack
from .base import Shard, ShardableExperiment
from .registry import register

LOAD_COUNTS = (1, 2, 3, 4, 5, 6, 7, 8)


def timing_difference_series(
    use_eviction_sets: bool, seed: int, load_counts=LOAD_COUNTS
):
    """(loads -> (diff, sample1, sample0)) for one attack variant.

    Shared by the Fig. 3 and Fig. 6 experiments and their benchmarks.
    """
    series = {}
    for n_loads in load_counts:
        attack = UnxpecAttack(
            params=GadgetParams(n_loads=n_loads),
            use_eviction_sets=use_eviction_sets,
            seed=seed,
        )
        attack.prepare()
        s0 = attack.sample(0)
        s1 = attack.sample(1)
        series[n_loads] = (s1.latency - s0.latency, s1, s0)
    return series


@register
class Fig3TimingDifference(ShardableExperiment):
    id = "fig3"
    title = "Rollback timing difference vs #squashed loads (Figure 3)"
    paper_claim = (
        "22-cycle difference with a single squashed load, growing slowly "
        "(about 25 cycles at 8 loads); sufficient for a timing channel"
    )

    # Each load count builds its own attack instance from the master seed
    # (exactly as the serial loop always did), so the parameter sweep is
    # embarrassingly parallel: one shard per point.

    def shard_plan(self, quick: bool = False, seed: int = 0) -> List[Shard]:
        load_counts = (1, 2, 4, 8) if quick else LOAD_COUNTS
        return [
            Shard(index=i, count=1, tag=f"loads={n}", params={"n_loads": n})
            for i, n in enumerate(load_counts)
        ]

    def run_shard(self, shard: Shard, quick: bool = False, seed: int = 0) -> dict:
        n_loads = shard.params["n_loads"]
        attack = UnxpecAttack(
            params=GadgetParams(n_loads=n_loads), use_eviction_sets=False, seed=seed
        )
        attack.prepare()
        s0 = attack.sample(0)
        s1 = attack.sample(1)
        return {
            "n_loads": n_loads,
            "diff": s1.latency - s0.latency,
            "inval_l1": s1.invalidated_l1,
            "inval_l2": s1.invalidated_l2,
            "restored": s1.restored_l1,
        }

    def merge_shards(self, partials, quick: bool = False, seed: int = 0):
        result = self.new_result()
        tbl = result.table(
            "timing_difference",
            ["squashed loads", "diff (cycles)", "inval L1", "inval L2", "restored"],
        )
        for p in partials:
            tbl.add(p["n_loads"], p["diff"], p["inval_l1"], p["inval_l2"], p["restored"])

        diffs = [p["diff"] for p in partials]
        result.metric("diff_1_load", diffs[0])
        result.metric("diff_max", max(diffs))
        result.check_band("single_load_diff", diffs[0], 18, 26, "22 cycles")
        result.check(
            "monotone_nondecreasing",
            all(b >= a for a, b in zip(diffs, diffs[1:])),
            f"series {diffs} never shrinks with more loads",
        )
        result.check(
            "slow_growth",
            max(diffs) - diffs[0] <= 8,
            f"growth over the sweep is {max(diffs) - diffs[0]} cycles (slow, "
            "paper: ~3 cycles from 1 to 8 loads)",
        )
        result.check(
            "exploitable",
            diffs[0] >= 15,
            "difference exceeds the ~15-cycle resolution needed for a covert "
            "channel [refs 3, 46 in paper]",
        )
        return result
