"""Figure 7 — latency PDF without eviction sets (KDE over 1,000 samples).

Collects per-secret latency distributions under the calibrated noise model
and estimates their densities with the same Gaussian KDE the paper's
artifact uses (``kde.m``). Paper: the two densities are separable with an
average difference of 22 cycles; the decode threshold is read off the
crossing (the artifact picks 178 for its absolute latencies — absolute
offsets differ between simulators, so we check the *difference* and the
separability, and report our threshold).
"""

from __future__ import annotations

from ..attack.calibration import CalibrationResult, calibrate
from ..attack.unxpec import UnxpecAttack
from ..cpu.noise import campaign_noise
from .base import Experiment, ExperimentResult
from .registry import register


def collect_distributions(
    use_eviction_sets: bool, seed: int, rounds_per_class: int
) -> CalibrationResult:
    """Noise-model latency distributions for one attack variant."""
    attack = UnxpecAttack(
        use_eviction_sets=use_eviction_sets, noise=campaign_noise(), seed=seed
    )
    return calibrate(attack, rounds_per_class=rounds_per_class)


def fill_pdf_result(
    result: ExperimentResult,
    cal: CalibrationResult,
    diff_lo: float,
    diff_hi: float,
    paper_diff: str,
) -> None:
    """Shared table/metric/check structure of Figs. 7 and 8."""
    curve0 = cal.curve(0, points=60)
    curve1 = cal.curve(1, points=60)
    tbl = result.table(
        "density", ["latency (cycles)", "pdf secret=0", "pdf secret=1"]
    )
    for x, d0, d1 in zip(curve0.grid, curve0.density, curve1.density):
        tbl.add(round(x, 1), round(d0, 5), round(d1, 5))

    mean0 = sum(cal.zeros) / len(cal.zeros)
    mean1 = sum(cal.ones) / len(cal.ones)
    result.metric("mean_secret0", mean0)
    result.metric("mean_secret1", mean1)
    result.metric("mean_difference", cal.mean_difference)
    result.metric("threshold", cal.threshold)
    result.metric("mode_secret0", curve0.mode)
    result.metric("mode_secret1", curve1.mode)

    result.check_band(
        "mean_difference", cal.mean_difference, diff_lo, diff_hi, paper_diff
    )
    result.check(
        "separable",
        curve1.mode > curve0.mode,
        f"secret=1 mode ({curve1.mode:.0f}) lies above secret=0 mode "
        f"({curve0.mode:.0f})",
    )
    result.check(
        "threshold_between_modes",
        curve0.mode < cal.threshold < curve1.mode + 20,
        f"threshold {cal.threshold:.0f} sits between the density peaks",
    )


@register
class Fig7Pdf(Experiment):
    id = "fig7"
    title = "Latency PDF without eviction sets (Figure 7)"
    paper_claim = (
        "KDE of 1,000 samples per secret shows two separable densities with "
        "a 22-cycle average difference; threshold chosen between them"
    )

    def run(self, quick: bool = False, seed: int = 0) -> ExperimentResult:
        rounds = 200 if quick else 1000
        result = self.new_result()
        cal = collect_distributions(False, seed, rounds)
        fill_pdf_result(result, cal, diff_lo=15, diff_hi=29, paper_diff="22 cycles")
        return result
