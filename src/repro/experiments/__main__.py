"""Command-line experiment runner.

Usage::

    python -m repro.experiments list
    python -m repro.experiments fig3
    python -m repro.experiments all --quick
    python -m repro.experiments fig7 --json out.json --seed 7
    python -m repro.experiments fig3 --quick --stats-out stats.json

``--stats-out`` attaches a process-wide :class:`~repro.obs.Observability`
for the duration of the run — every core/hierarchy/defense the experiments
construct registers its counters — and writes the hierarchical stats dump
(plus per-experiment wall-clock profile) as JSON. Pretty-print it with
``python -m repro.obs stats.json``.
"""

from __future__ import annotations

import argparse
import sys
import time
from contextlib import nullcontext
from typing import List, Optional

from . import registry


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the unXpec paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        help="experiment id (see 'list'), or 'all', 'list', or 'report'",
    )
    parser.add_argument(
        "--quick", action="store_true", help="fewer samples, faster run"
    )
    parser.add_argument("--seed", type=int, default=0, help="master seed")
    parser.add_argument("--json", metavar="PATH", help="also dump result JSON")
    parser.add_argument(
        "--csv", metavar="DIR", help="also dump every result table as CSV"
    )
    parser.add_argument(
        "--out", metavar="PATH", default="REPORT.md", help="report output path"
    )
    parser.add_argument(
        "--stats-out",
        metavar="PATH",
        help="dump hierarchical stats + phase profile JSON after the run",
    )
    args = parser.parse_args(argv)

    obs = None
    if args.stats_out:
        from ..obs import Observability, observe

        # "squash" keeps only the security-relevant events in the ring so
        # campaign-scale runs don't pay for per-commit tracing.
        obs = Observability(trace_level="squash")
        attached = observe(obs)
    else:
        attached = nullcontext()

    with attached:
        code = _dispatch(args, obs)
    if obs is not None:
        obs.dump_json(args.stats_out)
        print(f"wrote {args.stats_out}")
    return code


def _dispatch(args: argparse.Namespace, obs) -> int:
    if args.experiment == "report":
        from .report import write_report

        results = write_report(
            args.out,
            quick=args.quick,
            seed=args.seed,
            profiler=obs.profiler if obs is not None else None,
        )
        ok = sum(1 for r in results for c in r.checks if c.passed)
        total = sum(len(r.checks) for r in results)
        print(f"wrote {args.out}: {ok}/{total} checks passed")
        return 0 if ok == total else 1

    if args.experiment == "list":
        for exp_id in registry.all_ids():
            exp = registry.get(exp_id)
            print(f"{exp_id:14s} {exp.title}")
        return 0

    ids = registry.all_ids() if args.experiment == "all" else [args.experiment]
    failed = 0
    for exp_id in ids:
        exp = registry.get(exp_id)
        started = time.time()
        if obs is not None:
            with obs.profile(f"experiment.{exp_id}"):
                result = exp.run(quick=args.quick, seed=args.seed)
        else:
            result = exp.run(quick=args.quick, seed=args.seed)
        elapsed = time.time() - started
        print(result.render())
        print(f"({elapsed:.1f}s)")
        print()
        if args.json:
            path = args.json if len(ids) == 1 else f"{exp_id}_{args.json}"
            result.dump_json(path)
        if args.csv:
            result.dump_csv(args.csv)
        if not result.all_passed:
            failed += 1
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
