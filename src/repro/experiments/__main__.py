"""Command-line experiment runner (parallel, cached).

Usage::

    python -m repro.experiments                      # full cached report
    python -m repro.experiments --jobs 8             # ... on 8 workers
    python -m repro.experiments list
    python -m repro.experiments fig3
    python -m repro.experiments all --quick --no-cache
    python -m repro.experiments fig7 --json out.json --seed 7
    python -m repro.experiments fig3 --quick --stats-out stats.json
    python -m repro.experiments lint-program gadget:round   # static analyzer

``lint-program`` forwards to :mod:`repro.analysis.specct` — the
speculative-taint static analyzer (also installed as ``unxpec
lint-program``); see ``docs/static-analysis.md``.

Every run goes through :mod:`repro.campaign`: shardable experiments split
across ``--jobs`` worker processes (default: all cores), and merged
results land in a content-addressed cache keyed by experiment id, config,
and a hash of the ``repro`` sources — so re-running a campaign only
recomputes figures whose code or config actually changed.  ``--jobs 1``
and ``--jobs N`` produce bit-identical tables/metrics/checks (see
docs/campaign.md for the determinism contract).

``--stats-out`` writes the hierarchical stats dump merged across every
worker (plus the parent's per-experiment wall-clock profile and the
campaign span tree) as JSON.  Pretty-print it with ``python -m repro.obs
stats.json``; re-render it with ``--format openmetrics`` / ``folded``.
``--metrics-out`` writes the same merged stats directly as an
OpenMetrics/Prometheus textfile (plus ``PATH.folded`` flamegraph input),
and ``--events-out`` streams live campaign lifecycle events as JSONL for
``python -m repro.tools.campaign_top``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import List, Optional

from . import registry

#: Default cache location (overridable with --cache-dir / REPRO_CACHE_DIR).
DEFAULT_CACHE_DIR = ".campaign-cache"


def main(argv: Optional[List[str]] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "lint-program":
        # `unxpec lint-program <target>` — the specct static analyzer.
        from ..analysis.specct.__main__ import main as specct_main

        return specct_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the unXpec paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        default="report",
        help="experiment id (see 'list'), or 'all', 'list', 'report' (the "
        "default), or 'lint-program <target>' for the static analyzer",
    )
    parser.add_argument(
        "--quick", action="store_true", help="fewer samples, faster run"
    )
    parser.add_argument("--seed", type=int, default=0, help="master seed")
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for shard execution (default: all cores); "
        "results are bit-identical for any value",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR),
        help="result cache directory (default: %(default)s)",
    )
    parser.add_argument(
        "--no-cache", action="store_true", help="disable the result cache"
    )
    parser.add_argument(
        "--cache-clear",
        action="store_true",
        help="delete every cache entry before running",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=1,
        metavar="N",
        help="retry a task up to N times on transient faults (OSError, "
        "timeouts, broken pools); deterministic failures never retry "
        "(default: %(default)s)",
    )
    parser.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-attempt wall-clock budget for one shard/run task; an "
        "attempt over budget is killed and counts as a transient fault "
        "(default: no timeout)",
    )
    parser.add_argument("--json", metavar="PATH", help="also dump result JSON")
    parser.add_argument(
        "--csv", metavar="DIR", help="also dump every result table as CSV"
    )
    parser.add_argument(
        "--out", metavar="PATH", default="REPORT.md", help="report output path"
    )
    parser.add_argument(
        "--stats-out",
        metavar="PATH",
        help="dump merged hierarchical stats + phase profile + span-tree "
        "JSON after the run",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        help="dump the merged stats as an OpenMetrics/Prometheus textfile "
        "(plus PATH.folded, a flamegraph-compatible folded-stack profile)",
    )
    parser.add_argument(
        "--events-out",
        metavar="PATH",
        help="stream campaign lifecycle events (task.submit/start/retry/"
        "cache_hit/done/failed) as JSONL; tail it live with "
        "python -m repro.tools.campaign_top PATH --follow",
    )
    parser.add_argument(
        "--backend",
        choices=("scalar", "batched"),
        default=os.environ.get("REPRO_BACKEND", "scalar"),
        help="execution backend for attack cores: 'scalar' is the reference "
        "one-round-at-a-time model, 'batched' memoizes and replays repeated "
        "rounds (bit-identical results, same cache keys and digests; "
        "default: %(default)s, or $REPRO_BACKEND)",
    )
    parser.add_argument(
        "--no-spans",
        action="store_true",
        help="disable campaign span recording (spans are task-granularity "
        "and near-free; this exists for overhead A/B measurement)",
    )
    args = parser.parse_args(argv)

    if args.experiment == "list":
        for exp_id in registry.all_ids():
            exp = registry.get(exp_id)
            print(f"{exp_id:14s} {exp.title}")
        return 0

    from ..campaign import CampaignEventLog, CampaignRunner, ResultCache
    from ..obs import Profiler

    cache = None
    if not args.no_cache:
        cache = ResultCache(args.cache_dir)
        if args.cache_clear:
            removed = cache.clear()
            print(f"cleared {removed} cache entries from {args.cache_dir}",
                  file=sys.stderr)
    event_log = CampaignEventLog(path=args.events_out) if args.events_out else None
    runner = CampaignRunner(
        jobs=args.jobs,
        cache=cache,
        progress=lambda msg: print(f"[campaign] {msg}", file=sys.stderr),
        retries=args.retries,
        task_timeout=args.task_timeout,
        spans=not args.no_spans,
        event_log=event_log,
        backend=args.backend,
    )
    profiler = Profiler()

    try:
        code = _dispatch(args, runner, profiler)
    finally:
        if event_log is not None:
            event_log.close()
    if args.stats_out:
        print(f"wrote {args.stats_out}")
    if args.metrics_out:
        _write_metrics(args.metrics_out, runner, profiler)
        print(f"wrote {args.metrics_out}")
    if args.events_out:
        print(f"wrote {args.events_out}")
    failed = [o for o in runner.last_outcomes if o.failed]
    if failed:
        for outcome in failed:
            print(
                f"FAILED {outcome.experiment_id}: {outcome.error}", file=sys.stderr
            )
        code = code or 1
    return code


def _dispatch(args: argparse.Namespace, runner, profiler) -> int:
    if args.experiment == "report":
        from .report import write_report

        started = time.perf_counter()
        results = write_report(
            args.out,
            quick=args.quick,
            seed=args.seed,
            profiler=profiler,
            runner=runner,
        )
        if args.stats_out:
            _write_stats(args.stats_out, runner, profiler)
        ok = sum(1 for r in results for c in r.checks if c.passed)
        total = sum(len(r.checks) for r in results)
        hits = runner.cache.hits if runner.cache is not None else 0
        print(
            f"wrote {args.out}: {ok}/{total} checks passed "
            f"({time.perf_counter() - started:.0f}s, {hits} cache hits)"
        )
        return 0 if ok == total else 1

    ids = registry.all_ids() if args.experiment == "all" else [args.experiment]
    outcomes = runner.run(ids=ids, quick=args.quick, seed=args.seed, profiler=profiler)
    if args.stats_out:
        _write_stats(args.stats_out, runner, profiler)
    failed = 0
    for outcome in outcomes:
        result = outcome.result
        print(result.render())
        source = "cache" if outcome.cached else f"{outcome.n_shards} shards"
        print(f"({outcome.wall_seconds:.1f}s, {source})")
        print()
        if args.json:
            result.dump_json(_json_path(args.json, outcome.experiment_id, len(ids) > 1))
        if args.csv:
            result.dump_csv(args.csv)
        if not result.all_passed:
            failed += 1
    return 1 if failed else 0


def _json_path(json_arg: str, experiment_id: str, multiple: bool) -> str:
    """The per-experiment ``--json`` output path.

    With several experiments the id prefixes the *basename* only —
    ``out/res.json`` becomes ``out/fig3_res.json``, never the mangled
    ``fig3_out/res.json``.
    """
    if not multiple:
        return json_arg
    directory, base = os.path.split(json_arg)
    return os.path.join(directory, f"{experiment_id}_{base}")


def _write_stats(path: str, runner, profiler) -> None:
    """The ``--stats-out`` document: worker stats merged across all tasks."""
    from ..campaign import merge_snapshots, merge_trace_meta, snapshot_values
    from ..obs import nest_dotted

    outcomes = runner.last_outcomes
    merged = merge_snapshots([o.stats for o in outcomes])
    doc = {
        "stats": nest_dotted(snapshot_values(merged)),
        "profile": profiler.to_dict(),
        "trace": merge_trace_meta([o.trace_meta for o in outcomes]),
        "spans": runner.span_tree(),
    }
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True, default=str)
        fh.write("\n")


def _write_metrics(path: str, runner, profiler) -> None:
    """The ``--metrics-out`` pair: OpenMetrics textfile + folded stacks.

    ``PATH`` gets the merged campaign stats in Prometheus-textfile form;
    ``PATH.folded`` gets the parent's phase profile as flamegraph input.
    """
    from ..campaign import merge_snapshots
    from ..obs import profiler_to_folded, to_openmetrics

    merged = merge_snapshots([o.stats for o in runner.last_outcomes])
    snapshot = {name: entry for name, (_, entry) in merged.items()}
    kinds = {name: kind for name, (kind, _) in merged.items()}
    with open(path, "w") as fh:
        fh.write(to_openmetrics(snapshot, kinds))
    with open(path + ".folded", "w") as fh:
        fh.write(profiler_to_folded(profiler.to_dict()))


if __name__ == "__main__":
    sys.exit(main())
