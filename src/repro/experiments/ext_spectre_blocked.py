"""Extension A — CleanupSpec stops Spectre's footprint but not unXpec.

This is the paper's framing made executable: Undo rollback really erases
the transient *footprint* (classic Spectre v1 + Flush+Reload fails against
CleanupSpec while succeeding on the unsafe baseline), yet the rollback
*duration* still leaks (unXpec succeeds on the very same protected
machine).
"""

from __future__ import annotations

from ..attack.spectre import SpectreV1Attack
from ..attack.unxpec import UnxpecAttack
from ..defense.cleanupspec import CleanupSpec
from .base import Experiment, ExperimentResult
from .registry import register


@register
class ExtSpectreBlocked(Experiment):
    id = "ext_spectre"
    title = "Spectre v1 vs CleanupSpec vs unXpec (extension)"
    paper_claim = (
        "Undo rollback removes the cache footprint Spectre needs, but its "
        "duration is itself a channel — the paper's core thesis"
    )

    def run(self, quick: bool = False, seed: int = 0) -> ExperimentResult:
        secrets = (3, 7, 11) if quick else (1, 3, 5, 7, 9, 11, 13, 15)
        result = self.new_result()
        tbl = result.table(
            "spectre_rounds",
            ["secret", "unsafe guess", "unsafe hot", "cleanupspec guess", "cleanupspec hot"],
        )

        unsafe_ok = 0
        cleanup_leaks = 0
        for secret in secrets:
            unsafe = SpectreV1Attack(seed=seed)
            r_unsafe = unsafe.run(secret)
            protected = SpectreV1Attack(
                defense_factory=lambda h: CleanupSpec(h), seed=seed
            )
            r_prot = protected.run(secret)
            unsafe_ok += int(r_unsafe.success)
            cleanup_leaks += int(len(r_prot.hot_values) > 0)
            tbl.add(
                secret,
                r_unsafe.guess,
                r_unsafe.hot_values,
                r_prot.guess,
                r_prot.hot_values,
            )

        # unXpec against the same protected machine still distinguishes bits.
        unxpec = UnxpecAttack(seed=seed)
        unxpec.prepare()
        diff = unxpec.sample(1).latency - unxpec.sample(0).latency
        result.metric("spectre_unsafe_success", unsafe_ok / len(secrets))
        result.metric("spectre_cleanupspec_footprints", cleanup_leaks)
        result.metric("unxpec_diff_on_cleanupspec", diff)

        result.check(
            "spectre_works_unprotected",
            unsafe_ok == len(secrets),
            f"Spectre recovered {unsafe_ok}/{len(secrets)} secrets on the "
            "unsafe baseline",
        )
        result.check(
            "spectre_blocked_by_cleanupspec",
            cleanup_leaks == 0,
            "the probe found no transient footprint on CleanupSpec "
            f"({cleanup_leaks} leaks)",
        )
        result.check(
            "unxpec_still_leaks",
            diff >= 15,
            f"unXpec's timing difference on CleanupSpec is {diff} cycles",
        )
        return result
