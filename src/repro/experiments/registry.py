"""Registry mapping experiment ids to implementations."""

from __future__ import annotations

from typing import Dict, List, Type

from ..common.errors import ExperimentError
from .base import Experiment

_REGISTRY: Dict[str, Type[Experiment]] = {}


def register(cls: Type[Experiment]) -> Type[Experiment]:
    """Class decorator adding an experiment to the registry."""
    if not cls.id:
        raise ExperimentError(f"{cls.__name__} has no id")
    if cls.id in _REGISTRY:
        raise ExperimentError(f"duplicate experiment id {cls.id!r}")
    _REGISTRY[cls.id] = cls
    return cls


def get(experiment_id: str) -> Experiment:
    return get_class(experiment_id)()


def get_class(experiment_id: str) -> Type[Experiment]:
    """The registered class itself (campaign workers instantiate lazily)."""
    _ensure_loaded()
    try:
        return _REGISTRY[experiment_id]
    except KeyError as exc:
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; available: {all_ids()}"
        ) from exc


def all_ids() -> List[str]:
    _ensure_loaded()
    return sorted(_REGISTRY)


def _ensure_loaded() -> None:
    """Import every experiment module exactly once (they self-register)."""
    from . import (  # noqa: F401
        ablations,
        ext_fuzzy_defense,
        ext_interference,
        ext_invisible_vs_undo,
        ext_rewind,
        ext_spectre_blocked,
        fig1_timeline,
        fig2_branch_resolution,
        fig3_timing_difference,
        fig6_timing_difference_evset,
        fig7_pdf,
        fig8_pdf_evset,
        fig9_secret_bits,
        fig10_leakage,
        fig11_leakage_evset,
        fig12_overhead,
        fig13_real_cpu,
        leakage_rate,
        matrix_grid,
        synth_gadgets,
        table1_setup,
    )
