"""Ablation experiments for the design choices DESIGN.md calls out.

These go beyond the paper's figures: each isolates one mechanism of the
attack or the protected cache and measures its contribution.

* ``abl_cleanup_mode`` — how much of the channel comes from the L2
  invalidation round trip (Cleanup_FOR_L1 vs Cleanup_FOR_L1L2)?
* ``abl_samples``    — noise suppression by repetition (paper §VI-D says
  "use more samples per secret"; here is the curve).
* ``abl_window``     — does the channel depend on the squash-identification
  delay (a pipeline detail the paper never controls)?
* ``abl_capacity``   — information-theoretic capacity of both attack
  variants (mutual information and BSC capacity per sample).
* ``abl_replacement`` — the age probe that justifies CleanupSpec's random
  L1 replacement: accurate on LRU, chance on random.
"""

from __future__ import annotations

from ..analysis.channel_capacity import analyze_channel
from ..attack.calibration import calibrate
from ..attack.campaign import LeakageCampaign
from ..attack.gadgets import GadgetParams
from ..attack.replacement_probe import probe_accuracy_under_policy
from ..attack.secrets import random_bits
from ..attack.unxpec import UnxpecAttack
from ..cpu.noise import campaign_noise
from ..defense.cleanup_timing import CleanupMode
from ..defense.cleanupspec import CleanupSpec
from .base import Experiment, ExperimentResult
from .registry import register


@register
class AblationCleanupMode(Experiment):
    id = "abl_cleanup_mode"
    title = "Ablation: L1-only vs L1+L2 cleanup (channel decomposition)"
    paper_claim = (
        "the artifact runs Cleanup_FOR_L1L2; the L2 invalidation round trip "
        "should carry most of the 22-cycle difference"
    )

    def run(self, quick: bool = False, seed: int = 0) -> ExperimentResult:
        load_counts = (1, 4) if quick else (1, 2, 4, 8)
        result = self.new_result()
        tbl = result.table(
            "mode_comparison", ["squashed loads", "L1-only diff", "L1+L2 diff"]
        )
        diffs = {}
        for mode in (CleanupMode.CLEANUP_FOR_L1, CleanupMode.CLEANUP_FOR_L1L2):
            for n in load_counts:
                attack = UnxpecAttack(
                    params=GadgetParams(n_loads=n),
                    defense_factory=lambda h, m=mode: CleanupSpec(h, mode=m),
                    seed=seed,
                )
                attack.prepare()
                diffs[(mode, n)] = attack.sample(1).latency - attack.sample(0).latency
        for n in load_counts:
            tbl.add(
                n,
                diffs[(CleanupMode.CLEANUP_FOR_L1, n)],
                diffs[(CleanupMode.CLEANUP_FOR_L1L2, n)],
            )

        l1_only = diffs[(CleanupMode.CLEANUP_FOR_L1, 1)]
        full = diffs[(CleanupMode.CLEANUP_FOR_L1L2, 1)]
        result.metric("l1_only_diff_1_load", l1_only)
        result.metric("l1l2_diff_1_load", full)
        result.check(
            "l1_only_still_leaks",
            l1_only >= 3,
            f"even L1-only invalidation leaks {l1_only} cycles",
        )
        result.check(
            "l2_roundtrip_dominates",
            full - l1_only >= 10,
            f"the L2 invalidation adds {full - l1_only} of the {full} cycles",
        )
        return result


@register
class AblationSamplesPerBit(Experiment):
    id = "abl_samples"
    title = "Ablation: accuracy vs samples per bit (noise suppression)"
    paper_claim = (
        "SVI-D: the attacker can use more samples per secret to suppress "
        "noise — accuracy should rise monotonically-ish with votes"
    )

    SAMPLES = (1, 3, 5, 7)

    def run(self, quick: bool = False, seed: int = 0) -> ExperimentResult:
        bits = 80 if quick else 250
        result = self.new_result()
        tbl = result.table("voting", ["samples per bit", "accuracy"])
        accuracies = []
        for spb in self.SAMPLES:
            attack = UnxpecAttack(noise=campaign_noise(), seed=seed + 31)
            campaign = LeakageCampaign(
                attack, samples_per_bit=spb, calibration_rounds=100
            )
            acc = campaign.run(random_bits(bits, seed=seed, tag="abl-samples")).accuracy
            accuracies.append(acc)
            tbl.add(spb, round(acc, 3))
        result.metric("accuracy_1_sample", accuracies[0])
        result.metric("accuracy_7_samples", accuracies[-1])
        result.check(
            "voting_helps",
            accuracies[-1] >= accuracies[0] + 0.03,
            f"7-sample voting lifts accuracy from {accuracies[0]:.1%} to "
            f"{accuracies[-1]:.1%}",
        )
        result.check(
            "high_confidence_reachable",
            accuracies[-1] >= 0.93,
            f"with 7 votes the channel reaches {accuracies[-1]:.1%}",
        )
        return result


@register
class AblationSquashWindow(Experiment):
    id = "abl_window"
    title = "Ablation: channel vs squash-identification delay"
    paper_claim = (
        "the channel should not hinge on the squash-delay pipeline detail "
        "(the gem5 artifact never tunes it) — only on the rollback work"
    )

    DELAYS = (8, 12, 16, 24)

    def run(self, quick: bool = False, seed: int = 0) -> ExperimentResult:
        delays = (8, 16) if quick else self.DELAYS
        result = self.new_result()
        tbl = result.table("window_sweep", ["squash delay (cycles)", "diff"])
        diffs = []
        for delay in delays:
            attack = UnxpecAttack(seed=seed)
            attack.core.squash_delay = delay
            attack.prepare()
            diff = attack.sample(1).latency - attack.sample(0).latency
            diffs.append(diff)
            tbl.add(delay, diff)
        result.metric("diff_min", min(diffs))
        result.metric("diff_max", max(diffs))
        result.check(
            "channel_robust",
            min(diffs) >= 18,
            f"the difference stays >= 18 cycles across delays {list(delays)}",
        )
        result.check(
            "work_not_window",
            max(diffs) - min(diffs) <= 4,
            f"varying the window moves the difference by only "
            f"{max(diffs) - min(diffs)} cycles — the rollback work sets it",
        )
        return result


@register
class AblationChannelCapacity(Experiment):
    id = "abl_capacity"
    title = "Ablation: information-theoretic channel capacity"
    paper_claim = (
        "86.7% / 91.6% single-sample accuracy and ~140k samples/s imply a "
        "capacity of tens of Kbit/s; eviction sets raise per-sample "
        "information"
    )

    def run(self, quick: bool = False, seed: int = 0) -> ExperimentResult:
        rounds = 120 if quick else 500
        result = self.new_result()
        tbl = result.table(
            "capacity",
            [
                "variant",
                "MI (bits/sample)",
                "BSC capacity (bits/sample)",
                "MI capacity (Kbps)",
            ],
        )
        reports = {}
        for evset in (False, True):
            attack = UnxpecAttack(
                use_eviction_sets=evset, noise=campaign_noise(), seed=seed + 7
            )
            cal = calibrate(attack, rounds_per_class=rounds)
            campaign = LeakageCampaign(attack, calibration_rounds=rounds)
            campaign.calibration = cal
            run = campaign.run(random_bits(150 if quick else 300, seed=seed, tag="cap"))
            report = analyze_channel(
                cal.zeros,
                cal.ones,
                error_rate=1 - run.accuracy,
                cycles_per_sample=run.cycles_per_sample,
            )
            reports[evset] = report
            tbl.add(
                "evsets" if evset else "plain",
                round(report.mutual_information_bits, 3),
                round(report.bsc_capacity_bits, 3),
                round(report.capacity_kbps, 1),
            )

        result.metric("mi_plain", reports[False].mutual_information_bits)
        result.metric("mi_evsets", reports[True].mutual_information_bits)
        result.metric("capacity_evsets_kbps", reports[True].capacity_kbps)
        result.check(
            "evsets_carry_more_information",
            reports[True].mutual_information_bits
            > reports[False].mutual_information_bits,
            f"MI rises from {reports[False].mutual_information_bits:.2f} to "
            f"{reports[True].mutual_information_bits:.2f} bits/sample",
        )
        result.check(
            "mi_bounds_threshold_decoder",
            all(r.mutual_information_bits >= r.bsc_capacity_bits - 0.05 for r in reports.values()),
            "the MI upper bound is consistent with the threshold decoder's rate",
        )
        result.check(
            "substantial_capacity",
            reports[True].capacity_kbps > 50,
            f"capacity {reports[True].capacity_kbps:.0f} Kbps — same order as "
            "the paper's 140 Kbps x 0.59 bits",
        )
        return result


@register
class AblationTrainIters(Experiment):
    id = "abl_train"
    title = "Ablation: mistraining effort vs rate (attack parameterisation)"
    paper_claim = (
        "SV-C: round cost trades off against robustness; a 2-bit counter "
        "needs little re-training per round, so rate scales with the "
        "mistraining count while accuracy holds"
    )

    TRAIN_COUNTS = (1, 4, 16, 64, 100)

    def run(self, quick: bool = False, seed: int = 0) -> ExperimentResult:
        counts = (1, 16, 100) if quick else self.TRAIN_COUNTS
        bits = 60 if quick else 150
        result = self.new_result()
        tbl = result.table(
            "train_sweep",
            ["train iters", "cycles/round", "Kbps @2GHz", "accuracy (noisy)"],
        )
        rows = {}
        for train in counts:
            attack = UnxpecAttack(
                params=GadgetParams(train_iters=train),
                noise=campaign_noise(),
                seed=seed + 3,
            )
            campaign = LeakageCampaign(attack, calibration_rounds=80)
            run = campaign.run(random_bits(bits, seed=seed, tag="abl-train"))
            rows[train] = (run.cycles_per_bit, run.leakage.kbps, run.accuracy)
            tbl.add(train, round(run.cycles_per_bit), round(run.leakage.kbps), round(run.accuracy, 3))

        result.metric("kbps_min_train", rows[counts[0]][1])
        result.metric("kbps_max_train", rows[counts[-1]][1])
        result.metric("accuracy_min_train", rows[counts[0]][2])
        result.metric("accuracy_max_train", rows[counts[-1]][2])
        result.check(
            "rate_scales_with_training",
            rows[counts[0]][1] > 2 * rows[counts[-1]][1],
            f"rate falls from {rows[counts[0]][1]:.0f} to "
            f"{rows[counts[-1]][1]:.0f} Kbps as mistraining grows "
            f"{counts[0]} -> {counts[-1]}",
        )
        result.check(
            "accuracy_insensitive_to_training",
            abs(rows[counts[0]][2] - rows[counts[-1]][2]) <= 0.12,
            "the 2-bit counter re-trains in one invocation, so accuracy "
            f"holds ({rows[counts[0]][2]:.1%} vs {rows[counts[-1]][2]:.1%})",
        )
        return result


@register
class AblationSignificance(Experiment):
    id = "abl_significance"
    title = "Ablation: statistical significance of the channel"
    paper_claim = (
        "the 22/32-cycle differences and 86.7%/91.6% accuracies are "
        "statistically robust, not seed artefacts"
    )

    def run(self, quick: bool = False, seed: int = 0) -> ExperimentResult:
        from ..analysis.validation import (
            bootstrap_accuracy_ci,
            bootstrap_mean_difference_ci,
            separation_test,
        )

        rounds = 100 if quick else 400
        bits = 120 if quick else 400
        result = self.new_result()
        tbl = result.table(
            "significance",
            [
                "variant",
                "mean diff [95% CI]",
                "Welch p",
                "Cohen's d",
                "accuracy [95% CI]",
            ],
        )

        stats_by_variant = {}
        for evset in (False, True):
            attack = UnxpecAttack(
                use_eviction_sets=evset, noise=campaign_noise(), seed=seed + 11
            )
            cal = calibrate(attack, rounds_per_class=rounds)
            sep = separation_test(cal.zeros, cal.ones)
            diff_ci = bootstrap_mean_difference_ci(cal.zeros, cal.ones, seed=seed)
            campaign = LeakageCampaign(attack, calibration_rounds=rounds)
            campaign.calibration = cal
            run = campaign.run(random_bits(bits, seed=seed, tag="significance"))
            acc_ci = bootstrap_accuracy_ci(
                [r.guess for r in run.records],
                [r.secret for r in run.records],
                seed=seed,
            )
            stats_by_variant[evset] = (sep, diff_ci, acc_ci)
            tbl.add(
                "evsets" if evset else "plain",
                f"{diff_ci.estimate:.1f} [{diff_ci.low:.1f}, {diff_ci.high:.1f}]",
                f"{sep.welch_p:.2e}",
                round(sep.cohens_d, 2),
                f"{acc_ci.estimate:.3f} [{acc_ci.low:.3f}, {acc_ci.high:.3f}]",
            )

        plain_sep, plain_diff, plain_acc = stats_by_variant[False]
        ev_sep, ev_diff, ev_acc = stats_by_variant[True]
        result.metric("welch_p_plain", plain_sep.welch_p)
        result.metric("cohens_d_plain", plain_sep.cohens_d)
        result.metric("cohens_d_evsets", ev_sep.cohens_d)
        result.metric("diff_ci_low_plain", plain_diff.low)
        result.metric("acc_ci_low_evsets", ev_acc.low)

        result.check(
            "both_variants_significant",
            plain_sep.significant and ev_sep.significant,
            f"Welch p = {plain_sep.welch_p:.1e} / {ev_sep.welch_p:.1e} — far "
            "below any conventional threshold",
        )
        result.check(
            "large_effect_sizes",
            plain_sep.cohens_d > 0.8 and ev_sep.cohens_d > 0.8,
            f"Cohen's d {plain_sep.cohens_d:.2f} (plain) and "
            f"{ev_sep.cohens_d:.2f} (eviction sets) — both 'large' effects. "
            "(Eviction sets widen the mean gap but also the secret=1 spread; "
            "the decoder-relevant gain shows up as higher accuracy.)",
        )
        result.check(
            "diff_ci_excludes_zero",
            plain_diff.low > 5 and ev_diff.low > 10,
            "the 95% CIs of both mean differences exclude zero by a wide margin",
        )
        result.check(
            "accuracy_ci_above_chance",
            plain_acc.low > 0.6 and ev_acc.low > 0.7,
            "the accuracy CIs exclude coin-flip decoding",
        )
        return result


@register
class AblationGeometry(Experiment):
    id = "abl_geometry"
    title = "Ablation: channel magnitude vs cache geometry and memory latency"
    paper_claim = (
        "the timing difference is set by the rollback pipeline, not by the "
        "cache geometry or the DRAM latency — the attack ports across "
        "machine configurations"
    )

    def run(self, quick: bool = False, seed: int = 0) -> ExperimentResult:
        from dataclasses import replace

        from ..common.config import CacheGeometry, LatencyConfig, SystemConfig

        base = SystemConfig()
        variants = [
            ("paper (Table I)", base),
            (
                "smaller L1D (16 KB, 4-way, 64-set)",
                replace(
                    base,
                    l1d=CacheGeometry("L1D", 16 * 1024, ways=4, sets=64),
                ),
            ),
            (
                "slower DRAM (80 ns)",
                replace(base, latency=LatencyConfig(memory=160)),
            ),
            (
                "faster DRAM (30 ns)",
                replace(base, latency=LatencyConfig(memory=60)),
            ),
        ]
        if quick:
            variants = variants[:2]

        result = self.new_result()
        tbl = result.table(
            "geometry_sweep", ["configuration", "latency secret=0", "diff (cycles)"]
        )
        diffs = []
        for name, config in variants:
            attack = UnxpecAttack(config=config, seed=seed)
            attack.prepare()
            s0 = attack.sample(0)
            s1 = attack.sample(1)
            diffs.append(s1.latency - s0.latency)
            tbl.add(name, s0.latency, s1.latency - s0.latency)

        result.metric("diff_min", min(diffs))
        result.metric("diff_max", max(diffs))
        result.check(
            "channel_everywhere",
            min(diffs) >= 18,
            f"every configuration leaks >= 18 cycles (diffs {diffs})",
        )
        result.check(
            "magnitude_geometry_independent",
            max(diffs) - min(diffs) <= 4,
            f"the difference varies by only {max(diffs) - min(diffs)} cycles "
            "across configurations — it is a property of the rollback "
            "pipeline, not of the machine geometry",
        )
        return result


@register
class AblationReplacementPolicy(Experiment):
    id = "abl_replacement"
    title = "Ablation: why the protected L1 uses random replacement"
    paper_claim = (
        "SII-B: CleanupSpec uses random replacement to close "
        "replacement-state side channels (LRU-age attacks [5, 43])"
    )

    def run(self, quick: bool = False, seed: int = 0) -> ExperimentResult:
        trials = 32 if quick else 128
        result = self.new_result()
        lru = probe_accuracy_under_policy(True, trials=trials, seed=seed)
        rnd = probe_accuracy_under_policy(False, trials=trials, seed=seed)
        tbl = result.table("age_probe", ["L1 replacement", "probe accuracy"])
        tbl.add("LRU (unprotected)", round(lru, 3))
        tbl.add("random (CleanupSpec)", round(rnd, 3))
        result.metric("lru_accuracy", lru)
        result.metric("random_accuracy", rnd)
        result.check(
            "lru_leaks_perfectly",
            lru >= 0.95,
            f"the age probe reads victim accesses at {lru:.1%} on LRU",
        )
        result.check(
            "random_collapses_probe",
            rnd <= 0.70,
            f"random replacement drops the probe to {rnd:.1%} (chance-ish)",
        )
        return result
