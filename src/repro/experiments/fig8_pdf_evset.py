"""Figure 8 — latency PDF with eviction sets (KDE over 1,000 samples).

Same as Figure 7 with the restoration-forcing optimisation: the average
secret-dependent difference grows to 32 cycles and the densities separate
further (paper threshold: 183).
"""

from __future__ import annotations

from .base import Experiment, ExperimentResult
from .fig7_pdf import collect_distributions, fill_pdf_result
from .registry import register


@register
class Fig8PdfEvset(Experiment):
    id = "fig8"
    title = "Latency PDF with eviction sets (Figure 8)"
    paper_claim = (
        "with eviction sets the average secret-dependent difference grows "
        "from 22 to 32 cycles because rollback must additionally restore "
        "evicted lines from the lower hierarchy"
    )

    def run(self, quick: bool = False, seed: int = 0) -> ExperimentResult:
        rounds = 200 if quick else 1000
        result = self.new_result()
        cal_ev = collect_distributions(True, seed, rounds)
        fill_pdf_result(result, cal_ev, diff_lo=24, diff_hi=40, paper_diff="32 cycles")

        # The defining Fig. 7 -> Fig. 8 contrast: the gap widens.
        cal_plain = collect_distributions(False, seed, max(100, rounds // 4))
        result.metric("mean_difference_no_evsets", cal_plain.mean_difference)
        result.check(
            "wider_than_fig7",
            cal_ev.mean_difference > cal_plain.mean_difference + 4,
            f"evset diff {cal_ev.mean_difference:.1f} exceeds plain diff "
            f"{cal_plain.mean_difference:.1f} (paper: 32 vs 22)",
        )
        return result
