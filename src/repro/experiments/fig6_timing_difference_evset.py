"""Figure 6 — timing difference enlarged by eviction sets.

Same sweep as Figure 3 but with the attack's §V-B optimisation: the L1
sets of the transient-load targets are primed with eviction sets, forcing
one restoration per squashed load. Paper: the difference grows from about
32 cycles (1 load) to about 64 cycles (8 loads).
"""

from __future__ import annotations

from .base import Experiment, ExperimentResult
from .fig3_timing_difference import LOAD_COUNTS, timing_difference_series
from .registry import register


@register
class Fig6TimingDifferenceEvset(Experiment):
    id = "fig6"
    title = "Timing difference with eviction sets (Figure 6)"
    paper_claim = (
        "eviction sets enlarge the secret-dependent difference from ~22 to "
        "32 cycles at one load, up to ~64 cycles at eight loads"
    )

    def run(self, quick: bool = False, seed: int = 0) -> ExperimentResult:
        load_counts = (1, 2, 4, 8) if quick else LOAD_COUNTS
        result = self.new_result()
        with_ev = timing_difference_series(True, seed, load_counts)
        without = timing_difference_series(False, seed, load_counts)

        tbl = result.table(
            "timing_difference",
            ["squashed loads", "diff w/ evsets", "diff w/o evsets", "restored"],
        )
        for n_loads in load_counts:
            diff_ev, s1, _ = with_ev[n_loads]
            tbl.add(n_loads, diff_ev, without[n_loads][0], s1.restored_l1)

        diffs = [with_ev[n][0] for n in load_counts]
        result.metric("diff_1_load", diffs[0])
        result.metric("diff_8_loads", with_ev[max(load_counts)][0])
        result.check_band("single_load_diff", diffs[0], 28, 38, "32 cycles")
        result.check_band(
            "eight_load_diff", with_ev[max(load_counts)][0], 52, 76, "~64 cycles"
        )
        result.check(
            "monotone_nondecreasing",
            all(b >= a for a, b in zip(diffs, diffs[1:])),
            f"series {diffs} never shrinks with more loads",
        )
        result.check(
            "larger_than_fig3",
            all(with_ev[n][0] > without[n][0] for n in load_counts),
            "eviction sets enlarge the difference at every load count",
        )
        result.check(
            "restorations_forced",
            all(with_ev[n][1].restored_l1 == n for n in load_counts),
            "every squashed load forces exactly one L1 restoration",
        )
        return result
