"""Per-table/figure reproduction experiments and their runner."""

from .base import (
    Check,
    Experiment,
    ExperimentResult,
    ResultTable,
    Shard,
    ShardableExperiment,
)
from .registry import all_ids, get, get_class, register

__all__ = [
    "Experiment",
    "ExperimentResult",
    "ResultTable",
    "Check",
    "Shard",
    "ShardableExperiment",
    "register",
    "get",
    "get_class",
    "all_ids",
]
