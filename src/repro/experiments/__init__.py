"""Per-table/figure reproduction experiments and their runner."""

from .base import Check, Experiment, ExperimentResult, ResultTable
from .registry import all_ids, get, register

__all__ = [
    "Experiment",
    "ExperimentResult",
    "ResultTable",
    "Check",
    "register",
    "get",
    "all_ids",
]
