"""The automated gadget-synthesis experiment (extension).

One shard = one generation batch of the seeded candidate generator
(:mod:`repro.analysis.synth`).  Each shard runs the full pipeline on its
batch — multi-path explorer filter, simulator confirmation under
CleanupSpec, witness replay, single-hole mutation of confirmed leakers,
greedy minimization — and returns plain outcome dicts.  The merge
deduplicates confirmed gadgets across batches by program text and tallies
static/dynamic (dis)agreement.

The headline claim this supports: the rollback channel is not an
artifact of the two hand-written attack programs.  A blind, seeded
search over a small gadget vocabulary rediscovers it repeatedly — the
experiment checks that at least three *distinct* confirmed gadgets
emerge beyond the hand-written pair, that every confirmed gadget's
static witness replays concretely, and that the disagreement cases land
exactly where the machine model says they must (fenced bodies leak a
residual delta the static window misses; transient stores/flushes are
flagged but perform nothing speculatively).

Run as ``python -m repro.experiments synth [--jobs N] [--backend batched]``;
output is bit-identical for any jobs count and backend.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..analysis.synth import (
    GeneratorConfig,
    PipelineConfig,
    evaluate_candidate,
    generate_batch,
    mutate,
)
from .base import ExperimentResult, Shard, ShardableExperiment
from .registry import register


@register
class SynthGadgets(ShardableExperiment):
    id = "synth"
    title = "Automated speculative-gadget synthesis (extension)"
    paper_claim = (
        "The undo-rollback channel is systematic: a seeded generate/"
        "filter/confirm search rediscovers it in multiple distinct "
        "gadgets beyond the paper's hand-written one"
    )

    def _batches(self, quick: bool) -> int:
        return 3 if quick else 6

    def _generator(self, quick: bool) -> GeneratorConfig:
        return GeneratorConfig(
            candidates=6 if quick else 10,
            mutants_per_leaker=1 if quick else 2,
        )

    def shard_plan(self, quick: bool = False, seed: int = 0) -> List[Shard]:
        batches = self._batches(quick)
        return [
            Shard(
                index=i,
                count=batches,
                tag=f"batch:{i}",
                params={"batch": i},
            )
            for i in range(batches)
        ]

    def run_shard(self, shard: Shard, quick: bool = False, seed: int = 0) -> object:
        gen = self._generator(quick)
        pipeline = PipelineConfig()
        outcomes = []
        candidates = generate_batch(seed, shard.params["batch"], gen)
        for candidate in candidates:
            outcome = evaluate_candidate(candidate, pipeline)
            outcomes.append(outcome)
            if outcome.confirmed:
                seen = {candidate.holes}
                for m in range(gen.mutants_per_leaker):
                    mutant = mutate(candidate, seed, m, gen.layout)
                    if mutant.holes in seen:
                        continue
                    seen.add(mutant.holes)
                    outcomes.append(evaluate_candidate(mutant, pipeline))
        return {
            "batch": shard.params["batch"],
            "outcomes": [o.to_dict() for o in outcomes],
        }

    def merge_shards(
        self, partials: Sequence[object], quick: bool = False, seed: int = 0
    ) -> ExperimentResult:
        result = self.new_result()
        outcomes: List[dict] = []
        for partial in partials:
            outcomes.extend(partial["outcomes"])

        confirmed = [o for o in outcomes if o["confirmed"]]
        false_pos = [
            o for o in outcomes if o["static_transient"] and not o["dynamic_leak"]
        ]
        false_neg = [
            o for o in outcomes if o["dynamic_leak"] and not o["static_transient"]
        ]
        agree = sum(
            1 for o in outcomes if o["static_transient"] == o["dynamic_leak"]
        )

        # Distinct = unique program text among confirmed leakers (two hole
        # assignments can build the same instruction sequence; mutants can
        # rebuild a parent).  First batch/occurrence wins, so the table is
        # independent of worker count.
        distinct: Dict[str, dict] = {}
        for o in confirmed:
            distinct.setdefault(o["listing"], o)

        gadgets = result.table(
            "confirmed gadgets",
            ["holes", "gen", "insns", "minimized", "delta cycles", "witness"],
        )
        for o in distinct.values():
            gadgets.add(
                o["holes"],
                o["generation"],
                o["instructions"],
                o["minimized_instructions"],
                o["delta_cycles"],
                "replayed" if o["witness_replayed"] else "NO",
            )

        disagreements = result.table(
            "static/dynamic disagreements",
            ["holes", "verdict", "delta cycles", "static findings"],
        )
        for o in false_pos:
            disagreements.add(
                o["holes"], "false positive", o["delta_cycles"], o["static_findings"]
            )
        for o in false_neg:
            disagreements.add(
                o["holes"], "false negative", o["delta_cycles"], o["static_findings"]
            )

        result.metric("candidates", len(outcomes))
        result.metric(
            "static_leaky", sum(1 for o in outcomes if o["static_transient"])
        )
        result.metric(
            "dynamic_leaky", sum(1 for o in outcomes if o["dynamic_leak"])
        )
        result.metric("confirmed", len(confirmed))
        result.metric("distinct_confirmed", len(distinct))
        result.metric("false_positives", len(false_pos))
        result.metric("false_negatives", len(false_neg))
        result.metric(
            "agreement_rate", agree / len(outcomes) if outcomes else 0.0
        )
        if confirmed:
            result.metric(
                "witness_replay_rate",
                sum(1 for o in confirmed if o["witness_replayed"]) / len(confirmed),
            )
            result.metric(
                "min_gadget_instructions",
                min(o["minimized_instructions"] for o in confirmed),
            )
            result.metric(
                "mean_confirmed_delta",
                sum(o["delta_cycles"] for o in confirmed) / len(confirmed),
            )

        result.check(
            "discovers_new_gadgets",
            len(distinct) >= 3,
            f"{len(distinct)} distinct confirmed gadgets (>= 3 beyond the "
            "hand-written unxpec/spectre pair)",
        )
        result.check(
            "witnesses_replay_concretely",
            bool(confirmed)
            and all(o["witness_replayed"] for o in confirmed),
            "every confirmed gadget's static witness reproduces on the "
            "dynamic taint interpreter",
        )
        result.check(
            "minimization_shrinks",
            all(
                o["minimized_instructions"] is not None
                and o["minimized_instructions"] <= o["instructions"]
                for o in confirmed
            ),
            "greedy minimization never grows a confirmed gadget",
        )
        result.check(
            "decoys_stay_clean",
            not any(o["confirmed"] for o in outcomes if "-public-" in o["holes"]),
            "candidates reading the public decoy word never confirm",
        )
        def fields(o: dict) -> dict:
            # Holes.label(): s<stride>-g<pad>-n<acc>-<op>-<f|x>-<w|c>-<src>-a<pad>
            parts = o["holes"].split("-")
            return {
                "stride": parts[0],
                "op": parts[3],
                "fenced": parts[4] == "f",
                "warm": parts[5] == "w",
            }

        def benign_fp(o: dict) -> bool:
            f = fields(o)
            return (
                f["op"] in ("store", "flush")  # never performed speculatively
                or f["fenced"]  # body blocked before any access
                or not f["warm"]  # cold target: both secrets miss alike
                or f["stride"] == "s5"  # 32B stride: both secrets, one line
            )

        result.check(
            "disagreements_match_machine_model",
            all(fields(o)["fenced"] for o in false_neg)
            and all(benign_fp(o) for o in false_pos),
            "false negatives are fenced bodies (residual MSHR delta below "
            "the static window); every false positive has a machine-model "
            "cause: speculatively-unperformed store/flush, fenced body, "
            "cold target, or sub-line stride",
        )
        return result
