"""Cycle/time/rate unit helpers.

The simulator counts in integer **cycles**. Experiments convert between
cycles and wall-clock time at a configured core frequency (the paper's
system runs at 2 GHz), and express covert-channel throughput in bits per
second.
"""

from __future__ import annotations

from dataclasses import dataclass

GHZ = 1_000_000_000

#: Core frequency used throughout the paper's evaluation (Table I).
PAPER_FREQUENCY_HZ = 2 * GHZ


def cycles_to_seconds(cycles: int, frequency_hz: float = PAPER_FREQUENCY_HZ) -> float:
    """Convert a cycle count to seconds at ``frequency_hz``."""
    if frequency_hz <= 0:
        raise ValueError(f"frequency must be positive, got {frequency_hz}")
    return cycles / frequency_hz


def seconds_to_cycles(seconds: float, frequency_hz: float = PAPER_FREQUENCY_HZ) -> int:
    """Convert seconds to a (rounded) cycle count at ``frequency_hz``."""
    if frequency_hz <= 0:
        raise ValueError(f"frequency must be positive, got {frequency_hz}")
    return round(seconds * frequency_hz)


def ns_to_cycles(nanoseconds: float, frequency_hz: float = PAPER_FREQUENCY_HZ) -> int:
    """Convert nanoseconds to cycles; Table I gives memory latency in ns."""
    return seconds_to_cycles(nanoseconds * 1e-9, frequency_hz)


def samples_per_second(cycles_per_sample: float, frequency_hz: float = PAPER_FREQUENCY_HZ) -> float:
    """Samples/second achievable when one sample costs ``cycles_per_sample``."""
    if cycles_per_sample <= 0:
        raise ValueError(f"cycles per sample must be positive, got {cycles_per_sample}")
    return frequency_hz / cycles_per_sample


@dataclass(frozen=True)
class LeakageRate:
    """Covert-channel throughput expressed several equivalent ways."""

    cycles_per_bit: float
    frequency_hz: float = PAPER_FREQUENCY_HZ

    @property
    def bits_per_second(self) -> float:
        return samples_per_second(self.cycles_per_bit, self.frequency_hz)

    @property
    def kbps(self) -> float:
        return self.bits_per_second / 1000.0

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.kbps:.1f} Kbps ({self.cycles_per_bit:.0f} cycles/bit)"
