"""System configuration (the paper's Table I) as validated dataclasses.

Every simulator component takes its geometry and latencies from these
objects; :func:`paper_system_config` reproduces Table I exactly:

==============  =============================================
Module          Configuration
==============  =============================================
Processor       1 core, 2 GHz, out-of-order 192-entry ROB
L1 I-cache      32 KB, 4-way, 128-set (private)
L1 D-cache      32 KB, 8-way, 64-set (private)
L2 cache        2 MB, 16-way, 2048-set (shared)
Memory          50 ns round trip after L2
==============  =============================================
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .errors import ConfigError
from .units import PAPER_FREQUENCY_HZ, ns_to_cycles

#: Cache line size used throughout (bytes). The paper's probe array strides
#: by 64 bytes precisely to touch one line per element.
LINE_SIZE = 64


@dataclass(frozen=True)
class CacheGeometry:
    """Geometry of one set-associative cache level."""

    name: str
    size_bytes: int
    ways: int
    sets: int
    line_size: int = LINE_SIZE

    def __post_init__(self) -> None:
        if self.line_size <= 0 or self.line_size & (self.line_size - 1):
            raise ConfigError(f"{self.name}: line size must be a power of two")
        if self.ways <= 0:
            raise ConfigError(f"{self.name}: ways must be positive, got {self.ways}")
        if self.sets <= 0 or self.sets & (self.sets - 1):
            raise ConfigError(f"{self.name}: set count must be a positive power of two")
        expected = self.ways * self.sets * self.line_size
        if expected != self.size_bytes:
            raise ConfigError(
                f"{self.name}: size {self.size_bytes} B != ways({self.ways}) *"
                f" sets({self.sets}) * line({self.line_size}) = {expected} B"
            )

    @property
    def offset_bits(self) -> int:
        return self.line_size.bit_length() - 1

    @property
    def index_bits(self) -> int:
        return self.sets.bit_length() - 1


@dataclass(frozen=True)
class LatencyConfig:
    """Access latencies (cycles) of the memory hierarchy.

    ``l1_hit`` and ``l2_hit`` follow the CleanupSpec gem5 configuration;
    ``memory`` is Table I's "50 ns RT after L2" converted at the core clock.
    """

    l1_hit: int = 2
    l2_hit: int = 20
    memory: int = ns_to_cycles(50.0, PAPER_FREQUENCY_HZ)  # 100 cycles @ 2 GHz
    #: Queueing penalty charged to a miss that finds the MSHR file full.
    mshr_full_penalty: int = 8

    def __post_init__(self) -> None:
        if not 0 < self.l1_hit <= self.l2_hit:
            raise ConfigError("need 0 < l1_hit <= l2_hit")
        if self.memory <= 0:
            raise ConfigError("memory latency must be positive")
        if self.mshr_full_penalty < 0:
            raise ConfigError("mshr_full_penalty must be non-negative")

    @property
    def l2_total(self) -> int:
        """Latency of an access served by L2 (L1 miss, L2 hit)."""
        return self.l1_hit + self.l2_hit

    @property
    def memory_total(self) -> int:
        """Latency of an access served by DRAM (misses both levels)."""
        return self.l1_hit + self.l2_hit + self.memory


@dataclass(frozen=True)
class CoreConfig:
    """Out-of-order core parameters (Table I processor row + O3 defaults)."""

    frequency_hz: float = PAPER_FREQUENCY_HZ
    rob_entries: int = 192
    dispatch_width: int = 4
    mispredict_penalty: int = 10
    branch_latency: int = 1
    alu_latency: int = 1
    mul_latency: int = 3
    #: Non-pipelined divider (see ``repro.cpu.fu``): long enough that an
    #: in-flight transient division outlives squash + mispredict redirect,
    #: which is what makes the SpectreRewind contention channel observable.
    div_latency: int = 40
    flush_latency: int = 40
    timer_latency: int = 6
    mshr_entries: int = 16
    lsq_entries: int = 64

    def __post_init__(self) -> None:
        if self.frequency_hz <= 0:
            raise ConfigError("frequency must be positive")
        if self.rob_entries < 2:
            raise ConfigError("ROB must hold at least 2 entries")
        if self.dispatch_width < 1:
            raise ConfigError("dispatch width must be at least 1")
        for attr in (
            "mispredict_penalty",
            "branch_latency",
            "alu_latency",
            "mul_latency",
            "div_latency",
            "flush_latency",
            "timer_latency",
        ):
            if getattr(self, attr) < 0:
                raise ConfigError(f"{attr} must be non-negative")
        if self.mshr_entries < 1 or self.lsq_entries < 1:
            raise ConfigError("MSHR and LSQ need at least one entry")


@dataclass(frozen=True)
class SystemConfig:
    """Full system: core + cache geometries + latencies."""

    core: CoreConfig = field(default_factory=CoreConfig)
    l1i: CacheGeometry = field(
        default_factory=lambda: CacheGeometry("L1I", 32 * 1024, ways=4, sets=128)
    )
    l1d: CacheGeometry = field(
        default_factory=lambda: CacheGeometry("L1D", 32 * 1024, ways=8, sets=64)
    )
    l2: CacheGeometry = field(
        default_factory=lambda: CacheGeometry("L2", 2 * 1024 * 1024, ways=16, sets=2048)
    )
    latency: LatencyConfig = field(default_factory=LatencyConfig)

    def __post_init__(self) -> None:
        if not (self.l1i.line_size == self.l1d.line_size == self.l2.line_size):
            raise ConfigError("all cache levels must share one line size")

    def table1_rows(self) -> list:
        """Rows of the paper's Table I for this configuration."""
        core = self.core
        ghz = core.frequency_hz / 1e9
        return [
            ("Processor", f"1 core, {ghz:g} GHz, out-of-order {core.rob_entries}-entry ROB"),
            ("Private L1 I cache", self._geom_str(self.l1i)),
            ("Private L1 D cache", self._geom_str(self.l1d)),
            ("Shared L2 cache", self._geom_str(self.l2)),
            ("Memory", f"{self.latency.memory} cycles RT after L2"),
        ]

    @staticmethod
    def _geom_str(g: CacheGeometry) -> str:
        kb = g.size_bytes // 1024
        if kb >= 1024:
            return f"{kb // 1024} MB, {g.ways}-way, {g.sets}-set"
        return f"{kb} KB, {g.ways}-way, {g.sets}-set"


def paper_system_config() -> SystemConfig:
    """The exact configuration of the paper's Table I."""
    return SystemConfig()
