"""Plain-text table rendering for experiment reports.

Experiments print the same rows/series the paper's tables and figures
report; this module renders them as aligned monospace tables so console
output is directly comparable to the paper.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def format_cell(value: object) -> str:
    """Render one table cell: floats get 2 decimals, everything else str()."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned ASCII table."""
    str_rows = [[format_cell(c) for c in row] for row in rows]
    for i, row in enumerate(str_rows):
        if len(row) != len(headers):
            raise ValueError(
                f"row {i} has {len(row)} cells but there are {len(headers)} headers"
            )
    widths = [len(h) for h in headers]
    for row in str_rows:
        for j, cell in enumerate(row):
            widths[j] = max(widths[j], len(cell))

    def fmt_line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[j]) for j, cell in enumerate(cells)).rstrip()

    sep = "  ".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * max(len(title), len(sep)))
    lines.append(fmt_line(list(headers)))
    lines.append(sep)
    lines.extend(fmt_line(row) for row in str_rows)
    return "\n".join(lines)


def render_kv(pairs: Iterable[tuple], title: str | None = None) -> str:
    """Render key/value pairs, one per line, keys left-aligned."""
    items = [(str(k), format_cell(v)) for k, v in pairs]
    if not items:
        return title or ""
    width = max(len(k) for k, _ in items)
    lines = []
    if title:
        lines.append(title)
        lines.append("-" * max(len(title), width + 2))
    lines.extend(f"{k.ljust(width)}  {v}" for k, v in items)
    return "\n".join(lines)
