"""Deterministic random-number utilities.

Every stochastic component in the simulator (random replacement, CEASER
index randomisation, measurement noise, synthetic workloads, secret
generation) draws from a seeded :class:`numpy.random.Generator` created
through this module, so that every experiment is exactly reproducible from
its seed.

Components that need *independent* streams derive them with
:func:`derive_seed`, which hashes a parent seed together with a string tag.
Deriving rather than sharing one generator keeps results stable when one
component changes how many numbers it consumes.
"""

from __future__ import annotations

import hashlib

import numpy as np

DEFAULT_SEED = 0x5EED_CAFE


def make_rng(seed: int = DEFAULT_SEED) -> np.random.Generator:
    """Return a new PCG64 generator seeded with ``seed``."""
    return np.random.Generator(np.random.PCG64(seed))


def derive_seed(parent_seed: int, tag: str) -> int:
    """Derive a child seed from ``parent_seed`` and a component ``tag``.

    The derivation is a SHA-256 hash truncated to 63 bits, so child streams
    are statistically independent of each other and of the parent.
    """
    digest = hashlib.sha256(f"{parent_seed}:{tag}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little") & 0x7FFF_FFFF_FFFF_FFFF


def derive_rng(parent_seed: int, tag: str) -> np.random.Generator:
    """Return a generator seeded with :func:`derive_seed` of the arguments."""
    return make_rng(derive_seed(parent_seed, tag))
