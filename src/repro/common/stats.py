"""Statistics helpers: summaries, kernel density estimation, accuracy.

The paper's Figures 7 and 8 are kernel-density estimates of latency
distributions; Figures 10 and 11 report threshold-decoder accuracy.
This module provides those primitives without any plotting dependency —
experiments emit the raw series the figures are drawn from.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of a sample."""

    count: int
    mean: float
    std: float
    minimum: float
    p25: float
    median: float
    p75: float
    maximum: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"n={self.count} mean={self.mean:.2f} std={self.std:.2f} "
            f"min={self.minimum:.1f} p50={self.median:.1f} max={self.maximum:.1f}"
        )


def summarize(samples: Sequence[float]) -> Summary:
    """Compute a :class:`Summary` of ``samples`` (must be non-empty)."""
    if len(samples) == 0:
        raise ValueError("cannot summarize an empty sample")
    arr = np.asarray(samples, dtype=float)
    return Summary(
        count=int(arr.size),
        mean=float(arr.mean()),
        std=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        minimum=float(arr.min()),
        p25=float(np.percentile(arr, 25)),
        median=float(np.percentile(arr, 50)),
        p75=float(np.percentile(arr, 75)),
        maximum=float(arr.max()),
    )


def silverman_bandwidth(samples: Sequence[float]) -> float:
    """Silverman's rule-of-thumb bandwidth for Gaussian KDE.

    Matches what MATLAB's ``ksdensity`` (used by the paper's artifact)
    defaults to for 1-D data.
    """
    arr = np.asarray(samples, dtype=float)
    n = arr.size
    if n < 2:
        raise ValueError("bandwidth needs at least two samples")
    std = arr.std(ddof=1)
    iqr = np.percentile(arr, 75) - np.percentile(arr, 25)
    sigma = min(std, iqr / 1.349) if iqr > 0 else std
    if sigma <= 0:
        sigma = max(abs(arr.mean()), 1.0) * 1e-3  # degenerate: all equal
    return 0.9 * sigma * n ** (-1 / 5)


def gaussian_kde(
    samples: Sequence[float],
    grid: Sequence[float],
    bandwidth: float | None = None,
) -> np.ndarray:
    """Evaluate a Gaussian KDE of ``samples`` on ``grid``.

    Returns densities (integrating to ~1 over the real line), the same
    estimator the paper's ``kde.m`` uses for Figures 7 and 8.
    """
    arr = np.asarray(samples, dtype=float)
    pts = np.asarray(grid, dtype=float)
    if arr.size == 0:
        raise ValueError("cannot estimate a density from zero samples")
    h = silverman_bandwidth(arr) if bandwidth is None else float(bandwidth)
    if h <= 0:
        raise ValueError(f"bandwidth must be positive, got {h}")
    z = (pts[:, None] - arr[None, :]) / h
    kernel = np.exp(-0.5 * z * z) / math.sqrt(2 * math.pi)
    return kernel.sum(axis=1) / (arr.size * h)


@dataclass(frozen=True)
class DensityCurve:
    """A sampled probability-density curve (one line of Fig. 7 / Fig. 8)."""

    grid: tuple
    density: tuple

    @property
    def mode(self) -> float:
        """Location of the density peak."""
        idx = int(np.argmax(self.density))
        return self.grid[idx]


def density_curve(
    samples: Sequence[float],
    lo: float | None = None,
    hi: float | None = None,
    points: int = 200,
    bandwidth: float | None = None,
) -> DensityCurve:
    """Build a :class:`DensityCurve` over ``[lo, hi]`` (auto range by default)."""
    arr = np.asarray(samples, dtype=float)
    if lo is None:
        lo = float(arr.min()) - 3 * silverman_bandwidth(arr)
    if hi is None:
        hi = float(arr.max()) + 3 * silverman_bandwidth(arr)
    if not lo < hi:
        raise ValueError(f"invalid density range [{lo}, {hi}]")
    grid = np.linspace(lo, hi, points)
    dens = gaussian_kde(arr, grid, bandwidth=bandwidth)
    return DensityCurve(grid=tuple(grid.tolist()), density=tuple(dens.tolist()))


def decode_accuracy(guesses: Sequence[int], truth: Sequence[int]) -> float:
    """Fraction of positions where ``guesses`` matches ``truth``."""
    if len(guesses) != len(truth):
        raise ValueError(f"length mismatch: {len(guesses)} guesses vs {len(truth)} bits")
    if not guesses:
        raise ValueError("cannot score an empty guess sequence")
    correct = sum(1 for g, t in zip(guesses, truth) if g == t)
    return correct / len(guesses)


def optimal_threshold(zeros: Sequence[float], ones: Sequence[float]) -> float:
    """Threshold minimising single-sample decode error between two samples.

    Scans candidate thresholds at the midpoints of the pooled sorted sample
    and returns the one with the fewest misclassifications (``x > threshold``
    decodes as 1). Used by attack calibration; the paper picks 178 / 183 by
    inspecting Figures 7 / 8.
    """
    z = np.sort(np.asarray(zeros, dtype=float))
    o = np.sort(np.asarray(ones, dtype=float))
    if z.size == 0 or o.size == 0:
        raise ValueError("both classes need at least one sample")
    pooled = np.unique(np.concatenate([z, o]))
    midpoints = (pooled[:-1] + pooled[1:]) / 2.0
    # Also consider thresholds outside the pooled range: with degenerate or
    # fully overlapping classes the best split may classify everything as a
    # single class, which no interior midpoint can express.
    candidates = np.concatenate(([pooled[0] - 1.0], midpoints, [pooled[-1] + 1.0]))
    best_thr = float(candidates[0])
    best_err = float("inf")
    for thr in candidates:
        # errors: zeros above thr decode as 1; ones at/below thr decode as 0
        err = int((z > thr).sum()) + int((o <= thr).sum())
        if err < best_err:
            best_err = err
            best_thr = float(thr)
    return best_thr
