"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without also swallowing programming
errors such as ``TypeError``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """A configuration object is internally inconsistent.

    Raised eagerly at construction time (e.g. a cache whose size is not
    ``line_size * ways * sets``) rather than later during simulation.
    """


class IsaError(ReproError):
    """An instruction or program is malformed.

    Carries optional structured location info (``program`` name, ``pc``
    instruction index, ``instruction`` text) so tooling — the specct
    analyzer, the assembler, test output — can point at the offending
    instruction.  When location info is present the message is prefixed
    ``program:pc: ...``.
    """

    def __init__(
        self,
        message: str,
        *,
        program: "str | None" = None,
        pc: "int | None" = None,
        instruction: "str | None" = None,
    ) -> None:
        self.program = program
        self.pc = pc
        self.instruction = instruction
        location = ""
        if program is not None:
            location = program if pc is None else f"{program}:{pc}"
        elif pc is not None:
            location = f"pc {pc}"
        if location:
            message = f"{location}: {message}"
        if instruction:
            message = f"{message} [{instruction}]"
        super().__init__(message)


class AssemblerError(IsaError):
    """Textual assembly could not be parsed."""


class SimulationError(ReproError):
    """The simulator reached an invalid state.

    This always indicates a bug in either the simulated program (e.g. a load
    from an unmapped address) or the simulator itself; it is never part of
    normal control flow.
    """


class MemoryError_(SimulationError):
    """An access touched an address outside the simulated memory map."""


class MshrFullError(SimulationError):
    """An allocation was attempted on a full MSHR file.

    The core is expected to check :meth:`MshrFile.can_allocate` and stall
    instead of triggering this.
    """


class AttackError(ReproError):
    """An attack primitive could not be constructed or executed."""


class EvictionSetError(AttackError):
    """No eviction set could be constructed for the requested target."""


class CalibrationError(AttackError):
    """Threshold calibration failed (e.g. indistinguishable distributions)."""


class ExperimentError(ReproError):
    """An experiment was misconfigured or produced inconsistent output."""


class AnalysisError(ReproError):
    """A static or statistical analysis was misconfigured."""
