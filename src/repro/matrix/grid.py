"""The (attack x defense x channel) grid: cells, trial running, verdicts.

The grid's axes come from registries, not hard-coded lists: defenses from
:func:`repro.defense.base.defense_keys` (every module self-registers with
a :class:`~repro.defense.base.DefenseCapabilities` descriptor), attacks
from :data:`repro.matrix.scenarios.SCENARIOS`, channels from
:data:`repro.attack.channel.CHANNELS`.  Adding a defense module makes a
new matrix row with zero changes here.

Trials are shared across channels: :func:`run_cell_trials` executes one
(attack, defense) pair once, and :func:`evaluate_cell` renders each
channel's verdict from the same observations — so a full matrix costs
``attacks x defenses`` machine runs, not ``x channels`` more.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..attack.channel import CHANNELS, ChannelVerdict, TrialObservation, make_channel
from ..defense.base import defense_capabilities, defense_keys
from .scenarios import SCENARIOS, make_scenario


@dataclass(frozen=True)
class MatrixCell:
    """One (attack, defense, channel) coordinate."""

    attack: str
    defense: str
    channel: str


@dataclass(frozen=True)
class CellVerdict:
    """A cell plus its measured verdict and the defense's claim."""

    cell: MatrixCell
    leaks: bool
    signal: float
    accuracy: float
    #: Whether the defense's capability descriptor claims this channel
    #: closed — measured leaks on a claimed-closed channel are a check
    #: failure, the capabilities-vs-measurement consistency the matrix
    #: exists to enforce.
    claimed_closed: bool


def attack_keys() -> Tuple[str, ...]:
    return tuple(sorted(SCENARIOS))


def channel_keys() -> Tuple[str, ...]:
    return tuple(sorted(CHANNELS))


def grid_pairs() -> List[Tuple[str, str]]:
    """Every (attack, defense) pair — the unit of machine execution."""
    return [(a, d) for a in attack_keys() for d in defense_keys()]


def run_cell_trials(
    attack: str, defense: str, n_trials: int, seed: int = 0
) -> List[TrialObservation]:
    """Run one (attack, defense) pair's trials on a fresh machine."""
    scenario = make_scenario(attack, defense, seed=seed)
    return scenario.run_trials(n_trials)


def observations_to_rows(observations: Sequence[TrialObservation]) -> List[list]:
    """Picklable/JSON-safe form of a trial set (campaign shard payload)."""
    return [
        [obs.secret, obs.timing, obs.footprint_guess, obs.contention_timing]
        for obs in observations
    ]


def rows_to_observations(rows: Sequence[Sequence[object]]) -> List[TrialObservation]:
    observations = []
    for row in rows:
        # Rows serialized before the contention channel existed have three
        # elements; treat the missing measurement as "not taken".
        secret, timing, guess = row[0], row[1], row[2]
        contention = row[3] if len(row) > 3 else None
        observations.append(
            TrialObservation(
                secret=int(secret),
                timing=float(timing),
                footprint_guess=None if guess is None else int(guess),
                contention_timing=None if contention is None else float(contention),
            )
        )
    return observations


def evaluate_cell(
    attack: str,
    defense: str,
    observations: Sequence[TrialObservation],
) -> List[CellVerdict]:
    """Each channel's read of one pair's trials, plus the defense's claim."""
    caps = defense_capabilities(defense)
    verdicts = []
    for channel_key in channel_keys():
        verdict: ChannelVerdict = make_channel(channel_key).verdict(observations)
        verdicts.append(
            CellVerdict(
                cell=MatrixCell(attack=attack, defense=defense, channel=channel_key),
                leaks=verdict.leaks,
                signal=verdict.signal,
                accuracy=verdict.accuracy,
                claimed_closed=channel_key in caps.closes_channels,
            )
        )
    return verdicts


def render_grid(verdicts: Sequence[CellVerdict]) -> Dict[str, Dict[str, str]]:
    """Pivot verdicts into ``{defense: {"attack/channel": "LEAK|safe"}}``.

    The compact form report tables and the dashboard render: one row per
    defense, one column per (attack, channel) pairing.
    """
    grid: Dict[str, Dict[str, str]] = {}
    for cv in sorted(
        verdicts, key=lambda v: (v.cell.defense, v.cell.attack, v.cell.channel)
    ):
        column = f"{cv.cell.attack}/{cv.cell.channel}"
        grid.setdefault(cv.cell.defense, {})[column] = (
            "LEAK" if cv.leaks else "safe"
        )
    return grid
