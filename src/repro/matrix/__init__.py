"""Attack x defense x channel scenario matrix (see docs/matrix.md).

The matrix crosses every registered attack scenario with every registered
defense and judges each pairing under every observation channel; the
``matrix`` experiment (``python -m repro.experiments matrix``) runs the
grid through the cached campaign runner and renders the leakage table.
"""

from .grid import (
    CellVerdict,
    MatrixCell,
    attack_keys,
    channel_keys,
    evaluate_cell,
    grid_pairs,
    observations_to_rows,
    render_grid,
    rows_to_observations,
    run_cell_trials,
)
from .scenarios import (
    SCENARIOS,
    AttackScenario,
    SpectreScenario,
    UnxpecScenario,
    make_scenario,
)

__all__ = [
    "MatrixCell",
    "CellVerdict",
    "attack_keys",
    "channel_keys",
    "grid_pairs",
    "run_cell_trials",
    "evaluate_cell",
    "render_grid",
    "observations_to_rows",
    "rows_to_observations",
    "AttackScenario",
    "UnxpecScenario",
    "SpectreScenario",
    "SCENARIOS",
    "make_scenario",
]
