"""Attack scenarios: one driver per attack, emitting channel-agnostic trials.

A scenario owns a protected machine (hierarchy + registry-constructed
defense + core) and runs *trials*; each trial transmits a known secret and
records everything every channel could observe at once — the squash-visible
timing and a cache-footprint guess — as a
:class:`~repro.attack.channel.TrialObservation`.  The matrix then asks each
:class:`~repro.attack.channel.Channel` for a verdict over the same trial
set, so "does attack A leak through channel C under defense D" is a pure
post-processing question and a cell never re-runs the machine per channel.

Four scenarios:

* :class:`UnxpecScenario` — the unXpec sender (Algorithm 2): secret bits
  0/1, timing is the receiver's ``ts2 - ts1`` bracket around the squash;
* :class:`SpectreScenario` — classic Spectre v1 (Algorithm 1): secret
  values from a small alphabet, timing is the round's total squash stall;
* :class:`RewindScenario` — SpectreRewind divider contention: the
  ``contention_timing`` observable is a committed post-squash division
  queueing behind transient divider occupancy (no cache state involved);
* :class:`InterferenceScenario` — two-context shared-port interference:
  ``contention_timing`` is a second context's probe latency against the
  victim's recorded port occupancy.

Footprint guesses use the hierarchy's *non-mutating* residency checks
(:meth:`~repro.cache.hierarchy.CacheHierarchy.in_l1` /
:meth:`~repro.cache.hierarchy.CacheHierarchy.in_l2`), never timed reloads,
so observing one trial cannot perturb the next.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List

from ..attack.channel import TrialObservation
from ..attack.gadgets import GadgetParams
from ..attack.interference import InterferenceHarness
from ..attack.rewind import RewindAttack
from ..attack.spectre import SpectreV1Attack
from ..attack.unxpec import UnxpecAttack
from ..common.errors import ConfigError
from ..defense.base import make_defense


class AttackScenario(ABC):
    """One attack driver; produces channel-agnostic trial observations."""

    #: Matrix key ("unxpec", "spectre").
    key: str = ""
    name: str = ""

    @abstractmethod
    def run_trials(self, n_trials: int) -> List[TrialObservation]:
        """Run ``n_trials`` rounds, alternating secrets deterministically."""


class UnxpecScenario(AttackScenario):
    """unXpec rounds: bit 0/1 alternating, latency + P-target residency."""

    key = "unxpec"
    name = "unXpec (Algorithm 2)"

    def __init__(self, defense_key: str, seed: int = 0, n_loads: int = 1) -> None:
        self.defense_key = defense_key
        self.n_loads = n_loads
        self.attack = UnxpecAttack(
            params=GadgetParams(n_loads=n_loads),
            defense_factory=lambda h: make_defense(defense_key, h),
            seed=seed,
        )

    def run_trials(self, n_trials: int) -> List[TrialObservation]:
        self.attack.prepare()
        observations = []
        for trial in range(n_trials):
            bit = trial & 1
            sample = self.attack.sample(bit)
            observations.append(
                TrialObservation(
                    secret=bit,
                    timing=float(sample.latency),
                    footprint_guess=self._footprint_guess(),
                )
            )
        return observations

    def _footprint_guess(self) -> int:
        """Flush+Reload read of the round just run: the round flushes every
        ``P[64k]`` target before the measured invocation, so post-round
        residency of any target means the transient loads ran with bit 1
        and their fills survived the squash."""
        hierarchy = self.attack.hierarchy
        layout = self.attack.gadget.layout
        hot = any(
            hierarchy.in_l1(layout.p_entry(k)) or hierarchy.in_l2(layout.p_entry(k))
            for k in range(1, self.n_loads + 1)
        )
        return 1 if hot else 0


class SpectreScenario(AttackScenario):
    """Spectre v1 rounds: two alphabet values, squash stall + probe guess."""

    key = "spectre"
    name = "Spectre v1 (Algorithm 1)"

    #: The two secrets trials alternate between (distinct P lines, both
    #: clear of the training value 0 and the overrun sentinel).
    SECRETS = (3, 9)

    def __init__(self, defense_key: str, seed: int = 0, alphabet: int = 16) -> None:
        self.defense_key = defense_key
        self.attack = SpectreV1Attack(
            defense_factory=lambda h: make_defense(defense_key, h),
            alphabet=alphabet,
            seed=seed,
        )

    def run_trials(self, n_trials: int) -> List[TrialObservation]:
        observations = []
        for trial in range(n_trials):
            secret = self.SECRETS[trial % len(self.SECRETS)]
            result, guess = self.attack.run_measured(secret)
            timing = float(sum(e.outcome.stall_cycles for e in result.squashes))
            observations.append(
                TrialObservation(secret=secret, timing=timing, footprint_guess=guess)
            )
        return observations


class RewindScenario(AttackScenario):
    """SpectreRewind rounds: bits 0/1, committed-division contention.

    ``timing`` carries the squash stall (the rollback observable — the
    gadget keeps it secret-independent under the shadow/invisible
    families) and ``contention_timing`` carries the committed-division
    latency; there is no cache-footprint probe (the gadget leaves no
    secret-dependent footprint even with no defense at all), so the
    flush channel judges every trial's guess absent.
    """

    key = "rewind"
    name = "SpectreRewind (divider contention)"

    def __init__(self, defense_key: str, seed: int = 0) -> None:
        self.defense_key = defense_key
        self.attack = RewindAttack(
            defense_factory=lambda h: make_defense(defense_key, h),
            seed=seed,
        )

    def run_trials(self, n_trials: int) -> List[TrialObservation]:
        self.attack.prepare()
        observations = []
        for trial in range(n_trials):
            bit = trial & 1
            sample = self.attack.sample(bit)
            observations.append(
                TrialObservation(
                    secret=bit,
                    timing=float(sample.stall),
                    contention_timing=float(sample.latency),
                )
            )
        return observations


class InterferenceScenario(AttackScenario):
    """Two-context rounds: bits 0/1, second-context probe latency.

    ``timing`` is the victim-side squash stall; ``contention_timing`` is
    the attacker context's probe latency against the victim's recorded
    port occupancy. No footprint probe: the attacker never shares cache
    state with the victim at all.
    """

    key = "interference"
    name = "Speculative interference (two contexts)"

    def __init__(self, defense_key: str, seed: int = 0) -> None:
        self.defense_key = defense_key
        self.harness = InterferenceHarness(defense_key=defense_key, seed=seed)

    def run_trials(self, n_trials: int) -> List[TrialObservation]:
        self.harness.prepare()
        observations = []
        for trial in range(n_trials):
            bit = trial & 1
            sample = self.harness.sample(bit)
            observations.append(
                TrialObservation(
                    secret=bit,
                    timing=float(sample.victim_stall),
                    contention_timing=float(sample.probe_latency),
                )
            )
        return observations


#: Scenario key -> constructor taking (defense_key, seed).
SCENARIOS = {
    UnxpecScenario.key: UnxpecScenario,
    SpectreScenario.key: SpectreScenario,
    RewindScenario.key: RewindScenario,
    InterferenceScenario.key: InterferenceScenario,
}


def make_scenario(attack_key: str, defense_key: str, seed: int = 0) -> AttackScenario:
    """Instantiate the scenario for one matrix cell's (attack, defense)."""
    if attack_key not in SCENARIOS:
        raise ConfigError(
            f"unknown attack {attack_key!r}; registered: {', '.join(sorted(SCENARIOS))}"
        )
    return SCENARIOS[attack_key](defense_key, seed=seed)
