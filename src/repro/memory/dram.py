"""Backing-store model: word-addressable memory with a fixed access latency.

Functionally a sparse ``dict`` of 64-bit words; timing-wise a constant
round-trip latency (Table I: 50 ns after L2, i.e. 100 cycles at 2 GHz).
The DRAM also counts reads/writes/writebacks so experiments can report
traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..common.errors import MemoryError_

#: Size of one addressable word in bytes (values stored per 8-byte word).
WORD_SIZE = 8


@dataclass
class DramStats:
    reads: int = 0
    writes: int = 0
    writebacks: int = 0


@dataclass
class Dram:
    """Fixed-latency main memory.

    ``latency`` is the round-trip time in cycles charged to an access that
    reaches DRAM (on top of cache lookup latencies, which the hierarchy
    accounts for separately).
    """

    latency: int = 100
    size_bytes: int = 1 << 32
    stats: DramStats = field(default_factory=DramStats)

    def __post_init__(self) -> None:
        if self.latency < 0:
            raise ValueError("DRAM latency must be non-negative")
        if self.size_bytes <= 0:
            raise ValueError("DRAM size must be positive")
        if self.size_bytes & (self.size_bytes - 1):
            raise ValueError("DRAM size must be a power of two (address wrap)")
        #: Address-space mask: the core wraps every computed effective
        #: address with this before it reaches the hierarchy, so negative
        #: or overflowed addresses execute deterministically instead of
        #: escaping as host-level MemoryError_.
        self.addr_mask = self.size_bytes - 1
        self._words: dict = {}
        #: Optional write journal: when a list is attached (the batched
        #: backend's replay engine does this), every functional write appends
        #: ``(word_addr, value)``. Reads never journal.
        self.journal: list = None  # type: ignore[assignment]

    def _check(self, addr: int) -> None:
        if not 0 <= addr < self.size_bytes:
            raise MemoryError_(f"address {addr:#x} outside memory of {self.size_bytes:#x} bytes")

    def read_word(self, addr: int) -> int:
        """Functional read of the 64-bit word containing ``addr``."""
        self._check(addr)
        self.stats.reads += 1
        return self._words.get(addr // WORD_SIZE * WORD_SIZE, 0)

    def write_word(self, addr: int, value: int) -> None:
        """Functional write of the 64-bit word containing ``addr``."""
        self._check(addr)
        self.stats.writes += 1
        word = addr // WORD_SIZE * WORD_SIZE
        value &= (1 << 64) - 1
        self._words[word] = value
        if self.journal is not None:
            self.journal.append((word, value))

    def writeback_line(self, line_addr: int) -> None:
        """Account a dirty-line writeback (data already written via write_word)."""
        self._check(line_addr)
        self.stats.writebacks += 1

    def register_stats(self, registry, prefix: str = "dram") -> None:
        """Publish traffic counters under ``prefix`` (pull-based, no hot cost)."""
        st = self.stats
        registry.gauge(f"{prefix}.reads", "line fills read from DRAM").add_source(
            lambda: st.reads
        )
        registry.gauge(f"{prefix}.writes", "functional word writes").add_source(
            lambda: st.writes
        )
        registry.gauge(f"{prefix}.writebacks", "dirty-line writebacks").add_source(
            lambda: st.writebacks
        )
        reads = registry.gauge(f"{prefix}.reads")
        writes = registry.gauge(f"{prefix}.writes")
        writebacks = registry.gauge(f"{prefix}.writebacks")
        registry.formula(
            f"{prefix}.accesses",
            lambda r=reads, w=writes, b=writebacks: r.value() + w.value() + b.value(),
            desc="total DRAM traffic (reads + writes + writebacks)",
        )

    def peek(self, addr: int) -> int:
        """Read without touching statistics (for assertions in tests)."""
        self._check(addr)
        return self._words.get(addr // WORD_SIZE * WORD_SIZE, 0)

    def image(self) -> dict:
        """Snapshot of the populated words (word address → value).

        Used to hand a concrete memory image to the static analysis's
        dynamic reference interpreter (witness replay): the same victim
        data structures the simulator runs against, without the timing
        model.
        """
        return dict(self._words)

    def poke(self, addr: int, value: int) -> None:
        """Write without touching statistics (for experiment setup)."""
        self._check(addr)
        word = addr // WORD_SIZE * WORD_SIZE
        value &= (1 << 64) - 1
        self._words[word] = value
        if self.journal is not None:
            self.journal.append((word, value))
