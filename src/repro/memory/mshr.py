"""Miss Status Holding Register (MSHR) file.

The MSHR tracks cache misses that are in flight. CleanupSpec relies on it
twice: (T3) at squash time, in-flight *mis-speculated* loads must be cleaned
out of the MSHR before rollback starts, and the MSHR records, per
speculative fill, the L1 **victim line** that the fill evicted — which is
exactly the information the restoration step replays.

Entries merge: a second miss to a line that already has an entry attaches to
the existing entry rather than allocating a new one (and costs no extra
memory traffic).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..common.errors import MshrFullError


class MshrEntry:
    """One outstanding miss (``__slots__``: allocated on the access path)."""

    __slots__ = (
        "line_addr",
        "issue_cycle",
        "complete_cycle",
        "speculative",
        "victim_line",
        "victim_dirty",
        "merged",
    )

    def __init__(
        self,
        line_addr: int,
        issue_cycle: int,
        complete_cycle: int,
        speculative: bool = False,
        victim_line: Optional[int] = None,
        victim_dirty: bool = False,
        merged: int = 1,
    ) -> None:
        self.line_addr = line_addr
        self.issue_cycle = issue_cycle
        self.complete_cycle = complete_cycle
        self.speculative = speculative
        #: L1 line evicted by this fill, if any (captured for restoration).
        self.victim_line = victim_line
        self.victim_dirty = victim_dirty
        #: How many accesses merged into this entry (including the first).
        self.merged = merged

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        spec = " spec" if self.speculative else ""
        return (
            f"<MshrEntry {self.line_addr:#x} issue={self.issue_cycle} "
            f"complete={self.complete_cycle}{spec} merged={self.merged}>"
        )


@dataclass
class MshrStats:
    allocations: int = 0
    merges: int = 0
    stall_events: int = 0
    cleaned_inflight: int = 0


class MshrFile:
    """Fixed-capacity MSHR file with merge semantics."""

    #: Sentinel for "no entries": any real completion cycle is smaller.
    _NO_ENTRIES = 1 << 62

    def __init__(self, capacity: int = 16) -> None:
        if capacity < 1:
            raise ValueError("MSHR capacity must be at least 1")
        self.capacity = capacity
        self._entries: Dict[int, MshrEntry] = {}
        #: Lower bound on the earliest completion among entries (may be
        #: stale-low after deletions; only used to skip retire scans).
        self._min_complete = self._NO_ENTRIES
        self.stats = MshrStats()
        #: Mutation counter (allocate/merge/retire/clean/clear): the batched
        #: backend reads it to detect out-of-band MSHR changes between rounds.
        self.version = 0

    def __len__(self) -> int:
        return len(self._entries)

    def can_allocate(self, line_addr: int) -> bool:
        """True if a miss to ``line_addr`` can proceed (free slot or merge)."""
        return line_addr in self._entries or len(self._entries) < self.capacity

    def can_allocate_at(self, line_addr: int, cycle: int) -> bool:
        """Side-effect-free :meth:`can_allocate` as of ``cycle``.

        Answers whether a miss to ``line_addr`` issued at ``cycle`` would
        find a slot (or merge) *after* entries completed by then retire —
        without actually retiring them. The core uses this to predict the
        MSHR-full penalty of a wrong-path load before deciding whether the
        load lands (and mutates state) at all.
        """
        entry = self._entries.get(line_addr)
        if entry is not None and entry.complete_cycle > cycle:
            return True  # merges into the still-in-flight entry
        inflight = sum(1 for e in self._entries.values() if e.complete_cycle > cycle)
        return inflight < self.capacity

    def lookup(self, line_addr: int) -> Optional[MshrEntry]:
        return self._entries.get(line_addr)

    def allocate(
        self,
        line_addr: int,
        issue_cycle: int,
        complete_cycle: int,
        speculative: bool = False,
        victim_line: Optional[int] = None,
        victim_dirty: bool = False,
    ) -> MshrEntry:
        """Allocate (or merge into) an entry for a miss to ``line_addr``.

        Merging keeps the earlier completion time; a merge of a
        non-speculative access into a speculative entry marks the entry
        non-speculative (the line is now architecturally demanded).
        """
        existing = self._entries.get(line_addr)
        if existing is not None:
            existing.merged += 1
            existing.speculative = existing.speculative and speculative
            self.stats.merges += 1
            self.version += 1
            return existing
        if len(self._entries) >= self.capacity:
            self.stats.stall_events += 1
            raise MshrFullError(f"MSHR full ({self.capacity} entries) on {line_addr:#x}")
        entry = MshrEntry(
            line_addr=line_addr,
            issue_cycle=issue_cycle,
            complete_cycle=complete_cycle,
            speculative=speculative,
            victim_line=victim_line,
            victim_dirty=victim_dirty,
        )
        self._entries[line_addr] = entry
        if complete_cycle < self._min_complete:
            self._min_complete = complete_cycle
        self.stats.allocations += 1
        self.version += 1
        return entry

    #: Shared fast-path return value for "nothing retired" (never mutated by
    #: callers; avoids one list allocation per cache access).
    _NOTHING: List[MshrEntry] = []

    def retire_completed(self, cycle: int) -> List[MshrEntry]:
        """Remove and return entries whose fill completed by ``cycle``."""
        if cycle < self._min_complete:
            return self._NOTHING  # nothing can have completed yet — skip the scan
        done = [e for e in self._entries.values() if e.complete_cycle <= cycle]
        if done:
            self.version += 1
        for entry in done:
            del self._entries[entry.line_addr]
        if self._entries:
            self._min_complete = min(e.complete_cycle for e in self._entries.values())
        else:
            self._min_complete = self._NO_ENTRIES
        return done

    def inflight_speculative(self, cycle: int) -> List[MshrEntry]:
        """Speculative entries still in flight at ``cycle`` (T3 targets)."""
        return [
            e
            for e in self._entries.values()
            if e.speculative and e.complete_cycle > cycle
        ]

    def clean_speculative(self, cycle: int) -> List[MshrEntry]:
        """Drop speculative in-flight entries (CleanupSpec's T3) and return them."""
        victims = self.inflight_speculative(cycle)
        if victims:
            self.version += 1
        for entry in victims:
            del self._entries[entry.line_addr]
        self.stats.cleaned_inflight += len(victims)
        return victims

    def clear(self) -> None:
        self.version += 1
        self._entries.clear()
        self._min_complete = self._NO_ENTRIES

    def register_stats(self, registry, prefix: str = "mshr") -> None:
        """Publish MSHR counters under ``prefix`` (pull-based)."""
        st = self.stats
        registry.gauge(f"{prefix}.allocations", "misses allocated an entry").add_source(
            lambda: st.allocations
        )
        registry.gauge(f"{prefix}.merges", "misses merged into entries").add_source(
            lambda: st.merges
        )
        registry.gauge(f"{prefix}.stalls", "allocation stalls (file full)").add_source(
            lambda: st.stall_events
        )
        registry.gauge(
            f"{prefix}.cleaned_inflight", "speculative entries cleaned at squash (T3)"
        ).add_source(lambda: st.cleaned_inflight)
