"""Address arithmetic for a set-associative cache geometry.

Addresses are plain integers (byte addresses). A cache level sees an address
as ``| tag | set index | line offset |``; this module provides the
decomposition and its inverse, used both by the cache model and by the
attacker's eviction-set construction (which needs to synthesise congruent
addresses).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..common.config import CacheGeometry
from ..common.errors import ConfigError


def line_address(addr: int, line_size: int) -> int:
    """Address of the first byte of the line containing ``addr``."""
    return addr & ~(line_size - 1)


def line_offset(addr: int, line_size: int) -> int:
    """Offset of ``addr`` within its line."""
    return addr & (line_size - 1)


@dataclass(frozen=True)
class AddressMapper:
    """Tag/index/offset decomposition for one :class:`CacheGeometry`."""

    geometry: CacheGeometry

    def __post_init__(self) -> None:
        if self.geometry.sets & (self.geometry.sets - 1):
            raise ConfigError("set count must be a power of two")

    @property
    def offset_bits(self) -> int:
        return self.geometry.offset_bits

    @property
    def index_bits(self) -> int:
        return self.geometry.index_bits

    def set_index(self, addr: int) -> int:
        """Set index of ``addr`` under a conventional (modulo) mapping."""
        return (addr >> self.offset_bits) & (self.geometry.sets - 1)

    def tag(self, addr: int) -> int:
        return addr >> (self.offset_bits + self.index_bits)

    def line(self, addr: int) -> int:
        return line_address(addr, self.geometry.line_size)

    def compose(self, tag: int, set_index: int, offset: int = 0) -> int:
        """Inverse of the decomposition: build a byte address."""
        if not 0 <= set_index < self.geometry.sets:
            raise ValueError(f"set index out of range: {set_index}")
        if not 0 <= offset < self.geometry.line_size:
            raise ValueError(f"offset out of range: {offset}")
        return (
            (tag << (self.offset_bits + self.index_bits))
            | (set_index << self.offset_bits)
            | offset
        )

    def congruent_addresses(self, addr: int, count: int, start_tag: int = 1) -> list:
        """``count`` distinct line addresses mapping to the same set as ``addr``.

        Useful for synthesising textbook eviction sets directly from the
        geometry (the attack instead *searches* for them; see
        :mod:`repro.attack.eviction_sets`).
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        index = self.set_index(addr)
        base_tag = self.tag(addr)
        out = []
        tag = start_tag
        while len(out) < count:
            if tag != base_tag:
                out.append(self.compose(tag, index))
            tag += 1
        return out
