"""Memory substrate: address arithmetic, DRAM model, MSHR file."""

from .address import AddressMapper, line_address, line_offset
from .dram import WORD_SIZE, Dram, DramStats
from .mshr import MshrEntry, MshrFile, MshrStats

__all__ = [
    "AddressMapper",
    "line_address",
    "line_offset",
    "Dram",
    "DramStats",
    "WORD_SIZE",
    "MshrFile",
    "MshrEntry",
    "MshrStats",
]
