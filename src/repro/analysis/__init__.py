"""Channel analysis: information-theoretic (dynamic) and speculative-taint
(static, :mod:`repro.analysis.specct`)."""

from .validation import (
    BootstrapCI,
    SeparationTest,
    bootstrap_accuracy_ci,
    bootstrap_mean_difference_ci,
    separation_test,
)
from .channel_capacity import (
    ChannelReport,
    analyze_channel,
    binary_entropy,
    bsc_capacity,
    empirical_mutual_information,
)
from .specct import (
    AnalyzerConfig,
    Finding,
    Report,
    SpecCTAnalyzer,
    analyze_program,
    cross_validate,
)

__all__ = [
    "SeparationTest",
    "separation_test",
    "BootstrapCI",
    "bootstrap_accuracy_ci",
    "bootstrap_mean_difference_ci",
    "ChannelReport",
    "analyze_channel",
    "binary_entropy",
    "bsc_capacity",
    "empirical_mutual_information",
    "AnalyzerConfig",
    "Finding",
    "Report",
    "SpecCTAnalyzer",
    "analyze_program",
    "cross_validate",
]
