"""Information-theoretic channel analysis."""

from .validation import (
    BootstrapCI,
    SeparationTest,
    bootstrap_accuracy_ci,
    bootstrap_mean_difference_ci,
    separation_test,
)
from .channel_capacity import (
    ChannelReport,
    analyze_channel,
    binary_entropy,
    bsc_capacity,
    empirical_mutual_information,
)

__all__ = [
    "SeparationTest",
    "separation_test",
    "BootstrapCI",
    "bootstrap_accuracy_ci",
    "bootstrap_mean_difference_ci",
    "ChannelReport",
    "analyze_channel",
    "binary_entropy",
    "bsc_capacity",
    "empirical_mutual_information",
]
