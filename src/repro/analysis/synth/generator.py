"""Seeded candidate-gadget generator over the specct vocabulary.

Candidates are built from one parameterized skeleton with *typed holes*
— the degrees of freedom that decide whether the program leaks through
the unXpec rollback channel and how:

* a **warm phase** (optional) makes the in-bounds transient target a
  cache hit, so only the secret-selected line misses and the rollback
  length becomes secret-dependent;
* a **guard load** from a cold line (plus an ALU pad chain) opens a wide
  speculation window before the branch resolves;
* a **branch** that architecturally skips the leak body; a fresh 2-bit
  predictor starts weakly-not-taken, so the taken branch mispredicts and
  the body runs transiently;
* a **leak body**: the secret (or a public decoy) scaled by a stride and
  used as a load / store / flush address, with optional ALU padding, an
  optional second access, and an optional leading fence.

Holes are sampled from small closed sets with a
:func:`repro.common.rng.derive_rng` substream, so generation is a pure
function of ``(seed, batch)`` — the property the campaign engine's
jobs-invariance rests on.  :func:`mutate` perturbs one hole of a
confirmed leaker at a time, giving the search cheap local moves around
known-good programs.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Tuple

from ...attack.layout import DEFAULT_LAYOUT, AttackLayout
from ...common.rng import derive_rng
from ...isa.builder import ProgramBuilder
from ...isa.program import Program

#: Cold line the guard load misses on (never touched elsewhere).
GUARD_ADDR = 0x60000
#: Cold public line used by the ``public`` (non-leaking) decoy source.
PUBLIC_ADDR = 0x61000

#: Closed hole domains (sorted; sampled by index for determinism).
STRIDES: Tuple[int, ...] = (5, 6, 7, 8)
GUARD_PADS: Tuple[int, ...] = (0, 2, 4, 6)
ALU_PADS: Tuple[int, ...] = (0, 1, 2)
N_ACCESSES: Tuple[int, ...] = (1, 2)
LEAK_OPS: Tuple[str, ...] = ("load", "store", "flush")
SOURCES: Tuple[str, ...] = ("secret", "public")


@dataclass(frozen=True)
class Holes:
    """One assignment of the skeleton's typed holes."""

    #: log2 of the byte stride multiplying the secret (>= 6 crosses lines).
    stride: int = 6
    #: ALU chain after the guard load, delaying branch resolution.
    guard_pad: int = 4
    #: Transient memory accesses in the leak body.
    n_accesses: int = 1
    #: What the body does with the secret-derived address.
    leak_op: str = "load"
    #: mfence at the top of the body (blocks the static window; the
    #: simulated machine still shows a small residual timing difference —
    #: the static/dynamic disagreement the pipeline tallies as a FN).
    fence_body: bool = False
    #: Warm the in-bounds transient target before the timed section.
    warm_target: bool = True
    #: ``secret`` reads the secret word; ``public`` is the clean decoy.
    source: str = "secret"
    #: ALU padding inside the body before the accesses.
    alu_pad: int = 0

    def label(self) -> str:
        return (
            f"s{self.stride}-g{self.guard_pad}-n{self.n_accesses}-"
            f"{self.leak_op}-{'f' if self.fence_body else 'x'}-"
            f"{'w' if self.warm_target else 'c'}-{self.source}-a{self.alu_pad}"
        )


@dataclass(frozen=True)
class Candidate:
    """One generated program plus the holes that produced it."""

    name: str
    holes: Holes
    program: Program
    #: 0 for fresh generations; parents' generation + 1 for mutants.
    generation: int = 0


@dataclass(frozen=True)
class GeneratorConfig:
    """Scale of one generation batch."""

    candidates: int = 8
    mutants_per_leaker: int = 2
    layout: AttackLayout = DEFAULT_LAYOUT


def build_candidate(
    holes: Holes, layout: AttackLayout = DEFAULT_LAYOUT, tag: str = "synth"
) -> Candidate:
    """Materialize one hole assignment into a concrete program."""
    b = ProgramBuilder(f"{tag}[{holes.label()}]")
    b.li("r1", layout.p_base)
    src_addr = layout.secret_addr if holes.source == "secret" else PUBLIC_ADDR
    b.li("r4", src_addr)
    b.li("r2", GUARD_ADDR)
    if holes.warm_target:
        b.load("r9", "r1", 0)  # warm P[0]: the in-bounds target hits
    b.load("r5", "r4", 0)  # warm + read the (secret) source word
    b.fence()  # drain the warm phase before the timed section
    b.load("r3", "r2", 0)  # guard: cold miss opens the window
    for _ in range(holes.guard_pad):
        b.opi("add", "r3", "r3", 0)
    # r3 loaded 0 from zeroed memory: the branch is architecturally taken
    # (skipping the body), but a fresh weakly-not-taken predictor fetches
    # the body — the body only ever runs transiently.
    b.branch("eq", "r3", "r0", "skip")
    if holes.fence_body:
        b.fence()
    for _ in range(holes.alu_pad):
        b.opi("add", "r8", "r8", 1)
    b.opi("shl", "r7", "r5", holes.stride)
    b.op("add", "r7", "r1", "r7")
    for i in range(holes.n_accesses):
        offset = i * 128  # successive accesses touch distinct lines
        if holes.leak_op == "load":
            b.load("r10", "r7", offset)
        elif holes.leak_op == "store":
            b.store("r8", "r7", offset)
        else:
            b.flush("r7", offset)
    b.label("skip")
    b.halt()
    program = b.build()
    return Candidate(name=program.name, holes=holes, program=program)


def _sample_holes(rng) -> Holes:
    return Holes(
        stride=STRIDES[int(rng.integers(len(STRIDES)))],
        guard_pad=GUARD_PADS[int(rng.integers(len(GUARD_PADS)))],
        n_accesses=N_ACCESSES[int(rng.integers(len(N_ACCESSES)))],
        leak_op=LEAK_OPS[int(rng.integers(len(LEAK_OPS)))],
        fence_body=bool(rng.integers(4) == 0),
        warm_target=bool(rng.integers(4) != 0),
        source=SOURCES[0] if rng.integers(4) != 0 else SOURCES[1],
        alu_pad=ALU_PADS[int(rng.integers(len(ALU_PADS)))],
    )


def generate_batch(
    seed: int, batch: int, config: GeneratorConfig = GeneratorConfig()
) -> List[Candidate]:
    """Deterministically generate one batch of fresh candidates.

    A pure function of ``(seed, batch, config)`` — batches are the
    campaign shards, so two shards never share a substream.
    """
    rng = derive_rng(seed, f"synth-gen-{batch}")
    out: List[Candidate] = []
    seen = set()
    attempts = 0
    while len(out) < config.candidates and attempts < config.candidates * 16:
        attempts += 1
        holes = _sample_holes(rng)
        if holes in seen:
            continue
        seen.add(holes)
        out.append(build_candidate(holes, config.layout, tag=f"synth{batch}"))
    return out


def mutate(
    candidate: Candidate,
    seed: int,
    index: int,
    layout: AttackLayout = DEFAULT_LAYOUT,
) -> Candidate:
    """One seeded single-hole mutation of a confirmed leaker."""
    rng = derive_rng(seed, f"synth-mut-{candidate.name}-{index}")
    holes = candidate.holes
    field = ("stride", "guard_pad", "n_accesses", "leak_op", "alu_pad")[
        int(rng.integers(5))
    ]
    domains = {
        "stride": STRIDES,
        "guard_pad": GUARD_PADS,
        "n_accesses": N_ACCESSES,
        "leak_op": LEAK_OPS,
        "alu_pad": ALU_PADS,
    }
    domain = [v for v in domains[field] if v != getattr(holes, field)]
    mutated = replace(holes, **{field: domain[int(rng.integers(len(domain)))]})
    built = build_candidate(mutated, layout, tag=f"mut{index}")
    return Candidate(
        name=built.name,
        holes=mutated,
        program=built.program,
        generation=candidate.generation + 1,
    )
