"""Generate → explorer-filter → simulator-confirm gadget pipeline.

One candidate flows through three oracles:

1. **Static filter** — the specct multi-path explorer.  A candidate is a
   *speculative-gadget candidate* when some explored window path performs
   a secret-tainted cache mutation (a transient finding).
2. **Dynamic confirmation** — the cycle-accurate simulator under the
   CleanupSpec defense: run the program twice with only the secret word
   different and compare end-to-end cycles.  A nonzero delta is exactly
   the paper's rollback-duration channel.
3. **Witness replay** — the dynamic taint interpreter re-executes the
   explorer's witness concretely, tying the static finding to a concrete
   transient event.

The static and dynamic verdicts need not agree, and the disagreements
are the interesting part: a tainted *flush/store* body is transiently
flagged but performs nothing speculatively on the modeled machine (false
positive), while a fenced body is statically silent yet the simulator
still shows a small residual delta through MSHR pressure (false
negative — fences do not fully close the undo channel).  The pipeline
tallies both.

Confirmed leakers are greedily **minimized**: instructions are deleted
one at a time while both oracles keep confirming, yielding exemplar
gadgets.  Everything here is a pure function of its arguments — the
``synth`` experiment shards it by batch and merges byte-identically at
any worker count or backend.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ...attack.layout import DEFAULT_LAYOUT, AttackLayout
from ...cache.hierarchy import CacheHierarchy
from ...cpu.backend import make_core
from ...defense.cleanupspec import CleanupSpec
from ...isa.instructions import Halt
from ...isa.program import Program
from ...obs import get_default_obs
from ..specct.explorer import ExplorerConfig, SpecExplorer, replay_witness


@dataclass(frozen=True)
class PipelineConfig:
    """Knobs of one candidate evaluation."""

    layout: AttackLayout = DEFAULT_LAYOUT
    explorer: ExplorerConfig = ExplorerConfig(max_paths=256, max_steps=20_000)
    #: Hierarchy seed for the confirmation runs (fixed: determinism).
    sim_seed: int = 0
    #: Upper bound on simulated instructions per confirmation run.
    max_instructions: int = 20_000
    #: Greedy-minimize confirmed leakers.
    minimize: bool = True

    def secret_ranges(self) -> Tuple[Tuple[int, int], ...]:
        return (self.layout.secret_range,)


@dataclass
class CandidateOutcome:
    """Everything the pipeline concluded about one candidate."""

    name: str
    holes: str
    generation: int
    instructions: int
    #: Static: any transient finding on an explored window path.
    static_transient: bool = False
    #: Static: any finding at all (incl. architectural over-approximation).
    static_any: bool = False
    static_findings: int = 0
    pruned_infeasible: int = 0
    #: Dynamic: cycles(secret=1) - cycles(secret=0) under CleanupSpec.
    delta_cycles: int = 0
    dynamic_leak: bool = False
    #: static_transient AND dynamic_leak: a discovered gadget.
    confirmed: bool = False
    #: The transient witness reproduced by the dynamic interpreter.
    witness_replayed: bool = False
    minimized_instructions: Optional[int] = None
    minimized_listing: Optional[str] = None
    listing: str = ""

    @property
    def false_positive(self) -> bool:
        """Statically flagged transient leak, no simulator delta."""
        return self.static_transient and not self.dynamic_leak

    @property
    def false_negative(self) -> bool:
        """Simulator delta with no static transient finding."""
        return self.dynamic_leak and not self.static_transient

    @property
    def agree(self) -> bool:
        return self.static_transient == self.dynamic_leak

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "holes": self.holes,
            "generation": self.generation,
            "instructions": self.instructions,
            "static_transient": self.static_transient,
            "static_any": self.static_any,
            "static_findings": self.static_findings,
            "pruned_infeasible": self.pruned_infeasible,
            "delta_cycles": self.delta_cycles,
            "dynamic_leak": self.dynamic_leak,
            "confirmed": self.confirmed,
            "witness_replayed": self.witness_replayed,
            "minimized_instructions": self.minimized_instructions,
            "minimized_listing": self.minimized_listing,
            "listing": self.listing,
        }


# ---------------------------------------------------------------------------
# oracles
# ---------------------------------------------------------------------------


def simulate_cycles(
    program: Program, secret_bit: int, config: PipelineConfig
) -> int:
    """End-to-end cycles of one run under CleanupSpec with the given secret.

    Built through :func:`make_core`, so the active execution backend
    (scalar or batched) applies — the two are bit-identical by the
    differential-harness contract, which is what makes the whole
    experiment backend-invariant.
    """
    hierarchy = CacheHierarchy(seed=config.sim_seed)
    defense = CleanupSpec(hierarchy)
    core = make_core(hierarchy, defense, config=hierarchy.config.core)
    hierarchy.dram.poke(config.layout.secret_addr, secret_bit & 1)
    result = core.run(program, max_instructions=config.max_instructions)
    return result.cycles


def simulate_delta(program: Program, config: PipelineConfig) -> int:
    """cycles(secret=1) - cycles(secret=0): the rollback-duration channel."""
    return simulate_cycles(program, 1, config) - simulate_cycles(program, 0, config)


def _static_verdict(program: Program, config: PipelineConfig):
    report = SpecExplorer(
        program, config.secret_ranges(), config.explorer
    ).explore()
    transient = [
        f for f in report.findings if f.transient and f.witness is not None
    ]
    return report, bool(transient)


# ---------------------------------------------------------------------------
# minimization
# ---------------------------------------------------------------------------


def remove_instruction(program: Program, index: int) -> Program:
    """The program with instruction ``index`` deleted (labels re-aimed)."""
    instructions = [
        inst for pc, inst in enumerate(program) if pc != index
    ]
    labels = {
        name: idx - 1 if idx > index else idx
        for name, idx in program.labels.items()
    }
    return Program(instructions, labels, name=program.name)


def minimize_program(
    program: Program, keeps_leaking: Callable[[Program], bool]
) -> Program:
    """Greedy instruction deletion while ``keeps_leaking`` stays true.

    Deterministic: repeatedly sweeps pcs in descending order, restarting
    after any accepted deletion, until a full sweep removes nothing.
    """
    current = program
    changed = True
    while changed:
        changed = False
        for index in range(len(current) - 1, -1, -1):
            if isinstance(current[index], Halt):
                continue  # programs must end with Halt
            try:
                trial = remove_instruction(current, index)
            except Exception:
                continue  # deletion broke structural validity
            if keeps_leaking(trial):
                current = trial
                changed = True
                break
    return current


# ---------------------------------------------------------------------------
# evaluation
# ---------------------------------------------------------------------------


def evaluate_candidate(candidate, config: PipelineConfig) -> CandidateOutcome:
    """Run one candidate through all three oracles (plus minimization)."""
    program = candidate.program
    outcome = CandidateOutcome(
        name=candidate.name,
        holes=candidate.holes.label(),
        generation=candidate.generation,
        instructions=len(program),
        listing=program.listing(),
    )
    report, static_transient = _static_verdict(program, config)
    outcome.static_transient = static_transient
    outcome.static_any = not report.clean
    outcome.static_findings = len(report.findings)
    outcome.pruned_infeasible = report.pruned_infeasible

    outcome.delta_cycles = simulate_delta(program, config)
    outcome.dynamic_leak = outcome.delta_cycles != 0
    outcome.confirmed = outcome.static_transient and outcome.dynamic_leak

    if outcome.confirmed:
        secret_addr = config.layout.secret_addr
        for f in report.findings:
            if f.transient and f.witness is not None:
                if replay_witness(
                    program,
                    f.witness,
                    config.secret_ranges(),
                    memory={secret_addr: 1},
                    window=config.explorer.window,
                ):
                    outcome.witness_replayed = True
                    break
        if config.minimize:

            def still_confirmed(trial: Program) -> bool:
                _, transient = _static_verdict(trial, config)
                return transient and simulate_delta(trial, config) != 0

            minimized = minimize_program(program, still_confirmed)
            outcome.minimized_instructions = len(minimized)
            outcome.minimized_listing = minimized.listing()
    _count(outcome)
    return outcome


def _count(outcome: CandidateOutcome) -> None:
    """Bump obs counters when a default registry is installed."""
    obs = get_default_obs()
    if obs is None:
        return
    reg = obs.registry
    reg.counter("synth.candidates", "candidate gadgets evaluated").inc()
    if outcome.static_transient:
        reg.counter("synth.static_leaky", "statically flagged candidates").inc()
    if outcome.dynamic_leak:
        reg.counter("synth.dynamic_leaky", "simulator-confirmed deltas").inc()
    if outcome.confirmed:
        reg.counter("synth.confirmed", "static+dynamic confirmed gadgets").inc()
    if outcome.false_positive:
        reg.counter("synth.false_positives", "static-only findings").inc()
    if outcome.false_negative:
        reg.counter("synth.false_negatives", "dynamic-only deltas").inc()
