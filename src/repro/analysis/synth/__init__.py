"""``repro.analysis.synth`` — automated speculative-gadget synthesis.

Closes the ROADMAP's gadget-discovery loop on top of the specct
multi-path explorer: a deterministic, seeded generator emits candidate
programs over the specct instruction vocabulary (typed holes around
load/branch/flush skeletons), the explorer filters them statically for
speculative leaks, and the cycle-accurate simulator confirms which
candidates actually modulate the CleanupSpec rollback duration with the
secret — the unXpec channel.  Confirmed leakers are mutated for further
coverage and greedily minimized to exemplar form.

Wired into the campaign engine as the ``synth`` experiment::

    python -m repro.experiments synth --quick
"""

from .generator import (
    Candidate,
    GeneratorConfig,
    Holes,
    build_candidate,
    generate_batch,
    mutate,
)
from .pipeline import (
    CandidateOutcome,
    PipelineConfig,
    evaluate_candidate,
    minimize_program,
    remove_instruction,
    simulate_delta,
)

__all__ = [
    "Candidate",
    "CandidateOutcome",
    "GeneratorConfig",
    "Holes",
    "PipelineConfig",
    "build_candidate",
    "evaluate_candidate",
    "generate_batch",
    "minimize_program",
    "mutate",
    "remove_instruction",
    "simulate_delta",
]
