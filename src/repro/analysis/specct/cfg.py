"""Control-flow graph over a :class:`~repro.isa.program.Program`.

Nodes are instruction indices; edges are the *architectural* successor
relation with branch/jump labels resolved eagerly through the program's
label table.  Because branch conditions are statically unknown, a
conditional branch contributes both its fall-through and its taken edge —
the speculative wrong-path exploration of the analyzer walks exactly the
same edges, only bounded by the speculation window and seeded at a branch.

A label may legally resolve to ``len(program)`` (one past the final
``Halt``); such an edge falls off the end and is treated as program exit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ...isa.instructions import Branch, Halt, Instruction, Jump
from ...isa.program import Program


@dataclass(frozen=True)
class CfgNode:
    """One instruction with its resolved architectural successors."""

    pc: int
    instruction: Instruction
    successors: Tuple[int, ...]
    #: Resolved taken-target for branches/jumps, None otherwise.
    target: Optional[int] = None

    @property
    def is_branch(self) -> bool:
        return isinstance(self.instruction, Branch)


class Cfg:
    """Immutable CFG of one program."""

    def __init__(self, program: Program) -> None:
        self.program = program
        n = len(program)
        nodes: List[CfgNode] = []
        for pc, inst in enumerate(program):
            target: Optional[int] = None
            if isinstance(inst, Halt):
                succs: Tuple[int, ...] = ()
            elif isinstance(inst, Jump):
                target = program.resolve(inst.target)
                succs = (target,) if target < n else ()
            elif isinstance(inst, Branch):
                target = program.resolve(inst.target)
                succs = tuple(
                    s for s in dict.fromkeys((pc + 1, target)) if s < n
                )
            else:
                succs = (pc + 1,) if pc + 1 < n else ()
            nodes.append(CfgNode(pc=pc, instruction=inst, successors=succs, target=target))
        self.nodes: Tuple[CfgNode, ...] = tuple(nodes)

    def __len__(self) -> int:
        return len(self.nodes)

    def node(self, pc: int) -> CfgNode:
        return self.nodes[pc]

    def successors(self, pc: int) -> Tuple[int, ...]:
        return self.nodes[pc].successors

    def branch_pcs(self) -> List[int]:
        return [n.pc for n in self.nodes if n.is_branch]
