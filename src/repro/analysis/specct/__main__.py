"""CLI of the speculative-taint analyzer.

Targets::

    gadget:round          unXpec round program (--n-loads, --condition-accesses,
                          --train-iters select the parameterisation)
    gadget:setup          unXpec setup/warming program (expected clean)
    spectre:round         classic Spectre-v1 round program
    workload:<profile>    synthetic SPEC-like workload (--instructions, --seed)
    <path>.s              textual assembly, parsed by repro.isa.asm

Attack targets default their secret declaration to the gadget layout's
secret word; files and workloads use ``--secret lo:hi`` (repeatable,
hex accepted).  Exit status: 0 when the program is clean, 1 when findings
were reported (lint semantics), 2 on usage errors.  ``--crossval`` runs
the gadget/workload/fig3 cross-validation suite instead and exits 0 only
if every static verdict matches ground truth.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Tuple

from ...common.errors import ReproError
from .analyzer import AnalyzerConfig, SpecCTAnalyzer


def _parse_range(text: str) -> Tuple[int, int]:
    try:
        lo, hi = text.split(":", 1)
        return (int(lo, 0), int(hi, 0))
    except ValueError as exc:
        raise argparse.ArgumentTypeError(
            f"expected lo:hi (e.g. 0x18280:0x18288), got {text!r}"
        ) from exc


def _resolve_target(args: argparse.Namespace):
    """(program, default_secret_ranges, replay_memory) for the target.

    ``replay_memory`` is the concrete victim memory image witness replay
    runs against (attack targets provide their data structures — the OOB
    table entry is what makes the concrete leak fire); None for targets
    without one (files, workloads), which replay against zeroed memory.
    """
    target: str = args.target
    if target.startswith("gadget:"):
        from ...attack.gadgets import GadgetParams, UnxpecGadget

        gadget = UnxpecGadget(
            params=GadgetParams(
                n_loads=args.n_loads,
                condition_accesses=args.condition_accesses,
                train_iters=args.train_iters,
            )
        )
        which = target.split(":", 1)[1]
        if which == "round":
            return gadget.build_round(), gadget.secret_ranges(), gadget.memory_image(1)
        if which == "setup":
            return gadget.build_setup(), gadget.secret_ranges(), gadget.memory_image(1)
        raise ReproError(f"unknown gadget program {which!r} (want round or setup)")
    if target == "spectre:round":
        from ...attack.spectre import SpectreV1Attack

        attack = SpectreV1Attack()
        return attack.build_round(), attack.secret_ranges(), attack.memory_image(3)
    if target.startswith("workload:"):
        from ...attack.layout import DEFAULT_LAYOUT
        from ...workloads import get_profile, synthesize

        profile = get_profile(target.split(":", 1)[1])
        workload = synthesize(
            profile, instructions=args.instructions, seed=args.seed
        )
        return workload.program, (DEFAULT_LAYOUT.secret_range,), None
    # Anything else: a path to textual assembly.
    from ...isa.asm import assemble

    with open(target) as fh:
        text = fh.read()
    return assemble(text, name=target), (), None


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.specct",
        description="Speculative-taint static analyzer for ISA programs.",
    )
    parser.add_argument(
        "target",
        nargs="?",
        help="gadget:round | gadget:setup | spectre:round | "
        "workload:<profile> | path to a .s file",
    )
    parser.add_argument(
        "--crossval",
        action="store_true",
        help="run the gadget/workload/fig3 cross-validation suite instead",
    )
    parser.add_argument(
        "--quick", action="store_true", help="smaller cross-validation corpus"
    )
    parser.add_argument(
        "--no-dynamic",
        action="store_true",
        help="cross-validation without the (slower) simulator sign check",
    )
    parser.add_argument(
        "--window",
        type=int,
        default=AnalyzerConfig.window,
        help="speculation window depth in instructions (default: %(default)s)",
    )
    parser.add_argument(
        "--secret",
        action="append",
        type=_parse_range,
        default=None,
        metavar="LO:HI",
        help="secret byte range (repeatable; overrides the target's default)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text", help="output format"
    )
    parser.add_argument(
        "--explore",
        action="store_true",
        help="run the multi-path explorer (path-sensitive findings, "
        "infeasible-path pruning, witness traces) instead of the fixpoint",
    )
    parser.add_argument(
        "--max-paths",
        type=int,
        default=None,
        help="explorer: path/fork budget (default: %s)" % "1024",
    )
    parser.add_argument(
        "--max-steps",
        type=int,
        default=None,
        help="explorer: total instruction-step budget (default: %s)" % "100000",
    )
    parser.add_argument(
        "--replay",
        action="store_true",
        help="explorer: concretely validate each witness with the dynamic "
        "taint interpreter (against the target's memory image, if it has one)",
    )
    parser.add_argument(
        "--n-loads", type=int, default=1, help="gadget: in-branch transient loads"
    )
    parser.add_argument(
        "--condition-accesses",
        type=int,
        default=1,
        help="gadget: f(N) pointer-chase depth",
    )
    parser.add_argument(
        "--train-iters", type=int, default=16, help="gadget: training invocations"
    )
    parser.add_argument(
        "--instructions", type=int, default=400, help="workload: program size"
    )
    parser.add_argument("--seed", type=int, default=0, help="workload: master seed")
    args = parser.parse_args(argv)

    if args.crossval:
        from .crossval import cross_validate

        report = cross_validate(
            quick=args.quick, seed=args.seed, window=args.window,
            with_dynamic=not args.no_dynamic,
        )
        if args.format == "json":
            import json

            print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
        else:
            print(report.render_text())
        return 0 if report.ok else 1

    if not args.target:
        parser.error("a target is required unless --crossval is given")
    try:
        program, default_ranges, replay_memory = _resolve_target(args)
    except (ReproError, OSError) as exc:
        print(f"specct: {exc}", file=sys.stderr)
        return 2
    ranges = args.secret if args.secret is not None else list(default_ranges)

    if args.explore:
        from .explorer import ExplorerConfig, SpecExplorer, replay_findings

        overrides = {"window": args.window}
        if args.max_paths is not None:
            overrides["max_paths"] = args.max_paths
        if args.max_steps is not None:
            overrides["max_steps"] = args.max_steps
        ereport = SpecExplorer(
            program, ranges, ExplorerConfig(**overrides)
        ).explore()
        replay = None
        if args.replay:
            replay = replay_findings(ereport, program, memory=replay_memory)
        if args.format == "json":
            import json

            payload = ereport.to_dict()
            if replay is not None:
                payload["replay"] = [
                    {
                        "kind": kind,
                        "pc": pc,
                        "transient": transient,
                        "confirmed": ok,
                    }
                    for (kind, pc, transient), ok in sorted(replay.items())
                ]
            print(json.dumps(payload, indent=2, sort_keys=True))
        else:
            print(ereport.render_text())
            if replay is not None:
                confirmed = sum(1 for ok in replay.values() if ok)
                print(
                    f"witness replay: {confirmed}/{len(replay)} finding(s) "
                    "confirmed by the dynamic interpreter"
                )
                for (kind, pc, transient), ok in sorted(replay.items()):
                    mode = "transient" if transient else "architectural"
                    verdict = "CONFIRMED" if ok else "not reproduced"
                    print(f"  {kind} @ {program.name}:{pc} ({mode}): {verdict}")
        return 0 if ereport.clean else 1

    report = SpecCTAnalyzer(
        program, ranges, AnalyzerConfig(window=args.window)
    ).analyze()
    print(report.to_json() if args.format == "json" else report.render_text())
    return 0 if report.clean else 1


if __name__ == "__main__":
    sys.exit(main())
