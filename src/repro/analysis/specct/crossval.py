"""Cross-validation harness: static verdicts vs. known ground truth.

Three legs, each an acceptance criterion of the analyzer:

* **True positives** — every attack gadget program (``UnxpecGadget``
  round programs across a parameter sweep, the Spectre-v1 round) must be
  flagged, with at least one *transient* tainted-load-address finding and
  a positive cache-state-delta bound.
* **No false positives** — every safe synthetic workload program
  (:func:`repro.workloads.safe_programs`) must come back clean under the
  same secret declaration.
* **Sign agreement** — the static cache-delta bound of the fig3 gadget
  configuration must agree in *sign* with the dynamically measured
  secret=1 vs secret=0 rollback timing delta: both positive on the
  leaking gadget.  This is what turns the simulator into a correctness
  oracle for the analyzer (and vice versa).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ...attack.gadgets import GadgetParams, UnxpecGadget
from ...attack.spectre import SpectreV1Attack
from ...workloads.synth import safe_programs
from .analyzer import AnalyzerConfig, SpecCTAnalyzer
from .findings import TAINTED_LOAD_ADDR, Report

#: (n_loads, condition_accesses) points of the gadget sweep.
FULL_GADGET_SWEEP: Tuple[Tuple[int, int], ...] = tuple(
    (n, acc) for n in (1, 2, 3, 4, 5, 6, 7, 8) for acc in (1, 2)
)
QUICK_GADGET_SWEEP: Tuple[Tuple[int, int], ...] = ((1, 1), (2, 1), (4, 2), (8, 1))


@dataclass(frozen=True)
class CaseResult:
    """One program's verdict against its expectation."""

    name: str
    category: str  # "gadget" | "workload"
    expected_flagged: bool
    flagged: bool
    transient_tainted_loads: int
    cache_delta_bound: int
    findings: int

    @property
    def ok(self) -> bool:
        if self.expected_flagged:
            return (
                self.flagged
                and self.transient_tainted_loads > 0
                and self.cache_delta_bound > 0
            )
        return not self.flagged


@dataclass(frozen=True)
class SignCheck:
    """Static cache-delta bound vs dynamic fig3-style timing delta."""

    n_loads: int
    static_delta_bound: int
    dynamic_timing_delta: int

    @property
    def ok(self) -> bool:
        # sign(static) must equal sign(dynamic); the gadget leaks, so both
        # are expected strictly positive.
        def sign(x: int) -> int:
            return (x > 0) - (x < 0)

        return sign(self.static_delta_bound) == sign(self.dynamic_timing_delta)


@dataclass
class CrossValReport:
    cases: List[CaseResult] = field(default_factory=list)
    sign_checks: List[SignCheck] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(c.ok for c in self.cases) and all(s.ok for s in self.sign_checks)

    def render_text(self) -> str:
        lines = ["specct cross-validation"]
        for c in self.cases:
            verdict = "ok" if c.ok else "MISMATCH"
            expect = "flagged" if c.expected_flagged else "clean"
            got = (
                f"{c.findings} finding(s), "
                f"{c.transient_tainted_loads} transient tainted load(s), "
                f"delta bound {c.cache_delta_bound}"
            )
            lines.append(f"  [{verdict}] {c.category:8s} {c.name}: expect {expect}, got {got}")
        for s in self.sign_checks:
            verdict = "ok" if s.ok else "MISMATCH"
            lines.append(
                f"  [{verdict}] fig3 sign  n_loads={s.n_loads}: static delta bound "
                f"{s.static_delta_bound}, dynamic timing delta "
                f"{s.dynamic_timing_delta} cycles"
            )
        lines.append(
            "PASS: static verdicts agree with ground truth"
            if self.ok
            else "FAIL: static verdicts disagree with ground truth"
        )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "cases": [
                {
                    "name": c.name,
                    "category": c.category,
                    "expected_flagged": c.expected_flagged,
                    "flagged": c.flagged,
                    "transient_tainted_loads": c.transient_tainted_loads,
                    "cache_delta_bound": c.cache_delta_bound,
                    "findings": c.findings,
                    "ok": c.ok,
                }
                for c in self.cases
            ],
            "sign_checks": [
                {
                    "n_loads": s.n_loads,
                    "static_delta_bound": s.static_delta_bound,
                    "dynamic_timing_delta": s.dynamic_timing_delta,
                    "ok": s.ok,
                }
                for s in self.sign_checks
            ],
        }


# ---------------------------------------------------------------------------
# corpora
# ---------------------------------------------------------------------------


def gadget_cases(quick: bool = False):
    """(name, program, secret_ranges) of every attacking program."""
    sweep = QUICK_GADGET_SWEEP if quick else FULL_GADGET_SWEEP
    cases = []
    for n_loads, accesses in sweep:
        gadget = UnxpecGadget(
            params=GadgetParams(n_loads=n_loads, condition_accesses=accesses)
        )
        program = gadget.build_round()
        cases.append((program.name, program, gadget.secret_ranges()))
    spectre = SpectreV1Attack()
    cases.append(("spectre-v1-round", spectre.build_round(), spectre.secret_ranges()))
    return cases


def workload_cases(quick: bool = False, seed: int = 0):
    """(name, program, secret_ranges) of every safe program.

    The secret declaration is the *same* one the gadgets use — the
    workloads only ever touch their own regions, so they must be clean
    even with the secret declared.
    """
    gadget = UnxpecGadget()
    ranges = gadget.secret_ranges()
    instructions = 200 if quick else 400
    return [
        (f"workload-{name}", program, ranges)
        for name, program in safe_programs(instructions=instructions, seed=seed)
    ]


# ---------------------------------------------------------------------------
# the harness
# ---------------------------------------------------------------------------


def _analyze(program, ranges, window: int) -> Report:
    return SpecCTAnalyzer(program, ranges, AnalyzerConfig(window=window)).analyze()


def _case(name, category, program, ranges, expected_flagged, window) -> CaseResult:
    report = _analyze(program, ranges, window)
    transient_loads = [
        f for f in report.by_kind(TAINTED_LOAD_ADDR) if f.transient
    ]
    return CaseResult(
        name=name,
        category=category,
        expected_flagged=expected_flagged,
        flagged=not report.clean,
        transient_tainted_loads=len(transient_loads),
        cache_delta_bound=report.cache_delta_bound,
        findings=len(report.findings),
    )


def fig3_sign_checks(
    load_counts: Sequence[int] = (1, 4),
    seed: int = 0,
    window: int = AnalyzerConfig.window,
) -> List[SignCheck]:
    """Static delta bound vs dynamic fig3 timing delta per load count."""
    from ...attack.unxpec import UnxpecAttack

    checks = []
    for n_loads in load_counts:
        gadget = UnxpecGadget(params=GadgetParams(n_loads=n_loads))
        report = _analyze(gadget.build_round(), gadget.secret_ranges(), window)
        attack = UnxpecAttack(params=GadgetParams(n_loads=n_loads), seed=seed)
        attack.prepare()
        s0 = attack.sample(0)
        s1 = attack.sample(1)
        checks.append(
            SignCheck(
                n_loads=n_loads,
                static_delta_bound=report.cache_delta_bound,
                dynamic_timing_delta=s1.latency - s0.latency,
            )
        )
    return checks


def cross_validate(
    quick: bool = False,
    seed: int = 0,
    window: int = AnalyzerConfig.window,
    with_dynamic: bool = True,
    load_counts: Optional[Sequence[int]] = None,
) -> CrossValReport:
    """Run all three legs; ``with_dynamic=False`` skips the simulator leg."""
    report = CrossValReport()
    for name, program, ranges in gadget_cases(quick=quick):
        report.cases.append(_case(name, "gadget", program, ranges, True, window))
    for name, program, ranges in workload_cases(quick=quick, seed=seed):
        report.cases.append(_case(name, "workload", program, ranges, False, window))
    if with_dynamic:
        counts = load_counts if load_counts is not None else ((1,) if quick else (1, 4))
        report.sign_checks = fig3_sign_checks(counts, seed=seed, window=window)
    return report
