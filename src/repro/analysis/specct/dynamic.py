"""Dynamic taint-tracking reference interpreter.

Executes a program *concretely* (registers start at zero, memory is a
zero-filled word store) while tracking the same taint the static
analyzer abstracts: a value is tainted when derived from a declared
secret byte range.  At every conditional branch the interpreter also
explores the *wrong* path — the direction the concrete condition did not
take — for up to ``window`` instructions against a copy-on-write state,
mirroring bounded transient execution.

The interpreter is the ground truth for the static analyzer's soundness
property: every event it observes (tainted load/store/flush address,
tainted branch condition; architectural or transient) must correspond to
a static finding of the same kind at the same pc.  The reverse need not
hold — the static pass over-approximates (joins over paths, loads
through unknown addresses) — which is what the hypothesis cross-check in
``tests/test_property_specct_dynamic.py`` exercises.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Set, Tuple

from ...common.errors import AnalysisError
from ...isa.instructions import (
    Branch,
    Fence,
    Flush,
    Halt,
    Instruction,
    IntOp,
    IntOpImm,
    Jump,
    Load,
    LoadImm,
    Nop,
    ReadTimer,
    Store,
    alu_eval,
)
from ...isa.program import Program
from ...isa.registers import WORD_MASK
from .analyzer import normalize_ranges
from .findings import (
    TAINTED_BRANCH_COND,
    TAINTED_FLUSH_ADDR,
    TAINTED_LOAD_ADDR,
    TAINTED_STORE_ADDR,
)
from .lattice import WORD, align_word


@dataclass(frozen=True)
class DynEvent:
    """One concrete taint event at one executed instruction."""

    kind: str
    pc: int
    transient: bool
    #: Branch whose wrong path exposed the event (transient only).
    branch_pc: Optional[int] = None


class _State:
    """Concrete machine state with per-register / per-word taint."""

    __slots__ = ("regs", "taint", "mem", "mem_taint")

    def __init__(self) -> None:
        self.regs: Dict[str, int] = {}
        self.taint: Set[str] = set()
        self.mem: Dict[int, int] = {}
        self.mem_taint: Set[int] = set()

    def fork(self) -> "_State":
        child = _State()
        child.regs = dict(self.regs)
        child.taint = set(self.taint)
        child.mem = dict(self.mem)
        child.mem_taint = set(self.mem_taint)
        return child

    def get(self, reg: str) -> int:
        return self.regs.get(reg, 0)

    def set(self, reg: str, value: int, tainted: bool) -> None:
        self.regs[reg] = value & WORD_MASK
        if tainted:
            self.taint.add(reg)
        else:
            self.taint.discard(reg)

    def load(self, addr: int) -> int:
        return self.mem.get(align_word(addr), 0)

    def store(self, addr: int, value: int, tainted: bool) -> None:
        word = align_word(addr)
        self.mem[word] = value & WORD_MASK
        if tainted:
            self.mem_taint.add(word)
        else:
            self.mem_taint.discard(word)


class DynamicTaintInterpreter:
    """Concrete executor + taint tracker + bounded wrong-path explorer."""

    def __init__(
        self,
        program: Program,
        secret_ranges: Iterable[Tuple[int, int]] = (),
        window: int = 64,
        fence_blocks_speculation: bool = True,
        max_steps: int = 200_000,
        memory: Optional[Mapping[int, int]] = None,
        addr_space_bytes: int = 1 << 32,
    ) -> None:
        self.program = program
        self.ranges = normalize_ranges(secret_ranges)
        self.window = window
        self.fence_blocks_speculation = fence_blocks_speculation
        self.max_steps = max_steps
        self._initial_memory = dict(memory or {})
        if addr_space_bytes < 1 or (addr_space_bytes & (addr_space_bytes - 1)):
            raise AnalysisError("addr_space_bytes must be a power of two")
        # Effective addresses wrap to the machine's address space — the
        # same mask the core applies at the hierarchy boundary.
        self._addr_mask = addr_space_bytes - 1

    # ------------------------------------------------------------------

    def _reads_secret(self, addr: int) -> bool:
        word = align_word(addr)
        return any(lo < word + WORD and word < hi for lo, hi in self.ranges)

    def _step(
        self,
        pc: int,
        state: _State,
        events: List[DynEvent],
        transient: bool,
        branch_pc: Optional[int],
    ) -> Optional[int]:
        """Execute one instruction; return the concrete next pc (None = stop)."""
        inst: Instruction = self.program[pc]
        tag = dict(transient=transient, branch_pc=branch_pc)
        if isinstance(inst, LoadImm):
            state.set(inst.dst, inst.imm, False)
        elif isinstance(inst, IntOp):
            tainted = inst.src1 in state.taint or inst.src2 in state.taint
            state.set(
                inst.dst,
                alu_eval(inst.op, state.get(inst.src1), state.get(inst.src2)),
                tainted,
            )
        elif isinstance(inst, IntOpImm):
            state.set(
                inst.dst,
                alu_eval(inst.op, state.get(inst.src1), inst.imm),
                inst.src1 in state.taint,
            )
        elif isinstance(inst, Load):
            addr = (state.get(inst.base) + inst.offset) & self._addr_mask
            if inst.base in state.taint:
                events.append(DynEvent(TAINTED_LOAD_ADDR, pc, **tag))
            tainted = (
                inst.base in state.taint
                or self._reads_secret(addr)
                or align_word(addr) in state.mem_taint
            )
            state.set(inst.dst, state.load(addr), tainted)
        elif isinstance(inst, Store):
            addr = (state.get(inst.base) + inst.offset) & self._addr_mask
            if inst.base in state.taint:
                events.append(DynEvent(TAINTED_STORE_ADDR, pc, **tag))
            state.store(addr, state.get(inst.src), inst.src in state.taint)
        elif isinstance(inst, Flush):
            if inst.base in state.taint:
                events.append(DynEvent(TAINTED_FLUSH_ADDR, pc, **tag))
        elif isinstance(inst, ReadTimer):
            state.set(inst.dst, 0, False)
        elif isinstance(inst, (Fence, Nop)):
            pass
        elif isinstance(inst, Halt):
            return None
        elif isinstance(inst, Jump):
            nxt = self.program.resolve(inst.target)
            return nxt if nxt < len(self.program) else None
        elif isinstance(inst, Branch):
            if inst.src1 in state.taint or inst.src2 in state.taint:
                events.append(DynEvent(TAINTED_BRANCH_COND, pc, **tag))
            taken = inst.taken(state.get(inst.src1), state.get(inst.src2))
            target = self.program.resolve(inst.target)
            nxt = target if taken else pc + 1
            return nxt if nxt < len(self.program) else None
        else:  # pragma: no cover - new opcodes must be handled explicitly
            raise AnalysisError(f"unhandled instruction {inst!r} at pc {pc}")
        nxt = pc + 1
        return nxt if nxt < len(self.program) else None

    def _wrong_path(
        self, start_pc: int, branch_pc: int, state: _State, events: List[DynEvent]
    ) -> None:
        """Transiently execute up to ``window`` instructions from ``start_pc``."""
        spec = state.fork()
        pc: Optional[int] = start_pc
        for _ in range(self.window):
            if pc is None:
                break
            inst = self.program[pc]
            if isinstance(inst, Fence) and self.fence_blocks_speculation:
                break
            pc = self._step(pc, spec, events, transient=True, branch_pc=branch_pc)

    # ------------------------------------------------------------------

    def run(self) -> List[DynEvent]:
        """Execute to Halt (or ``max_steps``); return every taint event."""
        state = _State()
        for addr, value in self._initial_memory.items():
            state.store(addr, value, False)
        events: List[DynEvent] = []
        pc: Optional[int] = 0
        for _ in range(self.max_steps):
            if pc is None:
                return events
            inst = self.program[pc]
            if isinstance(inst, Branch):
                # Explore the direction the concrete execution does NOT
                # take — the path a mispredicting machine runs transiently.
                taken = inst.taken(state.get(inst.src1), state.get(inst.src2))
                target = self.program.resolve(inst.target)
                wrong = pc + 1 if taken else target
                if wrong < len(self.program):
                    self._wrong_path(wrong, pc, state, events)
            pc = self._step(pc, state, events, transient=False, branch_pc=None)
        raise AnalysisError(
            f"{self.program.name}: did not halt within {self.max_steps} steps"
        )


def dynamic_events(
    program: Program,
    secret_ranges: Iterable[Tuple[int, int]] = (),
    window: int = 64,
    **kwargs,
) -> List[DynEvent]:
    """Convenience wrapper: run the reference interpreter once."""
    return DynamicTaintInterpreter(
        program, secret_ranges, window=window, **kwargs
    ).run()
