"""Finding and report types of the speculative-constant-time analyzer.

A :class:`Finding` pins one violation to one instruction index of one
program; a :class:`Report` aggregates every finding of one analysis run
together with the per-branch speculation-window summaries the
cache-state-delta bound is derived from.  Reports render as text (one
line per finding, ``program:pc`` locatable) and as JSON (the CLI's
``--format json``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

# -- finding kinds -----------------------------------------------------------

#: Secret-tainted address of a (possibly transient) load — the unXpec /
#: Spectre-v1 pattern: which line the load installs depends on the secret.
TAINTED_LOAD_ADDR = "tainted_load_addr"
#: Secret-tainted address of a store.
TAINTED_STORE_ADDR = "tainted_store_addr"
#: Secret-tainted address of a ``clflush`` — a secret-dependent eviction.
TAINTED_FLUSH_ADDR = "tainted_flush_addr"
#: Secret-tainted branch condition (control flow depends on the secret).
TAINTED_BRANCH_COND = "tainted_branch_cond"
#: Per-branch summary: the speculative window of this branch performs a
#: secret-dependent number/choice of cache-state mutations — the quantity
#: CleanupSpec's rollback must undo, i.e. the paper's rollback-time channel.
CACHE_DELTA = "cache_delta"

ALL_KINDS = (
    TAINTED_LOAD_ADDR,
    TAINTED_STORE_ADDR,
    TAINTED_FLUSH_ADDR,
    TAINTED_BRANCH_COND,
    CACHE_DELTA,
)

_SEVERITY: Dict[str, str] = {
    TAINTED_LOAD_ADDR: "high",
    TAINTED_STORE_ADDR: "high",
    TAINTED_FLUSH_ADDR: "medium",
    TAINTED_BRANCH_COND: "medium",
    CACHE_DELTA: "medium",
}

#: Ordering used when sorting findings at equal pc (most severe first).
_SEVERITY_RANK = {"high": 0, "medium": 1, "info": 2}


def severity_of(kind: str) -> str:
    return _SEVERITY.get(kind, "info")


@dataclass(frozen=True)
class Finding:
    """One violation at one instruction of the analyzed program."""

    kind: str
    pc: int
    instruction: str
    severity: str
    #: True when the violation is reachable only (or additionally) on a
    #: speculative wrong path; False for purely architectural findings.
    transient: bool
    #: The mispredicting branch whose window exposes the violation.
    branch_pc: Optional[int] = None
    #: Instructions into that branch's speculation window (1-based).
    depth: Optional[int] = None
    detail: str = ""

    def location(self, program: str) -> str:
        return f"{program}:{self.pc}"

    def render(self, program: str) -> str:
        mode = "transient" if self.transient else "architectural"
        via = ""
        if self.transient and self.branch_pc is not None:
            via = f" via branch {self.branch_pc}"
            if self.depth is not None:
                via += f" (+{self.depth})"
        text = f"{self.location(program)}: [{self.severity}] {self.kind} ({mode}{via})"
        text += f"  {self.instruction}"
        if self.detail:
            text += f"  — {self.detail}"
        return text

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "pc": self.pc,
            "instruction": self.instruction,
            "severity": self.severity,
            "transient": self.transient,
            "branch_pc": self.branch_pc,
            "depth": self.depth,
            "detail": self.detail,
        }


@dataclass(frozen=True)
class BranchDecision:
    """One resolved branch direction along an explored path."""

    pc: int
    #: True when the path followed the branch's taken edge.
    taken: bool
    #: True when the decision happened inside a speculative window (the
    #: first transient decision of a window is the misprediction itself).
    transient: bool

    def to_dict(self) -> dict:
        return {"pc": self.pc, "taken": self.taken, "transient": self.transient}


@dataclass(frozen=True)
class Witness:
    """Concrete path explanation of one path-sensitive finding.

    The trace is the exact pc sequence the explorer walked from program
    entry to the violating instruction (architectural prefix plus, for
    transient findings, the speculative window suffix), with the branch
    directions it committed to and the path condition those decisions
    imply.  ``replay_witness`` validates the finding by running the
    dynamic reference interpreter concretely and checking it observes an
    event of the same identity.
    """

    kind: str
    pc: int
    transient: bool
    branch_pc: Optional[int]
    depth: Optional[int]
    trace: Tuple[int, ...]
    decisions: Tuple[BranchDecision, ...]
    #: Human-readable register facts in force at the violation.
    path_condition: Tuple[str, ...] = ()

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "pc": self.pc,
            "transient": self.transient,
            "branch_pc": self.branch_pc,
            "depth": self.depth,
            "trace": list(self.trace),
            "decisions": [d.to_dict() for d in self.decisions],
            "path_condition": list(self.path_condition),
        }


@dataclass(frozen=True)
class ExplorerFinding:
    """One path-sensitive violation with its witness trace."""

    kind: str
    pc: int
    instruction: str
    severity: str
    transient: bool
    branch_pc: Optional[int] = None
    depth: Optional[int] = None
    detail: str = ""
    witness: Optional[Witness] = None

    def render(self, program: str) -> str:
        mode = "transient" if self.transient else "architectural"
        via = ""
        if self.transient and self.branch_pc is not None:
            via = f" via branch {self.branch_pc}"
            if self.depth is not None:
                via += f" (+{self.depth})"
        text = f"{program}:{self.pc}: [{self.severity}] {self.kind} ({mode}{via})"
        text += f"  {self.instruction}"
        if self.detail:
            text += f"  — {self.detail}"
        if self.witness is not None:
            text += f"  [witness: {len(self.witness.trace)} step(s), "
            text += f"{len(self.witness.decisions)} decision(s)]"
        return text

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "pc": self.pc,
            "instruction": self.instruction,
            "severity": self.severity,
            "transient": self.transient,
            "branch_pc": self.branch_pc,
            "depth": self.depth,
            "detail": self.detail,
            "witness": None if self.witness is None else self.witness.to_dict(),
        }


@dataclass(frozen=True)
class SpecWindow:
    """What one branch's bounded speculative window can do to the cache."""

    branch_pc: int
    instruction: str
    #: Upper bound on *secret-dependent* cache-state mutations (transient
    #: loads/flushes with tainted addresses) inside the window.
    tainted_installs: int
    #: Instruction indices of those mutations.
    install_pcs: Tuple[int, ...] = ()
    #: True when the branch condition itself is secret-tainted.
    tainted_condition: bool = False

    def to_dict(self) -> dict:
        return {
            "branch_pc": self.branch_pc,
            "instruction": self.instruction,
            "tainted_installs": self.tainted_installs,
            "install_pcs": list(self.install_pcs),
            "tainted_condition": self.tainted_condition,
        }


@dataclass
class Report:
    """Everything one :class:`SpecCTAnalyzer` run concluded."""

    program: str
    instructions: int
    window: int
    secret_ranges: Tuple[Tuple[int, int], ...]
    findings: List[Finding] = field(default_factory=list)
    windows: List[SpecWindow] = field(default_factory=list)

    # -- verdicts ----------------------------------------------------------

    @property
    def clean(self) -> bool:
        """No violations of any kind."""
        return not self.findings

    @property
    def cache_delta_bound(self) -> int:
        """Max secret-dependent cache mutations over any one speculation
        window — the static bound on the paper's rollback-time channel.
        A positive bound predicts a positive fig3-style timing delta."""
        return max((w.tainted_installs for w in self.windows), default=0)

    def by_kind(self, kind: str) -> List[Finding]:
        return [f for f in self.findings if f.kind == kind]

    def transient_findings(self) -> List[Finding]:
        return [f for f in self.findings if f.transient]

    # -- rendering ---------------------------------------------------------

    def sort(self) -> None:
        self.findings.sort(
            key=lambda f: (f.pc, _SEVERITY_RANK.get(f.severity, 9), f.kind)
        )
        self.windows.sort(key=lambda w: w.branch_pc)

    def render_text(self) -> str:
        lines = [
            f"specct: {self.program} — {self.instructions} instructions, "
            f"window {self.window}, "
            f"{len(self.secret_ranges)} secret range(s)"
        ]
        for lo, hi in self.secret_ranges:
            lines.append(f"  secret [{lo:#x}, {hi:#x})")
        if self.clean:
            lines.append("CLEAN: no speculative-constant-time violations found")
        else:
            lines.append(f"{len(self.findings)} finding(s):")
            for f in self.findings:
                lines.append("  " + f.render(self.program))
        hot = [w for w in self.windows if w.tainted_installs]
        if hot:
            lines.append(
                f"cache-state delta bound: {self.cache_delta_bound} secret-"
                "dependent install(s)/eviction(s) in the worst speculation window"
            )
            for w in hot:
                lines.append(
                    f"  branch {self.program}:{w.branch_pc} ({w.instruction}): "
                    f"{w.tainted_installs} tainted install(s) at "
                    f"{list(w.install_pcs)}"
                )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "program": self.program,
            "instructions": self.instructions,
            "window": self.window,
            "secret_ranges": [list(r) for r in self.secret_ranges],
            "clean": self.clean,
            "cache_delta_bound": self.cache_delta_bound,
            "findings": [f.to_dict() for f in self.findings],
            "spec_windows": [w.to_dict() for w in self.windows],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)
