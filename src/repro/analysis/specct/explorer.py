"""Bounded multi-path speculative explorer (pitchfork-style).

Where :class:`~.analyzer.SpecCTAnalyzer` joins both sides of every branch
into one abstract state per pc, the explorer *forks*: it walks concrete
paths through the program with the same constant×taint transfer
function, keeping a lightweight path condition
(:class:`~.constraints.ConstraintStore`) refined at every branch
decision.  Paths whose condition becomes unsatisfiable are pruned and
counted — this is what lets the explorer prove a leak sitting behind
contradictory branch guards unreachable, where the single-CFG fixpoint
reports a false positive.

Speculation is modeled exactly like the dynamic reference interpreter
(:mod:`.dynamic`): at every architecturally executed branch the machine
may mispredict, so for each feasible architectural direction ``d`` the
explorer spawns a transient *window walk* down the opposite direction
``!d``, seeded with ``d``'s refined state (the real machine's registers
satisfy ``d`` while it wrongly fetches ``!d``), bounded by
``config.window`` instructions and terminated by ``mfence``.  Inside a
window, nested branches follow their statically determined direction
when the operands are known (matching concrete execution — no nested
misprediction) and fork otherwise.

Every violation carries a :class:`~.findings.Witness` — the pc trace and
branch decisions of the path that reached it — which
:func:`replay_witness` validates by running the dynamic interpreter
concretely against a memory image and checking an event of the same
identity occurs.  Exploration is budgeted (total paths, total steps,
per-path length); budget exhaustion is reported explicitly, never
silently.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from ...common.errors import AnalysisError
from ...isa.instructions import (
    Branch,
    Fence,
    Halt,
    Instruction,
    IntOp,
    IntOpImm,
    Jump,
    Load,
    LoadImm,
    ReadTimer,
    branch_eval,
)
from ...isa.program import Program
from ...obs import get_default_obs
from .analyzer import AnalyzerConfig, SecretRanges, SpecCTAnalyzer, normalize_ranges
from .constraints import ConstraintStore
from .dynamic import DynEvent, dynamic_events
from .findings import (
    CACHE_DELTA,
    BranchDecision,
    ExplorerFinding,
    Witness,
    severity_of,
)
from .lattice import AbsState, Value

#: Branch condition that holds on the *fall-through* (not-taken) side.
_NEGATE = {"lt": "ge", "le": "gt", "gt": "le", "ge": "lt", "eq": "ne", "ne": "eq"}


@dataclass(frozen=True)
class ExplorerConfig:
    """Budgets and semantics knobs of one exploration."""

    #: Max transient instructions per speculative window (as the analyzer).
    window: int = 64
    #: Max paths materialized over the whole exploration (architectural
    #: forks + spawned windows); exceeding it sets ``budget_exhausted``.
    max_paths: int = 1024
    #: Max instructions executed over the whole exploration.
    max_steps: int = 100_000
    #: Max architectural instructions along any one path (loop backstop).
    max_path_len: int = 4096
    unknown_addr_may_alias_secret: bool = True
    fence_blocks_speculation: bool = True
    addr_space_bytes: int = 1 << 32

    def __post_init__(self) -> None:
        if self.max_paths < 1 or self.max_steps < 1 or self.max_path_len < 1:
            raise AnalysisError("explorer budgets must be at least 1")

    def analyzer_config(self) -> AnalyzerConfig:
        return AnalyzerConfig(
            window=self.window,
            unknown_addr_may_alias_secret=self.unknown_addr_may_alias_secret,
            fence_blocks_speculation=self.fence_blocks_speculation,
            addr_space_bytes=self.addr_space_bytes,
        )


@dataclass(frozen=True)
class PathDeltaBound:
    """Per-path cache-delta bounds of one branch's speculative windows.

    ``min_delta``/``max_delta`` are taken over every *completed* window
    path spawned at this branch — sharper than the single-CFG bound,
    which joins all window paths into one count.
    """

    branch_pc: int
    instruction: str
    min_delta: int
    max_delta: int
    window_paths: int

    def to_dict(self) -> dict:
        return {
            "branch_pc": self.branch_pc,
            "instruction": self.instruction,
            "min_delta": self.min_delta,
            "max_delta": self.max_delta,
            "window_paths": self.window_paths,
        }


@dataclass
class ExplorerReport:
    """Everything one :class:`SpecExplorer` run concluded."""

    program: str
    instructions: int
    window: int
    secret_ranges: SecretRanges
    findings: List[ExplorerFinding] = field(default_factory=list)
    deltas: List[PathDeltaBound] = field(default_factory=list)
    #: Architectural paths run to completion (Halt / program exit).
    explored_paths: int = 0
    #: Transient window paths run to their end (fence/halt/window edge).
    explored_windows: int = 0
    #: Paths discarded because their path condition was unsatisfiable.
    pruned_infeasible: int = 0
    #: Paths cut short by a budget (path/step/length), not by semantics.
    truncated_paths: int = 0
    budget_exhausted: bool = False
    steps_used: int = 0
    paths_spawned: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings

    @property
    def complete(self) -> bool:
        """True when no budget interfered: the exploration is exhaustive."""
        return not self.budget_exhausted and self.truncated_paths == 0

    @property
    def cache_delta_bound(self) -> int:
        return max((d.max_delta for d in self.deltas), default=0)

    def by_kind(self, kind: str) -> List[ExplorerFinding]:
        return [f for f in self.findings if f.kind == kind]

    def transient_findings(self) -> List[ExplorerFinding]:
        return [f for f in self.findings if f.transient]

    def render_text(self) -> str:
        lines = [
            f"specct-explorer: {self.program} — {self.instructions} instructions, "
            f"window {self.window}, {len(self.secret_ranges)} secret range(s)"
        ]
        for lo, hi in self.secret_ranges:
            lines.append(f"  secret [{lo:#x}, {hi:#x})")
        lines.append(
            f"explored {self.explored_paths} architectural path(s), "
            f"{self.explored_windows} speculative window path(s); "
            f"pruned {self.pruned_infeasible} infeasible, "
            f"truncated {self.truncated_paths} "
            f"({self.steps_used} step(s), {self.paths_spawned} path(s) spawned)"
        )
        if self.budget_exhausted:
            lines.append(
                "WARNING: budget exhausted — exploration is incomplete; "
                "a clean verdict below is not a proof"
            )
        if self.clean:
            lines.append("CLEAN: no path-sensitive violations found")
        else:
            lines.append(f"{len(self.findings)} finding(s):")
            for f in self.findings:
                lines.append("  " + f.render(self.program))
        hot = [d for d in self.deltas if d.max_delta]
        if hot:
            lines.append(
                f"cache-state delta bound: {self.cache_delta_bound} "
                "secret-dependent install(s) on the worst window path"
            )
            for d in hot:
                lines.append(
                    f"  branch {self.program}:{d.branch_pc} ({d.instruction}): "
                    f"delta in [{d.min_delta}, {d.max_delta}] over "
                    f"{d.window_paths} window path(s)"
                )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "program": self.program,
            "instructions": self.instructions,
            "window": self.window,
            "secret_ranges": [list(r) for r in self.secret_ranges],
            "clean": self.clean,
            "complete": self.complete,
            "cache_delta_bound": self.cache_delta_bound,
            "explored_paths": self.explored_paths,
            "explored_windows": self.explored_windows,
            "pruned_infeasible": self.pruned_infeasible,
            "truncated_paths": self.truncated_paths,
            "budget_exhausted": self.budget_exhausted,
            "steps_used": self.steps_used,
            "paths_spawned": self.paths_spawned,
            "findings": [f.to_dict() for f in self.findings],
            "deltas": [d.to_dict() for d in self.deltas],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)


class _Path:
    """One in-flight exploration path (architectural or window walk)."""

    __slots__ = (
        "pc",
        "state",
        "store",
        "trace",
        "decisions",
        "steps",
        "spec_branch",
        "spec_remaining",
        "installs",
    )

    def __init__(
        self,
        pc: int,
        state: AbsState,
        store: ConstraintStore,
        trace: List[int],
        decisions: List[BranchDecision],
        steps: int = 0,
        spec_branch: Optional[int] = None,
        spec_remaining: int = 0,
    ) -> None:
        self.pc = pc
        self.state = state
        self.store = store
        self.trace = trace
        self.decisions = decisions
        self.steps = steps
        self.spec_branch = spec_branch
        self.spec_remaining = spec_remaining
        self.installs = 0

    @property
    def transient(self) -> bool:
        return self.spec_branch is not None


class SpecExplorer:
    """Bounded multi-path exploration of one program."""

    def __init__(
        self,
        program: Program,
        secret_ranges: Iterable[Tuple[int, int]] = (),
        config: ExplorerConfig = ExplorerConfig(),
    ) -> None:
        self.program = program
        self.ranges = normalize_ranges(secret_ranges)
        self.config = config
        # Reuse the analyzer's transfer function and CFG verbatim so the
        # fixpoint and path-sensitive views share one semantics.
        self._analyzer = SpecCTAnalyzer(
            program, self.ranges, config.analyzer_config()
        )
        self.cfg = self._analyzer.cfg

    # ------------------------------------------------------------------

    def explore(self) -> ExplorerReport:
        report = ExplorerReport(
            program=self.program.name,
            instructions=len(self.program),
            window=self.config.window,
            secret_ranges=self.ranges,
        )
        self._report = report
        self._findings: Dict[Tuple[str, int, bool], ExplorerFinding] = {}
        self._window_deltas: Dict[int, List[int]] = {}
        self._work: deque = deque()
        if len(self.program):
            report.paths_spawned = 1
            self._work.append(_Path(0, AbsState(), ConstraintStore(), [], []))
        while self._work:
            self._run_path(self._work.popleft())
        for branch_pc in sorted(self._window_deltas):
            counts = self._window_deltas[branch_pc]
            report.deltas.append(
                PathDeltaBound(
                    branch_pc=branch_pc,
                    instruction=str(self.program[branch_pc]),
                    min_delta=min(counts),
                    max_delta=max(counts),
                    window_paths=len(counts),
                )
            )
        for d in report.deltas:
            if d.max_delta:
                self._findings[(CACHE_DELTA, d.branch_pc, True)] = ExplorerFinding(
                    kind=CACHE_DELTA,
                    pc=d.branch_pc,
                    instruction=d.instruction,
                    severity=severity_of(CACHE_DELTA),
                    transient=True,
                    branch_pc=d.branch_pc,
                    detail=(
                        f"secret-dependent cache installs on window paths of "
                        f"this branch: delta in [{d.min_delta}, {d.max_delta}] "
                        f"over {d.window_paths} explored path(s) — rollback "
                        "duration after a squash depends on the secret"
                    ),
                )
        report.findings = sorted(
            self._findings.values(), key=lambda f: (f.pc, f.kind, f.transient)
        )
        self._count(report)
        return report

    # ------------------------------------------------------------------

    def _spawn(self, path: _Path) -> None:
        rep = self._report
        if rep.paths_spawned >= self.config.max_paths:
            rep.budget_exhausted = True
            rep.truncated_paths += 1
            return
        rep.paths_spawned += 1
        self._work.append(path)

    def _finalize(self, path: _Path) -> None:
        rep = self._report
        if path.transient:
            rep.explored_windows += 1
            self._window_deltas.setdefault(path.spec_branch, []).append(
                path.installs
            )
        else:
            rep.explored_paths += 1

    def _record(self, path: _Path, kind: str, detail: str) -> None:
        depth = (
            self.config.window - path.spec_remaining + 1 if path.transient else None
        )
        key = (kind, path.pc, path.transient)
        if key in self._findings:
            return
        witness = Witness(
            kind=kind,
            pc=path.pc,
            transient=path.transient,
            branch_pc=path.spec_branch,
            depth=depth,
            trace=tuple(path.trace),
            decisions=tuple(path.decisions),
            path_condition=path.store.describe(),
        )
        self._findings[key] = ExplorerFinding(
            kind=kind,
            pc=path.pc,
            instruction=str(self.program[path.pc]),
            severity=severity_of(kind),
            transient=path.transient,
            branch_pc=path.spec_branch,
            depth=depth,
            detail=detail,
            witness=witness,
        )

    @staticmethod
    def _invalidate(store: ConstraintStore, inst: Instruction) -> ConstraintStore:
        """Keep the constraint store consistent with a register write."""
        if isinstance(inst, IntOpImm) and inst.op in ("add", "sub"):
            delta = inst.imm if inst.op == "add" else -inst.imm
            return store.shift(inst.dst, inst.src1, delta)
        if isinstance(inst, (LoadImm, IntOp, IntOpImm, Load, ReadTimer)):
            return store.forget(inst.dst)
        return store

    def _effective_const(self, path: _Path, reg: str) -> Optional[int]:
        value = path.state.get(reg)
        if value.const is not None:
            return value.const
        return path.store.pinned(reg)

    def _run_path(self, p: _Path) -> None:
        cfg = self.config
        rep = self._report
        n = len(self.program)
        while True:
            if rep.steps_used >= cfg.max_steps:
                rep.budget_exhausted = True
                rep.truncated_paths += 1
                return
            if p.transient:
                if p.spec_remaining <= 0:
                    self._finalize(p)
                    return
            elif p.steps >= cfg.max_path_len:
                rep.budget_exhausted = True
                rep.truncated_paths += 1
                return
            pc = p.pc
            inst = self.cfg.node(pc).instruction
            if (
                p.transient
                and isinstance(inst, Fence)
                and cfg.fence_blocks_speculation
            ):
                self._finalize(p)
                return
            rep.steps_used += 1
            p.steps += 1
            p.trace.append(pc)
            new_state, events = self._analyzer.transfer(pc, inst, p.state)
            for kind, detail, is_install in events:
                self._record(p, kind, detail)
                if is_install and p.transient:
                    p.installs += 1
            p.state = new_state
            p.store = self._invalidate(p.store, inst)
            if p.transient:
                p.spec_remaining -= 1
            if isinstance(inst, Halt):
                self._finalize(p)
                return
            if isinstance(inst, Jump):
                target = self.cfg.node(pc).target
                if target is None or target >= n:
                    self._finalize(p)
                    return
                p.pc = target
                continue
            if isinstance(inst, Branch):
                if not self._branch(p, pc, inst):
                    return
                continue
            nxt = pc + 1
            if nxt >= n:
                self._finalize(p)
                return
            p.pc = nxt

    # ------------------------------------------------------------------

    def _direction_pc(self, pc: int, taken: bool) -> Optional[int]:
        n = len(self.program)
        if taken:
            target = self.cfg.node(pc).target
            return target if target is not None and target < n else None
        nxt = pc + 1
        return nxt if nxt < n else None

    def _assume(
        self, p: _Path, inst: Branch, taken: bool
    ) -> Optional[Tuple[AbsState, ConstraintStore]]:
        """State and store refined by taking direction ``taken``.

        Returns ``None`` when the direction contradicts the path
        condition (the direction is statically infeasible).
        """
        cond = inst.cond if taken else _NEGATE[inst.cond]
        c1 = self._effective_const(p, inst.src1)
        c2 = self._effective_const(p, inst.src2)
        store = p.store
        if c1 is not None and c2 is not None:
            # Fully determined: feasible iff the constants agree.
            return (p.state, store) if branch_eval(cond, c1, c2) else None
        if c1 is not None:
            refined = store.assume(cond, inst.src2, c1, reg_is_lhs=False)
            reg = inst.src2
        elif c2 is not None:
            refined = store.assume(cond, inst.src1, c2, reg_is_lhs=True)
            reg = inst.src1
        else:
            return (p.state, store)  # both unknown: no refinement possible
        if refined is None:
            return None
        state = p.state
        pinned = refined.pinned(reg)
        if pinned is not None and state.get(reg).const is None:
            # A branch equality pins the register: fold it back into the
            # constant lattice (taint is untouched — facts constrain the
            # value, not its provenance).
            state = state.copy()
            state.set(reg, Value(pinned, state.get(reg).taint))
        return (state, refined)

    def _branch(self, p: _Path, pc: int, inst: Branch) -> bool:
        """Handle a branch on path ``p``.

        Returns True when ``p`` continues in-line (the caller's loop keeps
        running it), False when the path ended here.
        """
        rep = self._report
        c1 = self._effective_const(p, inst.src1)
        c2 = self._effective_const(p, inst.src2)
        determined = c1 is not None and c2 is not None
        outcomes: List[Tuple[bool, AbsState, ConstraintStore]] = []
        if determined:
            taken = branch_eval(inst.cond, c1, c2)
            outcomes.append((taken, p.state, p.store))
            # The contradicted direction is architecturally infeasible
            # (reachable only transiently, via the window spawned below).
            rep.pruned_infeasible += 1
        else:
            for taken in (False, True):
                refined = self._assume(p, inst, taken)
                if refined is None:
                    rep.pruned_infeasible += 1
                    continue
                outcomes.append((taken, refined[0], refined[1]))
        if p.transient:
            # Inside a window: follow feasible directions concretely — no
            # nested misprediction, exactly like the dynamic reference.
            survivors: List[_Path] = []
            for i, (taken, state, store) in enumerate(outcomes):
                nxt = self._direction_pc(pc, taken)
                if i == 0:
                    p.state, p.store = state, store
                    p.decisions.append(BranchDecision(pc, taken, True))
                    if nxt is None:
                        self._finalize(p)
                    else:
                        p.pc = nxt
                        survivors.append(p)
                else:
                    if nxt is None:
                        # A forked direction that immediately exits still
                        # counts as a completed window path.
                        fork = self._fork(p, nxt=pc, taken=taken, transient=True)
                        fork.state, fork.store = state, store
                        self._finalize(fork)
                        continue
                    fork = self._fork(p, nxt=nxt, taken=taken, transient=True)
                    fork.state, fork.store = state, store
                    self._spawn(fork)
            if not outcomes:
                # Every direction infeasible (contradictory constants can
                # only arise from an unsat store upstream); end the path.
                self._finalize(p)
                return False
            return bool(survivors)
        # Architectural: continue down the first feasible direction
        # in-line, fork the rest, and spawn one speculative window per
        # feasible direction down its *opposite* side.
        for taken, state, store in outcomes:
            wrong = not taken
            wrong_pc = self._direction_pc(pc, wrong)
            if wrong_pc is not None:
                window = _Path(
                    pc=wrong_pc,
                    state=state.copy(),
                    store=store,
                    trace=list(p.trace),
                    decisions=list(p.decisions)
                    + [BranchDecision(pc, wrong, True)],
                    steps=p.steps,
                    spec_branch=pc,
                    spec_remaining=self.config.window,
                )
                self._spawn(window)
        continued = False
        for i, (taken, state, store) in enumerate(outcomes):
            nxt = self._direction_pc(pc, taken)
            if i == 0:
                p.state, p.store = state, store
                p.decisions.append(BranchDecision(pc, taken, False))
                if nxt is None:
                    self._finalize(p)
                else:
                    p.pc = nxt
                    continued = True
            else:
                fork = self._fork(p, nxt=nxt, taken=taken, transient=False)
                fork.state, fork.store = state, store
                if nxt is None:
                    self._finalize(fork)
                else:
                    self._spawn(fork)
        if not outcomes:
            self._finalize(p)
            return False
        return continued

    def _fork(
        self, p: _Path, nxt: Optional[int], taken: bool, transient: bool
    ) -> _Path:
        decisions = p.decisions[:-1] if p.decisions else []
        # The parent already appended its own decision for this branch;
        # the fork replaces it with its direction.
        return _Path(
            pc=nxt if nxt is not None else p.pc,
            state=p.state,
            store=p.store,
            trace=list(p.trace),
            decisions=list(decisions) + [BranchDecision(p.trace[-1], taken, transient)],
            steps=p.steps,
            spec_branch=p.spec_branch,
            spec_remaining=p.spec_remaining,
        )

    # ------------------------------------------------------------------

    @staticmethod
    def _count(report: ExplorerReport) -> None:
        obs = get_default_obs()
        if obs is None:
            return
        reg = obs.registry
        reg.counter("specct.explorer.programs", "programs explored").inc()
        reg.counter("specct.explorer.paths", "architectural paths completed").inc(
            report.explored_paths
        )
        reg.counter("specct.explorer.windows", "window paths completed").inc(
            report.explored_windows
        )
        reg.counter("specct.explorer.pruned", "infeasible paths pruned").inc(
            report.pruned_infeasible
        )
        reg.counter("specct.explorer.truncated", "paths cut by budgets").inc(
            report.truncated_paths
        )
        reg.counter("specct.explorer.findings", "path-sensitive findings").inc(
            len(report.findings)
        )
        if report.clean:
            reg.counter("specct.explorer.clean", "programs with no findings").inc()


# ---------------------------------------------------------------------------
# convenience API
# ---------------------------------------------------------------------------


def explore_program(
    program: Program,
    secret_ranges: Iterable[Tuple[int, int]] = (),
    config: Optional[ExplorerConfig] = None,
) -> ExplorerReport:
    """One-call convenience wrapper around :class:`SpecExplorer`."""
    return SpecExplorer(program, secret_ranges, config or ExplorerConfig()).explore()


def _event_matches(event: DynEvent, witness: Witness) -> bool:
    if (event.kind, event.pc, event.transient) != (
        witness.kind,
        witness.pc,
        witness.transient,
    ):
        return False
    if witness.transient and witness.branch_pc is not None:
        return event.branch_pc == witness.branch_pc
    return True


def replay_witness(
    program: Program,
    witness: Witness,
    secret_ranges: Iterable[Tuple[int, int]] = (),
    memory: Optional[Mapping[int, int]] = None,
    window: int = ExplorerConfig.window,
    fence_blocks_speculation: bool = True,
    addr_space_bytes: int = 1 << 32,
) -> bool:
    """Concretely validate a witness with the dynamic reference interpreter.

    Runs the program on the dynamic taint interpreter (optionally against
    a concrete ``memory`` image — gadgets need their victim data
    structures in place for the concrete leak to fire) and confirms an
    event with the witness's identity (kind, pc, transient, exposing
    branch) is observed.  The static trace itself is the *explanation*;
    the replay confirms the finding is not a static-only artifact.
    """
    events = dynamic_events(
        program,
        secret_ranges,
        window=window,
        fence_blocks_speculation=fence_blocks_speculation,
        memory=memory,
        addr_space_bytes=addr_space_bytes,
    )
    return any(_event_matches(e, witness) for e in events)


def replay_findings(
    report: ExplorerReport,
    program: Program,
    memory: Optional[Mapping[int, int]] = None,
) -> Dict[Tuple[str, int, bool], bool]:
    """Replay every witnessed finding; map finding identity → confirmed."""
    out: Dict[Tuple[str, int, bool], bool] = {}
    for f in report.findings:
        if f.witness is None:
            continue
        out[(f.kind, f.pc, f.transient)] = replay_witness(
            program,
            f.witness,
            report.secret_ranges,
            memory=memory,
            window=report.window,
        )
    return out
