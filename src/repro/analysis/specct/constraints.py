"""Lightweight path-condition domain for the multi-path explorer.

No external solver: a :class:`ConstraintStore` keeps, per register, one
:class:`Fact` — an inclusive unsigned interval ``[lo, hi]`` over the
machine's 64-bit word range plus a small set of excluded values — derived
from branch decisions whose *other* operand is a known constant of the
flat-constant lattice.  Because the lattice's constants are exact (a
register is either a known machine value or ⊤), every fact recorded on a
path holds for any concrete execution that takes the same branch
directions, which is what makes infeasible-path pruning sound with
respect to the dynamic reference interpreter.

Facts support:

* ``assume(cond, reg, const, reg_is_lhs)`` — refine with one branch
  outcome; returns ``None`` when the refined fact is unsatisfiable
  (the path is infeasible and may be pruned).
* translation through ``IntOpImm add/sub`` when the destination equals
  the source (interval shift, dropped on wrap-around), so equality/range
  facts survive simple address arithmetic.
* ``pinned(reg)`` — the single concrete value a fact pins a register to,
  if any, letting the explorer fold branch-derived equalities back into
  the constant lattice.

Dropping a fact is always sound (the store over-approximates the set of
reachable concrete states); the store therefore caps the excluded-value
set and simply widens when arithmetic would overflow.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional, Tuple

from ...isa.registers import WORD_MASK

#: Cap on per-register excluded values; further ``ne`` facts are dropped.
MAX_EXCLUDED = 8


@dataclass(frozen=True)
class Fact:
    """Unsigned interval + exclusions constraining one register."""

    lo: int = 0
    hi: int = WORD_MASK
    excluded: FrozenSet[int] = frozenset()

    def is_unsat(self) -> bool:
        if self.lo > self.hi:
            return True
        span = self.hi - self.lo + 1
        if span <= len(self.excluded):
            return all(
                self.lo + i in self.excluded for i in range(span)
            )
        return False

    def pinned(self) -> Optional[int]:
        """The single admissible value, when the fact pins one."""
        if self.lo == self.hi and self.lo not in self.excluded:
            return self.lo
        return None

    def admits(self, value: int) -> bool:
        return self.lo <= value <= self.hi and value not in self.excluded

    def shifted(self, delta: int) -> Optional[Fact]:
        """The fact for ``reg + delta``; None when the interval would wrap."""
        lo, hi = self.lo + delta, self.hi + delta
        if lo < 0 or hi > WORD_MASK:
            return None
        moved = frozenset(
            v + delta for v in self.excluded if 0 <= v + delta <= WORD_MASK
        )
        return Fact(lo, hi, moved)

    def describe(self) -> str:
        parts = []
        if self.lo == self.hi:
            parts.append(f"== {self.lo:#x}")
        else:
            if self.lo > 0:
                parts.append(f">= {self.lo:#x}")
            if self.hi < WORD_MASK:
                parts.append(f"<= {self.hi:#x}")
        for v in sorted(self.excluded):
            parts.append(f"!= {v:#x}")
        return " and ".join(parts) if parts else "unconstrained"


def _refine(fact: Fact, cond: str, const: int) -> Optional[Fact]:
    """Refine ``fact`` with ``reg <cond> const``; None when unsatisfiable."""
    lo, hi, excluded = fact.lo, fact.hi, fact.excluded
    if cond == "eq":
        if not fact.admits(const):
            return None
        return Fact(const, const, frozenset())
    if cond == "ne":
        if fact.pinned() == const:
            return None
        if len(excluded) >= MAX_EXCLUDED:
            return fact  # drop the refinement; over-approximate
        excluded = excluded | {const}
    elif cond == "lt":
        hi = min(hi, const - 1)
    elif cond == "le":
        hi = min(hi, const)
    elif cond == "gt":
        lo = max(lo, const + 1)
    elif cond == "ge":
        lo = max(lo, const)
    else:  # pragma: no cover - Branch validates its condition
        raise ValueError(f"unknown branch condition {cond!r}")
    refined = Fact(lo, hi, frozenset(v for v in excluded if lo <= v <= hi))
    if refined.is_unsat():
        return None
    return refined


#: cond as seen with the register on the *right* (const <cond> reg).
_FLIP = {"lt": "gt", "le": "ge", "gt": "lt", "ge": "le", "eq": "eq", "ne": "ne"}


@dataclass(frozen=True)
class ConstraintStore:
    """Immutable map register → :class:`Fact` along one explored path."""

    facts: Dict[str, Fact] = field(default_factory=dict)

    def fact(self, reg: str) -> Fact:
        return self.facts.get(reg, Fact())

    def pinned(self, reg: str) -> Optional[int]:
        f = self.facts.get(reg)
        return f.pinned() if f is not None else None

    def assume(
        self, cond: str, reg: str, const: int, reg_is_lhs: bool
    ) -> Optional["ConstraintStore"]:
        """Record ``reg <cond> const`` (or ``const <cond> reg``).

        Returns the refined store, or ``None`` when the assumption
        contradicts the facts already on this path.
        """
        if not reg_is_lhs:
            cond = _FLIP[cond]
        refined = _refine(self.fact(reg), cond, const & WORD_MASK)
        if refined is None:
            return None
        if refined == Fact():
            if reg not in self.facts:
                return self
            facts = dict(self.facts)
            del facts[reg]
            return ConstraintStore(facts)
        facts = dict(self.facts)
        facts[reg] = refined
        return ConstraintStore(facts)

    def forget(self, reg: str) -> "ConstraintStore":
        """Drop the fact for ``reg`` (it was overwritten)."""
        if reg not in self.facts:
            return self
        facts = dict(self.facts)
        del facts[reg]
        return ConstraintStore(facts)

    def shift(self, dst: str, src: str, delta: int) -> "ConstraintStore":
        """Translate ``src``'s fact through ``dst = src + delta``.

        Keeps equality/range facts alive across ``IntOpImm`` add/sub
        address arithmetic; the fact is dropped when the shift could wrap.
        """
        src_fact = self.facts.get(src)
        facts = dict(self.facts)
        facts.pop(dst, None)
        if src_fact is not None:
            moved = src_fact.shifted(delta)
            if moved is not None and moved != Fact():
                facts[dst] = moved
        if facts == self.facts:
            return self
        return ConstraintStore(facts)

    def describe(self) -> Tuple[str, ...]:
        return tuple(
            f"{reg} {self.facts[reg].describe()}" for reg in sorted(self.facts)
        )
