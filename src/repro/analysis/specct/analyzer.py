"""Speculative-taint / speculative-constant-time fixpoint analyzer.

Two passes over the CFG of one program:

1. **Architectural fixpoint** — a forward dataflow analysis with the
   :mod:`lattice` domain over every architecturally possible path (both
   sides of every branch, since conditions are statically unknown).  Its
   result is a sound per-instruction abstract state; violations found
   here (tainted load/store/flush addresses, tainted branch conditions)
   hold on some committed path.

2. **Speculative window pass** — from every reachable conditional
   branch, a bounded wrong-path walk of up to ``config.window``
   instructions, seeded with the branch's architectural in-state.  This
   models transient execution past an unresolved branch: everything the
   walk can do to the cache *before the squash* is what an undo-based
   defense must roll back.  Violations found here are tagged
   ``transient`` with the exposing branch and depth; the count of
   secret-tainted loads/flushes per window is the program's static
   **cache-state-delta bound** — when positive, the rollback's duration
   depends on the secret, which is exactly the unXpec channel, so the
   bound must agree in sign with the measured fig3 timing delta.

A ``Fence`` ends the speculative walk by default
(``fence_blocks_speculation``), modeling lfence-style serialization, so
inserting a fence ahead of a leaking load makes the transient finding —
and only the transient finding — disappear.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ...common.errors import AnalysisError
from ...isa.instructions import (
    Branch,
    Fence,
    Flush,
    Halt,
    Instruction,
    IntOp,
    IntOpImm,
    Load,
    LoadImm,
    ReadTimer,
    Store,
)
from ...isa.program import Program
from ...obs import get_default_obs
from .cfg import Cfg
from .findings import (
    CACHE_DELTA,
    TAINTED_BRANCH_COND,
    TAINTED_FLUSH_ADDR,
    TAINTED_LOAD_ADDR,
    TAINTED_STORE_ADDR,
    Finding,
    Report,
    SpecWindow,
    severity_of,
)
from .lattice import TOP, AbsState, Value, overlaps_secret, value_alu, value_of

#: (lo, hi) byte ranges, hi exclusive.
SecretRanges = Tuple[Tuple[int, int], ...]


def normalize_ranges(ranges: Iterable[Tuple[int, int]]) -> SecretRanges:
    """Validate and canonicalize secret address ranges."""
    out: List[Tuple[int, int]] = []
    for lo, hi in ranges:
        if hi <= lo:
            raise AnalysisError(f"empty secret range [{lo:#x}, {hi:#x})")
        out.append((int(lo), int(hi)))
    return tuple(sorted(out))


@dataclass(frozen=True)
class AnalyzerConfig:
    """Tunable knobs of the analysis."""

    #: Max transient instructions executed past one unresolved branch.
    window: int = 64
    #: A load through a statically-unknown address may read the secret
    #: region (the sound default).  Turning this off trades soundness on
    #: attacker-indexed accesses for precision on pointer-heavy code.
    unknown_addr_may_alias_secret: bool = True
    #: ``mfence`` terminates wrong-path walks (lfence-style modeling).
    fence_blocks_speculation: bool = True
    #: Address-space size (power of two) effective addresses wrap to —
    #: the machine's wrap semantics (``Dram.size_bytes``): a
    #: constant-propagated negative address folds to its wrapped value
    #: instead of escaping the lattice.
    addr_space_bytes: int = 1 << 32

    def __post_init__(self) -> None:
        if self.window < 1:
            raise AnalysisError("speculation window must be at least 1")
        if self.addr_space_bytes < 1 or (
            self.addr_space_bytes & (self.addr_space_bytes - 1)
        ):
            raise AnalysisError("addr_space_bytes must be a power of two")


#: One violation observed by a transfer: (kind, detail, counts_as_install).
_Event = Tuple[str, str, bool]


class SpecCTAnalyzer:
    """Analyzes one program against one secret specification."""

    def __init__(
        self,
        program: Program,
        secret_ranges: Iterable[Tuple[int, int]] = (),
        config: AnalyzerConfig = AnalyzerConfig(),
    ) -> None:
        self.program = program
        self.cfg = Cfg(program)
        self.ranges = normalize_ranges(secret_ranges)
        self.config = config

    # ------------------------------------------------------------------
    # transfer function (shared by both passes)
    # ------------------------------------------------------------------

    def _addr(self, state: AbsState, base: str, offset: int) -> Value:
        """Effective address with the machine's wrap semantics: a known
        base+offset folds through the address-space mask exactly as the
        core masks it at the hierarchy boundary."""
        value = value_alu("add", state.get(base), Value(offset, False))
        if value.const is not None:
            return Value(value.const & (self.config.addr_space_bytes - 1), value.taint)
        return value

    def _transfer(
        self, pc: int, inst: Instruction, state: AbsState
    ) -> Tuple[AbsState, List[_Event]]:
        st = state.copy()
        events: List[_Event] = []
        if isinstance(inst, LoadImm):
            st.set(inst.dst, value_of(inst.imm))
        elif isinstance(inst, IntOp):
            st.set(inst.dst, value_alu(inst.op, st.get(inst.src1), st.get(inst.src2)))
        elif isinstance(inst, IntOpImm):
            st.set(
                inst.dst, value_alu(inst.op, st.get(inst.src1), Value(inst.imm, False))
            )
        elif isinstance(inst, Load):
            addr = self._addr(st, inst.base, inst.offset)
            if addr.taint:
                events.append(
                    (
                        TAINTED_LOAD_ADDR,
                        f"load address in {inst.base} is secret-derived",
                        True,
                    )
                )
            taint = (
                addr.taint
                or overlaps_secret(
                    addr, self.ranges, self.config.unknown_addr_may_alias_secret
                )
                or st.mem_tainted_at(addr)
            )
            st.set(inst.dst, Value(None, taint))
        elif isinstance(inst, Store):
            addr = self._addr(st, inst.base, inst.offset)
            if addr.taint:
                events.append(
                    (
                        TAINTED_STORE_ADDR,
                        f"store address in {inst.base} is secret-derived",
                        False,
                    )
                )
            st.taint_store(addr, st.get(inst.src))
        elif isinstance(inst, Flush):
            addr = self._addr(st, inst.base, inst.offset)
            if addr.taint:
                events.append(
                    (
                        TAINTED_FLUSH_ADDR,
                        f"flushed address in {inst.base} is secret-derived",
                        True,
                    )
                )
        elif isinstance(inst, ReadTimer):
            st.set(inst.dst, TOP)
        elif isinstance(inst, Branch):
            if st.get(inst.src1).taint or st.get(inst.src2).taint:
                events.append(
                    (
                        TAINTED_BRANCH_COND,
                        f"condition ({inst.src1}, {inst.src2}) is secret-derived",
                        False,
                    )
                )
        # Fence / Nop / Halt / Jump neither touch registers nor memory taint.
        return st, events

    def transfer(
        self, pc: int, inst: Instruction, state: AbsState
    ) -> Tuple[AbsState, List[_Event]]:
        """Public alias of the transfer function.

        The multi-path explorer reuses exactly this transfer so the
        single-CFG fixpoint and the path-sensitive exploration cannot
        drift apart semantically.
        """
        return self._transfer(pc, inst, state)

    # ------------------------------------------------------------------
    # pass 1: architectural fixpoint
    # ------------------------------------------------------------------

    def _architectural_fixpoint(self) -> Dict[int, AbsState]:
        in_states: Dict[int, AbsState] = {0: AbsState()}
        work = deque([0])
        queued = {0}
        while work:
            pc = work.popleft()
            queued.discard(pc)
            out, _ = self._transfer(pc, self.cfg.node(pc).instruction, in_states[pc])
            for succ in self.cfg.successors(pc):
                if succ in in_states:
                    joined = in_states[succ].join(out)
                    if joined == in_states[succ]:
                        continue
                    in_states[succ] = joined
                else:
                    in_states[succ] = out.copy()
                if succ not in queued:
                    queued.add(succ)
                    work.append(succ)
        return in_states

    # ------------------------------------------------------------------
    # pass 2: bounded speculative wrong-path walk per branch
    # ------------------------------------------------------------------

    def _spec_walk(
        self, branch_pc: int, in_state: AbsState
    ) -> Tuple[Dict[Tuple[str, int], Tuple[int, str]], List[int]]:
        """Explore up to ``window`` transient instructions past ``branch_pc``.

        Returns ``{(kind, pc): (min_depth, detail)}`` plus the sorted pcs
        of secret-dependent cache mutations (loads/flushes with tainted
        addresses) reachable inside the window.
        """
        window = self.config.window
        events: Dict[Tuple[str, int], Tuple[int, str]] = {}
        installs: set = set()
        #: per-pc join of (state, remaining-budget) already explored.
        best: Dict[int, Tuple[AbsState, int]] = {}
        work: deque = deque(
            (succ, in_state, window) for succ in self.cfg.successors(branch_pc)
        )
        while work:
            pc, state, remaining = work.popleft()
            if remaining <= 0:
                continue
            prev = best.get(pc)
            if prev is not None:
                joined = prev[0].join(state)
                rem = max(prev[1], remaining)
                if joined == prev[0] and rem == prev[1]:
                    continue
                state, remaining = joined, rem
            best[pc] = (state, remaining)
            inst = self.cfg.node(pc).instruction
            new_state, evs = self._transfer(pc, inst, state)
            depth = window - remaining + 1
            for kind, detail, is_install in evs:
                key = (kind, pc)
                if key not in events or events[key][0] > depth:
                    events[key] = (depth, detail)
                if is_install:
                    installs.add(pc)
            if isinstance(inst, Halt):
                continue
            if isinstance(inst, Fence) and self.config.fence_blocks_speculation:
                continue
            for succ in self.cfg.successors(pc):
                work.append((succ, new_state, remaining - 1))
        return events, sorted(installs)

    # ------------------------------------------------------------------
    # entry point
    # ------------------------------------------------------------------

    def analyze(self) -> Report:
        in_states = self._architectural_fixpoint()

        # Architectural findings from the converged states.
        arch: Dict[Tuple[str, int], str] = {}
        for pc in sorted(in_states):
            _, events = self._transfer(pc, self.cfg.node(pc).instruction, in_states[pc])
            for kind, detail, _install in events:
                arch.setdefault((kind, pc), detail)

        # Transient findings + per-branch window summaries.
        spec: Dict[Tuple[str, int], Tuple[int, int, str]] = {}  # -> branch, depth, detail
        windows: List[SpecWindow] = []
        for branch_pc in self.cfg.branch_pcs():
            if branch_pc not in in_states:
                continue  # unreachable branch
            events, installs = self._spec_walk(branch_pc, in_states[branch_pc])
            for (kind, pc), (depth, detail) in events.items():
                prev = spec.get((kind, pc))
                if prev is None or (depth, branch_pc) < (prev[1], prev[0]):
                    spec[(kind, pc)] = (branch_pc, depth, detail)
            node = self.cfg.node(branch_pc)
            windows.append(
                SpecWindow(
                    branch_pc=branch_pc,
                    instruction=str(node.instruction),
                    tainted_installs=len(installs),
                    install_pcs=tuple(installs),
                    tainted_condition=(TAINTED_BRANCH_COND, branch_pc) in arch,
                )
            )

        report = Report(
            program=self.program.name,
            instructions=len(self.program),
            window=self.config.window,
            secret_ranges=self.ranges,
        )
        for (kind, pc), detail in arch.items():
            if (kind, pc) in spec:
                continue  # the transient record below subsumes it
            report.findings.append(
                Finding(
                    kind=kind,
                    pc=pc,
                    instruction=str(self.program[pc]),
                    severity=severity_of(kind),
                    transient=False,
                    detail=detail,
                )
            )
        for (kind, pc), (branch_pc, depth, detail) in spec.items():
            report.findings.append(
                Finding(
                    kind=kind,
                    pc=pc,
                    instruction=str(self.program[pc]),
                    severity=severity_of(kind),
                    transient=True,
                    branch_pc=branch_pc,
                    depth=depth,
                    detail=detail,
                )
            )
        for w in windows:
            if w.tainted_installs:
                report.findings.append(
                    Finding(
                        kind=CACHE_DELTA,
                        pc=w.branch_pc,
                        instruction=w.instruction,
                        severity=severity_of(CACHE_DELTA),
                        transient=True,
                        branch_pc=w.branch_pc,
                        depth=None,
                        detail=(
                            f"{w.tainted_installs} secret-dependent cache "
                            f"install(s)/eviction(s) in the speculation window "
                            f"at pcs {list(w.install_pcs)} — rollback duration "
                            "after a squash of this branch depends on the secret"
                        ),
                    )
                )
        report.windows = windows
        report.sort()
        self._count(report)
        return report

    @staticmethod
    def _count(report: Report) -> None:
        """Bump obs-registry counters when a default registry is installed."""
        obs = get_default_obs()
        if obs is None:
            return
        reg = obs.registry
        reg.counter("specct.programs", "programs analyzed").inc()
        reg.counter("specct.findings", "total findings reported").inc(
            len(report.findings)
        )
        for f in report.findings:
            reg.counter(f"specct.findings.{f.kind}", f"{f.kind} findings").inc()
        if not report.findings:
            reg.counter("specct.clean", "programs with no findings").inc()


def analyze_program(
    program: Program,
    secret_ranges: Iterable[Tuple[int, int]] = (),
    window: int = AnalyzerConfig.window,
    config: Optional[AnalyzerConfig] = None,
) -> Report:
    """One-call convenience wrapper around :class:`SpecCTAnalyzer`."""
    cfg = config or AnalyzerConfig(window=window)
    return SpecCTAnalyzer(program, secret_ranges, cfg).analyze()
