"""``repro.analysis.specct`` — speculative-taint static analysis.

A speculative-constant-time analyzer over :class:`repro.isa.program.Program`:
CFG construction with bounded wrong-path edges, a fixpoint taint dataflow
over registers and memory regions, findings for the unXpec/Spectre-v1
patterns (secret-tainted transient load/store addresses, tainted branch
conditions) and — specific to this paper — a per-branch bound on
secret-dependent cache-state mutations inside the speculation window (the
rollback-time channel).  See ``docs/static-analysis.md``.

On top of the single-CFG fixpoint, :mod:`.explorer` adds bounded
multi-path exploration: forks at every conditional branch with a
lightweight path condition (:mod:`.constraints`), infeasible-path
pruning, per-path cache-delta bounds, and witness traces that
:mod:`.dynamic` replays concretely.

CLI::

    python -m repro.analysis.specct gadget:round --n-loads 2
    python -m repro.analysis.specct workload:mcf --format json
    python -m repro.analysis.specct victim.s --secret 0x18280:0x18288
    python -m repro.analysis.specct gadget:round --explore --replay
    python -m repro.analysis.specct --crossval --quick
    unxpec lint-program gadget:round        # same thing, via the main CLI
"""

from .analyzer import (
    AnalyzerConfig,
    SecretRanges,
    SpecCTAnalyzer,
    analyze_program,
    normalize_ranges,
)
from .cfg import Cfg, CfgNode
from .constraints import ConstraintStore, Fact
from .crossval import (
    CaseResult,
    CrossValReport,
    SignCheck,
    cross_validate,
    fig3_sign_checks,
    gadget_cases,
    workload_cases,
)
from .dynamic import DynamicTaintInterpreter, DynEvent, dynamic_events
from .explorer import (
    ExplorerConfig,
    ExplorerReport,
    PathDeltaBound,
    SpecExplorer,
    explore_program,
    replay_findings,
    replay_witness,
)
from .findings import (
    ALL_KINDS,
    CACHE_DELTA,
    TAINTED_BRANCH_COND,
    TAINTED_FLUSH_ADDR,
    TAINTED_LOAD_ADDR,
    TAINTED_STORE_ADDR,
    BranchDecision,
    ExplorerFinding,
    Finding,
    Report,
    SpecWindow,
    Witness,
    severity_of,
)
from .lattice import AbsState, Value, overlaps_secret, value_alu, value_of

__all__ = [
    "ALL_KINDS",
    "AbsState",
    "AnalyzerConfig",
    "BranchDecision",
    "CACHE_DELTA",
    "CaseResult",
    "Cfg",
    "CfgNode",
    "ConstraintStore",
    "CrossValReport",
    "DynEvent",
    "DynamicTaintInterpreter",
    "ExplorerConfig",
    "ExplorerFinding",
    "ExplorerReport",
    "Fact",
    "Finding",
    "PathDeltaBound",
    "Report",
    "SpecExplorer",
    "SecretRanges",
    "SignCheck",
    "SpecCTAnalyzer",
    "SpecWindow",
    "TAINTED_BRANCH_COND",
    "TAINTED_FLUSH_ADDR",
    "TAINTED_LOAD_ADDR",
    "TAINTED_STORE_ADDR",
    "Value",
    "Witness",
    "analyze_program",
    "cross_validate",
    "dynamic_events",
    "explore_program",
    "fig3_sign_checks",
    "gadget_cases",
    "normalize_ranges",
    "overlaps_secret",
    "replay_findings",
    "replay_witness",
    "severity_of",
    "value_alu",
    "value_of",
    "workload_cases",
]
