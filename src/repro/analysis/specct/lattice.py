"""Abstract domain of the speculative-taint analysis.

Each register holds a :class:`Value`: an optional known constant (``None``
means ⊤, statically unknown) plus a taint bit (``True`` means the value
may be derived from a declared secret).  The constant half is a flat
lattice — two different constants join to ⊤ — and exists so that the
address of ``li rX, addr; ld rY, 0(rX)`` is known exactly and never
spuriously may-aliases the secret region.

Memory is abstracted by *taint only*: a set of word addresses known to
hold tainted data (strong updates on constant addresses) plus a single
``mem_top_tainted`` bit that goes up when a tainted value is stored
through a statically-unknown address, after which every load must be
assumed tainted.  Memory *contents* are not tracked — a load always
produces ⊤ — which keeps the domain small and the fixpoint fast while
remaining sound with respect to the dynamic reference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional, Tuple

from ...isa.instructions import alu_eval
from ...isa.registers import WORD_MASK

#: Memory is word-granular, matching :mod:`repro.memory.dram`.
WORD = 8


@dataclass(frozen=True)
class Value:
    """Flat-constant × taint abstract value of one register."""

    const: Optional[int]  # None = ⊤ (unknown)
    taint: bool = False

    @property
    def is_const(self) -> bool:
        return self.const is not None

    def join(self, other: "Value") -> "Value":
        const = self.const if self.const == other.const else None
        return Value(const, self.taint or other.taint)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        base = "⊤" if self.const is None else hex(self.const)
        return f"{base}{'!' if self.taint else ''}"


#: Register default: starts at zero, untainted (matches the simulator's
#: register file reset and the dynamic reference interpreter).
ZERO = Value(0, False)
#: Unknown, untainted (timer reads, loaded public data).
TOP = Value(None, False)
#: Unknown, tainted.
TAINTED_TOP = Value(None, True)


def value_of(const: int) -> Value:
    return Value(const & WORD_MASK, False)


def value_alu(op: str, a: Value, b: Value) -> Value:
    """Abstract ALU: exact on constants, ⊤ otherwise; taint is sticky."""
    taint = a.taint or b.taint
    if a.is_const and b.is_const:
        return Value(alu_eval(op, a.const, b.const), taint)
    return Value(None, taint)


def align_word(addr: int) -> int:
    return addr // WORD * WORD


class AbsState:
    """Register file + memory-taint abstraction at one program point."""

    __slots__ = ("regs", "tainted_mem", "mem_top_tainted")

    def __init__(
        self,
        regs: Optional[Dict[str, Value]] = None,
        tainted_mem: FrozenSet[int] = frozenset(),
        mem_top_tainted: bool = False,
    ) -> None:
        #: Sparse map; registers absent from it hold :data:`ZERO`.
        self.regs: Dict[str, Value] = dict(regs or {})
        self.tainted_mem: FrozenSet[int] = tainted_mem
        self.mem_top_tainted: bool = mem_top_tainted

    # -- register access ---------------------------------------------------

    def get(self, reg: str) -> Value:
        return self.regs.get(reg, ZERO)

    def set(self, reg: str, value: Value) -> None:
        if value == ZERO:
            self.regs.pop(reg, None)
        else:
            self.regs[reg] = value

    # -- memory taint ------------------------------------------------------

    def taint_store(self, addr: Value, value: Value) -> None:
        """Account a store of ``value`` through ``addr``."""
        if value.taint:
            if addr.is_const:
                self.tainted_mem = self.tainted_mem | {align_word(addr.const)}
            else:
                self.mem_top_tainted = True
        elif addr.is_const:
            # Strong update: a known-untainted word overwrites old taint.
            self.tainted_mem = self.tainted_mem - {align_word(addr.const)}

    def mem_tainted_at(self, addr: Value) -> bool:
        """May the word at ``addr`` hold tainted data?"""
        if self.mem_top_tainted:
            return True
        if addr.is_const:
            return align_word(addr.const) in self.tainted_mem
        return bool(self.tainted_mem)  # unknown address may hit any tainted word

    # -- lattice operations ------------------------------------------------

    def copy(self) -> "AbsState":
        return AbsState(self.regs, self.tainted_mem, self.mem_top_tainted)

    def join(self, other: "AbsState") -> "AbsState":
        regs: Dict[str, Value] = {}
        for reg in sorted(self.regs.keys() | other.regs.keys()):
            joined = self.get(reg).join(other.get(reg))
            if joined != ZERO:
                regs[reg] = joined
        return AbsState(
            regs,
            self.tainted_mem | other.tainted_mem,
            self.mem_top_tainted or other.mem_top_tainted,
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AbsState):
            return NotImplemented
        return (
            self.regs == other.regs
            and self.tainted_mem == other.tainted_mem
            and self.mem_top_tainted == other.mem_top_tainted
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        regs = ", ".join(f"{r}={v}" for r, v in sorted(self.regs.items()))
        return f"AbsState({regs}; mem={sorted(self.tainted_mem)}, top={self.mem_top_tainted})"


def overlaps_secret(
    addr: Value, ranges: Tuple[Tuple[int, int], ...], unknown_may_alias: bool
) -> bool:
    """Does the word read at ``addr`` possibly fall in a secret byte range?"""
    if not ranges:
        return False
    if not addr.is_const:
        return unknown_may_alias
    word = align_word(addr.const)
    return any(lo < word + WORD and word < hi for lo, hi in ranges)
