"""Statistical validation of the measured channel.

The paper reports point estimates (22 cycles, 86.7%). This module adds the
uncertainty quantification a careful reproduction should carry:

* **separation tests** — Welch's t-test and Mann-Whitney U between the two
  latency classes (is the channel statistically real, not seed luck?);
* **bootstrap confidence intervals** — for decode accuracy and for the
  mean timing difference, so paper-vs-measured comparisons can say
  "within CI" instead of eyeballing.

Used by the ``abl_significance`` experiment and available to users who
re-run campaigns at other operating points.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import stats

from ..common.rng import derive_rng


@dataclass(frozen=True)
class SeparationTest:
    """Two-sample comparison of the secret=0 / secret=1 latency classes."""

    welch_t: float
    welch_p: float
    mannwhitney_u: float
    mannwhitney_p: float
    cohens_d: float

    @property
    def significant(self) -> bool:
        """Both tests reject at the 0.1% level."""
        return self.welch_p < 1e-3 and self.mannwhitney_p < 1e-3


def separation_test(zeros: Sequence[float], ones: Sequence[float]) -> SeparationTest:
    """Test whether the two latency distributions differ."""
    z = np.asarray(zeros, dtype=float)
    o = np.asarray(ones, dtype=float)
    if z.size < 2 or o.size < 2:
        raise ValueError("both classes need at least two samples")
    t_stat, t_p = stats.ttest_ind(o, z, equal_var=False)
    u_stat, u_p = stats.mannwhitneyu(o, z, alternative="two-sided")
    pooled = np.sqrt((z.var(ddof=1) + o.var(ddof=1)) / 2)
    d = float((o.mean() - z.mean()) / pooled) if pooled > 0 else float("inf")
    return SeparationTest(
        welch_t=float(t_stat),
        welch_p=float(t_p),
        mannwhitney_u=float(u_stat),
        mannwhitney_p=float(u_p),
        cohens_d=d,
    )


@dataclass(frozen=True)
class BootstrapCI:
    """A percentile bootstrap confidence interval."""

    estimate: float
    low: float
    high: float
    confidence: float

    def contains(self, value: float) -> bool:
        return self.low <= value <= self.high

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        pct = int(self.confidence * 100)
        return f"{self.estimate:.3f} [{self.low:.3f}, {self.high:.3f}] ({pct}% CI)"


def bootstrap_accuracy_ci(
    guesses: Sequence[int],
    truth: Sequence[int],
    n_boot: int = 2000,
    confidence: float = 0.95,
    seed: int = 0,
) -> BootstrapCI:
    """Percentile bootstrap CI for decode accuracy."""
    if len(guesses) != len(truth) or not guesses:
        raise ValueError("need equal-length, non-empty guess/truth sequences")
    correct = np.asarray(
        [1 if (g & 1) == (t & 1) else 0 for g, t in zip(guesses, truth)], dtype=float
    )
    rng = derive_rng(seed, "bootstrap-accuracy")
    n = correct.size
    samples = rng.integers(0, n, size=(n_boot, n))
    boot = correct[samples].mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    return BootstrapCI(
        estimate=float(correct.mean()),
        low=float(np.quantile(boot, alpha)),
        high=float(np.quantile(boot, 1 - alpha)),
        confidence=confidence,
    )


def bootstrap_mean_difference_ci(
    zeros: Sequence[float],
    ones: Sequence[float],
    n_boot: int = 2000,
    confidence: float = 0.95,
    seed: int = 0,
) -> BootstrapCI:
    """Percentile bootstrap CI for the mean timing difference."""
    z = np.asarray(zeros, dtype=float)
    o = np.asarray(ones, dtype=float)
    if z.size == 0 or o.size == 0:
        raise ValueError("both classes need samples")
    rng = derive_rng(seed, "bootstrap-diff")
    zi = rng.integers(0, z.size, size=(n_boot, z.size))
    oi = rng.integers(0, o.size, size=(n_boot, o.size))
    boot = o[oi].mean(axis=1) - z[zi].mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    return BootstrapCI(
        estimate=float(o.mean() - z.mean()),
        low=float(np.quantile(boot, alpha)),
        high=float(np.quantile(boot, 1 - alpha)),
        confidence=confidence,
    )
