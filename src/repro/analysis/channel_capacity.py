"""Information-theoretic analysis of the unXpec covert channel.

The paper reports throughput (140 Kbps) and single-sample accuracy
(86.7% / 91.6%). Those two numbers combine into a channel *capacity*: how
many secret bits one latency sample actually carries. This module computes

* the **empirical mutual information** I(S; L) between the secret bit S and
  the (binned) latency observation L, from calibration samples;
* the **binary-symmetric-channel capacity** implied by a decode error rate
  (an upper bound on what threshold decoding extracts); and
* the resulting **capacity in bits/second** at a given round cost.

These quantify the §V-C trade-off: eviction sets lengthen the round
slightly but raise per-sample information, so capacity decides the optimal
configuration — not raw sample rate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..common.units import PAPER_FREQUENCY_HZ


def binary_entropy(p: float) -> float:
    """H(p) in bits; H(0) == H(1) == 0."""
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"probability out of range: {p}")
    if p in (0.0, 1.0):
        return 0.0
    return -p * math.log2(p) - (1 - p) * math.log2(1 - p)


def bsc_capacity(error_rate: float) -> float:
    """Capacity (bits/use) of a binary symmetric channel with ``error_rate``.

    Threshold decoding with per-bit error e turns the timing channel into a
    BSC; its capacity 1 - H(e) bounds the extractable rate. The paper's
    86.7% accuracy corresponds to ~0.43 bits/sample, 91.6% to ~0.59.
    """
    if not 0.0 <= error_rate <= 1.0:
        raise ValueError(f"error rate out of range: {error_rate}")
    return 1.0 - binary_entropy(error_rate)


def empirical_mutual_information(
    zeros: Sequence[float],
    ones: Sequence[float],
    bins: int = 32,
) -> float:
    """I(S; L) in bits between the secret bit and the binned latency.

    Uses a shared equal-width binning over both samples and plug-in
    probabilities; with 1,000 samples/class and ~32 bins the plug-in bias
    is small compared to the effects measured. Upper-bounds what *any*
    decoder (not just a threshold) can extract from one sample.
    """
    if len(zeros) == 0 or len(ones) == 0:
        raise ValueError("both classes need samples")
    if bins < 2:
        raise ValueError("need at least 2 bins")
    z = np.asarray(zeros, dtype=float)
    o = np.asarray(ones, dtype=float)
    lo = min(z.min(), o.min())
    hi = max(z.max(), o.max())
    if hi == lo:
        return 0.0
    edges = np.linspace(lo, hi, bins + 1)
    hz, _ = np.histogram(z, bins=edges)
    ho, _ = np.histogram(o, bins=edges)
    n = hz.sum() + ho.sum()
    p_s0 = hz.sum() / n
    p_s1 = ho.sum() / n
    mi = 0.0
    for count_z, count_o in zip(hz, ho):
        p_l = (count_z + count_o) / n
        if p_l == 0:
            continue
        for count, p_s in ((count_z, p_s0), (count_o, p_s1)):
            joint = count / n
            if joint > 0:
                mi += joint * math.log2(joint / (p_l * p_s))
    return max(0.0, mi)


@dataclass(frozen=True)
class ChannelReport:
    """Capacity summary of one attack configuration."""

    mutual_information_bits: float
    bsc_capacity_bits: float
    cycles_per_sample: float
    frequency_hz: float = PAPER_FREQUENCY_HZ

    @property
    def samples_per_second(self) -> float:
        return self.frequency_hz / self.cycles_per_sample

    @property
    def capacity_kbps(self) -> float:
        """MI-based capacity in Kbit/s."""
        return self.mutual_information_bits * self.samples_per_second / 1000.0

    @property
    def threshold_kbps(self) -> float:
        """Threshold-decoder (BSC) capacity in Kbit/s."""
        return self.bsc_capacity_bits * self.samples_per_second / 1000.0


def analyze_channel(
    zeros: Sequence[float],
    ones: Sequence[float],
    error_rate: float,
    cycles_per_sample: float,
    frequency_hz: float = PAPER_FREQUENCY_HZ,
) -> ChannelReport:
    """Build a :class:`ChannelReport` from calibration data + campaign stats."""
    if cycles_per_sample <= 0:
        raise ValueError("cycles_per_sample must be positive")
    return ChannelReport(
        mutual_information_bits=empirical_mutual_information(zeros, ones),
        bsc_capacity_bits=bsc_capacity(error_rate),
        cycles_per_sample=cycles_per_sample,
        frequency_hz=frequency_hz,
    )
