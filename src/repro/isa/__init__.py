"""Toy ISA: instructions, programs, builder DSL, assembler."""

from .asm import assemble, disassemble
from .builder import ProgramBuilder
from .instructions import (
    Branch,
    Fence,
    Flush,
    Halt,
    Instruction,
    IntOp,
    IntOpImm,
    Jump,
    Load,
    LoadImm,
    Nop,
    ReadTimer,
    Store,
    alu_eval,
    branch_eval,
)
from .program import Program
from .registers import NUM_REGISTERS, WORD_MASK, RegisterFile, reg, validate_register

__all__ = [
    "Instruction",
    "LoadImm",
    "IntOp",
    "IntOpImm",
    "Load",
    "Store",
    "Flush",
    "Fence",
    "ReadTimer",
    "Branch",
    "Jump",
    "Nop",
    "Halt",
    "alu_eval",
    "branch_eval",
    "Program",
    "ProgramBuilder",
    "assemble",
    "disassemble",
    "RegisterFile",
    "reg",
    "validate_register",
    "NUM_REGISTERS",
    "WORD_MASK",
]
