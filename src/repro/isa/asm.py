"""Tiny two-pass assembler / disassembler for the toy ISA.

The assembler exists so tests and examples can express small programs as
readable text, and so the disassembler (``Program.listing`` plus
:func:`assemble` round trips) can be property-tested.

Syntax, one instruction per line (``#`` starts a comment)::

    label:
      li    r1, 4096
      ld    r2, 8(r1)
      addi  r3, r2, 1
      add   r3, r3, r2
      blt   r2, r3, label
      st    r3, 0(r1)
      clflush 0(r1)
      mfence
      rdtscp r5
      j     end
    end:
      halt
"""

from __future__ import annotations

import re
from typing import Dict, List

from ..common.errors import AssemblerError
from .instructions import (
    Branch,
    Fence,
    Flush,
    Halt,
    Instruction,
    IntOp,
    IntOpImm,
    Jump,
    Load,
    LoadImm,
    Nop,
    ReadTimer,
    Store,
)
from .program import Program

_MEM_RE = re.compile(r"^(-?\d+)\((r\d+)\)$")
_ALU_OPS = ("add", "sub", "mul", "div", "and", "or", "xor", "shl", "shr")
_BRANCH_CONDS = ("lt", "le", "gt", "ge", "eq", "ne")


def _parse_int(token: str, line_no: int) -> int:
    try:
        return int(token, 0)
    except ValueError as exc:
        raise AssemblerError(f"line {line_no}: invalid integer {token!r}") from exc


def _parse_mem(token: str, line_no: int) -> tuple:
    """Parse ``offset(base)`` into ``(base, offset)``."""
    m = _MEM_RE.match(token)
    if not m:
        raise AssemblerError(f"line {line_no}: expected offset(reg), got {token!r}")
    return m.group(2), int(m.group(1))


def _split_operands(rest: str) -> List[str]:
    return [tok.strip() for tok in rest.split(",") if tok.strip()]


def assemble(text: str, name: str = "asm") -> Program:
    """Assemble ``text`` into a :class:`Program`."""
    instructions: List[Instruction] = []
    labels: Dict[str, int] = {}

    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        while line.endswith(":") or ":" in line.split()[0]:
            label, _, remainder = line.partition(":")
            label = label.strip()
            if not label or not re.match(r"^[A-Za-z_][\w.]*$", label):
                raise AssemblerError(f"line {line_no}: bad label {label!r}")
            if label in labels:
                raise AssemblerError(f"line {line_no}: duplicate label {label!r}")
            labels[label] = len(instructions)
            line = remainder.strip()
            if not line:
                break
        if not line:
            continue

        mnemonic, _, rest = line.partition(" ")
        mnemonic = mnemonic.lower()
        ops = _split_operands(rest)
        instructions.append(_parse_instruction(mnemonic, ops, line_no))

    try:
        return Program(instructions, labels, name=name)
    except Exception as exc:  # re-raise structural errors as assembler errors
        raise AssemblerError(str(exc)) from exc


def _parse_instruction(mnemonic: str, ops: List[str], line_no: int) -> Instruction:
    def need(n: int) -> None:
        if len(ops) != n:
            raise AssemblerError(
                f"line {line_no}: {mnemonic} expects {n} operand(s), got {len(ops)}"
            )

    if mnemonic == "li":
        need(2)
        return LoadImm(ops[0], _parse_int(ops[1], line_no))
    if mnemonic in _ALU_OPS:
        need(3)
        return IntOp(mnemonic, ops[0], ops[1], ops[2])
    if mnemonic.endswith("i") and mnemonic[:-1] in _ALU_OPS:
        need(3)
        return IntOpImm(mnemonic[:-1], ops[0], ops[1], _parse_int(ops[2], line_no))
    if mnemonic == "ld":
        need(2)
        base, offset = _parse_mem(ops[1], line_no)
        return Load(ops[0], base, offset)
    if mnemonic == "st":
        need(2)
        base, offset = _parse_mem(ops[1], line_no)
        return Store(ops[0], base, offset)
    if mnemonic == "clflush":
        need(1)
        base, offset = _parse_mem(ops[0], line_no)
        return Flush(base, offset)
    if mnemonic == "mfence":
        need(0)
        return Fence()
    if mnemonic == "rdtscp":
        need(1)
        return ReadTimer(ops[0])
    if mnemonic.startswith("b") and mnemonic[1:] in _BRANCH_CONDS:
        need(3)
        return Branch(mnemonic[1:], ops[0], ops[1], ops[2])
    if mnemonic == "j":
        need(1)
        return Jump(ops[0])
    if mnemonic == "nop":
        need(0)
        return Nop()
    if mnemonic == "halt":
        need(0)
        return Halt()
    raise AssemblerError(f"line {line_no}: unknown mnemonic {mnemonic!r}")


def disassemble(program: Program) -> str:
    """Render ``program`` back to assemble()-compatible text."""
    by_index: Dict[int, List[str]] = {}
    for label, index in program.labels.items():
        by_index.setdefault(index, []).append(label)
    lines: List[str] = []
    for pc, inst in enumerate(program):
        for label in sorted(by_index.get(pc, ())):
            lines.append(f"{label}:")
        lines.append(f"  {inst}")
    for label in sorted(by_index.get(len(program), ())):
        lines.append(f"{label}:")
    return "\n".join(lines) + "\n"
