"""Fluent builder for constructing :class:`~repro.isa.program.Program`.

The attack gadgets and synthetic workloads build programs through this DSL
rather than hand-assembling instruction lists:

    b = ProgramBuilder("demo")
    b.li("r1", 0x1000)
    b.load("r2", "r1", 8)
    b.branch("lt", "r2", "r3", "skip")
    b.load("r4", "r1", 64)
    b.label("skip")
    b.halt()
    program = b.build()
"""

from __future__ import annotations

from typing import Dict, List

from ..common.errors import IsaError
from .instructions import (
    Branch,
    Fence,
    Flush,
    Halt,
    Instruction,
    IntOp,
    IntOpImm,
    Jump,
    Load,
    LoadImm,
    Nop,
    ReadTimer,
    Store,
)
from .program import Program


class ProgramBuilder:
    """Accumulates instructions and labels, then builds a validated Program."""

    def __init__(self, name: str = "program") -> None:
        self.name = name
        self._instructions: List[Instruction] = []
        self._labels: Dict[str, int] = {}

    # -- label management -----------------------------------------------------

    def label(self, name: str) -> "ProgramBuilder":
        """Attach label ``name`` to the next emitted instruction."""
        if name in self._labels:
            raise IsaError(f"duplicate label {name!r}")
        self._labels[name] = len(self._instructions)
        return self

    @property
    def here(self) -> int:
        """Index the next instruction will occupy."""
        return len(self._instructions)

    # -- raw emission -----------------------------------------------------------

    def emit(self, inst: Instruction) -> "ProgramBuilder":
        self._instructions.append(inst)
        return self

    # -- one helper per opcode ---------------------------------------------------

    def li(self, dst: str, imm: int) -> "ProgramBuilder":
        return self.emit(LoadImm(dst, imm))

    def op(self, op: str, dst: str, src1: str, src2: str) -> "ProgramBuilder":
        return self.emit(IntOp(op, dst, src1, src2))

    def opi(self, op: str, dst: str, src1: str, imm: int) -> "ProgramBuilder":
        return self.emit(IntOpImm(op, dst, src1, imm))

    def add(self, dst: str, src1: str, src2: str) -> "ProgramBuilder":
        return self.op("add", dst, src1, src2)

    def addi(self, dst: str, src1: str, imm: int) -> "ProgramBuilder":
        return self.opi("add", dst, src1, imm)

    def mul(self, dst: str, src1: str, src2: str) -> "ProgramBuilder":
        return self.op("mul", dst, src1, src2)

    def div(self, dst: str, src1: str, src2: str) -> "ProgramBuilder":
        """Unsigned divide — issues to the non-pipelined divider."""
        return self.op("div", dst, src1, src2)

    def shli(self, dst: str, src1: str, imm: int) -> "ProgramBuilder":
        """Shift-left by an immediate via a scratch-free immediate op."""
        return self.opi("shl", dst, src1, imm)

    def load(self, dst: str, base: str, offset: int = 0) -> "ProgramBuilder":
        return self.emit(Load(dst, base, offset))

    def store(self, src: str, base: str, offset: int = 0) -> "ProgramBuilder":
        return self.emit(Store(src, base, offset))

    def flush(self, base: str, offset: int = 0) -> "ProgramBuilder":
        return self.emit(Flush(base, offset))

    def fence(self) -> "ProgramBuilder":
        return self.emit(Fence())

    def rdtscp(self, dst: str) -> "ProgramBuilder":
        return self.emit(ReadTimer(dst))

    def branch(self, cond: str, src1: str, src2: str, target: str) -> "ProgramBuilder":
        return self.emit(Branch(cond, src1, src2, target))

    def jump(self, target: str) -> "ProgramBuilder":
        return self.emit(Jump(target))

    def nop(self, count: int = 1) -> "ProgramBuilder":
        for _ in range(count):
            self.emit(Nop())
        return self

    def halt(self) -> "ProgramBuilder":
        return self.emit(Halt())

    # -- finalisation ----------------------------------------------------------

    def build(self) -> Program:
        """Validate and return the finished program."""
        return Program(self._instructions, self._labels, name=self.name)
