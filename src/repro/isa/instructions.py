"""Instruction set of the simulated machine.

A deliberately small register ISA that is nevertheless sufficient to express
the paper's attack gadgets (Algorithms 1 and 2) and the synthetic SPEC-like
workloads:

* integer ALU operations (``IntOp``) including dependent-chain arithmetic,
* ``Load`` / ``Store`` with base+displacement addressing,
* ``Flush`` — evict one line from the whole hierarchy (x86 ``clflush``),
* ``Fence`` — drain older memory operations (x86 ``mfence``); the attack
  uses it to zero the T4 stage of the CleanupSpec timeline,
* ``ReadTimer`` — serialising timestamp read (x86 ``rdtscp``),
* conditional ``Branch`` (the speculation primitive), ``Jump``, ``Halt``.

Instructions are frozen dataclasses; source/destination registers are
exposed uniformly through ``sources()`` / ``destination()`` so the timing
model can do dataflow scheduling without per-opcode special cases.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from typing import Callable, Optional, Tuple

from ..common.errors import IsaError
from .registers import WORD_MASK, validate_register

# ---------------------------------------------------------------------------
# ALU operations
# ---------------------------------------------------------------------------

_ALU_OPS: dict = {
    "add": operator.add,
    "sub": operator.sub,
    "mul": operator.mul,
    # Unsigned divide; div-by-zero saturates to all-ones (no faults in this
    # machine). Issues to the non-pipelined divider (see repro.cpu.fu).
    "div": lambda a, b: (a // b) if b else WORD_MASK,
    "and": operator.and_,
    "or": operator.or_,
    "xor": operator.xor,
    "shl": lambda a, b: a << (b & 63),
    "shr": lambda a, b: a >> (b & 63),
}

_BRANCH_CONDS: dict = {
    "lt": operator.lt,
    "le": operator.le,
    "gt": operator.gt,
    "ge": operator.ge,
    "eq": operator.eq,
    "ne": operator.ne,
}


def alu_eval(op: str, a: int, b: int) -> int:
    """Evaluate ALU op ``op`` on 64-bit operands with wraparound."""
    try:
        fn: Callable[[int, int], int] = _ALU_OPS[op]
    except KeyError as exc:
        raise IsaError(f"unknown ALU op: {op!r}") from exc
    return fn(a, b) & WORD_MASK


def branch_eval(cond: str, a: int, b: int) -> bool:
    """Evaluate branch condition ``cond`` on operand values."""
    try:
        fn: Callable[[int, int], bool] = _BRANCH_CONDS[cond]
    except KeyError as exc:
        raise IsaError(f"unknown branch condition: {cond!r}") from exc
    return bool(fn(a, b))


def alu_fn(op: str) -> Callable[[int, int], int]:
    """The raw callable behind ALU op ``op`` (no word masking applied).

    Used by the program decoder so the core can call the operation directly
    and apply ``& WORD_MASK`` inline, exactly as :func:`alu_eval` does.
    """
    try:
        return _ALU_OPS[op]
    except KeyError as exc:
        raise IsaError(f"unknown ALU op: {op!r}") from exc


def branch_fn(cond: str) -> Callable[[int, int], bool]:
    """The raw comparison callable behind branch condition ``cond``."""
    try:
        return _BRANCH_CONDS[cond]
    except KeyError as exc:
        raise IsaError(f"unknown branch condition: {cond!r}") from exc


class Instruction:
    """Base class for all instructions (marker; provides shared helpers)."""

    #: True for instructions that access data memory.
    is_memory: bool = False

    def sources(self) -> Tuple[str, ...]:
        """Register names this instruction reads."""
        return ()

    def destination(self) -> Optional[str]:
        """Register name this instruction writes, if any."""
        return None


@dataclass(frozen=True)
class LoadImm(Instruction):
    """``dst <- imm``"""

    dst: str
    imm: int

    def __post_init__(self) -> None:
        validate_register(self.dst)

    def destination(self) -> Optional[str]:
        return self.dst

    def __str__(self) -> str:
        return f"li {self.dst}, {self.imm}"


@dataclass(frozen=True)
class IntOp(Instruction):
    """``dst <- src1 <op> src2`` with ``op`` in add/sub/mul/div/and/or/xor/shl/shr."""

    op: str
    dst: str
    src1: str
    src2: str

    def __post_init__(self) -> None:
        if self.op not in _ALU_OPS:
            raise IsaError(f"unknown ALU op: {self.op!r}")
        validate_register(self.dst)
        validate_register(self.src1)
        validate_register(self.src2)

    def sources(self) -> Tuple[str, ...]:
        return (self.src1, self.src2)

    def destination(self) -> Optional[str]:
        return self.dst

    def __str__(self) -> str:
        return f"{self.op} {self.dst}, {self.src1}, {self.src2}"


@dataclass(frozen=True)
class IntOpImm(Instruction):
    """``dst <- src1 <op> imm`` — immediate form of :class:`IntOp`."""

    op: str
    dst: str
    src1: str
    imm: int

    def __post_init__(self) -> None:
        if self.op not in _ALU_OPS:
            raise IsaError(f"unknown ALU op: {self.op!r}")
        validate_register(self.dst)
        validate_register(self.src1)

    def sources(self) -> Tuple[str, ...]:
        return (self.src1,)

    def destination(self) -> Optional[str]:
        return self.dst

    def __str__(self) -> str:
        return f"{self.op}i {self.dst}, {self.src1}, {self.imm}"


@dataclass(frozen=True)
class Load(Instruction):
    """``dst <- mem[base + offset]`` (one 64-bit word)."""

    dst: str
    base: str
    offset: int = 0

    is_memory = True

    def __post_init__(self) -> None:
        validate_register(self.dst)
        validate_register(self.base)

    def sources(self) -> Tuple[str, ...]:
        return (self.base,)

    def destination(self) -> Optional[str]:
        return self.dst

    def __str__(self) -> str:
        return f"ld {self.dst}, {self.offset}({self.base})"


@dataclass(frozen=True)
class Store(Instruction):
    """``mem[base + offset] <- src``."""

    src: str
    base: str
    offset: int = 0

    is_memory = True

    def __post_init__(self) -> None:
        validate_register(self.src)
        validate_register(self.base)

    def sources(self) -> Tuple[str, ...]:
        return (self.src, self.base)

    def __str__(self) -> str:
        return f"st {self.src}, {self.offset}({self.base})"


@dataclass(frozen=True)
class Flush(Instruction):
    """Evict the line containing ``base + offset`` from every cache level.

    Semantics follow x86 ``clflush``: dirty data is written back, the line
    becomes invalid hierarchy-wide.
    """

    base: str
    offset: int = 0

    is_memory = True

    def __post_init__(self) -> None:
        validate_register(self.base)

    def sources(self) -> Tuple[str, ...]:
        return (self.base,)

    def __str__(self) -> str:
        return f"clflush {self.offset}({self.base})"


@dataclass(frozen=True)
class Fence(Instruction):
    """Memory fence: younger memory ops wait for all older ones to complete.

    unXpec executes a fence at the start of the measurement stage so the
    squash never waits on inflight correct-path loads (zeroing T4).
    """

    def __str__(self) -> str:
        return "mfence"


@dataclass(frozen=True)
class ReadTimer(Instruction):
    """``dst <- current cycle`` — serialising like ``rdtscp``.

    Waits for all older instructions to complete before reading the clock,
    so the delta of two reads brackets everything between them, including
    defense-induced stalls.
    """

    dst: str

    def __post_init__(self) -> None:
        validate_register(self.dst)

    def destination(self) -> Optional[str]:
        return self.dst

    def __str__(self) -> str:
        return f"rdtscp {self.dst}"


@dataclass(frozen=True)
class Branch(Instruction):
    """Conditional branch: if ``src1 <cond> src2`` jump to ``target`` label.

    The branch predictor guesses the direction at fetch; the branch resolves
    once both operands are available (this is the T1→T2 window the paper
    calls the branch resolution time).
    """

    cond: str
    src1: str
    src2: str
    target: str

    def __post_init__(self) -> None:
        if self.cond not in _BRANCH_CONDS:
            raise IsaError(f"unknown branch condition: {self.cond!r}")
        validate_register(self.src1)
        validate_register(self.src2)
        if not self.target:
            raise IsaError("branch target label must be non-empty")

    def sources(self) -> Tuple[str, ...]:
        return (self.src1, self.src2)

    def taken(self, a: int, b: int) -> bool:
        return branch_eval(self.cond, a, b)

    def __str__(self) -> str:
        return f"b{self.cond} {self.src1}, {self.src2}, {self.target}"


@dataclass(frozen=True)
class Jump(Instruction):
    """Unconditional jump to ``target`` label."""

    target: str

    def __post_init__(self) -> None:
        if not self.target:
            raise IsaError("jump target label must be non-empty")

    def __str__(self) -> str:
        return f"j {self.target}"


@dataclass(frozen=True)
class Nop(Instruction):
    """Does nothing; occupies one ROB slot for one cycle."""

    def __str__(self) -> str:
        return "nop"


@dataclass(frozen=True)
class Halt(Instruction):
    """Stop the program."""

    def __str__(self) -> str:
        return "halt"
