"""Architectural register file of the toy ISA.

The ISA has 32 general-purpose 64-bit integer registers, ``r0`` … ``r31``.
``r0`` is an ordinary register (not hard-wired to zero). Register names are
validated eagerly so that malformed programs fail at construction, not
mid-simulation.
"""

from __future__ import annotations

from ..common.errors import IsaError

NUM_REGISTERS = 32

#: 64-bit wraparound mask applied to every architectural value.
WORD_MASK = (1 << 64) - 1


def reg(index: int) -> str:
    """Return the canonical name of register ``index`` (e.g. ``reg(3) == 'r3'``)."""
    if not 0 <= index < NUM_REGISTERS:
        raise IsaError(f"register index out of range: {index}")
    return f"r{index}"


def validate_register(name: str) -> str:
    """Check that ``name`` is a valid register name and return it."""
    if not isinstance(name, str) or not name.startswith("r"):
        raise IsaError(f"invalid register name: {name!r}")
    try:
        index = int(name[1:])
    except ValueError as exc:
        raise IsaError(f"invalid register name: {name!r}") from exc
    if not 0 <= index < NUM_REGISTERS:
        raise IsaError(f"register index out of range: {name!r}")
    return name


class RegisterFile:
    """Mutable map from register name to 64-bit value.

    Reads of never-written registers return 0, matching the convention that
    simulated programs start from a zeroed context.
    """

    def __init__(self) -> None:
        self._values: dict = {}

    @property
    def raw(self) -> dict:
        """The underlying name→value dict, for pre-validated hot paths.

        The core's dispatch loop only ever reads/writes register names that
        were validated when the instruction was constructed, so it skips
        :func:`validate_register` and uses this dict directly (reads via
        ``raw.get(name, 0)``, writes must mask with :data:`WORD_MASK`).
        """
        return self._values

    def read(self, name: str) -> int:
        validate_register(name)
        return self._values.get(name, 0)

    def write(self, name: str, value: int) -> None:
        validate_register(name)
        self._values[name] = value & WORD_MASK

    def snapshot(self) -> dict:
        """Copy of the current architectural state (for speculation)."""
        return dict(self._values)

    def restore(self, snapshot: dict) -> None:
        """Replace the architectural state with ``snapshot``."""
        self._values = dict(snapshot)

    def copy(self) -> "RegisterFile":
        clone = RegisterFile()
        clone._values = dict(self._values)
        return clone
