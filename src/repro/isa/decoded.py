"""Decoded (pre-resolved) program representation for the core's hot path.

The simulator executes the same :class:`~repro.isa.program.Program` thousands
of times (one attack round per call). Dispatching through a 12-arm
``isinstance`` chain and re-resolving labels/register names on every executed
instruction dominates the per-round cost, so each program is decoded **once**
into a dense per-pc table of plain tuples:

* element 0 is a small-integer opcode (``OP_*`` below) the core switches on,
* the remaining elements are pre-resolved operands: register *names* (the
  register file is a dict keyed by name), label targets resolved to
  instruction indices, ALU/branch *callables* looked up from the operation
  tables, and a pre-computed functional-unit id (``repro.cpu.fu``) for
  latency/occupancy selection (``FU_ALU`` is 0/falsy and ``FU_MUL`` 1/truthy,
  preserving the historical ``is_mul`` truthiness).

Decoding is purely structural — it evaluates nothing — so a decoded program
is bit-identical in behaviour to interpreting the instruction objects. The
table is cached on the :class:`Program` (programs are immutable once built);
see :meth:`repro.isa.program.Program.decoded`.
"""

from __future__ import annotations

from typing import List, Tuple

from ..common.errors import IsaError
from .instructions import (
    Branch,
    Fence,
    Flush,
    Halt,
    IntOp,
    IntOpImm,
    Jump,
    Load,
    LoadImm,
    Nop,
    ReadTimer,
    Store,
    alu_fn,
    branch_fn,
)

# Functional-unit ids carried in ALU-op tuples (element 5). They live here —
# not in repro.cpu.fu, which re-exports them — because decode assigns them and
# repro.cpu imports this module (the reverse import would be circular).
# FU_ALU is falsy and FU_MUL truthy on purpose: the historical
# ``mul_latency if ins[5] else alu_latency`` arms stay bit-identical for the
# pipelined units.
FU_ALU = 0
FU_MUL = 1
FU_DIV = 2

#: ALU mnemonic -> functional unit. Everything not listed issues to the
#: fully-pipelined ALU.
FU_BY_OP = {
    "mul": FU_MUL,
    "div": FU_DIV,
}


def fu_for_op(op: str) -> int:
    """Functional-unit id for ALU mnemonic ``op`` (default: the ALU)."""
    return FU_BY_OP.get(op, FU_ALU)


# Opcodes — contiguous small ints so the core's if/elif chain compares fast.
OP_HALT = 0
OP_LOAD_IMM = 1
OP_INT_OP = 2
OP_INT_OP_IMM = 3
OP_LOAD = 4
OP_STORE = 5
OP_FLUSH = 6
OP_FENCE = 7
OP_READ_TIMER = 8
OP_JUMP = 9
OP_NOP = 10
OP_BRANCH = 11

#: Decoded tuple layouts, by opcode (element 0 is always the opcode):
#:   OP_HALT        ()
#:   OP_LOAD_IMM    (dst, imm)  # raw; the architectural write path masks
#:   OP_INT_OP      (dst, src1, src2, fn, fu)
#:   OP_INT_OP_IMM  (dst, src1, imm, fn, fu)
#:   OP_LOAD        (dst, base, offset)
#:   OP_STORE       (src, base, offset)
#:   OP_FLUSH       (base, offset)
#:   OP_FENCE       ()
#:   OP_READ_TIMER  (dst,)
#:   OP_JUMP        (target_pc,)
#:   OP_NOP         ()
#:   OP_BRANCH      (src1, src2, cond_fn, taken_pc)
DecodedInstruction = Tuple


def decode_program(program) -> List[DecodedInstruction]:
    """Decode ``program`` into the per-pc tuple table described above."""
    code: List[DecodedInstruction] = []
    for pc, inst in enumerate(program):
        if isinstance(inst, Halt):
            code.append((OP_HALT,))
        elif isinstance(inst, LoadImm):
            # The immediate is stored raw; the architectural write path masks
            # it (RegisterFile.write semantics) while the wrong path keeps
            # the raw value, exactly like the instruction-object interpreter.
            code.append((OP_LOAD_IMM, inst.dst, inst.imm))
        elif isinstance(inst, IntOp):
            code.append(
                (OP_INT_OP, inst.dst, inst.src1, inst.src2, alu_fn(inst.op), fu_for_op(inst.op))
            )
        elif isinstance(inst, IntOpImm):
            code.append(
                (OP_INT_OP_IMM, inst.dst, inst.src1, inst.imm, alu_fn(inst.op), fu_for_op(inst.op))
            )
        elif isinstance(inst, Load):
            code.append((OP_LOAD, inst.dst, inst.base, inst.offset))
        elif isinstance(inst, Store):
            code.append((OP_STORE, inst.src, inst.base, inst.offset))
        elif isinstance(inst, Flush):
            code.append((OP_FLUSH, inst.base, inst.offset))
        elif isinstance(inst, Fence):
            code.append((OP_FENCE,))
        elif isinstance(inst, ReadTimer):
            code.append((OP_READ_TIMER, inst.dst))
        elif isinstance(inst, Jump):
            code.append((OP_JUMP, program.resolve(inst.target)))
        elif isinstance(inst, Nop):
            code.append((OP_NOP,))
        elif isinstance(inst, Branch):
            code.append(
                (
                    OP_BRANCH,
                    inst.src1,
                    inst.src2,
                    branch_fn(inst.cond),
                    program.resolve(inst.target),
                )
            )
        else:
            raise IsaError(
                f"cannot decode instruction {inst!r}", program=program.name, pc=pc
            )
    return code
