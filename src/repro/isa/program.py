"""Program container: an instruction sequence plus label table.

A :class:`Program` is immutable once built. Labels map names to instruction
indices; control-flow targets are resolved eagerly by :meth:`Program.validate`
so simulation never encounters an undefined label.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Mapping, Sequence

from ..common.errors import IsaError
from .instructions import Branch, Halt, Instruction, Jump


class Program:
    """An immutable instruction sequence with named labels."""

    def __init__(
        self,
        instructions: Sequence[Instruction],
        labels: Mapping[str, int] | None = None,
        name: str = "program",
    ) -> None:
        self._instructions: List[Instruction] = list(instructions)
        self._labels: Dict[str, int] = dict(labels or {})
        self.name = name
        self._decoded: list | None = None
        self.validate()

    # -- container protocol -------------------------------------------------

    def __len__(self) -> int:
        return len(self._instructions)

    def __getitem__(self, index: int) -> Instruction:
        return self._instructions[index]

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self._instructions)

    @property
    def labels(self) -> Dict[str, int]:
        return dict(self._labels)

    # -- validation ----------------------------------------------------------

    def validate(self) -> None:
        """Raise :class:`IsaError` on any structural problem.

        Every error carries the program name and (where applicable) the
        offending instruction index, so diagnostics — and the static
        analyzer findings built on top of them — are locatable as
        ``program:pc``.
        """
        if not self._instructions:
            raise IsaError("program is empty", program=self.name)
        n = len(self._instructions)
        if not isinstance(self._instructions[-1], Halt):
            raise IsaError(
                "program must end with Halt",
                program=self.name,
                pc=n - 1,
                instruction=str(self._instructions[-1]),
            )
        for label, index in sorted(self._labels.items()):
            if not 0 <= index <= n:
                raise IsaError(
                    f"label {label!r} -> {index} out of range 0..{n}",
                    program=self.name,
                )
        for pc, inst in enumerate(self._instructions):
            target = getattr(inst, "target", None)
            if target is not None and target not in self._labels:
                raise IsaError(
                    f"undefined target label {target!r}",
                    program=self.name,
                    pc=pc,
                    instruction=str(inst),
                )

    # -- queries ---------------------------------------------------------------

    def resolve(self, label: str) -> int:
        """Instruction index of ``label``."""
        try:
            return self._labels[label]
        except KeyError as exc:
            raise IsaError(
                f"undefined label {label!r}", program=self.name
            ) from exc

    def decoded(self) -> list:
        """Dense per-pc opcode/operand table (see :mod:`repro.isa.decoded`).

        Decoded lazily on first use and cached: the program is immutable, so
        every :class:`~repro.cpu.core.Core` run of it shares one table.
        """
        if self._decoded is None:
            from .decoded import decode_program

            self._decoded = decode_program(self)
        return self._decoded

    def describe(self, pc: int) -> str:
        """``program:pc: instruction`` — the canonical finding location."""
        if not 0 <= pc < len(self._instructions):
            raise IsaError(
                f"pc {pc} outside program (0..{len(self._instructions) - 1})",
                program=self.name,
            )
        return f"{self.name}:{pc}: {self._instructions[pc]}"

    def branch_indices(self) -> List[int]:
        """Indices of all conditional branches (for predictor statistics)."""
        return [i for i, inst in enumerate(self._instructions) if isinstance(inst, Branch)]

    def jump_indices(self) -> List[int]:
        return [i for i, inst in enumerate(self._instructions) if isinstance(inst, Jump)]

    def listing(self) -> str:
        """Human-readable assembly listing with labels interleaved."""
        by_index: Dict[int, List[str]] = {}
        for label, index in sorted(self._labels.items(), key=lambda kv: kv[1]):
            by_index.setdefault(index, []).append(label)
        lines: List[str] = []
        for pc, inst in enumerate(self._instructions):
            for label in by_index.get(pc, ()):
                lines.append(f"{label}:")
            lines.append(f"  {pc:4d}  {inst}")
        for label in by_index.get(len(self._instructions), ()):
            lines.append(f"{label}:")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Program({self.name!r}, {len(self)} instructions)"
