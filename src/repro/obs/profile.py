"""Wall-clock phase profiling for experiment runs.

A :class:`Profiler` accumulates elapsed wall time per named phase through
a context manager::

    prof = Profiler()
    with prof.phase("fig3.sample"):
        attack.sample(1)

Phase names use the same dotted convention as stat names, so a report can
group them (``report.fig3``, ``report.fig7`` …).  Phases re-enter freely
(times accumulate, calls count up) and nest (each level is accounted
separately; the profiler does not subtract child time from parents —
self-time bookkeeping is not worth the complexity at experiment
granularity).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, List


class Profiler:
    """Accumulates wall-clock seconds and call counts per phase name."""

    def __init__(self) -> None:
        self._seconds: Dict[str, float] = {}
        self._calls: Dict[str, int] = {}

    @contextmanager
    def phase(self, name: str):
        started = time.perf_counter()
        try:
            yield self
        finally:
            elapsed = time.perf_counter() - started
            self._seconds[name] = self._seconds.get(name, 0.0) + elapsed
            self._calls[name] = self._calls.get(name, 0) + 1

    def record(self, name: str, seconds: float) -> None:
        """Account already-measured time (for callers timing externally)."""
        self._seconds[name] = self._seconds.get(name, 0.0) + float(seconds)
        self._calls[name] = self._calls.get(name, 0) + 1

    def seconds(self, name: str) -> float:
        return self._seconds.get(name, 0.0)

    def calls(self, name: str) -> int:
        return self._calls.get(name, 0)

    def phases(self) -> List[str]:
        return sorted(self._seconds)

    def __len__(self) -> int:
        return len(self._seconds)

    @property
    def total_seconds(self) -> float:
        return sum(self._seconds.values())

    def to_dict(self) -> Dict[str, dict]:
        return {
            name: {"seconds": self._seconds[name], "calls": self._calls[name]}
            for name in self.phases()
        }

    def render(self) -> str:
        """Text table of phases, slowest first."""
        if not self._seconds:
            return "(no phases profiled)"
        ordered = sorted(self._seconds.items(), key=lambda kv: -kv[1])
        width = max(len(name) for name, _ in ordered)
        lines = [f"{'phase':<{width}}  {'seconds':>10}  {'calls':>6}"]
        for name, secs in ordered:
            lines.append(f"{name:<{width}}  {secs:>10.3f}  {self._calls[name]:>6}")
        return "\n".join(lines)

    def clear(self) -> None:
        self._seconds.clear()
        self._calls.clear()
