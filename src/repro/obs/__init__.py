"""``repro.obs`` — observability: hierarchical stats, event tracing, profiling.

The subsystem has three legs, tied together by :class:`Observability`:

* :class:`~repro.obs.registry.StatRegistry` — gem5-style dotted-name
  statistics (``core.squashes``, ``l1d.misses``,
  ``defense.cleanup.restores``…) with text and JSON dumps;
* :class:`~repro.obs.trace.EventTrace` — a cycle-stamped, ring-buffered
  structured event log with an optional JSONL sink;
* :class:`~repro.obs.profile.Profiler` — wall-clock phase timing for
  experiment runs.

Attach one ``Observability`` to a core and everything it touches reports::

    obs = Observability()
    h = CacheHierarchy(seed=0, obs=obs)
    core = Core(h, CleanupSpec(h), obs=obs)
    core.run(program)
    print(obs.registry.dump_text())

For code that builds its cores internally (attacks, experiments), install
a *process default* instead — every component constructed while it is set
picks it up::

    with observe(Observability()) as obs:
        UnxpecAttack(...).sample(1)
    obs.dump_json("stats.json")

``python -m repro.experiments <exp> --stats-out PATH`` is exactly this
wrapped around the experiment registry, and ``python -m repro.obs PATH``
pretty-prints the resulting dump.  See ``docs/observability.md``.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from typing import Optional

from .export import (
    parse_openmetrics,
    profiler_to_folded,
    registry_to_openmetrics,
    to_openmetrics,
)
from .profile import Profiler
from .registry import (
    Counter,
    Distribution,
    Formula,
    Gauge,
    Stat,
    StatRegistry,
    nest_dotted,
)
from .spans import (
    NULL_RECORDER,
    Span,
    SpanRecorder,
    merge_span_trees,
    strip_timing,
)
from .trace import EVENT_SCHEMAS, EventTrace, TraceEvent, read_jsonl

__all__ = [
    "Counter",
    "Distribution",
    "EventTrace",
    "EVENT_SCHEMAS",
    "Formula",
    "Gauge",
    "NULL_RECORDER",
    "Observability",
    "Profiler",
    "Span",
    "SpanRecorder",
    "Stat",
    "StatRegistry",
    "TraceEvent",
    "get_default_obs",
    "merge_span_trees",
    "nest_dotted",
    "observe",
    "parse_openmetrics",
    "profiler_to_folded",
    "read_jsonl",
    "registry_to_openmetrics",
    "set_default_obs",
    "strip_timing",
    "to_openmetrics",
]


class Observability:
    """One registry + one event trace + one profiler, attached as a unit."""

    def __init__(
        self,
        registry: Optional[StatRegistry] = None,
        trace: Optional[EventTrace] = None,
        profiler: Optional[Profiler] = None,
        trace_capacity: int = 65536,
        trace_level: str = "commit",
        jsonl_path: Optional[str] = None,
    ) -> None:
        self.registry = registry or StatRegistry()
        self.trace = trace or EventTrace(
            capacity=trace_capacity, level=trace_level, jsonl_path=jsonl_path
        )
        self.profiler = profiler or Profiler()

    def profile(self, name: str):
        """Context manager accounting wall time under ``name``."""
        return self.profiler.phase(name)

    def to_dict(self) -> dict:
        """The ``--stats-out`` JSON document."""
        return {
            "stats": self.registry.to_dict(),
            "profile": self.profiler.to_dict(),
            "trace": {
                "level": self.trace.level,
                "capacity": self.trace.capacity,
                "emitted": self.trace.emitted,
                "buffered": len(self.trace),
                "dropped": self.trace.dropped,
            },
        }

    def dump_json(self, path: str, indent: int = 2) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_dict(), fh, indent=indent, sort_keys=True)
            fh.write("\n")


#: Process-wide default picked up by component constructors (None = off).
_default_obs: Optional[Observability] = None


def get_default_obs() -> Optional[Observability]:
    return _default_obs


def set_default_obs(obs: Optional[Observability]) -> Optional[Observability]:
    """Install ``obs`` as the process default; return the previous one."""
    global _default_obs
    previous = _default_obs
    _default_obs = obs
    return previous


@contextmanager
def observe(obs: Optional[Observability] = None):
    """Scope a default :class:`Observability`; yields it."""
    active = obs or Observability()
    previous = set_default_obs(active)
    try:
        yield active
    finally:
        set_default_obs(previous)
