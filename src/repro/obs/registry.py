"""gem5-style hierarchical statistics registry.

Every simulator component publishes named statistics into one
:class:`StatRegistry` under a dotted hierarchy (``core.squashes``,
``l1d.misses``, ``defense.cleanup.restores``, ``dram.accesses``).  Four
stat kinds cover the simulator's needs:

* :class:`Counter` — a monotonically increasing integer the instrumented
  code bumps directly (``registry.counter("core.squashes").inc()``);
* :class:`Gauge` — a value *pulled* at dump time from one or more source
  callables.  Components that already keep their own counter dataclasses
  (``CacheStats``, ``DramStats``, ``MshrStats``…) register zero-overhead
  sources; several components registering under the same name aggregate
  by summation, which is exactly what an experiment spanning many
  hierarchies wants;
* :class:`Distribution` — a histogram-ish accumulator with exact count /
  sum / min / max / mean / stddev moments and percentile estimates from a
  bounded, deterministically-subsampled reservoir;
* :class:`Formula` — a derived stat (IPC, miss rate, overhead ratio)
  evaluated lazily at dump time.

Dump formats: :meth:`StatRegistry.dump_text` renders the flat,
gem5-``stats.txt``-like listing; :meth:`StatRegistry.to_dict` nests the
dotted names into a tree for JSON (:meth:`StatRegistry.dump_json`).
"""

from __future__ import annotations

import json
import math
import re
from typing import Callable, Dict, List, Optional, Union

from ..common.errors import ConfigError

#: Dotted stat names: lowercase segments of [a-z0-9_], at least one dot is
#: conventional ("component.stat") but not required.
_NAME_RE = re.compile(r"^[a-z0-9_]+(\.[a-z0-9_]+)*$")

Number = Union[int, float]


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ConfigError(
            f"invalid stat name {name!r} (want dotted lowercase identifiers)"
        )
    return name


class Stat:
    """Base class: a named, described statistic."""

    kind = "stat"

    def __init__(self, name: str, desc: str = "") -> None:
        self.name = _check_name(name)
        self.desc = desc

    def value(self):  # pragma: no cover - abstract-ish
        raise NotImplementedError

    def reset(self) -> None:
        """Return the stat to its initial state (pull sources are kept)."""

    def to_entry(self):
        """The JSON-friendly dump value of this stat."""
        return self.value()


class Counter(Stat):
    """Monotonic event counter incremented by instrumented code."""

    kind = "counter"

    #: Class-level journal hook: when a list is attached (the batched
    #: backend's record phase), every increment appends ``(stat, n)`` so the
    #: round's counter deltas can be replayed exactly, whichever registry the
    #: counter lives in.
    _journal: Optional[list] = None

    def __init__(self, name: str, desc: str = "") -> None:
        super().__init__(name, desc)
        self._count = 0

    def inc(self, n: int = 1) -> None:
        self._count += n
        j = Counter._journal
        if j is not None:
            j.append((self, n))

    def value(self) -> int:
        return self._count

    def reset(self) -> None:
        self._count = 0


class Gauge(Stat):
    """A sampled value, optionally pulled from component source callables.

    ``value() = set value + sum(source() for each registered source)``.
    Registering a source is how components with their own stats dataclasses
    (``l1.stats.hits`` …) surface counters with zero hot-path overhead; a
    second component adding a source under the same name aggregates.
    """

    kind = "gauge"

    def __init__(self, name: str, desc: str = "") -> None:
        super().__init__(name, desc)
        self._value: Number = 0
        self._sources: List[Callable[[], Number]] = []

    def set(self, value: Number) -> None:
        self._value = value

    def add_source(self, fn: Callable[[], Number]) -> None:
        self._sources.append(fn)

    @property
    def n_sources(self) -> int:
        return len(self._sources)

    def value(self) -> Number:
        total = self._value
        for fn in self._sources:
            total += fn()
        return total

    def reset(self) -> None:
        self._value = 0


class Distribution(Stat):
    """Sample accumulator: exact moments plus reservoir percentiles.

    Moments (count, sum, min, max, mean, stddev) are exact over every
    sample ever added.  Percentiles come from a bounded reservoir: the
    first ``reservoir`` samples are kept verbatim; afterwards samples
    overwrite deterministic pseudo-random slots (Knuth's multiplicative
    hash of the sample ordinal), so long runs stay O(reservoir) memory
    without an RNG dependency.
    """

    kind = "distribution"

    #: Default reservoir size; squash stalls and latencies fit easily.
    DEFAULT_RESERVOIR = 4096

    #: Class-level journal hook (see :attr:`Counter._journal`): replaying the
    #: exact ``add`` sequence keeps the deterministic percentile reservoir
    #: bit-identical, which moment deltas alone could not.
    _journal: Optional[list] = None

    def __init__(self, name: str, desc: str = "", reservoir: int = DEFAULT_RESERVOIR) -> None:
        super().__init__(name, desc)
        if reservoir < 1:
            raise ConfigError("distribution reservoir must be >= 1")
        self.reservoir = reservoir
        self.reset()

    def reset(self) -> None:
        self._count = 0
        self._sum = 0.0
        self._sumsq = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._samples: List[float] = []
        self._sorted: Optional[List[float]] = None

    def add(self, value: Number) -> None:
        j = Distribution._journal
        if j is not None:
            j.append((self, value))
        v = float(value)
        self._count += 1
        self._sum += v
        self._sumsq += v * v
        if v < self._min:
            self._min = v
        if v > self._max:
            self._max = v
        self._sorted = None
        if len(self._samples) < self.reservoir:
            self._samples.append(v)
        else:
            slot = (self._count * 2654435761) % self.reservoir
            self._samples[slot] = v

    # -- moments ------------------------------------------------------------

    @property
    def count(self) -> int:
        return self._count

    @property
    def total(self) -> float:
        return self._sum

    @property
    def minimum(self) -> float:
        return self._min if self._count else 0.0

    @property
    def maximum(self) -> float:
        return self._max if self._count else 0.0

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    @property
    def stddev(self) -> float:
        if self._count < 2:
            return 0.0
        var = (self._sumsq - self._sum * self._sum / self._count) / (self._count - 1)
        return math.sqrt(max(0.0, var))

    def percentile(self, p: float) -> float:
        """Linear-interpolated percentile ``p`` in [0, 100] of the reservoir."""
        if not 0 <= p <= 100:
            raise ConfigError(f"percentile must be in [0, 100], got {p}")
        if not self._samples:
            return 0.0
        if self._sorted is None:
            self._sorted = sorted(self._samples)
        ordered = self._sorted
        if len(ordered) == 1:
            return ordered[0]
        rank = (p / 100.0) * (len(ordered) - 1)
        lo = int(math.floor(rank))
        hi = int(math.ceil(rank))
        if lo == hi:
            return ordered[lo]
        frac = rank - lo
        return ordered[lo] * (1 - frac) + ordered[hi] * frac

    def value(self) -> float:
        return self.mean

    def to_entry(self) -> Dict[str, Number]:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.minimum,
            "max": self.maximum,
            "mean": self.mean,
            "stddev": self.stddev,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
        }


class Formula(Stat):
    """Derived stat: a callable evaluated at dump time.

    The callable typically closes over other stats, e.g.::

        inst, cyc = reg.counter("core.instructions"), reg.counter("core.cycles")
        reg.formula("core.ipc", lambda: inst.value() / max(1, cyc.value()))
    """

    kind = "formula"

    def __init__(self, name: str, fn: Callable[[], Number], desc: str = "") -> None:
        super().__init__(name, desc)
        self._fn = fn

    def value(self) -> Number:
        return self._fn()


def nest_dotted(flat: Dict[str, object]) -> Dict[str, object]:
    """Nest a flat ``{dotted name: value}`` mapping into a tree.

    Shared by :meth:`StatRegistry.to_dict` and the campaign runner's
    merged-snapshot dump, so both produce the same JSON shape.
    """
    tree: Dict[str, object] = {}
    for name, entry in flat.items():
        node = tree
        parts = name.split(".")
        for part in parts[:-1]:
            nxt = node.setdefault(part, {})
            if not isinstance(nxt, dict):
                # A leaf ("l1d") also has children ("l1d.hits"): keep the
                # leaf under the reserved key "_value".
                nxt = {"_value": nxt}
                node[part] = nxt
            node = nxt
        leaf = parts[-1]
        if isinstance(node.get(leaf), dict) and not isinstance(entry, dict):
            node[leaf]["_value"] = entry
        else:
            node[leaf] = entry
    return tree


class StatRegistry:
    """Flat store of dotted-name stats with hierarchical dump views."""

    def __init__(self) -> None:
        self._stats: Dict[str, Stat] = {}

    # -- creation / access --------------------------------------------------

    def _get_or_create(self, cls, name: str, desc: str) -> Stat:
        stat = self._stats.get(name)
        if stat is None:
            stat = cls(name, desc=desc)
            self._stats[name] = stat
            return stat
        if not isinstance(stat, cls):
            raise ConfigError(
                f"stat {name!r} already registered as {stat.kind}, not {cls.kind}"
            )
        if desc and not stat.desc:
            stat.desc = desc
        return stat

    def counter(self, name: str, desc: str = "") -> Counter:
        return self._get_or_create(Counter, name, desc)

    def gauge(self, name: str, desc: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, desc)

    def distribution(
        self, name: str, desc: str = "", reservoir: int = Distribution.DEFAULT_RESERVOIR
    ) -> Distribution:
        stat = self._stats.get(name)
        if stat is None:
            stat = Distribution(name, desc=desc, reservoir=reservoir)
            self._stats[name] = stat
        elif not isinstance(stat, Distribution):
            raise ConfigError(
                f"stat {name!r} already registered as {stat.kind}, not distribution"
            )
        return stat

    def formula(self, name: str, fn: Callable[[], Number], desc: str = "") -> Formula:
        """Register (or replace) a derived stat."""
        existing = self._stats.get(name)
        if existing is not None and not isinstance(existing, Formula):
            raise ConfigError(
                f"stat {name!r} already registered as {existing.kind}, not formula"
            )
        stat = Formula(name, fn, desc=desc)
        self._stats[name] = stat
        return stat

    def __contains__(self, name: str) -> bool:
        return name in self._stats

    def __len__(self) -> int:
        return len(self._stats)

    def get(self, name: str) -> Optional[Stat]:
        return self._stats.get(name)

    def __getitem__(self, name: str) -> Stat:
        try:
            return self._stats[name]
        except KeyError:
            raise ConfigError(f"no stat named {name!r}") from None

    def names(self, prefix: str = "") -> List[str]:
        """Sorted stat names, optionally restricted to a dotted ``prefix``."""
        if not prefix:
            return sorted(self._stats)
        dotted = prefix if prefix.endswith(".") else prefix + "."
        return sorted(n for n in self._stats if n == prefix or n.startswith(dotted))

    def reset(self) -> None:
        """Reset counters/gauges/distributions (pull sources are kept)."""
        for stat in self._stats.values():
            stat.reset()

    # -- dumps --------------------------------------------------------------

    def snapshot(self, prefix: str = "") -> Dict[str, object]:
        """Flat ``{dotted name: dump value}`` of the (filtered) registry."""
        out: Dict[str, object] = {}
        for name in self.names(prefix):
            out[name] = self._stats[name].to_entry()
        return out

    def to_dict(self, prefix: str = "") -> Dict[str, object]:
        """Nested dict keyed by the dotted hierarchy (JSON-dump shape)."""
        return nest_dotted(self.snapshot(prefix))

    def kinds(self, prefix: str = "") -> Dict[str, str]:
        """``{dotted name: stat kind}`` for the (filtered) registry.

        The campaign runner ships this beside :meth:`snapshot` so the
        parent process knows how to merge each entry (counters sum,
        distributions pool moments, …).
        """
        return {name: self._stats[name].kind for name in self.names(prefix)}

    def dump_json(self, path: str, indent: int = 2, prefix: str = "") -> None:
        with open(path, "w") as fh:
            json.dump(self.to_dict(prefix), fh, indent=indent, sort_keys=True)
            fh.write("\n")

    def dump_text(self, prefix: str = "") -> str:
        """gem5 ``stats.txt``-style listing: ``name  value  # desc``."""
        rows: List[tuple] = []
        for name in self.names(prefix):
            stat = self._stats[name]
            entry = stat.to_entry()
            if isinstance(entry, dict):
                for key, val in entry.items():
                    rows.append((f"{name}::{key}", val, stat.desc if key == "count" else ""))
            else:
                rows.append((name, entry, stat.desc))
        if not rows:
            return "(no stats registered)"
        width = max(len(r[0]) for r in rows)
        lines = []
        for name, val, desc in rows:
            if isinstance(val, float) and not val.is_integer():
                text = f"{val:.6f}"
            else:
                text = str(int(val)) if isinstance(val, float) else str(val)
            comment = f"  # {desc}" if desc else ""
            lines.append(f"{name:<{width}}  {text:>14}{comment}")
        return "\n".join(lines)
