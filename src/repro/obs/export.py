"""Exportable metric formats: OpenMetrics text and folded stacks.

Two renderers turn the in-process observability state into the formats
external tooling already speaks:

* :func:`to_openmetrics` — a Prometheus-textfile / OpenMetrics rendering
  of a :class:`~repro.obs.registry.StatRegistry` snapshot.  Dotted stat
  names become metric names with ``.`` → ``_`` under a ``repro_``
  namespace, and every sample carries the original dotted name as a
  ``stat`` label, which makes the mapping collision-proof and lets
  :func:`parse_openmetrics` round-trip the exact snapshot (values are
  printed with ``repr`` so floats survive bit-exactly).  Stat kinds map
  to metric types: counter → ``counter``, gauge/formula → ``gauge``,
  distribution → ``summary`` (count/sum/quantiles) plus ``moment``
  -labelled gauges for min/max/mean/stddev.

* :func:`profiler_to_folded` — the :class:`~repro.obs.profile.Profiler`
  phase table as folded stacks (``a;b;c <microseconds>``), the input
  format of ``flamegraph.pl`` and every speedscope-style viewer.  Dotted
  phase names become stack frames.

The experiments CLI wires these as ``--metrics-out`` (written beside
``--stats-out`` after a campaign) and ``python -m repro.obs <dump>
--format openmetrics`` re-renders an existing JSON dump.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple

from ..common.errors import ConfigError

#: Metric-name namespace; keeps repro metrics greppable on a shared node.
NAMESPACE = "repro"

#: Distribution entry keys exported as the summary's quantile series.
_QUANTILES = {"p50": "0.5", "p90": "0.9", "p99": "0.99"}

#: Distribution entry keys exported as moment-labelled gauge series.
_MOMENTS = ("min", "max", "mean", "stddev")


def metric_name(dotted: str) -> str:
    """``l1d.miss_rate`` → ``repro_l1d_miss_rate``."""
    return f"{NAMESPACE}_{dotted.replace('.', '_')}"


def _format_value(value: object) -> str:
    """Round-trippable sample value text (repr keeps float bits exact)."""
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, (int, float)):
        return repr(value)
    raise ConfigError(f"non-numeric stat value {value!r} cannot be exported")


def _escape_label(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def to_openmetrics(
    snapshot: Mapping[str, object],
    kinds: Optional[Mapping[str, str]] = None,
    descs: Optional[Mapping[str, str]] = None,
) -> str:
    """Render a flat ``{dotted name: dump value}`` snapshot as OpenMetrics.

    ``snapshot`` is what :meth:`StatRegistry.snapshot` (or the campaign
    merge) produces: scalars for counters/gauges/formulas, moment dicts
    for distributions.  ``kinds`` (from :meth:`StatRegistry.kinds` or the
    campaign snapshot-with-kinds) selects the metric type; without it,
    dict entries render as summaries and scalars as untyped gauges.
    """
    kinds = kinds or {}
    descs = descs or {}
    lines: List[str] = []
    for name in sorted(snapshot):
        entry = snapshot[name]
        metric = metric_name(name)
        kind = kinds.get(name, "distribution" if isinstance(entry, dict) else "gauge")
        label = f'stat="{_escape_label(name)}"'
        desc = descs.get(name, "")
        if desc:
            lines.append(f"# HELP {metric} {_escape_label(desc)}")
        if isinstance(entry, dict):
            lines.append(f"# TYPE {metric} summary")
            lines.append(f"{metric}_count{{{label}}} {_format_value(entry['count'])}")
            lines.append(f"{metric}_sum{{{label}}} {_format_value(entry['total'])}")
            for key, quantile in _QUANTILES.items():
                lines.append(
                    f'{metric}{{{label},quantile="{quantile}"}} '
                    f"{_format_value(entry[key])}"
                )
            for moment in _MOMENTS:
                lines.append(
                    f'{metric}{{{label},moment="{moment}"}} '
                    f"{_format_value(entry[moment])}"
                )
        elif kind == "counter":
            lines.append(f"# TYPE {metric} counter")
            lines.append(f"{metric}_total{{{label}}} {_format_value(entry)}")
        else:  # gauge, formula, unknown scalar kinds
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric}{{{label}}} {_format_value(entry)}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def registry_to_openmetrics(registry) -> str:
    """Convenience: render a live :class:`StatRegistry` directly."""
    descs = {name: registry[name].desc for name in registry.names()}
    return to_openmetrics(registry.snapshot(), registry.kinds(), descs)


def _parse_number(text: str) -> object:
    try:
        return int(text)
    except ValueError:
        return float(text)


def _parse_labels(text: str) -> Dict[str, str]:
    labels: Dict[str, str] = {}
    for part in text.split('",'):
        key, _, raw = part.partition('="')
        value = raw.rstrip('"')
        labels[key.strip()] = (
            value.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")
        )
    return labels


_INVERSE_QUANTILES = {q: key for key, q in _QUANTILES.items()}


def parse_openmetrics(text: str) -> Tuple[Dict[str, object], Dict[str, str]]:
    """Parse :func:`to_openmetrics` output back to ``(snapshot, kinds)``.

    The inverse used by the round-trip tests and by downstream tooling
    that wants the snapshot without a Prometheus client: summaries
    reassemble into distribution moment dicts, ``_total`` samples into
    counters, plain samples into gauges.
    """
    snapshot: Dict[str, object] = {}
    kinds: Dict[str, str] = {}
    types: Dict[str, str] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line == "# EOF":
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 3 and parts[1] == "TYPE":
                types[parts[2]] = parts[3] if len(parts) > 3 else ""
            continue
        sample, _, value_text = line.rpartition(" ")
        metric, _, label_text = sample.partition("{")
        labels = _parse_labels(label_text.rstrip("}"))
        dotted = labels.get("stat")
        if dotted is None:
            raise ConfigError(f"sample without a stat label: {line!r}")
        value = _parse_number(value_text)
        base = metric
        for suffix in ("_total", "_count", "_sum"):
            if metric.endswith(suffix) and types.get(metric[: -len(suffix)]):
                base = metric[: -len(suffix)]
                break
        mtype = types.get(base, "gauge")
        if mtype == "summary":
            entry = snapshot.setdefault(dotted, {})
            kinds[dotted] = "distribution"
            if metric.endswith("_count"):
                entry["count"] = value
            elif metric.endswith("_sum"):
                entry["total"] = value
            elif "quantile" in labels:
                entry[_INVERSE_QUANTILES[labels["quantile"]]] = value
            elif "moment" in labels:
                entry[labels["moment"]] = value
        elif mtype == "counter":
            snapshot[dotted] = value
            kinds[dotted] = "counter"
        else:
            snapshot[dotted] = value
            kinds[dotted] = "gauge"
    return snapshot, kinds


def profiler_to_folded(profile: Mapping[str, dict]) -> str:
    """Render a profiler dump as folded stacks (flamegraph input).

    ``profile`` is :meth:`Profiler.to_dict` output (``{phase: {"seconds":
    s, "calls": n}}``) — dotted phase names become semicolon-separated
    stack frames, values are integer microseconds (flamegraph.pl wants
    integers; a microsecond floor loses nothing at experiment scale).
    """
    lines = []
    for name in sorted(profile):
        entry = profile[name]
        stack = name.replace(".", ";")
        lines.append(f"{stack} {int(round(entry['seconds'] * 1e6))}")
    return "\n".join(lines) + ("\n" if lines else "")
