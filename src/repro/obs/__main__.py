"""Render a ``--stats-out`` JSON dump: text listing, OpenMetrics, folded.

Usage::

    python -m repro.experiments fig3 --quick --stats-out stats.json
    python -m repro.obs stats.json                      # whole dump
    python -m repro.obs stats.json --prefix l1d         # one subtree
    python -m repro.obs stats.json --format openmetrics # Prometheus textfile
    python -m repro.obs stats.json --format folded      # flamegraph input
    python -m repro.obs stats.json --spans              # campaign span tree
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional


#: Keys whose joint presence marks a distribution's moment dict; a group
#: of plain scalar stats never carries all three.
_MOMENT_KEYS = frozenset({"count", "total", "mean"})


def _is_moments(value: object) -> bool:
    return isinstance(value, dict) and _MOMENT_KEYS <= value.keys()


def _flatten(tree: dict, prefix: str = "") -> "list[tuple]":
    rows = []
    for key in sorted(tree):
        value = tree[key]
        name = f"{prefix}{key}"
        if _is_moments(value):
            for sub, scalar in value.items():
                rows.append((f"{name}::{sub}", scalar))
        elif isinstance(value, dict):
            rows.extend(_flatten(value, prefix=name + "."))
        else:
            rows.append((name, value))
    return rows


def _flatten_snapshot(tree: dict, prefix: str = "") -> dict:
    """Un-nest a stats tree back to ``{dotted name: scalar-or-moments}``.

    The inverse of :func:`repro.obs.nest_dotted` as far as the exporter
    needs: distribution moment dicts stay intact as leaf values.
    """
    flat = {}
    for key in sorted(tree):
        value = tree[key]
        name = f"{prefix}{key}"
        if _is_moments(value):
            flat[name] = value
        elif isinstance(value, dict):
            flat.update(_flatten_snapshot(value, prefix=name + "."))
        else:
            flat[name] = value
    return flat


def _format_cell(value: object) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float) and not value.is_integer():
        return f"{value:>14.6f}"
    if isinstance(value, (int, float)):
        return f"{int(value):>14}"
    # Non-numeric dump values (version strings, enum labels, ...) print
    # as their repr instead of crashing the whole listing.
    return repr(value)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Render a --stats-out JSON dump.",
    )
    parser.add_argument("path", help="stats JSON written by --stats-out")
    parser.add_argument(
        "--prefix", default="", help="only show stats under this dotted prefix"
    )
    parser.add_argument(
        "--format",
        choices=("text", "openmetrics", "folded"),
        default="text",
        help="text listing (default), OpenMetrics/Prometheus textfile, or "
        "folded-stack flamegraph input from the phase profile",
    )
    parser.add_argument(
        "--profile", action="store_true", help="also show the phase-timing table"
    )
    parser.add_argument(
        "--spans",
        action="store_true",
        help="also render the campaign span tree (experiments --stats-out "
        "dumps include one)",
    )
    args = parser.parse_args(argv)

    with open(args.path) as fh:
        doc = json.load(fh)

    if args.format == "folded":
        from .export import profiler_to_folded

        sys.stdout.write(profiler_to_folded(doc.get("profile", {})))
        return 0

    stats = doc.get("stats", doc)
    if not isinstance(stats, dict) or not stats:
        print(f"{args.path}: dump has no 'stats' section", file=sys.stderr)
        return 1

    if args.format == "openmetrics":
        from .export import to_openmetrics

        flat = _flatten_snapshot(stats)
        if args.prefix:
            dotted = args.prefix.rstrip(".") + "."
            flat = {
                name: entry
                for name, entry in flat.items()
                if name == args.prefix or name.startswith(dotted)
            }
        sys.stdout.write(to_openmetrics(flat))
        return 0

    rows = _flatten(stats)
    if args.prefix:
        dotted = args.prefix if args.prefix.endswith(".") else args.prefix + "."
        rows = [
            r
            for r in rows
            if r[0] == args.prefix
            or r[0].startswith(dotted)
            or r[0].startswith(args.prefix + "::")
        ]
    if not rows:
        tops = ", ".join(sorted(stats)) or "(none)"
        print(
            f"no stats match prefix {args.prefix!r}; "
            f"top-level groups: {tops}",
            file=sys.stderr,
        )
        return 1
    width = max(len(name) for name, _ in rows)
    for name, value in rows:
        print(f"{name:<{width}}  {_format_cell(value)}")

    if args.profile and doc.get("profile"):
        print()
        phases = doc["profile"]
        pw = max(len(p) for p in phases)
        print(f"{'phase':<{pw}}  {'seconds':>10}  {'calls':>6}")
        for name in sorted(phases, key=lambda p: -phases[p]["seconds"]):
            entry = phases[name]
            print(f"{name:<{pw}}  {entry['seconds']:>10.3f}  {entry['calls']:>6}")

    if args.spans:
        from .spans import Span

        tree = doc.get("spans")
        print()
        if tree:
            sys.stdout.write(Span.from_dict(tree).render())
        else:
            print("(no span tree in this dump)")
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:  # e.g. `python -m repro.obs dump | head`
        sys.exit(0)
