"""Pretty-print a ``--stats-out`` JSON dump as a text stats listing.

Usage::

    python -m repro.experiments fig3 --quick --stats-out stats.json
    python -m repro.obs stats.json                 # whole dump
    python -m repro.obs stats.json --prefix l1d    # one subtree
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional


def _flatten(tree: dict, prefix: str = "") -> "list[tuple]":
    rows = []
    for key in sorted(tree):
        value = tree[key]
        name = f"{prefix}{key}"
        if isinstance(value, dict):
            # Distribution entries are leaf dicts of scalar moments.
            if value and all(not isinstance(v, dict) for v in value.values()):
                for sub, scalar in value.items():
                    rows.append((f"{name}::{sub}", scalar))
            else:
                rows.extend(_flatten(value, prefix=name + "."))
        else:
            rows.append((name, value))
    return rows


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Render a --stats-out JSON dump as text.",
    )
    parser.add_argument("path", help="stats JSON written by --stats-out")
    parser.add_argument(
        "--prefix", default="", help="only show stats under this dotted prefix"
    )
    parser.add_argument(
        "--profile", action="store_true", help="also show the phase-timing table"
    )
    args = parser.parse_args(argv)

    with open(args.path) as fh:
        doc = json.load(fh)

    stats = doc.get("stats", doc)
    rows = _flatten(stats)
    if args.prefix:
        dotted = args.prefix if args.prefix.endswith(".") else args.prefix + "."
        rows = [r for r in rows if r[0] == args.prefix or r[0].startswith(dotted)]
    if not rows:
        print("(no matching stats)")
        return 1
    width = max(len(name) for name, _ in rows)
    for name, value in rows:
        if isinstance(value, float) and not float(value).is_integer():
            print(f"{name:<{width}}  {value:>14.6f}")
        else:
            print(f"{name:<{width}}  {int(value):>14}")

    if args.profile and doc.get("profile"):
        print()
        phases = doc["profile"]
        pw = max(len(p) for p in phases)
        print(f"{'phase':<{pw}}  {'seconds':>10}  {'calls':>6}")
        for name in sorted(phases, key=lambda p: -phases[p]["seconds"]):
            entry = phases[name]
            print(f"{name:<{pw}}  {entry['seconds']:>10.3f}  {entry['calls']:>6}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
