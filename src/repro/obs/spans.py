"""Lightweight span trees for campaign-wide tracing.

A *span* is one named, attributed slice of work with children — the
campaign engine records a tree of them per run::

    campaign
    └── experiment fig3
        ├── cache.lookup (status=miss)
        └── shard[0]
            ├── attempt[1] (status=timeout)
            ├── retry[2]   (backoff annotated)
            └── attempt[2] (status=ok)

Spans are recorded *in-worker* inside the campaign task body, serialized
through the picklable task-result path, and merged into one tree by
:class:`~repro.campaign.runner.CampaignRunner` — so a slow or failed
shard can be attributed to the exact attempt that misbehaved, across
process boundaries.

Determinism contract (same rule the campaign stats follow): the
*canonical* serialization (:meth:`Span.to_dict` with its default
``include_timing=False``) carries only deterministic fields — name,
kind, status, attributes, children.  Wall-clock durations live on the
in-memory objects (``span.seconds``) and in the streaming event log, and
are **stripped from anything cached or digested**, which is why
``--jobs 1`` and ``--jobs 4`` produce bit-identical trees.

Cost model: spans are recorded at task granularity (a handful per shard,
never per instruction).  A disabled recorder (``SpanRecorder(enabled=
False)`` or the shared :data:`NULL_RECORDER`) allocates nothing and
returns a single reusable no-op span, so spans-off campaign runs pay
one attribute check per task.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

from ..common.errors import ConfigError

#: Span kinds the campaign engine records, outermost first.
SPAN_KINDS = (
    "campaign",
    "experiment",
    "cache_lookup",
    "shard",
    "attempt",
    "retry",
    "timeout",
)

#: Terminal statuses.  ``ok``/``error``/``timeout`` describe execution;
#: ``hit``/``miss`` describe cache lookups; ``cached`` marks a warm
#: experiment span hydrated from the result cache.
SPAN_STATUSES = ("ok", "error", "timeout", "hit", "miss", "cached", "running")


class Span:
    """One node of a span tree: name, kind, status, attributes, children.

    ``seconds`` (wall-clock duration) is in-memory-only by default:
    :meth:`to_dict` omits it unless asked, so serialized trees stay
    deterministic across worker counts and machines.
    """

    __slots__ = ("name", "kind", "status", "attrs", "children", "seconds", "_started")

    def __init__(
        self,
        name: str,
        kind: str,
        status: str = "running",
        attrs: Optional[Dict[str, object]] = None,
    ) -> None:
        if kind not in SPAN_KINDS:
            raise ConfigError(f"unknown span kind {kind!r}, want one of {SPAN_KINDS}")
        self.name = name
        self.kind = kind
        self.status = status
        self.attrs: Dict[str, object] = dict(attrs) if attrs else {}
        self.children: List["Span"] = []
        self.seconds: Optional[float] = None
        self._started: Optional[float] = None

    # -- structure ----------------------------------------------------------

    def child(self, name: str, kind: str, **attrs: object) -> "Span":
        """Create, append, and return a child span (timed from now)."""
        span = Span(name, kind, attrs=attrs or None)
        span._started = time.perf_counter()
        self.children.append(span)
        return span

    def finish(self, status: str = "ok") -> "Span":
        if status not in SPAN_STATUSES:
            raise ConfigError(
                f"unknown span status {status!r}, want one of {SPAN_STATUSES}"
            )
        self.status = status
        if self._started is not None and self.seconds is None:
            self.seconds = time.perf_counter() - self._started
        return self

    def walk(self):
        """Yield this span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, kind: str) -> List["Span"]:
        """Every span of ``kind`` in this subtree, depth-first order."""
        return [s for s in self.walk() if s.kind == kind]

    # -- serialization ------------------------------------------------------

    def to_dict(self, include_timing: bool = False) -> dict:
        """Picklable/JSON form.  Timing is opt-in (see module doc)."""
        out: dict = {"name": self.name, "kind": self.kind, "status": self.status}
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        if include_timing and self.seconds is not None:
            out["seconds"] = self.seconds
        if self.children:
            out["children"] = [c.to_dict(include_timing) for c in self.children]
        return out

    @classmethod
    def from_dict(cls, doc: dict) -> "Span":
        span = cls(
            doc["name"],
            doc["kind"],
            status=doc.get("status", "ok"),
            attrs=doc.get("attrs"),
        )
        span.seconds = doc.get("seconds")
        span.children = [cls.from_dict(c) for c in doc.get("children", ())]
        return span

    def render(self, indent: int = 0) -> str:
        """Human-readable indented tree (timing shown when present)."""
        attrs = " ".join(f"{k}={v}" for k, v in sorted(self.attrs.items()))
        secs = f" {self.seconds * 1e3:.1f}ms" if self.seconds is not None else ""
        line = f"{'  ' * indent}{self.name} [{self.kind}/{self.status}]"
        if attrs:
            line += f" {attrs}"
        line += secs
        lines = [line]
        for child in self.children:
            lines.append(child.render(indent + 1))
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debug cosmetic
        return (
            f"Span({self.name!r}, {self.kind!r}, {self.status!r}, "
            f"children={len(self.children)})"
        )


class _NullSpan(Span):
    """Shared do-nothing span returned by a disabled recorder.

    Every structural method returns ``self`` (or the shared instance), so
    instrumented code needs no ``if enabled`` branches and a spans-off
    run allocates nothing per task.
    """

    __slots__ = ()

    def __init__(self) -> None:
        super().__init__("null", "campaign", status="ok")

    def child(self, name: str, kind: str, **attrs: object) -> "Span":
        return self

    def finish(self, status: str = "ok") -> "Span":
        return self

    def to_dict(self, include_timing: bool = False) -> dict:
        return {}


class SpanRecorder:
    """Builds span trees; disabled instances are zero-cost no-ops.

    Usage in the campaign worker::

        rec = SpanRecorder()                       # or NULL_RECORDER
        shard = rec.start("shard[2]", "shard", experiment="fig3", shard=2)
        attempt = shard.child("attempt[1]", "attempt", attempt=1)
        ...
        attempt.finish("ok"); shard.finish("ok")
        payload = [r.to_dict() for r in rec.roots]  # picklable, deterministic
    """

    __slots__ = ("enabled", "roots")

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.roots: List[Span] = []

    def start(self, name: str, kind: str, **attrs: object) -> Span:
        """Open a root-level span (timed; finish() stamps ``seconds``)."""
        if not self.enabled:
            return NULL_SPAN
        span = Span(name, kind, attrs=attrs or None)
        span._started = time.perf_counter()
        self.roots.append(span)
        return span

    def to_dicts(self, include_timing: bool = False) -> List[dict]:
        if not self.enabled:
            return []
        return [root.to_dict(include_timing) for root in self.roots]


#: Shared no-op span/recorder for the spans-off fast path.
NULL_SPAN = _NullSpan()
NULL_RECORDER = SpanRecorder(enabled=False)


def merge_span_trees(
    name: str, kind: str, children: List[dict], status: str = "ok"
) -> dict:
    """Wrap already-serialized child trees under one parent node.

    The caller is responsible for passing ``children`` in deterministic
    order (the campaign runner sorts by experiment id and shard index);
    this helper only builds the enclosing node, keeping the serialized
    shape identical to :meth:`Span.to_dict`.
    """
    out: dict = {"name": name, "kind": kind, "status": status}
    if children:
        out["children"] = children
    return out


def strip_timing(doc: dict) -> dict:
    """A copy of a serialized span tree with every wall-clock field removed.

    Belt-and-braces for trees serialized with ``include_timing=True``
    that are about to be cached or digested.
    """
    out = {k: v for k, v in doc.items() if k != "seconds"}
    if "children" in out:
        out["children"] = [strip_timing(c) for c in out["children"]]
    return out
