"""Cycle-stamped structured event tracing.

The simulator emits *typed* events into an :class:`EventTrace` — a
fixed-capacity ring buffer, so tracing a million-instruction run keeps the
most recent window instead of exhausting memory.  Each event is stored as
a compact ``(cycle, kind, data-tuple)`` record; the per-kind field names
live in :data:`EVENT_SCHEMAS` and the :class:`TraceEvent` view zips them
back together for rendering and the JSONL sink.

Trace *levels* bound the hot-path cost (the acceptance bar is <15%
wall-clock overhead on a default core run):

* ``"squash"`` — only speculation events: spec-delta, squash begin/end,
  cache install/evict/restore;
* ``"commit"`` (default) — plus one ``inst.commit`` event per committed
  instruction carrying its dispatch/start/complete cycles;
* ``"full"`` — plus separate ``inst.dispatch``/``inst.issue``/
  ``inst.complete`` events and per-access ``cache.hit``/``cache.miss``
  probes.

The JSONL sink (:meth:`EventTrace.to_jsonl`) writes one
``{"cycle": …, "kind": …, <fields>}`` object per line — the format
``docs/observability.md`` documents and ``tools/trace.py`` renders from.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Dict, Iterator, Optional, Tuple

from ..common.errors import ConfigError

#: Field names per event kind, in the order they appear in the data tuple.
EVENT_SCHEMAS: Dict[str, Tuple[str, ...]] = {
    # pipeline
    "inst.dispatch": ("index", "pc"),
    "inst.issue": ("index", "pc"),
    "inst.complete": ("index", "pc", "level"),
    "inst.commit": ("index", "pc", "dispatch", "start", "complete", "level"),
    # caches
    "cache.hit": ("addr", "level"),
    "cache.miss": ("addr", "level"),
    "cache.install": ("addr", "level", "speculative", "epoch", "victim"),
    "cache.evict": ("addr", "level", "dirty", "was_speculative"),
    "cache.restore": ("addr", "way"),
    # speculation / defense
    "spec.delta": (
        "epoch",
        "installs_l1",
        "installs_l2",
        "evictions_l1",
        "evictions_l2",
        "inflight",
    ),
    "squash.begin": (
        "pc",
        "resolve",
        "wrong_path_executed",
        "transient_loads",
        "inflight",
    ),
    "squash.end": (
        "pc",
        "fetch_resume",
        "stall",
        "t3",
        "t4",
        "t5",
        "dummy",
        "padding",
        "invalidated_l1",
        "invalidated_l2",
        "restored_l1",
    ),
}

#: Trace verbosity levels, ordered.
LEVELS = ("squash", "commit", "full")


class TraceEvent:
    """Read view of one ring-buffer record."""

    __slots__ = ("cycle", "kind", "data")

    def __init__(self, cycle: int, kind: str, data: tuple) -> None:
        self.cycle = cycle
        self.kind = kind
        self.data = data

    def field(self, name: str):
        schema = EVENT_SCHEMAS[self.kind]
        try:
            return self.data[schema.index(name)]
        except ValueError:
            raise ConfigError(f"event kind {self.kind!r} has no field {name!r}") from None

    def to_dict(self) -> dict:
        out = {"cycle": self.cycle, "kind": self.kind}
        schema = EVENT_SCHEMAS.get(self.kind)
        if schema is None:
            out["data"] = list(self.data)
        else:
            out.update(zip(schema, self.data))
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug cosmetic
        fields = ", ".join(f"{k}={v!r}" for k, v in self.to_dict().items())
        return f"TraceEvent({fields})"


class EventTrace:
    """Ring-buffered, cycle-stamped event log with an optional JSONL sink."""

    def __init__(
        self,
        capacity: int = 65536,
        level: str = "commit",
        jsonl_path: Optional[str] = None,
    ) -> None:
        if capacity < 1:
            raise ConfigError("trace capacity must be >= 1")
        if level not in LEVELS:
            raise ConfigError(f"unknown trace level {level!r}, want one of {LEVELS}")
        self.capacity = capacity
        self.level = level
        self.jsonl_path = jsonl_path
        #: Fast hot-path flags (checked by the core per instruction).
        self.commit_events = level in ("commit", "full")
        self.full_events = level == "full"
        self._buf: deque = deque(maxlen=capacity)
        self.emitted = 0

    # -- emission (hot path) ------------------------------------------------

    def emit(self, cycle: int, kind: str, data: tuple = ()) -> None:
        """Append one event record. ``data`` follows EVENT_SCHEMAS[kind]."""
        self._buf.append((cycle, kind, data))
        self.emitted += 1

    # -- inspection ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._buf)

    @property
    def dropped(self) -> int:
        """Events pushed out of the ring by later emissions."""
        return self.emitted - len(self._buf)

    def events(self, kind: Optional[str] = None) -> Iterator[TraceEvent]:
        """Events in emission order, optionally filtered by ``kind``.

        ``kind`` may be exact (``"inst.commit"``) or a dotted prefix
        (``"cache"`` matches every ``cache.*`` event).
        """
        if kind is not None and kind not in EVENT_SCHEMAS:
            prefix = kind + "."
            for cycle, k, data in list(self._buf):
                if k.startswith(prefix):
                    yield TraceEvent(cycle, k, data)
            return
        for cycle, k, data in list(self._buf):
            if kind is None or k == kind:
                yield TraceEvent(cycle, k, data)

    def last(self, kind: Optional[str] = None) -> Optional[TraceEvent]:
        for cycle, k, data in reversed(self._buf):
            if kind is None or k == kind:
                return TraceEvent(cycle, k, data)
        return None

    def counts(self) -> Dict[str, int]:
        """Buffered event count per kind."""
        out: Dict[str, int] = {}
        for _, kind, _ in self._buf:
            out[kind] = out.get(kind, 0) + 1
        return out

    def clear(self) -> None:
        self._buf.clear()
        self.emitted = 0

    # -- JSONL sink ---------------------------------------------------------

    def to_jsonl(self, path: Optional[str] = None) -> str:
        """Write the buffered events as JSON Lines; return the path used.

        A ring buffer that wrapped is a *truncated* record: when events
        were dropped, the first line is a ``{"meta": "trace", ...}``
        header carrying the drop count, so downstream analysis can tell
        "quiet run" from "overflowed buffer".  Untruncated dumps stay
        header-free (and byte-stable with older readers).
        """
        target = path or self.jsonl_path
        if target is None:
            raise ConfigError("no JSONL path given (pass path= or jsonl_path=)")
        with open(target, "w") as fh:
            if self.dropped:
                header = {
                    "meta": "trace",
                    "dropped": self.dropped,
                    "emitted": self.emitted,
                    "buffered": len(self),
                }
                fh.write(json.dumps(header) + "\n")
            for event in self.events():
                fh.write(json.dumps(event.to_dict()) + "\n")
        return target


def read_jsonl(path: str) -> "list[dict]":
    """Load a JSONL trace dump back into event dicts (analysis helper)."""
    out = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                out.append(json.loads(line))
    return out
