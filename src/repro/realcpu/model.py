"""Analytic real-processor model for the noise-insensitivity experiment.

Paper Fig. 13 repeats the branch-resolution measurement of Fig. 2 on a real
Intel Core i7-8550U and establishes three *shape* claims under real system
noise:

1. resolution time grows linearly with the condition complexity N,
2. it is flat in the number of in-branch loads,
3. it is insensitive to the secret bit,

— all despite visibly larger jitter than gem5. Lacking the hardware, we
model a Kaby-Lake-R-like machine analytically: a flushed bound travels to
DRAM (~70 ns at 4 GHz turbo ≈ 280 cycles per dependent access, observed
through ``rdtscp`` with its own overhead), and system noise contributes
both Gaussian jitter and occasional large spikes. The three claims hold by
construction *of the machine being modelled* — the condition chain alone
determines when the branch resolves; in-branch loads execute concurrently —
and the model keeps them measurable under noise, which is what the figure
demonstrates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..common.errors import ConfigError
from ..common.rng import derive_rng


@dataclass(frozen=True)
class RealCpuModel:
    """i7-8550U-like latency model with a stochastic noise process."""

    frequency_hz: float = 4.0e9  # single-core turbo
    #: Cycles per dependent main-memory access in the condition chain.
    mem_access_cycles: int = 280
    #: Fixed overhead: rdtscp fencing, compare, branch, pipeline redirect.
    fixed_overhead_cycles: int = 55
    #: Gaussian noise per measurement (scheduler, prefetchers, DVFS).
    noise_std: float = 18.0
    #: Probability of a large interference spike (interrupt, SMM, corunner).
    spike_prob: float = 0.02
    spike_min: int = 100
    spike_max: int = 600

    def __post_init__(self) -> None:
        if self.mem_access_cycles <= 0 or self.fixed_overhead_cycles < 0:
            raise ConfigError("latencies must be positive")
        if self.noise_std < 0 or not 0 <= self.spike_prob <= 1:
            raise ConfigError("invalid noise parameters")
        if self.spike_min > self.spike_max:
            raise ConfigError("spike_min must be <= spike_max")

    def resolution_time(
        self,
        condition_accesses: int,
        n_loads: int,
        secret: int,
        rng: np.random.Generator,
    ) -> int:
        """One measured branch-resolution time (cycles).

        ``n_loads`` and ``secret`` are accepted — and deliberately unused in
        the mean — because the modelled machine resolves the branch from the
        condition chain alone; they only matter through zero-mean noise.
        """
        if condition_accesses < 1:
            raise ConfigError("condition_accesses must be >= 1")
        if n_loads < 0:
            raise ConfigError("n_loads must be non-negative")
        del n_loads, secret  # flat in both: the Fig. 13 claim
        mean = self.fixed_overhead_cycles + condition_accesses * self.mem_access_cycles
        sample = mean + rng.normal(0, self.noise_std)
        if rng.random() < self.spike_prob:
            sample += rng.integers(self.spike_min, self.spike_max + 1)
        return max(1, int(round(sample)))

    def measure(
        self,
        condition_accesses: int,
        n_loads: int,
        secret: int,
        samples: int,
        seed: int = 0,
    ) -> List[int]:
        """A batch of measurements from a derived deterministic stream."""
        rng = derive_rng(
            seed, f"realcpu-N{condition_accesses}-l{n_loads}-s{secret}"
        )
        return [
            self.resolution_time(condition_accesses, n_loads, secret, rng)
            for _ in range(samples)
        ]
