"""Analytic real-CPU (i7-8550U-like) model for the Fig. 13 experiment."""

from .model import RealCpuModel

__all__ = ["RealCpuModel"]
