"""Acceptance criteria: the static analyzer vs. the rest of the repo.

These tests enforce the cross-validation contract from
docs/static-analysis.md — 100% of attack gadgets flagged, zero findings
on safe workloads, and static/dynamic agreement on the fig3 channel.
"""

from repro.analysis.specct import (
    analyze_program,
    cross_validate,
    fig3_sign_checks,
    gadget_cases,
    workload_cases,
)


class TestGadgetsAllFlagged:
    def test_every_gadget_flagged_full_sweep(self):
        cases = list(gadget_cases(quick=False))
        assert len(cases) >= 16  # n_loads 1..8 x condition_accesses {1,2} + spectre
        for name, program, ranges in cases:
            report = analyze_program(program, ranges)
            assert not report.clean, f"{name}: gadget not flagged"
            transient_loads = [
                f
                for f in report.transient_findings()
                if f.kind == "tainted_load_addr"
            ]
            assert transient_loads, f"{name}: no transient tainted load"
            assert report.cache_delta_bound > 0, (
                f"{name}: no secret-dependent cache delta"
            )


class TestWorkloadsAllClean:
    def test_every_safe_workload_clean(self):
        cases = list(workload_cases(quick=False))
        assert len(cases) >= 4  # one per SPEC-profile
        for name, program, ranges in cases:
            report = analyze_program(program, ranges)
            assert report.clean, (
                f"{name}: false positive(s)\n{report.render_text()}"
            )


class TestFig3SignAgreement:
    def test_static_sign_matches_dynamic_timing(self):
        checks = fig3_sign_checks((1,), seed=0)
        assert checks
        for check in checks:
            assert check.ok, (
                f"n_loads={check.n_loads}: static bound "
                f"{check.static_delta_bound} vs dynamic delta "
                f"{check.dynamic_timing_delta} cycles disagree on sign"
            )
            assert check.static_delta_bound > 0
            assert check.dynamic_timing_delta > 0

    def test_static_bound_monotone_in_n_loads(self):
        bounds = {}
        for name, program, ranges in gadget_cases(quick=False):
            if name.startswith("unxpec-round[") and ",N=1," in name:
                n = int(name.split("n=")[1].split(",")[0])
                bounds[n] = analyze_program(program, ranges).cache_delta_bound
        assert bounds[1] < bounds[4] < bounds[8]


class TestCrossValidateSuite:
    def test_quick_suite_passes_end_to_end(self):
        report = cross_validate(quick=True, load_counts=(1,))
        assert report.ok, report.render_text()
        doc = report.to_dict()
        assert doc["ok"] is True
        assert all(c["ok"] for c in doc["cases"])
