"""Tests for repro.common.rng — deterministic seeded streams."""

import numpy as np

from repro.common.rng import DEFAULT_SEED, derive_rng, derive_seed, make_rng


class TestMakeRng:
    def test_same_seed_same_stream(self):
        a = make_rng(7)
        b = make_rng(7)
        assert a.integers(1 << 30) == b.integers(1 << 30)

    def test_different_seed_different_stream(self):
        draws_a = make_rng(1).integers(1 << 30, size=8)
        draws_b = make_rng(2).integers(1 << 30, size=8)
        assert not np.array_equal(draws_a, draws_b)

    def test_default_seed_exists(self):
        assert isinstance(DEFAULT_SEED, int)
        make_rng()  # does not raise


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(5, "x") == derive_seed(5, "x")

    def test_tag_changes_seed(self):
        assert derive_seed(5, "a") != derive_seed(5, "b")

    def test_parent_changes_seed(self):
        assert derive_seed(5, "a") != derive_seed(6, "a")

    def test_non_negative_63_bit(self):
        for tag in ("l1", "l2", "noise", "secret"):
            s = derive_seed(123456789, tag)
            assert 0 <= s < (1 << 63)


class TestDeriveRng:
    def test_independent_streams(self):
        a = derive_rng(0, "one").integers(1 << 30, size=16)
        b = derive_rng(0, "two").integers(1 << 30, size=16)
        assert not np.array_equal(a, b)

    def test_reproducible(self):
        a = derive_rng(9, "tag").normal(size=4)
        b = derive_rng(9, "tag").normal(size=4)
        assert np.allclose(a, b)
