"""Unit tests for :mod:`repro.campaign.events` — the lifecycle stream."""

import io
import json

from repro.campaign.events import (
    EVENT_ORDER,
    NONDETERMINISTIC_FIELDS,
    CampaignEventLog,
    canonical_events,
    read_events,
)


class TestEmit:
    def test_events_accumulate_with_seq_and_t(self):
        log = CampaignEventLog()
        log.emit("campaign.start", experiments=2)
        log.emit("task.submit", experiment="fig3", shard=0)
        assert [e["seq"] for e in log.events] == [0, 1]
        assert all(isinstance(e["t"], float) for e in log.events)
        assert log.events[1]["experiment"] == "fig3"

    def test_stream_sink_gets_flushed_jsonl(self):
        sink = io.StringIO()
        log = CampaignEventLog(stream=sink)
        log.emit("campaign.start", experiments=1)
        log.emit("campaign.done", failed=0)
        lines = sink.getvalue().strip().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0])["event"] == "campaign.start"

    def test_path_sink_round_trips_via_read_events(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        with CampaignEventLog(path=path) as log:
            log.emit("campaign.start", experiments=1)
            log.emit("task.done", experiment="fig3", shard=1, seconds=0.5)
        assert read_events(path) == log.events

    def test_read_events_tolerates_truncated_tail(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text(
            json.dumps({"seq": 0, "event": "campaign.start"})
            + "\n"
            + '{"seq": 1, "event": "task.su'  # writer mid-record
        )
        events = read_events(str(path))
        assert len(events) == 1 and events[0]["event"] == "campaign.start"


class TestCanonicalView:
    def test_strips_every_nondeterministic_field(self):
        log = CampaignEventLog()
        log.emit("campaign.start", experiments=1, jobs=8, quick=True, seed=0)
        log.emit("task.done", experiment="fig3", shard=0, seconds=0.4, attempts=1)
        for event in log.canonical():
            for field in NONDETERMINISTIC_FIELDS:
                assert field not in event

    def test_sorted_by_experiment_shard_rank_attempt(self):
        events = [
            {"event": "campaign.done", "t": 9.0, "seq": 5},
            {"event": "task.done", "experiment": "fig9", "shard": 0, "seq": 4},
            {"event": "task.done", "experiment": "fig3", "shard": 1, "seq": 3},
            {"event": "task.submit", "experiment": "fig3", "shard": 1, "seq": 1},
            {"event": "task.done", "experiment": "fig3", "shard": 0, "seq": 2},
            {"event": "campaign.start", "seq": 0},
        ]
        canon = canonical_events(events)
        assert [
            (e.get("experiment"), e.get("shard"), e["event"]) for e in canon
        ] == [
            (None, None, "campaign.start"),
            (None, None, "campaign.done"),
            ("fig3", 0, "task.done"),
            ("fig3", 1, "task.submit"),
            ("fig3", 1, "task.done"),
            ("fig9", 0, "task.done"),
        ]

    def test_shard_zero_sorts_after_whole_run_tasks(self):
        # shard 0 must not be coerced to the "no shard" bucket (-1).
        events = [
            {"event": "task.done", "experiment": "a", "shard": 0},
            {"event": "task.done", "experiment": "a"},
        ]
        canon = canonical_events(events)
        assert "shard" not in canon[0] and canon[1]["shard"] == 0

    def test_retry_attempts_order_within_a_shard(self):
        events = [
            {"event": "task.retry", "experiment": "a", "shard": 0, "attempt": 2},
            {"event": "task.retry", "experiment": "a", "shard": 0, "attempt": 1},
        ]
        assert [e["attempt"] for e in canonical_events(events)] == [1, 2]

    def test_every_runner_event_kind_is_ranked(self):
        # New event kinds must pick a canonical rank explicitly.
        assert set(EVENT_ORDER) == {
            "campaign.start",
            "task.submit",
            "task.cache_hit",
            "task.start",
            "task.retry",
            "task.done",
            "task.failed",
            "experiment.done",
            "campaign.done",
        }
