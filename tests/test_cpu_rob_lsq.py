"""Tests for repro.cpu.rob and repro.cpu.lsq."""

import pytest

from repro.cpu.lsq import InflightMemTracker
from repro.cpu.rob import RobModel


class TestRobModel:
    def test_dispatch_width_limit(self):
        rob = RobModel(entries=192, dispatch_width=4)
        cycles = [rob.next_dispatch_cycle(0) for _ in range(8)]
        for c in cycles:
            rob.record_commit(c)
        assert cycles[:4] == [0, 0, 0, 0]
        assert cycles[4:] == [1, 1, 1, 1]

    def test_earliest_respected(self):
        rob = RobModel(entries=192, dispatch_width=4)
        assert rob.next_dispatch_cycle(100) == 100

    def test_dispatch_monotone(self):
        rob = RobModel(entries=192, dispatch_width=2)
        last = -1
        for i in range(20):
            c = rob.next_dispatch_cycle(0)
            rob.record_commit(c)
            assert c >= last
            last = c

    def test_rob_full_backpressure(self):
        rob = RobModel(entries=4, dispatch_width=4)
        # First instruction completes very late; the 5th must wait for it.
        c0 = rob.next_dispatch_cycle(0)
        rob.record_commit(1000)
        for _ in range(3):
            rob.record_commit(1000)
            rob.next_dispatch_cycle(0)
        c4 = rob.next_dispatch_cycle(0)
        assert c4 >= 1000
        assert rob.stats.rob_stall_cycles > 0

    def test_commit_in_order(self):
        rob = RobModel(entries=8, dispatch_width=4)
        rob.next_dispatch_cycle(0)
        assert rob.record_commit(50) == 50
        rob.next_dispatch_cycle(0)
        # An earlier-completing younger instruction commits no earlier
        # than its elder.
        assert rob.record_commit(10) == 50

    def test_snapshot_restore(self):
        rob = RobModel(entries=8, dispatch_width=2)
        for _ in range(5):
            rob.record_commit(rob.next_dispatch_cycle(0) + 3)
        snap = rob.snapshot()
        before = rob.next_dispatch_cycle(0)
        rob.record_commit(before)
        rob.restore(snap)
        assert rob.next_dispatch_cycle(0) == before

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            RobModel(entries=1, dispatch_width=1)
        with pytest.raises(ValueError):
            RobModel(entries=8, dispatch_width=0)


class TestInflightMemTracker:
    def test_fence_barrier_starts_zero(self):
        t = InflightMemTracker()
        assert t.fence_barrier == 0

    def test_drain_time_tracks_max(self):
        t = InflightMemTracker()
        t.record_load(100)
        t.record_store(50)
        assert t.drain_time() == 100
        assert t.drain_time(at_least=200) == 200

    def test_fence_sets_barrier(self):
        t = InflightMemTracker()
        t.record_load(100)
        t.record_fence(t.drain_time())
        assert t.fence_barrier == 100

    def test_t4_wait_computation(self):
        # The CleanupSpec T4 quantity: how long past the squash the latest
        # older memory op is still in flight.
        t = InflightMemTracker()
        t.record_load(150)
        assert t.inflight_beyond(100) == 50
        assert t.inflight_beyond(200) == 0

    def test_fence_zeroes_t4(self):
        # unXpec's trick: fence, then measure — nothing older in flight.
        t = InflightMemTracker()
        t.record_load(150)
        barrier = t.drain_time()
        t.record_fence(barrier)
        # Later ops start at >= barrier; at any squash >= barrier the
        # older-op wait is zero.
        assert t.inflight_beyond(barrier) == 0

    def test_stats(self):
        t = InflightMemTracker()
        t.record_load(1)
        t.record_store(2)
        t.record_flush(3)
        t.record_fence(3)
        assert (t.stats.loads, t.stats.stores, t.stats.flushes, t.stats.fences) == (
            1,
            1,
            1,
            1,
        )

    def test_snapshot_restore(self):
        t = InflightMemTracker()
        t.record_load(100)
        snap = t.snapshot()
        t.record_load(500)
        t.restore(snap)
        assert t.drain_time() == 100
