"""Unit tests for :mod:`repro.obs.spans` — the campaign span tree."""

import json

import pytest

from repro.common.errors import ConfigError
from repro.obs.spans import (
    NULL_RECORDER,
    NULL_SPAN,
    Span,
    SpanRecorder,
    merge_span_trees,
    strip_timing,
)


def build_tree():
    rec = SpanRecorder()
    shard = rec.start("shard[0]", "shard", experiment="fig3", shard=0)
    attempt = shard.child("attempt[1]", "attempt", attempt=1)
    attempt.finish("error")
    shard.child("retry[2]", "retry", attempt=2, backoff=0.1).finish("ok")
    shard.child("attempt[2]", "attempt", attempt=2).finish("ok")
    shard.finish("ok")
    return rec, shard


class TestSpan:
    def test_child_builds_nested_structure(self):
        _, shard = build_tree()
        assert [c.name for c in shard.children] == [
            "attempt[1]",
            "retry[2]",
            "attempt[2]",
        ]
        assert shard.attrs == {"experiment": "fig3", "shard": 0}

    def test_finish_stamps_seconds_in_memory_only(self):
        _, shard = build_tree()
        for span in shard.walk():
            assert span.seconds is not None and span.seconds >= 0.0
        blob = json.dumps(shard.to_dict())
        assert "seconds" not in blob

    def test_to_dict_timing_is_opt_in(self):
        _, shard = build_tree()
        timed = shard.to_dict(include_timing=True)
        assert timed["seconds"] == shard.seconds
        assert all("seconds" in c for c in timed["children"])

    def test_round_trip(self):
        _, shard = build_tree()
        doc = shard.to_dict()
        assert Span.from_dict(doc).to_dict() == doc

    def test_walk_and_find(self):
        _, shard = build_tree()
        assert len(list(shard.walk())) == 4
        assert [s.status for s in shard.find("attempt")] == ["error", "ok"]
        assert shard.find("timeout") == []

    def test_render_mentions_kind_status_attrs(self):
        _, shard = build_tree()
        text = shard.render()
        assert "shard[0] [shard/ok]" in text
        assert "attempt[1] [attempt/error]" in text
        assert "experiment=fig3" in text

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError):
            Span("x", "nonsense")

    def test_unknown_status_rejected(self):
        with pytest.raises(ConfigError):
            Span("x", "shard").finish("nonsense")


class TestNullPath:
    def test_disabled_recorder_returns_shared_null(self):
        rec = SpanRecorder(enabled=False)
        span = rec.start("shard[0]", "shard")
        assert span is NULL_SPAN
        assert span.child("a", "attempt") is NULL_SPAN
        assert span.finish("error") is NULL_SPAN
        assert rec.to_dicts() == []
        assert rec.roots == []

    def test_null_span_serializes_empty(self):
        assert NULL_SPAN.to_dict() == {}
        assert NULL_RECORDER.to_dicts() == []


class TestHelpers:
    def test_merge_span_trees_wraps_children(self):
        _, shard = build_tree()
        doc = merge_span_trees(
            "fig3", "experiment", [shard.to_dict()], status="ok"
        )
        assert doc["kind"] == "experiment"
        assert doc["children"][0]["name"] == "shard[0]"
        # Shape-compatible with Span serialization: it parses back.
        assert Span.from_dict(doc).to_dict() == doc

    def test_merge_span_trees_childless_omits_key(self):
        assert "children" not in merge_span_trees("c", "campaign", [])

    def test_strip_timing_removes_every_seconds_field(self):
        _, shard = build_tree()
        timed = shard.to_dict(include_timing=True)
        stripped = strip_timing(timed)
        assert stripped == shard.to_dict()
