"""Tests for repro.defense.delay_on_miss — the Invisible-family baseline."""

from repro.attack import SpectreV1Attack, UnxpecAttack
from repro.cache import CacheHierarchy
from repro.cpu import Core
from repro.defense import CleanupSpec, DelayOnMiss, UnsafeBaseline
from repro.isa import ProgramBuilder
from repro.workloads import get_profile, synthesize


def build(fn, name="t"):
    b = ProgramBuilder(name)
    fn(b)
    b.halt()
    return b.build()


class TestInvisibility:
    def test_wrong_path_miss_never_installs(self):
        h = CacheHierarchy(seed=0)
        core = Core(h, DelayOnMiss(h))

        def body(b):
            b.li("r1", 0x8000)
            b.li("r2", 3)
            b.li("r4", 0x9000)
            b.flush("r4", 0)
            b.fence()
            b.load("r5", "r4", 0)  # slow bound: wide window
            b.branch("ge", "r2", "r5", "skip")
            b.load("r6", "r1", 0)  # transient miss -> must NOT install
            b.label("skip")

        res = core.run(build(body))
        assert res.mispredictions == 1
        assert not h.in_l1(0x8000)
        assert not h.in_l2(0x8000)
        assert res.last_squash().outcome.stall_cycles == 0

    def test_wrong_path_hit_proceeds(self):
        h = CacheHierarchy(seed=0)
        core = Core(h, DelayOnMiss(h))

        def body(b):
            b.li("r1", 0x8000)
            b.load("r0", "r1", 0)  # warm the line architecturally
            b.li("r2", 3)
            b.li("r4", 0x9000)
            b.flush("r4", 0)
            b.fence()
            b.load("r5", "r4", 0)
            b.branch("ge", "r2", "r5", "skip")
            b.load("r6", "r1", 0)  # transient HIT: allowed
            b.label("skip")

        res = core.run(build(body))
        assert res.last_squash().transient_loads >= 1
        assert h.in_l1(0x8000)  # it was already there


class TestAttacksBlocked:
    def test_spectre_blocked(self):
        attack = SpectreV1Attack(
            defense_factory=lambda h: DelayOnMiss(h), alphabet=8, seed=5
        )
        for secret in (0, 3, 7):
            assert attack.run(secret).hot_values == []

    def test_unxpec_blocked(self):
        attack = UnxpecAttack(defense_factory=lambda h: DelayOnMiss(h), seed=3)
        attack.prepare()
        assert attack.sample(1).latency == attack.sample(0).latency


class TestCommonCaseCost:
    def test_correct_path_speculative_miss_is_delayed(self):
        """A miss under an unresolved branch waits for resolution."""

        def run(defense_cls):
            h = CacheHierarchy(seed=0)
            core = Core(h, defense_cls(h))

            def body(b):
                b.li("r1", 0x8000)
                b.li("r4", 0x9000)
                b.flush("r4", 0)
                b.fence()
                b.load("r5", "r4", 0)  # slow condition load
                b.li("r2", 3)
                # Branch is correctly predicted not-taken but resolves late.
                b.branch("lt", "r2", "r5", "skip")
                b.label("skip")
                b.load("r6", "r1", 0)  # issued while the branch is unresolved
                b.fence()

            return core.run(build(body)).cycles

        assert run(DelayOnMiss) > run(UnsafeBaseline)

    def test_costs_more_than_cleanupspec_on_workloads(self):
        workload = synthesize(get_profile("gcc_r"), instructions=4000, seed=1)

        def run(mk):
            h = CacheHierarchy(seed=9)
            return Core(h, mk(h)).run(workload.program, max_instructions=20_000_000)

        base = run(lambda h: UnsafeBaseline(h)).cycles
        invisible = run(lambda h: DelayOnMiss(h)).cycles
        undo = run(lambda h: CleanupSpec(h)).cycles
        assert invisible > undo > base  # the paper's cost ordering
