"""Cross-backend differential-testing harness (scalar vs. batched)."""
