"""Replay one workload under both execution backends and diff every round.

A *case* is a small JSON-serializable dict describing a deterministic
multi-round workload. Two modes:

* ``"attack"`` — a full :class:`~repro.attack.unxpec.UnxpecAttack` driven
  through a secret-bit sequence (what the campaign engine actually runs);
* ``"program"`` — a raw instruction list executed round after round on a
  bare core with a configurable cache/MSHR geometry, optionally with
  per-round out-of-band DRAM pokes (what the Hypothesis property
  generates).

:func:`run_case` executes a case under one backend and captures a *round
record* per round: latency/cycles/instructions, final registers, the
squash trace, the squash-level event-trace tail, the registry snapshot,
and full machine + stats fingerprints (see :mod:`repro.cpu.batched`).
:func:`first_divergence` diffs two record lists down to the first
(round, field) mismatch, and :func:`divergence_report` shrinks a mismatch
to that single round, re-running the scalar side with a per-instruction
timeline and showing the batched side's execution mode and event log —
the artifact CI uploads when a differential test fails.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Optional, Tuple

from repro.attack import GadgetParams, UnxpecAttack
from repro.cache.hierarchy import CacheHierarchy
from repro.common.config import CacheGeometry, CoreConfig, SystemConfig
from repro.cpu.backend import use_backend
from repro.cpu.batched import machine_fingerprint, stats_fingerprint
from repro.cpu.noise import campaign_noise
from repro.defense.cachesquash import CacheSquash
from repro.defense.cleanupspec import CleanupSpec
from repro.defense.constant_time import ConstantTimeRollback
from repro.defense.delay_on_miss import DelayOnMiss
from repro.defense.safespec import SafeSpec
from repro.defense.unsafe import UnsafeBaseline
from repro.isa import ProgramBuilder
from repro.obs import Observability, set_default_obs

#: Directory of checked-in regression cases (every past divergence and the
#: golden-round configurations live here).
CORPUS_DIR = Path(__file__).parent / "corpus"

#: Fields of a round record, in the order they are compared.
ROUND_FIELDS = (
    "latency",
    "cycles",
    "instructions",
    "registers",
    "squashes",
    "trace",
    "registry",
    "machine",
    "stats",
)

_DEFENSES = {
    "cleanup": lambda h: CleanupSpec(h),
    "unsafe": lambda h: UnsafeBaseline(h),
    "delay": lambda h: DelayOnMiss(h),
    "constant": lambda h: ConstantTimeRollback(h, constant_cycles=40),
    "safespec": lambda h: SafeSpec(h),
    "cachesquash": lambda h: CacheSquash(h),
}


def build_program(specs) -> object:
    """Assemble instruction specs (forward branches only, so programs
    always terminate); shares the encoding of the specct property tests."""
    b = ProgramBuilder("diff-prop")
    for spec in specs:
        op = spec[0]
        if op == "li":
            b.li(spec[1], spec[2])
        elif op == "op":
            b.op(spec[1], spec[2], spec[3], spec[4])
        elif op == "opi":
            b.opi(spec[1], spec[2], spec[3], spec[4])
        elif op == "load":
            b.load(spec[1], spec[2], spec[3])
        elif op == "store":
            b.store(spec[1], spec[2], spec[3])
        elif op == "flush":
            b.flush(spec[1])
        elif op == "branch":
            b.branch(spec[1], spec[2], spec[3], "end")
        elif op == "fence":
            b.fence()
        else:
            b.nop()
    b.label("end")
    b.halt()
    return b.build()


def _squash_key(event) -> tuple:
    outcome = event.outcome
    return (
        event.branch_pc,
        event.resolve_cycle,
        event.squash_cycle,
        event.fetch_resume,
        event.wrong_path_executed,
        event.transient_loads,
        event.inflight_transient,
        outcome.defense,
        outcome.stall_cycles,
        tuple(sorted(outcome.breakdown.items())),
        outcome.invalidated_l1,
        outcome.invalidated_l2,
        outcome.restored_l1,
    )


def _trace_tail(trace, emitted_before: int) -> tuple:
    emitted = trace.emitted - emitted_before
    if emitted <= 0:
        return ()
    buffered = list(trace._buf)
    return tuple(buffered[-emitted:]) if emitted <= len(buffered) else tuple(buffered)


def _round_record(core, obs, result, latency, emitted_before) -> dict:
    return {
        "latency": latency,
        "cycles": result.cycles,
        "instructions": result.instructions,
        "registers": tuple(sorted(result.registers.raw.items())),
        "squashes": tuple(_squash_key(e) for e in result.squashes),
        "trace": _trace_tail(obs.trace, emitted_before),
        "registry": json.dumps(obs.registry.to_dict(), sort_keys=True, default=str),
        "machine": machine_fingerprint(core),
        "stats": stats_fingerprint(core),
        "mode": dict(getattr(core, "last_round_info", ())) or {"mode": "scalar"},
    }


def _system_config(config: Optional[dict]) -> SystemConfig:
    config = config or {}
    line = 64

    def geo(name: str, sets: int, ways: int) -> CacheGeometry:
        return CacheGeometry(
            name=name, size_bytes=sets * ways * line, ways=ways, sets=sets,
            line_size=line,
        )

    return SystemConfig(
        core=CoreConfig(mshr_entries=config.get("mshr_entries", 16)),
        l1d=geo("L1D", config.get("l1_sets", 64), config.get("l1_ways", 8)),
        l2=geo("L2", config.get("l2_sets", 1024), config.get("l2_ways", 16)),
    )


def run_case(case: dict, backend: str, stop_after: Optional[int] = None,
             timeline_round: Optional[int] = None) -> List[dict]:
    """Execute ``case`` under ``backend``; one record per round.

    ``timeline_round`` additionally records a per-instruction timeline for
    that round (stored under ``"timeline"``); on the batched backend this
    forces the round down the scalar path, so it is only used by the
    divergence report, never while comparing.
    """
    obs = Observability(trace_level="squash")
    previous = set_default_obs(obs)
    try:
        with use_backend(backend):
            if case.get("mode", "attack") == "attack":
                rows = _run_attack_case(case, obs, stop_after, timeline_round)
            else:
                rows = _run_program_case(case, obs, stop_after, timeline_round)
    finally:
        set_default_obs(previous)
    return rows


def _capture(core, obs, runner, index, stop_after, timeline_round, rows):
    emitted_before = obs.trace.emitted
    if timeline_round is not None and index == timeline_round:
        core.record_timeline = True
        try:
            latency, result = runner()
        finally:
            core.record_timeline = False
        row = _round_record(core, obs, result, latency, emitted_before)
        row["timeline"] = tuple(str(t) for t in result.timeline)
    else:
        latency, result = runner()
        row = _round_record(core, obs, result, latency, emitted_before)
    rows.append(row)
    return stop_after is not None and len(rows) > stop_after


def _run_attack_case(case, obs, stop_after, timeline_round) -> List[dict]:
    attack = UnxpecAttack(
        params=GadgetParams(n_loads=case.get("n_loads", 1)),
        use_eviction_sets=case.get("use_eviction_sets", False),
        seed=case.get("seed", 0),
        noise=campaign_noise() if case.get("noise") else None,
        defense_factory=_DEFENSES[case.get("defense", "cleanup")],
    )
    attack.prepare()
    rows: List[dict] = []
    for index, bit in enumerate(case["bits"]):
        # UnxpecAttack.sample discards the RunResult; take the same steps
        # it takes so both the sample latency and the raw result are
        # visible to the differ.
        def runner(bit=bit):
            attack.gadget.set_secret(attack.hierarchy.dram, bit)
            result = attack.core.run(attack._round_program)
            sample = attack._extract(bit, result)
            return sample.latency, result

        if _capture(attack.core, obs, runner, index, stop_after,
                    timeline_round, rows):
            break
    return rows


def _run_program_case(case, obs, stop_after, timeline_round) -> List[dict]:
    from repro.cpu.backend import make_core

    program = build_program(case["program"])
    hierarchy = CacheHierarchy(
        config=_system_config(case.get("config")), seed=case.get("seed", 0)
    )
    defense = _DEFENSES[case.get("defense", "cleanup")](hierarchy)
    core = make_core(hierarchy, defense, config=hierarchy.config.core)
    pokes = case.get("pokes", ())
    rows: List[dict] = []
    for index in range(case.get("rounds", 4)):
        if index < len(pokes):
            for addr, value in pokes[index]:
                hierarchy.dram.poke(addr, value)

        def runner():
            result = core.run(program, max_instructions=10_000)
            return result.cycles, result

        if _capture(core, obs, runner, index, stop_after, timeline_round, rows):
            break
    return rows


def first_divergence(scalar_rows, batched_rows) -> Optional[Tuple[int, str]]:
    """First (round, field) where the two backends disagree, else None."""
    for index, (a, b) in enumerate(zip(scalar_rows, batched_rows)):
        for name in ROUND_FIELDS:
            if a[name] != b[name]:
                return index, name
    if len(scalar_rows) != len(batched_rows):
        return min(len(scalar_rows), len(batched_rows)), "rounds"
    return None


def divergence_report(case: dict, scalar_rows, batched_rows) -> str:
    """Shrink a mismatch to its first divergent round, with both backends'
    per-instruction event logs for exactly that round."""
    where = first_divergence(scalar_rows, batched_rows)
    if where is None:
        return "no divergence"
    index, field = where
    lines = [
        f"case {case.get('name', '<anonymous>')!r}: first divergence at "
        f"round {index}, field {field!r}",
        "",
    ]
    a = scalar_rows[index] if index < len(scalar_rows) else None
    b = batched_rows[index] if index < len(batched_rows) else None
    for label, row in (("scalar", a), ("batched", b)):
        if row is None:
            lines.append(f"--- {label}: no round {index} (ended early)")
            continue
        lines.append(f"--- {label} round {index} "
                     f"(mode={row['mode'].get('mode', 'scalar')}):")
        for name in ROUND_FIELDS:
            marker = "  *" if a is not None and b is not None and a[name] != b[name] else "   "
            lines.append(f"{marker} {name} = {_short(row[name])}")
        lines.append("    squash-level events:")
        for cycle, kind, data in row["trace"]:
            lines.append(f"      [{cycle}] {kind} {data}")
    # Per-instruction timeline of the divergent round, re-executed on the
    # always-correct scalar backend (the reference semantics).
    reference = run_case(case, "scalar", stop_after=index, timeline_round=index)
    if reference and "timeline" in reference[-1]:
        lines.append("")
        lines.append(f"--- scalar per-instruction timeline, round {index}:")
        for entry in reference[-1]["timeline"]:
            lines.append(f"    {entry}")
    return "\n".join(lines)


def _short(value, limit: int = 400) -> str:
    text = repr(value)
    return text if len(text) <= limit else text[: limit - 12] + f"...(+{len(text) - limit})"


def compare_case(case: dict, rounds: Optional[int] = None) -> Optional[str]:
    """Run ``case`` under both backends; a divergence report, or None."""
    scalar_rows = run_case(case, "scalar", stop_after=rounds)
    batched_rows = run_case(case, "batched", stop_after=rounds)
    if first_divergence(scalar_rows, batched_rows) is None:
        return None
    return divergence_report(case, scalar_rows, batched_rows)


def load_corpus() -> List[dict]:
    """Checked-in regression cases, sorted by filename for determinism."""
    cases = []
    for path in sorted(CORPUS_DIR.glob("*.json")):
        with open(path) as fh:
            case = json.load(fh)
        case.setdefault("name", path.stem)
        cases.append(case)
    return cases
