"""Corpus replay: every checked-in case must agree across backends.

The corpus pins the golden-round configurations (plain, eviction-set,
noisy), one case per defense family, and raw-program cases exercising
out-of-band DRAM pokes and tiny cache/MSHR geometries. Any future
divergence found by the Hypothesis property (test_property_backends.py)
gets minimized and added here as a regression.

On failure the first-divergence report is written to
``DIVERGENCE_REPORT.txt`` at the repo root so CI can upload it.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from tests.differential.harness import compare_case, load_corpus

REPORT_PATH = Path(__file__).resolve().parents[2] / "DIVERGENCE_REPORT.txt"

_CASES = load_corpus()


def write_report(report: str) -> None:
    with open(REPORT_PATH, "a") as fh:
        fh.write(report)
        fh.write("\n\n")


@pytest.mark.parametrize("case", _CASES, ids=[c["name"] for c in _CASES])
def test_corpus_case_backends_agree(case):
    report = compare_case(case)
    if report is not None:
        write_report(report)
        pytest.fail(
            f"backends diverged on corpus case {case['name']!r} "
            f"(report in {REPORT_PATH}):\n{report}"
        )


def test_corpus_is_not_empty():
    # Nine seeded cases; shrunk Hypothesis counterexamples get added over
    # time and must never be deleted wholesale.
    assert len(_CASES) >= 9
