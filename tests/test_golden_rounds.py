"""Bit-identical timing regression guard for single attack rounds.

The performance work on the core hot path (decoded programs, cache fast
paths, lazy stats) is required to be *bit-identical* in timing: these
latency sequences were captured on the pre-optimization implementation and
any drift here means the fast path changed the model, not just its speed.

Unlike the campaign digest in test_golden_values.py (which aggregates
metrics across thousands of rounds), these pin individual round latencies,
including the exact per-round RNG draw order under campaign noise.
"""

from __future__ import annotations

import pytest

from repro.attack import GadgetParams, UnxpecAttack
from repro.cpu.backend import BACKENDS, use_backend
from repro.cpu.noise import campaign_noise

#: secret-bit sequence sampled for each deterministic configuration.
SAMPLE_BITS = (0, 1, 0, 1, 1, 0)

#: Captured on the pre-optimization simulator (seed 0, prepare + 6 samples).
GOLDEN_PLAIN = {
    1: [138, 160, 138, 160, 160, 138],
    2: [138, 161, 138, 161, 161, 138],
    4: [138, 162, 138, 162, 162, 138],
    8: [138, 164, 138, 164, 164, 138],
}

GOLDEN_EVSET = {
    1: [138, 170, 138, 170, 170, 138],
    2: [138, 175, 138, 175, 175, 138],
    4: [138, 184, 138, 184, 184, 138],
    8: [138, 202, 138, 202, 202, 138],
}

#: Ten rounds (bits 0,1 alternating) under campaign noise: pins both the
#: latencies and the RNG draw order (one system-event draw per instruction
#: plus one jitter draw per memory-level load).
GOLDEN_NOISY = {
    0: [136, 139, 134, 130, 128, 167, 133, 150, 128, 173],
    7: [131, 152, 137, 160, 136, 170, 140, 171, 133, 164],
}


def _round_latencies(attack: UnxpecAttack, bits) -> list:
    attack.prepare()
    return [attack.sample(bit).latency for bit in bits]


# Both execution backends must reproduce these sequences bit-for-bit: the
# batched backend's memoized replay is pinned against the same goldens as
# the scalar reference (the attack is constructed *inside* use_backend so
# make_core picks the parametrized backend).
@pytest.mark.parametrize("backend", BACKENDS)
class TestDeterministicRounds:
    @pytest.mark.parametrize("n_loads", sorted(GOLDEN_PLAIN))
    def test_plain_rounds(self, backend, n_loads):
        with use_backend(backend):
            attack = UnxpecAttack(
                params=GadgetParams(n_loads=n_loads), use_eviction_sets=False, seed=0
            )
            assert _round_latencies(attack, SAMPLE_BITS) == GOLDEN_PLAIN[n_loads]

    @pytest.mark.parametrize("n_loads", sorted(GOLDEN_EVSET))
    def test_evset_rounds(self, backend, n_loads):
        with use_backend(backend):
            attack = UnxpecAttack(
                params=GadgetParams(n_loads=n_loads), use_eviction_sets=True, seed=0
            )
            assert _round_latencies(attack, SAMPLE_BITS) == GOLDEN_EVSET[n_loads]


@pytest.mark.parametrize("backend", BACKENDS)
class TestNoisyRounds:
    @pytest.mark.parametrize("seed", sorted(GOLDEN_NOISY))
    def test_campaign_noise_rounds(self, backend, seed):
        with use_backend(backend):
            attack = UnxpecAttack(
                params=GadgetParams(n_loads=1), seed=seed, noise=campaign_noise()
            )
            assert _round_latencies(attack, (0, 1) * 5) == GOLDEN_NOISY[seed]
