"""Content-level tests of the extension experiments."""

import pytest

from repro.experiments import get


class TestExtSpectreContent:
    @pytest.fixture(scope="class")
    def result(self):
        return get("ext_spectre").run(quick=True, seed=0)

    def test_table_covers_every_secret(self, result):
        rows = result.tables["spectre_rounds"].rows
        assert len(rows) == 3  # quick mode secrets
        for _, unsafe_guess, unsafe_hot, prot_guess, prot_hot in rows:
            assert unsafe_guess is not None
            assert prot_guess is None
            assert prot_hot == []

    def test_metrics_consistent_with_table(self, result):
        assert result.metrics["spectre_unsafe_success"] == 1.0
        assert result.metrics["spectre_cleanupspec_footprints"] == 0


class TestExtInvisibleContent:
    @pytest.fixture(scope="class")
    def result(self):
        return get("ext_invisible").run(quick=True, seed=0)

    def test_three_schemes_in_order(self, result):
        rows = result.tables["three_way"].rows
        assert [r[0] for r in rows] == ["UnsafeBaseline", "DelayOnMiss", "CleanupSpec"]

    def test_security_cost_pattern(self, result):
        rows = {r[0]: r for r in result.tables["three_way"].rows}
        # Spectre leaks only on the unsafe machine.
        assert rows["UnsafeBaseline"][1] is True
        assert rows["DelayOnMiss"][1] is False
        assert rows["CleanupSpec"][1] is False
        # unXpec only on the Undo machine.
        assert rows["CleanupSpec"][2] >= 18
        assert rows["DelayOnMiss"][2] == 0
        # Cost ordering.
        assert rows["CleanupSpec"][3] < rows["DelayOnMiss"][3]


class TestExtFuzzyContent:
    @pytest.fixture(scope="class")
    def result(self):
        return get("ext_fuzzy").run(quick=True, seed=0)

    def test_amplitude_sweep_monotone_overhead(self, result):
        rows = result.tables["fuzzy_tradeoff"].rows
        overheads = [r[2] for r in rows]
        assert overheads == sorted(overheads)

    def test_accuracy_trends_down(self, result):
        rows = result.tables["fuzzy_tradeoff"].rows
        assert rows[-1][1] < rows[0][1]


class TestFig1Content:
    def test_timeline_rows(self):
        result = get("fig1").run(seed=0)
        stages = [r[0] for r in result.tables["timeline"].rows]
        assert stages == ["T1-T2", "T3+T4", "T5", "T1-T6"]
        totals = result.tables["timeline"].rows[-1]
        assert totals[3] - totals[2] == 32  # the eviction-set channel
